//! Property-based soundness tests (Theorem 6.2 and Propositions 3.1, 4.2,
//! 7.2) on randomly generated programs.
//!
//! Programs are drawn over two qubits `q1, q2` and two parameters `a, b`,
//! with sequences, measurement cases and 2-bounded loops up to depth 3 —
//! enough to exercise every differentiation rule in combination.

use proptest::prelude::*;
use qdpl::ad::{differentiate, occurrence_count, semantics};
use qdpl::lang::ast::{Params, Stmt, Var};
use qdpl::lang::{compile, op_sem, parse_program, pretty, wf, Register};
use qdpl::linalg::Pauli;
use qdpl::sim::{DensityMatrix, Observable};

fn qubit() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("q1"), Just("q2")]
}

fn param() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("a"), Just("b")]
}

fn axis() -> impl Strategy<Value = Pauli> {
    prop_oneof![Just(Pauli::X), Just(Pauli::Y), Just(Pauli::Z)]
}

fn leaf() -> impl Strategy<Value = Stmt> {
    prop_oneof![
        (axis(), param(), qubit()).prop_map(|(ax, p, q)| Stmt::rot(ax, p, q)),
        (axis(), param()).prop_map(|(ax, p)| Stmt::coupling(ax, p, "q1", "q2")),
        qubit().prop_map(|q| Stmt::unitary(qdpl::lang::Gate::H, [Var::new(q)])),
        qubit().prop_map(Stmt::init),
        Just(Stmt::skip([Var::new("q1"), Var::new("q2")])),
    ]
}

fn program() -> impl Strategy<Value = Stmt> {
    leaf().prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Stmt::Seq(Box::new(a), Box::new(b))),
            (qubit(), inner.clone(), inner.clone())
                .prop_map(|(q, s0, s1)| Stmt::case_qubit(q, s0, s1)),
            (qubit(), inner).prop_map(|(q, body)| Stmt::while_bounded(q, 2, body)),
        ]
    })
}

fn fixed_input() -> DensityMatrix {
    let mut rho = DensityMatrix::pure_zero(2);
    rho.apply_unitary(&qdpl::linalg::Matrix::hadamard(), &[0]);
    rho.apply_unitary(
        &qdpl::linalg::Matrix::rotation_from_involution(&qdpl::linalg::Matrix::pauli_y(), 0.4),
        &[1],
    );
    rho
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 6.2 (soundness): the transformed program computes the
    /// derivative of the observable semantics, checked against central
    /// finite differences for every parameter.
    #[test]
    fn theorem_6_2_derivative_matches_finite_difference(p in program()) {
        prop_assume!(wf::check(&p).is_ok());
        let full_reg = Register::from_vars([Var::new("q1"), Var::new("q2")]);
        // Re-register the program over both qubits so observables line up.
        let padded = Stmt::Seq(
            Box::new(Stmt::skip([Var::new("q1"), Var::new("q2")])),
            Box::new(p),
        );
        let params = Params::from_pairs([("a", 0.73), ("b", -0.41)]);
        let obs = Observable::pauli_z(2, 1);
        let rho = fixed_input();
        for name in ["a", "b"] {
            let diff = differentiate(&padded, name).expect("differentiable fragment");
            let analytic = diff.derivative(&params, &obs, &rho);
            let numeric = semantics::numeric_derivative(
                &padded, &full_reg, &params, name, &obs, &rho, 1e-5,
            );
            prop_assert!(
                (analytic - numeric).abs() < 5e-6,
                "∂/∂{name}: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    /// Proposition 3.1: for normal programs the denotational semantics is
    /// the sum of the operational trace multiset.
    #[test]
    fn proposition_3_1_denotation_sums_traces(p in program()) {
        prop_assume!(wf::check(&p).is_ok());
        let reg = Register::from_vars([Var::new("q1"), Var::new("q2")]);
        let params = Params::from_pairs([("a", 1.2), ("b", 0.3)]);
        let rho = fixed_input();
        let traces = op_sem::trace_multiset(&p, &reg, &params, &rho);
        let summed = op_sem::sum_traces(&traces, 2);
        let direct = qdpl::lang::denot::denote(&p, &reg, &params, &rho);
        prop_assert!(summed.approx_eq(&direct, 1e-9));
    }

    /// Proposition 4.2: compilation preserves the non-zero trace multiset
    /// of the additive derivative program.
    #[test]
    fn proposition_4_2_compile_preserves_traces(p in program()) {
        prop_assume!(wf::check(&p).is_ok());
        let diff = differentiate(&p, "a").expect("differentiable fragment");
        let additive = diff.additive();
        let reg = diff.ext_register().clone();
        let params = Params::from_pairs([("a", 0.9), ("b", -0.2)]);
        let rho = fixed_input().prepend_zero_ancilla();

        let lhs: Vec<DensityMatrix> = op_sem::trace_multiset(additive, &reg, &params, &rho)
            .into_iter()
            .filter(|r| r.trace() > 1e-10)
            .collect();
        let rhs: Vec<DensityMatrix> = compile::compile(additive)
            .iter()
            .flat_map(|q| op_sem::trace_multiset(q, &reg, &params, &rho))
            .filter(|r| r.trace() > 1e-10)
            .collect();
        prop_assert!(
            op_sem::multisets_approx_eq(&lhs, &rhs, 1e-9),
            "trace multisets differ: {} vs {}",
            lhs.len(),
            rhs.len()
        );
    }

    /// Proposition 7.2: the compiled derivative-program count never exceeds
    /// the occurrence count.
    #[test]
    fn proposition_7_2_bound(p in program()) {
        prop_assume!(wf::check(&p).is_ok());
        for name in ["a", "b"] {
            let m = differentiate(&p, name).expect("differentiable").compiled().len();
            let oc = occurrence_count(&p, name);
            prop_assert!(m <= oc, "∂/∂{name}: |#∂| = {m} > OC = {oc}");
        }
    }

    /// Pretty-printer / parser round trip on random programs.
    #[test]
    fn pretty_parse_round_trip(p in program()) {
        prop_assume!(wf::check(&p).is_ok());
        let src = pretty::to_source(&p);
        let reparsed = parse_program(&src)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\nsource:\n{src}"));
        // Equal up to sequence associativity (the parser right-associates).
        prop_assert_eq!(reparsed.normalize_seq(), p.normalize_seq());
    }

    /// The compiled multiset of any derivative satisfies the Fig. 3
    /// invariant and contains only normal programs.
    #[test]
    fn compiled_derivatives_are_normal(p in program()) {
        prop_assume!(wf::check(&p).is_ok());
        let diff = differentiate(&p, "a").expect("differentiable");
        let compiled = compile::compile(diff.additive());
        prop_assert!(compile::invariant_holds(&compiled));
        prop_assert!(compiled.iter().all(Stmt::is_normal));
    }

    /// The simplification pass preserves the denotational semantics over
    /// the original register and never adds gates.
    #[test]
    fn simplify_preserves_semantics(p in program()) {
        prop_assume!(wf::check(&p).is_ok());
        let simplified = qdpl::lang::opt::simplify(&p);
        let reg = Register::from_vars([Var::new("q1"), Var::new("q2")]);
        let params = Params::from_pairs([("a", 0.6), ("b", -1.1)]);
        let rho = fixed_input();
        let before = qdpl::lang::denot::denote(&p, &reg, &params, &rho);
        let after = qdpl::lang::denot::denote(&simplified, &reg, &params, &rho);
        prop_assert!(before.approx_eq(&after, 1e-9));
        prop_assert!(simplified.gate_count() <= p.gate_count());
    }
}
