//! # qdpl — Differentiable Quantum Programming Languages, reproduced in Rust
//!
//! Umbrella crate for the reproduction of Zhu, Hung, Chakrabarti & Wu,
//! *On the Principles of Differentiable Quantum Programming Languages*
//! (PLDI 2020). It re-exports the workspace crates:
//!
//! * [`linalg`] — complex linear algebra substrate,
//! * [`sim`] — density-operator / state-vector quantum simulator,
//! * [`lang`] — the parameterized quantum bounded `while`-language and its
//!   additive extension, semantics, and compilation,
//! * [`ad`] — the differentiation code transformation, logic, and resource
//!   analysis (the paper's core contribution),
//! * [`vqc`] — variational-circuit families, training, and the
//!   phase-shift-rule baseline used in the paper's evaluation.
//!
//! # Examples
//!
//! Differentiate the paper's Simple-Case program (Example 6.1) with respect
//! to its parameter and evaluate the gradient of an observable:
//!
//! ```
//! use qdpl::ad::differentiate;
//! use qdpl::lang::parse_program;
//!
//! let src = "
//!     case M[q1] = 0 -> q1 *= RX(t); q1 *= RY(t),
//!                  1 -> q1 *= RZ(t)
//!     end";
//! let program = parse_program(src)?;
//! let diff = differentiate(&program, "t")?;
//! assert_eq!(diff.compiled().len(), 2); // the two programs of Example 6.1
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use qdp_ad as ad;
pub use qdp_lang as lang;
pub use qdp_linalg as linalg;
pub use qdp_sim as sim;
pub use qdp_vqc as vqc;
