//! Timing of the Figure 6 training loop: one full-batch epoch (16 samples,
//! forward value + full gradient + optimizer step) of `P1` and `P2`, the
//! `gradient_batch_16x` workload — the batched training gradient against
//! the serial per-sample loop it replaced — and the
//! `gradient_branching_batch` workload: the branch-weighted batched
//! executor on `P2`'s measurement-controlled derivative multisets against
//! per-row branch enumeration.

use criterion::{criterion_group, criterion_main, Criterion};
use qdp_lang::ast::Params;
use qdp_vqc::circuits::{p1, p2};
use qdp_vqc::loss::{Loss, SquaredLoss};
use qdp_vqc::optim::GradientDescent;
use qdp_vqc::task;
use qdp_vqc::train::Trainer;
use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::Duration;

fn data() -> qdp_vqc::train::Dataset {
    task::dataset()
        .into_iter()
        .map(|s| (s.input_state(), s.target()))
        .collect()
}

fn bench_epochs(c: &mut Criterion) {
    let mut group = c.benchmark_group("training_epoch");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));

    let mut t1 = Trainer::new(&p1(), task::readout_observable(), data())
        .expect("P1 differentiable");
    t1.init_params_seeded(11);
    let mut opt1 = GradientDescent::new(0.5);
    group.bench_function("P1 epoch (16 samples, 24 params)", |b| {
        b.iter(|| black_box(t1.epoch(&SquaredLoss, &mut opt1)))
    });

    let mut t2 = Trainer::new(&p2(), task::readout_observable(), data())
        .expect("P2 differentiable");
    t2.init_params_seeded(11);
    let mut opt2 = GradientDescent::new(0.5);
    group.bench_function("P2 epoch (16 samples, 36 params)", |b| {
        b.iter(|| black_box(t2.epoch(&SquaredLoss, &mut opt2)))
    });
    group.finish();
}

/// The tentpole workload of the batch engine: one full 16-sample training
/// gradient of `P1`, batched sweep vs the per-sample loop.
fn bench_batch_gradient(c: &mut Criterion) {
    let mut group = c.benchmark_group("gradient_batch_16x");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));

    let data = data();
    let mut trainer = Trainer::new(&p1(), task::readout_observable(), data.clone())
        .expect("P1 differentiable");
    trainer.init_params_seeded(11);
    let loss = SquaredLoss;

    group.bench_function("batched (Trainer::loss_gradient)", |b| {
        b.iter(|| black_box(trainer.loss_gradient(&loss)))
    });

    let engine = trainer.engine().clone();
    let obs = task::readout_observable();
    let params = Params::from_pairs(trainer.params().iter().map(|(k, &v)| (k.clone(), v)));
    let names: Vec<String> = trainer.params().keys().cloned().collect();
    group.bench_function("serial per-sample loop", |b| {
        b.iter(|| {
            let mut grads: BTreeMap<String, f64> =
                names.iter().map(|k| (k.clone(), 0.0)).collect();
            for (psi, label) in &data {
                let pred = engine.value_pure(&params, &obs, psi);
                let outer = loss.grad(pred, *label);
                if outer == 0.0 {
                    continue;
                }
                for (name, g) in engine.gradient_pure(&params, &obs, psi) {
                    *grads.get_mut(&name).expect("known parameter") += outer * g;
                }
            }
            black_box(grads)
        })
    });
    group.finish();
}

/// The branch-weighted exact executor's headline workload: one full
/// 16-sample, 36-parameter gradient of the measurement-controlled `P2`,
/// batched branch-weighted sweep vs per-row branch enumeration.
fn bench_branching_gradient(c: &mut Criterion) {
    let mut group = c.benchmark_group("gradient_branching_batch");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));

    let data = data();
    let engine = qdp_ad::GradientEngine::new(&p2()).expect("P2 differentiable");
    let obs = task::readout_observable();
    let params = Params::from_pairs(
        p2()
            .parameters()
            .into_iter()
            .enumerate()
            .map(|(i, name)| (name, 0.2 + 0.31 * i as f64)),
    );
    let inputs: Vec<qdp_sim::StateVector> = data.iter().map(|(psi, _)| psi.clone()).collect();
    let batch = qdp_sim::BatchedStates::from_states(&inputs);

    group.bench_function("branch-weighted batched sweep", |b| {
        b.iter(|| black_box(engine.gradient_pure_batch(&params, &obs, &batch)))
    });
    group.bench_function("per-row branch enumeration", |b| {
        b.iter(|| {
            let rows: Vec<_> = inputs
                .iter()
                .map(|psi| engine.gradient_pure(&params, &obs, psi))
                .collect();
            black_box(rows)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_epochs, bench_batch_gradient, bench_branching_gradient);
criterion_main!(benches);
