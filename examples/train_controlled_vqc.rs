//! A compact version of the paper's Section 8.1 case study: training the
//! controlled VQC `P2` against the control-free `P1`, and showing why the
//! phase-shift baseline cannot even express the former.
//!
//! Run with: `cargo run --release --example train_controlled_vqc`

use qdpl::vqc::baseline::PhaseShift;
use qdpl::vqc::circuits::{p1, p2};
use qdpl::vqc::loss::SquaredLoss;
use qdpl::vqc::optim::GradientDescent;
use qdpl::vqc::task;
use qdpl::vqc::train::Trainer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = || -> qdpl::vqc::train::Dataset {
        task::dataset()
            .into_iter()
            .map(|s| (s.input_state(), s.target()))
            .collect()
    };

    // The baseline (PennyLane's phase-shift rule) handles P1 but rejects P2.
    println!("phase-shift baseline on P1: {:?}", PhaseShift::new(&p1()).is_ok());
    match PhaseShift::new(&p2()) {
        Err(e) => println!("phase-shift baseline on P2: rejected — {e}\n"),
        Ok(_) => unreachable!("P2 contains a case statement"),
    }

    let epochs = 120;
    let loss = SquaredLoss;

    let mut t1 = Trainer::new(&p1(), task::readout_observable(), data())?;
    t1.init_params_seeded(11);
    let h1 = t1.train(epochs, &loss, &mut GradientDescent::new(0.5));

    let mut t2 = Trainer::new(&p2(), task::readout_observable(), data())?;
    t2.init_params_seeded(11);
    let h2 = t2.train(epochs, &loss, &mut GradientDescent::new(0.5));

    println!("{:>6} {:>12} {:>12}", "epoch", "loss(P1)", "loss(P2)");
    for e in (0..epochs).step_by(15).chain([epochs - 1]) {
        println!("{e:>6} {:>12.6} {:>12.6}", h1[e], h2[e]);
    }
    println!(
        "\naccuracy after {epochs} epochs: P1 = {:.3} (stuck at chance — its \
         product structure cannot see z1), P2 = {:.3}",
        t1.accuracy(),
        t2.accuracy()
    );
    Ok(())
}
