//! The paper's worked Example 6.1 (“Simple-Case”): differentiating a
//! measurement-controlled program and inspecting the compiled multiset.
//!
//! The paper derives by hand:
//!
//! ```text
//! ∂/∂θ(P(θ)) compiles to
//!   {| case M[q1] = 0 → R'X(θ)[A,q1]; RY(θ)[q1], 1 → R'Z(θ)[A,q1],
//!      case M[q1] = 0 → RX(θ)[q1]; R'Y(θ)[A,q1], 1 → abort |}
//! ```
//!
//! Run with: `cargo run --example simple_case`

use qdpl::ad::{check, derive, differentiate, fresh_ancilla};
use qdpl::lang::ast::Params;
use qdpl::lang::{parse_program, pretty};
use qdpl::sim::{DensityMatrix, Observable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let src = "
        case M[q1] = 0 -> q1 *= RX(th); q1 *= RY(th),
                     1 -> q1 *= RZ(th)
        end";
    let program = parse_program(src)?;
    println!("P(θ) — Example 6.1:\n{}\n", pretty::to_source(&program));

    // Build and check the Fig. 5 derivation of ∂(P)|P.
    let ancilla = fresh_ancilla(&program, "th");
    let derivation = derive(&program, "th", &ancilla)?;
    check(&derivation, "th", &ancilla)?;
    println!(
        "differentiation logic: derivation with {} rule applications checks ✓\n",
        derivation.size()
    );

    // Transform + compile, as in the paper's displayed multiset.
    let diff = differentiate(&program, "th")?;
    println!("Compile(∂/∂θ(P)) — {} programs:", diff.compiled().len());
    for (i, p) in diff.compiled().iter().enumerate() {
        println!("--- program {i} ---\n{}\n", pretty::to_source(p));
    }
    assert_eq!(diff.compiled().len(), 2, "the paper's multiset has 2 programs");

    // The derivative works for any observable and input (Def. 5.3).
    let params = Params::from_pairs([("th", 1.1)]);
    let obs = Observable::projector_one(1, 0);
    let mut rho = DensityMatrix::pure_zero(1);
    rho.apply_unitary(&qdpl::linalg::Matrix::hadamard(), &[0]);
    let d = diff.derivative(&params, &obs, &rho);
    println!("derivative of tr(|1⟩⟨1| [[P]] |+⟩⟨+|) at θ=1.1: {d:.9}");
    Ok(())
}
