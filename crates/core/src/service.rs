//! A long-lived, multi-tenant gradient front end with request coalescing,
//! deadlines, backpressure, and leader-failure containment.
//!
//! [`GradientService`] generalizes the one-valuation estimator embryo into
//! a server: clients register programs (deduplicated structurally — two
//! registrations of the same program share one tenant and therefore one
//! [`crate::GradientEngine`] and one interned skeleton) and submit
//! expectation/gradient requests from any number of threads. Requests
//! against the same tenant that are **compatible** — same request kind,
//! same valuation, same observable, same shot budget — coalesce into one
//! shared [`qdp_sim::BatchedStates`] tile: a single leader gathers the
//! queued inputs into one contiguous batch, runs **one** kernel sweep
//! through the engine's batched entry point, and distributes the per-row
//! results. The batch axis of PR 2 becomes the multi-tenancy axis.
//!
//! # Determinism contract
//!
//! Every client's result is **bit-identical to running its request solo**:
//!
//! * exact kinds ride the batched evaluators, whose per-row outputs are
//!   invariant under batch composition (pinned by
//!   `crates/core/tests/batch_equivalence.rs` and the branch-weighted
//!   differential suite) — row `r` of a coalesced sweep carries the same
//!   bits as a one-row sweep of that input;
//! * shot kinds pass each client's own seed as its row's stream
//!   (`row_seeds[r]`), and the batched shot entry points guarantee row `r`
//!   is bit-identical to the single-input call with that seed (the
//!   [`qdp_sim::derive_seed`] per-row stream contract of PR 3).
//!
//! So coalescing changes *when* work happens, never *what* any client
//! observes — under any thread count and any arrival interleaving. The
//! robustness machinery below preserves this: shedding, deadline expiry,
//! and eviction only remove requests from service, they never change the
//! bits of a request that completes.
//!
//! # Leadership protocol
//!
//! Per tenant: submitters enqueue under the tenant lock and wait on its
//! condvar. When no leader is active and at least
//! [`min_batch`](ServiceConfig::min_batch) requests are pending (or an
//! earlier [`flush`](GradientService::flush)/gate-open marked requests
//! admitted), one waiter elects itself leader, drains the **head group**
//! (the oldest request plus every pending request compatible with it, in
//! submission order), releases the lock, runs the one batched sweep,
//! publishes results keyed by ticket, and steps down. When the gate opens
//! on the threshold, every request pending at that moment is marked
//! `admitted` — owed a sweep — so an incompatible remainder smaller than
//! the threshold elects follow-up leaders instead of stranding. The flag
//! rides the request itself, which keeps the carryover gate exact when
//! individual requests are later removed by deadline expiry.
//!
//! # Robustness contract
//!
//! * **Deadlines** ([`RequestOptions::deadline`], the fallible `*_with`
//!   submit paths): the deadline bounds the *queue wait*. A request still
//!   queued when its deadline passes removes exactly its own entry and
//!   returns [`qdp_sim::QdpError::DeadlineExceeded`]; followers and the
//!   admitted-carryover gate are untouched. A request already drained
//!   into an active sweep is past cancellation — its leader serves the
//!   batch it admitted (no torn batches) and the late requester simply
//!   waits for the published result. In particular a leader past its own
//!   deadline still completes its sweep.
//! * **Backpressure** ([`ServiceConfig::max_pending`]): with the default
//!   [`OverloadPolicy::RejectNewest`], a submit that finds the tenant
//!   queue at its bound sheds immediately with a typed
//!   [`qdp_sim::QdpError::Overloaded`] — it never blocks waiting for
//!   space, and never enqueues. [`OverloadPolicy::Block`] instead waits
//!   for space (bounded by the request deadline, when one is set).
//! * **Leader-failure containment**: the coalesced sweep runs under
//!   `catch_unwind` (plus the typed `try_*` engine twins), so a worker
//!   panic surviving `try_par_map_retry` or an injected
//!   [`qdp_sim::fault::FaultSite::Service`] panic becomes a typed error,
//!   never a propagated panic. Group members with retry budget left
//!   ([`RequestOptions::max_retries`]) are re-queued at the head, still
//!   admitted, so a follow-up leader re-serves them; members past their
//!   budget receive the typed error. Either way every follower gets a
//!   publication — no hangs.
//! * **Poison recovery**: a tenant lock poisoned by a panicking holder is
//!   recovered on the next acquisition — the queue drains with typed
//!   [`qdp_sim::QdpError::ServicePanic`] errors, leadership resets, and
//!   the tenant keeps serving fresh requests.
//!
//! The legacy infallible entry points ([`expectation`](GradientService::expectation)
//! etc.) delegate to the fallible ones with default options and panic on
//! the **caller's** thread with the typed message — same surface as
//! before, still hang-free.

use std::collections::{BTreeMap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use qdp_lang::ast::{Params, Stmt};
use qdp_sim::{BatchedStates, Observable, QdpError, StateVector};

use crate::exec::GradientEngine;
use crate::transform::TransformError;

/// What one request asks for. Seeds live here (not in the compatibility
/// key) so clients with distinct seeds still coalesce.
#[derive(Clone, Debug)]
enum Request {
    /// Exact forward value `⟨O⟩`.
    Value { params: Params, obs: Observable },
    /// Exact gradient via the per-parameter gadget multisets.
    Gradient { params: Params, obs: Observable },
    /// Exact gradient via the `±π/2` shift rule on the forward skeleton.
    ShiftGradient { params: Params, obs: Observable },
    /// Shot-sampled forward value on the client's seed stream.
    ValueShots {
        params: Params,
        obs: Observable,
        shots: usize,
        seed: u64,
    },
    /// Shot-sampled gradient on the client's seed stream.
    GradientShots {
        params: Params,
        obs: Observable,
        shots_per_param: usize,
        seed: u64,
    },
}

/// The result of one request.
#[derive(Clone, Debug)]
enum Output {
    Value(f64),
    Gradient(BTreeMap<String, f64>),
}

/// Whether two requests may share one batched sweep: same kind, same
/// valuation (`Params` is an ordered map, compared by value bits), same
/// observable (register width, targets, matrix entries — compared
/// bitwise via `Matrix: PartialEq`), same shot budget. Seeds are
/// intentionally excluded: they become per-row streams.
fn compatible(a: &Request, b: &Request) -> bool {
    fn obs_eq(x: &Observable, y: &Observable) -> bool {
        x.num_qubits() == y.num_qubits() && x.targets() == y.targets() && x.matrix() == y.matrix()
    }
    match (a, b) {
        (
            Request::Value { params: p1, obs: o1 },
            Request::Value { params: p2, obs: o2 },
        )
        | (
            Request::Gradient { params: p1, obs: o1 },
            Request::Gradient { params: p2, obs: o2 },
        )
        | (
            Request::ShiftGradient { params: p1, obs: o1 },
            Request::ShiftGradient { params: p2, obs: o2 },
        ) => p1 == p2 && obs_eq(o1, o2),
        (
            Request::ValueShots { params: p1, obs: o1, shots: s1, .. },
            Request::ValueShots { params: p2, obs: o2, shots: s2, .. },
        ) => s1 == s2 && p1 == p2 && obs_eq(o1, o2),
        (
            Request::GradientShots { params: p1, obs: o1, shots_per_param: s1, .. },
            Request::GradientShots { params: p2, obs: o2, shots_per_param: s2, .. },
        ) => s1 == s2 && p1 == p2 && obs_eq(o1, o2),
        _ => false,
    }
}

/// Per-request submission options for the fallible `*_with` entry points.
#[derive(Clone, Debug)]
pub struct RequestOptions {
    /// Maximum time the request may spend **queued** before it is
    /// cancelled with [`qdp_sim::QdpError::DeadlineExceeded`]. Once the
    /// request is drained into an active sweep it is past cancellation
    /// and the submitter waits for the published result. `None` waits
    /// indefinitely.
    pub deadline: Option<Duration>,
    /// How many times a failed coalesced sweep may re-serve this request
    /// before it is failed with the sweep's typed error. The default `1`
    /// means one fresh leader retries the group once.
    pub max_retries: usize,
}

impl Default for RequestOptions {
    fn default() -> Self {
        RequestOptions { deadline: None, max_retries: 1 }
    }
}

impl RequestOptions {
    /// The default options: no deadline, one re-serve retry.
    pub fn new() -> Self {
        RequestOptions::default()
    }

    /// Bounds the queue wait (see [`RequestOptions::deadline`]).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the re-serve budget after leader failures.
    pub fn with_max_retries(mut self, max_retries: usize) -> Self {
        self.max_retries = max_retries;
        self
    }
}

/// What a submit does when the tenant queue is at
/// [`ServiceConfig::max_pending`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Shed the incoming request immediately with a typed
    /// [`qdp_sim::QdpError::Overloaded`] — the non-blocking `try_submit`
    /// behaviour: saturation degrades to fast failure instead of
    /// unbounded queue growth and latency collapse.
    #[default]
    RejectNewest,
    /// Block the submitter until queue space frees up (bounded by the
    /// request deadline, when one is set).
    Block,
}

/// Service-wide configuration: the admission threshold plus the
/// backpressure bound and policy.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Requests that must be pending before a leader sweeps a *quiet*
    /// queue (see [`GradientService::with_admission`]). Must be ≥ 1.
    pub min_batch: usize,
    /// Per-tenant bound on the pending queue; `None` is unbounded (the
    /// pre-robustness behaviour). Must be ≥ 1 when set.
    pub max_pending: Option<usize>,
    /// What happens to a submit that finds the queue at the bound.
    pub overload: OverloadPolicy,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            min_batch: 1,
            max_pending: None,
            overload: OverloadPolicy::RejectNewest,
        }
    }
}

/// One queued request.
#[derive(Debug)]
struct Pending {
    ticket: u64,
    input: StateVector,
    request: Request,
    /// Owed a sweep: the admission gate opened while this request was
    /// queued (or a flush covered it). The flag rides the request, so
    /// removing an expired request cannot miscount the carryover.
    admitted: bool,
    /// Failed coalesced sweeps this request has already been part of.
    attempts: usize,
    /// Re-serve budget after leader failures ([`RequestOptions`]).
    max_retries: usize,
}

#[derive(Debug, Default)]
struct TenantState {
    pending: Vec<Pending>,
    results: HashMap<u64, Result<Output, QdpError>>,
    /// Whether a leader is currently running a sweep.
    leader: bool,
    next_ticket: u64,
}

/// One registered program: the shared engine plus the coalescing queue.
#[derive(Debug)]
struct Tenant {
    engine: Arc<GradientEngine>,
    state: Mutex<TenantState>,
    ready: Condvar,
    /// Batched sweeps completed on behalf of this tenant.
    sweeps: AtomicUsize,
    /// Requests served successfully (across all sweeps).
    served: AtomicUsize,
    /// Requests shed at submission by the overload policy.
    shed: AtomicUsize,
    /// Requests cancelled by deadline expiry while queued.
    expired: AtomicUsize,
    /// Coalesced sweeps that died (panic or typed failure) before
    /// publishing results.
    leader_failures: AtomicUsize,
}

impl Tenant {
    /// Locks the tenant state, recovering a lock poisoned by a panicking
    /// holder (see [`Tenant::recover`]).
    fn lock_state(&self) -> MutexGuard<'_, TenantState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => {
                self.state.clear_poison();
                self.recover(poisoned.into_inner())
            }
        }
    }

    /// Sanitizes possibly-torn state behind a poisoned lock: whatever the
    /// panicking holder was doing, its bookkeeping cannot be trusted, so
    /// every queued request fails with a typed error (their submitters
    /// return it; nobody hangs on a queue nobody will sweep) and
    /// leadership resets so the tenant keeps serving fresh requests. If a
    /// healthy leader was mid-sweep during recovery, its group was already
    /// drained out of `pending` — its publications still land, at worst
    /// alongside a concurrently elected second leader with a disjoint
    /// group.
    fn recover<'a>(&'a self, mut st: MutexGuard<'a, TenantState>) -> MutexGuard<'a, TenantState> {
        st.leader = false;
        let drained: Vec<Pending> = st.pending.drain(..).collect();
        for p in drained {
            st.results.insert(
                p.ticket,
                Err(QdpError::ServicePanic {
                    message: "tenant lock poisoned by a panicking holder; queued request drained"
                        .to_string(),
                }),
            );
        }
        self.ready.notify_all();
        st
    }

    /// Condvar wait with the same poison recovery as
    /// [`lock_state`](Self::lock_state).
    fn wait<'a>(&'a self, st: MutexGuard<'a, TenantState>) -> MutexGuard<'a, TenantState> {
        match self.ready.wait(st) {
            Ok(g) => g,
            Err(poisoned) => {
                self.state.clear_poison();
                self.recover(poisoned.into_inner())
            }
        }
    }

    /// Bounded condvar wait with the same poison recovery. Timeouts are
    /// indistinguishable from wakeups to the caller — the submit loop
    /// re-checks its deadline against the clock.
    fn wait_timeout<'a>(
        &'a self,
        st: MutexGuard<'a, TenantState>,
        dur: Duration,
    ) -> MutexGuard<'a, TenantState> {
        match self.ready.wait_timeout(st, dur) {
            Ok((g, _)) => g,
            Err(poisoned) => {
                self.state.clear_poison();
                self.recover(poisoned.into_inner().0)
            }
        }
    }
}

/// An opaque reference to a registered program — cheap to clone and share
/// across client threads.
#[derive(Clone, Debug)]
pub struct ProgramHandle {
    tenant: Arc<Tenant>,
}

/// The compile-once gradient server (see the module docs).
#[derive(Debug)]
pub struct GradientService {
    tenants: Mutex<Vec<Arc<Tenant>>>,
    config: ServiceConfig,
}

impl Default for GradientService {
    fn default() -> Self {
        GradientService::new()
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => {
            // The registry is a Vec of Arcs; a panicked holder cannot have
            // torn it (pushes are the only mutation).
            m.clear_poison();
            poisoned.into_inner()
        }
    }
}

/// Steps a panicked leader down so followers re-elect instead of hanging
/// forever on a leadership that will never complete. The sweep itself
/// runs under `catch_unwind`, so this is a backstop for panics in the
/// leader's own bookkeeping.
struct LeaderGuard<'a> {
    tenant: &'a Tenant,
    armed: bool,
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.tenant.lock_state().leader = false;
            self.tenant.ready.notify_all();
        }
    }
}

impl GradientService {
    /// A service that sweeps as soon as any request is pending
    /// (`min_batch = 1`), with an unbounded queue: correct everywhere,
    /// coalescing opportunistically when requests happen to queue up.
    pub fn new() -> Self {
        GradientService::with_config(ServiceConfig::default())
    }

    /// A service whose leaders wait until `min_batch` requests are pending
    /// before sweeping — the throughput knob: `N` compatible clients with
    /// `min_batch = N` are guaranteed to share exactly one sweep. Pair
    /// with [`flush`](Self::flush) when fewer requests may arrive.
    ///
    /// # Panics
    ///
    /// Panics when `min_batch` is zero.
    pub fn with_admission(min_batch: usize) -> Self {
        GradientService::with_config(ServiceConfig {
            min_batch,
            ..ServiceConfig::default()
        })
    }

    /// A service with full robustness configuration: admission threshold,
    /// queue bound, and overload policy.
    ///
    /// # Panics
    ///
    /// Panics when `min_batch` is zero or `max_pending` is `Some(0)`.
    pub fn with_config(config: ServiceConfig) -> Self {
        assert!(config.min_batch > 0, "admission threshold must be at least 1");
        assert!(
            config.max_pending != Some(0),
            "queue bound must be at least 1 (use None for unbounded)"
        );
        GradientService {
            tenants: Mutex::new(Vec::new()),
            config,
        }
    }

    /// Registers a program, deduplicating structurally: a program equal to
    /// an already-registered one returns a handle to the **same** tenant
    /// (same engine, same interned skeletons, shared coalescing queue).
    ///
    /// # Errors
    ///
    /// Returns the [`TransformError`] of engine construction.
    pub fn register(&self, program: &Stmt) -> Result<ProgramHandle, TransformError> {
        if let Some(t) = lock(&self.tenants)
            .iter()
            .find(|t| t.engine.program() == program)
        {
            return Ok(ProgramHandle { tenant: Arc::clone(t) });
        }
        // Engine construction (per-parameter transform + compile) runs
        // outside the registry lock; a racing duplicate is resolved on
        // re-entry below.
        let engine = Arc::new(GradientEngine::new(program)?);
        let mut tenants = lock(&self.tenants);
        if let Some(t) = tenants.iter().find(|t| t.engine.program() == program) {
            return Ok(ProgramHandle { tenant: Arc::clone(t) });
        }
        let tenant = Arc::new(Tenant {
            engine,
            state: Mutex::new(TenantState::default()),
            ready: Condvar::new(),
            sweeps: AtomicUsize::new(0),
            served: AtomicUsize::new(0),
            shed: AtomicUsize::new(0),
            expired: AtomicUsize::new(0),
            leader_failures: AtomicUsize::new(0),
        });
        tenants.push(Arc::clone(&tenant));
        Ok(ProgramHandle { tenant })
    }

    /// The handle's shared engine, for direct (uncoalesced) evaluation —
    /// e.g. wiring a `qdp-vqc` trainer onto the same compiled skeletons
    /// the service serves.
    pub fn engine(&self, handle: &ProgramHandle) -> Arc<GradientEngine> {
        Arc::clone(&handle.tenant.engine)
    }

    /// How many distinct programs are registered.
    pub fn tenant_count(&self) -> usize {
        lock(&self.tenants).len()
    }

    /// Batched sweeps completed for this handle's program so far.
    pub fn sweeps(&self, handle: &ProgramHandle) -> usize {
        handle.tenant.sweeps.load(Ordering::Relaxed)
    }

    /// Requests served successfully for this handle's program so far.
    pub fn served(&self, handle: &ProgramHandle) -> usize {
        handle.tenant.served.load(Ordering::Relaxed)
    }

    /// Requests shed by the overload policy for this handle's program.
    pub fn shed(&self, handle: &ProgramHandle) -> usize {
        handle.tenant.shed.load(Ordering::Relaxed)
    }

    /// Requests cancelled by deadline expiry while queued.
    pub fn expired(&self, handle: &ProgramHandle) -> usize {
        handle.tenant.expired.load(Ordering::Relaxed)
    }

    /// Coalesced sweeps that failed (before any re-serve retries
    /// succeeded).
    pub fn leader_failures(&self, handle: &ProgramHandle) -> usize {
        handle.tenant.leader_failures.load(Ordering::Relaxed)
    }

    /// The current pending-queue depth of this handle's tenant.
    pub fn pending_depth(&self, handle: &ProgramHandle) -> usize {
        handle.tenant.lock_state().pending.len()
    }

    /// Overrides the admission threshold for everything **currently
    /// pending** on this handle's program: those requests are marked
    /// admitted, so the next leader sweeps them even if fewer than
    /// `min_batch` arrived. A flush with an empty queue is a no-op — it
    /// cannot go stale and admit a later lone request early — and a
    /// request arriving after the flush is not covered by it.
    pub fn flush(&self, handle: &ProgramHandle) {
        let mut st = handle.tenant.lock_state();
        for p in &mut st.pending {
            p.admitted = true;
        }
        drop(st);
        handle.tenant.ready.notify_all();
    }

    /// Exact forward value `⟨O⟩` — blocks until a (possibly shared) sweep
    /// serves it.
    ///
    /// # Panics
    ///
    /// Panics when a used parameter has no value, the input width does
    /// not match the program register, or the request fails (overload
    /// shedding under a bounded config, sweep failure past the retry
    /// budget) — the panic carries the typed error's message. Use
    /// [`expectation_with`](Self::expectation_with) to handle failures.
    pub fn expectation(
        &self,
        handle: &ProgramHandle,
        params: &Params,
        obs: &Observable,
        psi: &StateVector,
    ) -> f64 {
        self.expectation_with(handle, params, obs, psi, &RequestOptions::default())
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`expectation`](Self::expectation) with per-request
    /// options.
    ///
    /// # Errors
    ///
    /// [`QdpError::Overloaded`] when shed at submission,
    /// [`QdpError::DeadlineExceeded`] when the queue wait outlived
    /// `opts.deadline`, [`QdpError::ServicePanic`] /
    /// [`QdpError::WorkerPanic`] when the serving sweep failed past the
    /// retry budget.
    ///
    /// # Panics
    ///
    /// Panics on malformed requests (missing parameter, width mismatch) —
    /// validated on the caller's thread before enqueueing.
    pub fn expectation_with(
        &self,
        handle: &ProgramHandle,
        params: &Params,
        obs: &Observable,
        psi: &StateVector,
        opts: &RequestOptions,
    ) -> Result<f64, QdpError> {
        self.validate(handle, params, psi);
        match self.try_submit(handle, psi.clone(), Request::Value {
            params: params.clone(),
            obs: obs.clone(),
        }, opts)? {
            Output::Value(v) => Ok(v),
            Output::Gradient(_) => unreachable!("value requests produce scalar outputs"),
        }
    }

    /// Exact gradient via the gadget multisets, keyed by parameter name.
    ///
    /// # Panics
    ///
    /// Same conditions as [`expectation`](Self::expectation).
    pub fn gradient(
        &self,
        handle: &ProgramHandle,
        params: &Params,
        obs: &Observable,
        psi: &StateVector,
    ) -> BTreeMap<String, f64> {
        self.gradient_with(handle, params, obs, psi, &RequestOptions::default())
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`gradient`](Self::gradient) with per-request options —
    /// same error surface as [`expectation_with`](Self::expectation_with).
    ///
    /// # Errors
    ///
    /// See [`expectation_with`](Self::expectation_with).
    ///
    /// # Panics
    ///
    /// Panics on malformed requests, validated on the caller's thread.
    pub fn gradient_with(
        &self,
        handle: &ProgramHandle,
        params: &Params,
        obs: &Observable,
        psi: &StateVector,
        opts: &RequestOptions,
    ) -> Result<BTreeMap<String, f64>, QdpError> {
        self.validate(handle, params, psi);
        match self.try_submit(handle, psi.clone(), Request::Gradient {
            params: params.clone(),
            obs: obs.clone(),
        }, opts)? {
            Output::Gradient(g) => Ok(g),
            Output::Value(_) => unreachable!("gradient requests produce map outputs"),
        }
    }

    /// Exact gradient via the `±π/2` shift rule on the single interned
    /// forward skeleton (see
    /// [`GradientEngine::gradient_pure_shift_batch`]).
    ///
    /// # Panics
    ///
    /// Same conditions as [`expectation`](Self::expectation), plus
    /// shift-rule eligibility.
    pub fn gradient_shift(
        &self,
        handle: &ProgramHandle,
        params: &Params,
        obs: &Observable,
        psi: &StateVector,
    ) -> BTreeMap<String, f64> {
        self.gradient_shift_with(handle, params, obs, psi, &RequestOptions::default())
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`gradient_shift`](Self::gradient_shift) with per-request
    /// options.
    ///
    /// # Errors
    ///
    /// See [`expectation_with`](Self::expectation_with).
    ///
    /// # Panics
    ///
    /// Panics on malformed requests or shift-ineligible programs,
    /// validated on the caller's thread.
    pub fn gradient_shift_with(
        &self,
        handle: &ProgramHandle,
        params: &Params,
        obs: &Observable,
        psi: &StateVector,
        opts: &RequestOptions,
    ) -> Result<BTreeMap<String, f64>, QdpError> {
        self.validate(handle, params, psi);
        assert!(
            handle.tenant.engine.shift_rule_eligible(),
            "shift-rule gradient requires every parameter to occur exactly once \
             per execution path"
        );
        match self.try_submit(handle, psi.clone(), Request::ShiftGradient {
            params: params.clone(),
            obs: obs.clone(),
        }, opts)? {
            Output::Gradient(g) => Ok(g),
            Output::Value(_) => unreachable!("gradient requests produce map outputs"),
        }
    }

    /// Shot-sampled forward value on this client's own `seed` stream —
    /// bit-identical to [`GradientEngine::value_pure_shots`] with the same
    /// seed, no matter which clients it coalesced with.
    ///
    /// # Panics
    ///
    /// Same conditions as [`expectation`](Self::expectation), plus
    /// `shots > 0`.
    pub fn expectation_shots(
        &self,
        handle: &ProgramHandle,
        params: &Params,
        obs: &Observable,
        psi: &StateVector,
        shots: usize,
        seed: u64,
    ) -> f64 {
        self.expectation_shots_with(handle, params, obs, psi, shots, seed, &RequestOptions::default())
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`expectation_shots`](Self::expectation_shots) with
    /// per-request options.
    ///
    /// # Errors
    ///
    /// See [`expectation_with`](Self::expectation_with).
    ///
    /// # Panics
    ///
    /// Panics on malformed requests (incl. `shots == 0`), validated on
    /// the caller's thread.
    #[allow(clippy::too_many_arguments)]
    pub fn expectation_shots_with(
        &self,
        handle: &ProgramHandle,
        params: &Params,
        obs: &Observable,
        psi: &StateVector,
        shots: usize,
        seed: u64,
        opts: &RequestOptions,
    ) -> Result<f64, QdpError> {
        self.validate(handle, params, psi);
        assert!(shots > 0, "need at least one shot");
        match self.try_submit(handle, psi.clone(), Request::ValueShots {
            params: params.clone(),
            obs: obs.clone(),
            shots,
            seed,
        }, opts)? {
            Output::Value(v) => Ok(v),
            Output::Gradient(_) => unreachable!("value requests produce scalar outputs"),
        }
    }

    /// Shot-sampled gradient on this client's own `seed` stream —
    /// bit-identical to [`GradientEngine::gradient_pure_shots`] with the
    /// same seed, no matter which clients it coalesced with.
    ///
    /// # Panics
    ///
    /// Same conditions as [`expectation`](Self::expectation), plus
    /// `shots_per_param > 0`.
    pub fn gradient_shots(
        &self,
        handle: &ProgramHandle,
        params: &Params,
        obs: &Observable,
        psi: &StateVector,
        shots_per_param: usize,
        seed: u64,
    ) -> BTreeMap<String, f64> {
        self.gradient_shots_with(
            handle,
            params,
            obs,
            psi,
            shots_per_param,
            seed,
            &RequestOptions::default(),
        )
        .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`gradient_shots`](Self::gradient_shots) with per-request
    /// options.
    ///
    /// # Errors
    ///
    /// See [`expectation_with`](Self::expectation_with).
    ///
    /// # Panics
    ///
    /// Panics on malformed requests (incl. `shots_per_param == 0`),
    /// validated on the caller's thread.
    #[allow(clippy::too_many_arguments)]
    pub fn gradient_shots_with(
        &self,
        handle: &ProgramHandle,
        params: &Params,
        obs: &Observable,
        psi: &StateVector,
        shots_per_param: usize,
        seed: u64,
        opts: &RequestOptions,
    ) -> Result<BTreeMap<String, f64>, QdpError> {
        self.validate(handle, params, psi);
        assert!(shots_per_param > 0, "need at least one shot per parameter");
        match self.try_submit(handle, psi.clone(), Request::GradientShots {
            params: params.clone(),
            obs: obs.clone(),
            shots_per_param,
            seed,
        }, opts)? {
            Output::Gradient(g) => Ok(g),
            Output::Value(_) => unreachable!("gradient requests produce map outputs"),
        }
    }

    /// Fail fast on the caller's thread, before enqueueing: a request that
    /// would panic mid-sweep would fail its whole coalesced group.
    fn validate(&self, handle: &ProgramHandle, params: &Params, psi: &StateVector) {
        let engine = &handle.tenant.engine;
        assert_eq!(
            psi.num_qubits(),
            engine.register().len(),
            "input state width must match the program register"
        );
        for name in engine.parameters() {
            assert!(
                params.get(name).is_some(),
                "parameter '{name}' has no value"
            );
        }
    }

    /// Enqueues one request (applying the overload policy first — with
    /// [`OverloadPolicy::RejectNewest`] this never blocks for queue space)
    /// and blocks until its result or typed failure is published, serving
    /// as leader when elected (see the module docs).
    fn try_submit(
        &self,
        handle: &ProgramHandle,
        input: StateVector,
        request: Request,
        opts: &RequestOptions,
    ) -> Result<Output, QdpError> {
        let tenant = &*handle.tenant;
        let deadline = opts.deadline.map(|d| (Instant::now() + d, duration_ms(d)));
        let mut st = tenant.lock_state();

        // Backpressure: bound the queue before enqueueing.
        if let Some(max_pending) = self.config.max_pending {
            match self.config.overload {
                OverloadPolicy::RejectNewest => {
                    if st.pending.len() >= max_pending {
                        let pending = st.pending.len();
                        tenant.shed.fetch_add(1, Ordering::Relaxed);
                        return Err(QdpError::Overloaded { pending, max_pending });
                    }
                }
                OverloadPolicy::Block => {
                    while st.pending.len() >= max_pending {
                        st = match deadline {
                            None => tenant.wait(st),
                            Some((at, deadline_ms)) => {
                                let now = Instant::now();
                                if now >= at {
                                    tenant.expired.fetch_add(1, Ordering::Relaxed);
                                    return Err(QdpError::DeadlineExceeded { deadline_ms });
                                }
                                tenant.wait_timeout(st, at - now)
                            }
                        };
                    }
                }
            }
        }

        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.pending.push(Pending {
            ticket,
            input,
            request,
            admitted: false,
            attempts: 0,
            max_retries: opts.max_retries,
        });

        loop {
            if let Some(out) = st.results.remove(&ticket) {
                return out;
            }
            let gate_open = st.pending.len() >= self.config.min_batch
                || st.pending.iter().any(|p| p.admitted);
            if !st.leader && !st.pending.is_empty() && gate_open {
                st.leader = true;
                if st.pending.iter().all(|p| !p.admitted) {
                    // The gate just opened on the threshold: everything
                    // queued right now is owed service, however the head
                    // groups split it. The flags ride the requests, so a
                    // later deadline removal stays exact.
                    for p in &mut st.pending {
                        p.admitted = true;
                    }
                }
                // Drain the head group: oldest request plus every pending
                // request compatible with it, in submission order.
                let mut group: Vec<Pending> = Vec::new();
                let mut rest: Vec<Pending> = Vec::new();
                for p in st.pending.drain(..) {
                    if group.is_empty() || compatible(&group[0].request, &p.request) {
                        group.push(p);
                    } else {
                        rest.push(p);
                    }
                }
                st.pending = rest;
                drop(st);

                let mut guard = LeaderGuard {
                    tenant,
                    armed: true,
                };
                // Containment: the injected service checkpoint and any
                // panic that escapes the sweep (the typed `try_*` engine
                // twins already convert worker-panic exhaustion) become a
                // typed error to publish — never an unwind past the
                // leader, never a stranded follower.
                let outcome: Result<Vec<Output>, QdpError> =
                    catch_unwind(AssertUnwindSafe(|| {
                        qdp_sim::fault::service_checkpoint();
                        run_group(&tenant.engine, &group)
                    }))
                    .map_err(|payload| QdpError::ServicePanic {
                        message: crate::exec::panic_message(payload.as_ref()),
                    })
                    .and_then(|r| r);

                st = tenant.lock_state();
                match outcome {
                    Ok(outputs) => {
                        tenant.sweeps.fetch_add(1, Ordering::Relaxed);
                        tenant.served.fetch_add(group.len(), Ordering::Relaxed);
                        for (p, out) in group.iter().zip(outputs) {
                            st.results.insert(p.ticket, Ok(out));
                        }
                    }
                    Err(e) => {
                        tenant.leader_failures.fetch_add(1, Ordering::Relaxed);
                        // Bounded re-serve: members with retry budget left
                        // go back to the head of the queue still admitted
                        // (so a follow-up leader elects below the
                        // threshold); exhausted members fail typed.
                        let mut requeue: Vec<Pending> = Vec::new();
                        for mut p in group {
                            if p.attempts < p.max_retries {
                                p.attempts += 1;
                                p.admitted = true;
                                requeue.push(p);
                            } else {
                                st.results.insert(p.ticket, Err(e.clone()));
                            }
                        }
                        if !requeue.is_empty() {
                            requeue.append(&mut st.pending);
                            st.pending = requeue;
                        }
                    }
                }
                st.leader = false;
                guard.armed = false;
                tenant.ready.notify_all();
                continue;
            }
            st = match deadline {
                None => tenant.wait(st),
                Some((at, deadline_ms)) => {
                    let now = Instant::now();
                    if now >= at {
                        if let Some(pos) = st.pending.iter().position(|p| p.ticket == ticket) {
                            // Still queued: cancel exactly our own entry
                            // (its admitted flag leaves with it, keeping
                            // the carryover gate exact for followers).
                            st.pending.remove(pos);
                            tenant.expired.fetch_add(1, Ordering::Relaxed);
                            return Err(QdpError::DeadlineExceeded { deadline_ms });
                        }
                        // Drained into an active sweep: past cancellation.
                        // The leader owes us a publication (result, typed
                        // error, or a re-queue we can expire from), so
                        // wait for it — a torn batch would be worse than a
                        // late result.
                        tenant.wait(st)
                    } else {
                        tenant.wait_timeout(st, at - now)
                    }
                }
            };
        }
    }
}

/// Saturating milliseconds of a `Duration`, for the typed deadline error.
fn duration_ms(d: Duration) -> u64 {
    u64::try_from(d.as_millis()).unwrap_or(u64::MAX)
}

/// Runs one coalesced group as a single batched sweep and returns one
/// output per member, in group (submission) order. Worker-panic
/// exhaustion surfaces as a typed error via the engine's `try_*` twins.
fn run_group(engine: &GradientEngine, group: &[Pending]) -> Result<Vec<Output>, QdpError> {
    let rows: Vec<&StateVector> = group.iter().map(|p| &p.input).collect();
    Ok(match &group[0].request {
        Request::Value { params, obs } => {
            let batch = BatchedStates::gather(&rows);
            engine
                .try_value_pure_batch(params, obs, &batch)?
                .into_iter()
                .map(Output::Value)
                .collect()
        }
        Request::Gradient { params, obs } => {
            let batch = BatchedStates::gather(&rows);
            engine
                .try_gradient_pure_batch(params, obs, &batch)?
                .into_iter()
                .map(Output::Gradient)
                .collect()
        }
        Request::ShiftGradient { params, obs } => {
            let batch = BatchedStates::gather(&rows);
            engine
                .try_gradient_pure_shift_batch(params, obs, &batch)?
                .into_iter()
                .map(Output::Gradient)
                .collect()
        }
        Request::ValueShots {
            params, obs, shots, ..
        } => {
            let inputs: Vec<StateVector> = group.iter().map(|p| p.input.clone()).collect();
            let row_seeds: Vec<u64> = group.iter().map(|p| request_seed(&p.request)).collect();
            engine
                .try_value_pure_shots_batch(params, obs, &inputs, *shots, &row_seeds)?
                .into_iter()
                .map(Output::Value)
                .collect()
        }
        Request::GradientShots {
            params,
            obs,
            shots_per_param,
            ..
        } => {
            let inputs: Vec<StateVector> = group.iter().map(|p| p.input.clone()).collect();
            let row_seeds: Vec<u64> = group.iter().map(|p| request_seed(&p.request)).collect();
            engine
                .try_gradient_pure_shots_batch(params, obs, &inputs, *shots_per_param, &row_seeds)?
                .into_iter()
                .map(Output::Gradient)
                .collect()
        }
    })
}

/// The per-client seed of a shot request (exact requests carry none).
fn request_seed(request: &Request) -> u64 {
    match request {
        Request::ValueShots { seed, .. } | Request::GradientShots { seed, .. } => *seed,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdp_lang::parse_program;

    #[test]
    fn registration_deduplicates_structurally() {
        let service = GradientService::new();
        let p = parse_program("q1 *= RX(a); q1 *= RY(b)").unwrap();
        let same = parse_program("q1 *= RX(a); q1 *= RY(b)").unwrap();
        let other = parse_program("q1 *= RX(a); q1 *= RZ(b)").unwrap();
        let h1 = service.register(&p).unwrap();
        let h2 = service.register(&same).unwrap();
        let h3 = service.register(&other).unwrap();
        assert!(Arc::ptr_eq(&h1.tenant, &h2.tenant));
        assert!(!Arc::ptr_eq(&h1.tenant, &h3.tenant));
        assert_eq!(service.tenant_count(), 2);
    }

    #[test]
    fn solo_requests_match_direct_engine_calls() {
        let service = GradientService::new();
        let p = parse_program("q1 *= RX(a); q2 *= RY(b); q1, q2 *= RZZ(c)").unwrap();
        let handle = service.register(&p).unwrap();
        let engine = service.engine(&handle);
        let params = Params::from_pairs([("a", 0.3), ("b", -0.7), ("c", 1.9)]);
        let obs = Observable::pauli_z(2, 0);
        let psi = StateVector::zero_state(2);

        let v = service.expectation(&handle, &params, &obs, &psi);
        let direct_v = engine.value_pure_batch(
            &params,
            &obs,
            &BatchedStates::gather(&[&psi]),
        )[0];
        assert_eq!(v.to_bits(), direct_v.to_bits());

        let g = service.gradient(&handle, &params, &obs, &psi);
        let direct_g = engine.gradient_pure_batch(
            &params,
            &obs,
            &BatchedStates::gather(&[&psi]),
        );
        for (name, val) in &g {
            assert_eq!(val.to_bits(), direct_g[0][name].to_bits(), "∂/∂{name}");
        }

        let gs = service.gradient_shift(&handle, &params, &obs, &psi);
        for (name, val) in &g {
            assert!((gs[name] - val).abs() < 1e-10, "shift ∂/∂{name}");
        }
        assert_eq!(service.served(&handle), 3);
        assert_eq!(service.sweeps(&handle), 3);
    }

    #[test]
    #[should_panic(expected = "has no value")]
    fn missing_parameter_fails_fast_on_the_caller_thread() {
        let service = GradientService::new();
        let p = parse_program("q1 *= RX(a)").unwrap();
        let handle = service.register(&p).unwrap();
        let _ = service.expectation(
            &handle,
            &Params::new(),
            &Observable::pauli_z(1, 0),
            &StateVector::zero_state(1),
        );
    }

    #[test]
    #[should_panic(expected = "width must match")]
    fn mismatched_input_fails_fast_on_the_caller_thread() {
        let service = GradientService::new();
        let p = parse_program("q1 *= RX(a)").unwrap();
        let handle = service.register(&p).unwrap();
        let _ = service.expectation(
            &handle,
            &Params::from_pairs([("a", 0.2)]),
            &Observable::pauli_z(1, 0),
            &StateVector::zero_state(3),
        );
    }

    #[test]
    fn stale_flush_cannot_admit_a_later_lone_request() {
        let service = Arc::new(GradientService::with_admission(2));
        let p = parse_program("q1 *= RX(a)").unwrap();
        let handle = service.register(&p).unwrap();
        // Flush with nothing pending: must be a no-op, not a sticky flag.
        service.flush(&handle);

        let svc = Arc::clone(&service);
        let h = handle.clone();
        let worker = std::thread::spawn(move || {
            svc.expectation(
                &h,
                &Params::from_pairs([("a", 0.4)]),
                &Observable::pauli_z(1, 0),
                &StateVector::zero_state(1),
            )
        });
        // The lone request must stay queued below the threshold: the
        // pre-fix stale flush would have admitted it here.
        while service.pending_depth(&handle) < 1 {
            std::thread::sleep(Duration::from_millis(1));
        }
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(
            service.served(&handle),
            0,
            "stale flush admitted a lone request below min_batch"
        );
        assert_eq!(service.pending_depth(&handle), 1);
        // A flush that actually covers the queued request releases it.
        service.flush(&handle);
        let v = worker.join().unwrap();
        let direct = service.engine(&handle).value_pure_batch(
            &Params::from_pairs([("a", 0.4)]),
            &Observable::pauli_z(1, 0),
            &BatchedStates::gather(&[&StateVector::zero_state(1)]),
        )[0];
        assert_eq!(v.to_bits(), direct.to_bits());
    }

    #[test]
    fn poisoned_tenant_lock_drains_queue_typed_and_recovers() {
        let service = Arc::new(GradientService::with_admission(3));
        let p = parse_program("q1 *= RX(a)").unwrap();
        let handle = service.register(&p).unwrap();
        let params = Params::from_pairs([("a", 0.9)]);
        let obs = Observable::pauli_z(1, 0);
        let psi = StateVector::zero_state(1);

        // One queued request waiting below the threshold.
        let svc = Arc::clone(&service);
        let (h, pr, ob, ps) = (handle.clone(), params.clone(), obs.clone(), psi.clone());
        let waiter = std::thread::spawn(move || {
            svc.expectation_with(&h, &pr, &ob, &ps, &RequestOptions::default())
        });
        while service.pending_depth(&handle) < 1 {
            std::thread::sleep(Duration::from_millis(1));
        }

        // Poison the tenant lock from a thread that panics while holding
        // it — the failure mode the recovery path exists for.
        let tenant = Arc::clone(&handle.tenant);
        let poisoner = std::thread::spawn(move || {
            let _guard = tenant.state.lock().unwrap();
            panic!("injected poison");
        });
        assert!(poisoner.join().is_err());

        // The next acquisition recovers: the queued request fails typed
        // (flush locks the state, triggering recovery and the wakeup).
        service.flush(&handle);
        let err = waiter.join().unwrap().unwrap_err();
        assert!(
            matches!(err, QdpError::ServicePanic { .. }),
            "expected a typed poison-drain error, got {err:?}"
        );

        // And the tenant still serves fresh requests with correct bits.
        let svc = Arc::clone(&service);
        let (h, pr, ob, ps) = (handle.clone(), params.clone(), obs.clone(), psi.clone());
        let fresh = std::thread::spawn(move || {
            svc.expectation_with(&h, &pr, &ob, &ps, &RequestOptions::default())
        });
        while service.served(&handle) < 1 {
            service.flush(&handle);
            std::thread::sleep(Duration::from_millis(1));
        }
        let v = fresh.join().unwrap().unwrap();
        let direct = service.engine(&handle).value_pure_batch(
            &params,
            &obs,
            &BatchedStates::gather(&[&psi]),
        )[0];
        assert_eq!(v.to_bits(), direct.to_bits());
    }
}
