//! Lowered (pre-resolved) execution of compiled derivative programs.
//!
//! [`crate::Differentiated`] evaluates the same compiled multiset `{P′i}` at
//! every gradient step; interpreting the AST each time re-resolves variable
//! names against the register, re-allocates measurement operators, and
//! re-unfolds bounded loops — all parameter-independent work. This module
//! hoists it: each program is lowered **once** into a flat op list with
//!
//! * qubit indices resolved (no per-gate register lookups or `Vec` allocs),
//! * parameter names interned into **slots** (one valuation lookup per
//!   parameter per run instead of one per gate),
//! * measurement operators and the `q := |0⟩` Kraus pair pre-built,
//! * bounded `while` loops statically unfolded into nested cases.
//!
//! The executor mirrors `qdp_lang::denot::run_pure_branches` exactly —
//! branch order, pruning threshold, and per-gate arithmetic are identical,
//! so results agree bit-for-bit with the AST interpreter.
//!
//! # Batched evaluation
//!
//! Evaluating the same multiset against **many** input states (a training
//! dataset, parallel shot batches) repeats yet more parameter-independent
//! work: every gate matrix `Rσ(θ)` depends only on the valuation, not the
//! state. [`LoweredSet::expectation_batch`] therefore resolves each program
//! once per batch into a [`ResolvedProgram`] — slots substituted, every
//! gate matrix built exactly once — and then fans the `batch × programs`
//! tile grid out through `qdp_par::par_map`. Straight-line programs fuse
//! commuting rotations and stream the whole batch per operator; branching
//! programs convert to the [`qdp_sim::TrajProgram`] IR (the same lowered
//! form the shot engine samples) and run the **branch-weighted exact
//! sweep** [`qdp_sim::ShotEngine::expectation_sweep`] — all rows measured
//! at once, the block forked into outcome-homogeneous sub-batches carrying
//! branch weights, leaf read-outs summed per row. Tiles are reduced per
//! row in multiset order, so results are bit-for-bit independent of the
//! thread count; against the per-row oracle
//! ([`ResolvedProgram::expectation_pure`]) they agree to numerical
//! precision (≪ 1e-12 — fusion and leaf-summation order move rounding,
//! nothing else).

use qdp_lang::ast::{Gate, Params, Stmt};
use qdp_lang::Register;
use qdp_linalg::Matrix;
use qdp_sim::{BatchedStates, Measurement, Observable, ShotEngine, StateVector};

/// Branches below this squared norm are pruned (matches `denot` and the
/// branch-weighted batched executor).
const PRUNE: f64 = qdp_sim::BRANCH_PRUNE;

thread_local! {
    static LOWER_CALLS: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// How many times [`LoweredSet::lower`] has run **on this thread** — the
/// probe behind the compile-once contract. `qdp_ad::ProgramCache` interning
/// lowers on the calling thread (inside its `OnceLock` initializer), so a
/// test thread's delta across a region counts exactly the compilations that
/// region triggered, race-free under the parallel test harness.
pub fn lower_invocations() -> usize {
    LOWER_CALLS.with(std::cell::Cell::get)
}

/// One lowered operation.
#[derive(Clone, Debug)]
enum Op {
    /// `abort`: drop the branch.
    Abort,
    /// A unitary application with pre-resolved targets and parameter slot.
    Gate {
        gate: Gate,
        /// Index into the run's slot values, or `None` for constant angles.
        slot: Option<usize>,
        /// Additive angle offset (the gadget's `θ + π` shifts).
        offset: f64,
        targets: Vec<usize>,
        /// The matrix, pre-built at lowering time, for gates whose angle
        /// carries no parameter (`slot == None`): constant rotations, the
        /// Hadamards and controlled shifts of the differentiation gadget,
        /// every Clifford. Parameter-dependent matrices stay `None` and are
        /// built per valuation by [`LoweredProgram::resolve`] — so a warm
        /// skeleton re-patches only the shifted slots.
        fixed: Option<Matrix>,
    },
    /// `q := |0⟩` with the Kraus pair pre-built.
    Init {
        k0: Matrix,
        k1: Matrix,
        target: usize,
    },
    /// A measurement case over pre-built operators.
    Case {
        meas: Measurement,
        arms: Vec<LoweredProgram>,
    },
}

/// A lowered normal program: a flat sequence of [`Op`]s.
#[derive(Clone, Debug, Default)]
pub struct LoweredProgram {
    ops: Vec<Op>,
}

/// A compiled multiset lowered against one register, with a shared
/// parameter-slot table.
#[derive(Clone, Debug, Default)]
pub struct LoweredSet {
    programs: Vec<LoweredProgram>,
    /// Interned parameter names; slot `i` of a run valuation holds the value
    /// of `param_names[i]`.
    param_names: Vec<String>,
    /// Size of the register the set was lowered against — input states
    /// must match it.
    n_qubits: usize,
}

impl LoweredSet {
    /// Lowers every program of a compiled multiset.
    ///
    /// # Panics
    ///
    /// Panics when a program is additive or uses a variable outside `reg`.
    pub fn lower(compiled: &[Stmt], reg: &Register) -> Self {
        LOWER_CALLS.with(|c| c.set(c.get() + 1));
        let mut set = LoweredSet {
            n_qubits: reg.len(),
            ..LoweredSet::default()
        };
        set.programs = compiled
            .iter()
            .map(|p| {
                let mut prog = LoweredProgram::default();
                set_lower(p, reg, &mut set.param_names, &mut prog.ops);
                prog
            })
            .collect();
        set
    }

    /// The interned parameter names, in slot order.
    pub fn param_names(&self) -> &[String] {
        &self.param_names
    }

    /// Resolves a valuation into slot values.
    ///
    /// # Panics
    ///
    /// Panics when a used parameter has no value (same message as
    /// `Angle::eval`).
    pub fn slot_values(&self, params: &Params) -> Vec<f64> {
        self.param_names
            .iter()
            .map(|name| {
                params
                    .get(name)
                    .unwrap_or_else(|| panic!("parameter '{name}' has no value"))
            })
            .collect()
    }

    /// The lowered programs, for per-program parallel evaluation.
    pub fn programs(&self) -> &[LoweredProgram] {
        &self.programs
    }

    /// Evaluates the whole multiset against **every** row of a batch in one
    /// pass: returns `out[r] = Σᵢ ⟨ψ·|O|ψ·⟩` over the branches of program
    /// `i` run on input row `r`.
    ///
    /// Parameter slots are resolved **once** — each gate matrix is built a
    /// single time and shared by all rows and branches — and the work is
    /// split across `qdp_par` workers one program at a time: straight-line
    /// programs stream every fused operator over the whole batch block in
    /// one kernel call each, and branching programs run the
    /// branch-weighted exact sweep over the whole block (see
    /// [`ResolvedProgram::expectation_batch`]). Per-row sums run in
    /// multiset order over the order-preserving `par_map` output, so the
    /// result is bit-for-bit deterministic under any thread count; it
    /// agrees with the per-sample serial loop to numerical precision
    /// (≪ 1e-12 — fusion and branch-weighted leaf summation reorder
    /// rounding, nothing else).
    ///
    /// # Panics
    ///
    /// Panics when the batch register does not match the register the set
    /// was lowered against, or when `values` is shorter than the slot table.
    pub fn expectation_batch(
        &self,
        values: &[f64],
        states: &BatchedStates,
        obs: &Observable,
    ) -> Vec<f64> {
        let rows = states.len();
        if rows == 0 || self.programs.is_empty() {
            // An empty multiset denotes the zero map: every row reads 0.
            return vec![0.0; rows];
        }
        assert_eq!(
            states.num_qubits(),
            self.n_qubits,
            "batch register size must match the register the set was lowered against"
        );
        let resolved: Vec<ResolvedProgram<'_>> =
            self.programs.iter().map(|p| p.resolve(values)).collect();
        // Pure per program, so a panicked worker tile retries
        // bit-identically (twice) before the failure is surfaced.
        let per_program: Vec<Vec<f64>> =
            qdp_par::try_par_map_retry(&resolved, |p| p.expectation_batch(states, obs), 2)
                .unwrap_or_else(|e| panic!("{}", qdp_sim::QdpError::from(e)));
        (0..rows)
            .map(|r| per_program.iter().map(|per_row| per_row[r]).sum())
            .collect()
    }
}

fn intern(names: &mut Vec<String>, name: &str) -> usize {
    match names.iter().position(|n| n == name) {
        Some(i) => i,
        None => {
            names.push(name.to_string());
            names.len() - 1
        }
    }
}

fn set_lower(stmt: &Stmt, reg: &Register, names: &mut Vec<String>, out: &mut Vec<Op>) {
    match stmt {
        Stmt::Skip { .. } => {}
        Stmt::Abort { .. } => out.push(Op::Abort),
        Stmt::Init { q } => out.push(Op::Init {
            k0: Matrix::from_real_rows(&[&[1.0, 0.0], &[0.0, 0.0]]),
            k1: Matrix::from_real_rows(&[&[0.0, 1.0], &[0.0, 0.0]]),
            target: reg.indices_of(std::slice::from_ref(q))[0],
        }),
        Stmt::Unitary { gate, qs } => {
            let (slot, offset) = match gate.angle() {
                Some(angle) => (
                    angle.param.as_deref().map(|p| intern(names, p)),
                    angle.offset,
                ),
                None => (None, 0.0),
            };
            // Parameter-independent matrices are built here, once per
            // lowering, and shared by every subsequent resolve.
            let fixed = match slot {
                None => Some(gate.matrix_at(offset)),
                Some(_) => None,
            };
            out.push(Op::Gate {
                gate: gate.clone(),
                slot,
                offset,
                targets: reg.indices_of(qs),
                fixed,
            });
        }
        Stmt::Seq(a, b) => {
            set_lower(a, reg, names, out);
            set_lower(b, reg, names, out);
        }
        Stmt::Case { qs, arms } => {
            let meas = Measurement::computational(reg.indices_of(qs));
            let arms = arms
                .iter()
                .map(|arm| {
                    let mut prog = LoweredProgram::default();
                    set_lower(arm, reg, names, &mut prog.ops);
                    prog
                })
                .collect();
            out.push(Op::Case { meas, arms });
        }
        Stmt::While { .. } => {
            // Bounded loops terminate statically: each unfold decrements the
            // bound, so full unrolling at lowering time is finite.
            set_lower(&stmt.unfold_while_once(), reg, names, out);
        }
        Stmt::Sum(..) => panic!("lowering is defined on normal programs; compile first"),
    }
}

impl LoweredProgram {
    /// Total lowered operations, counting nested measurement arms — the
    /// cost weight `qdp_ad::ProgramCache` charges for keeping this
    /// program's share of a skeleton resident.
    pub fn op_weight(&self) -> usize {
        fn count(ops: &[Op]) -> usize {
            ops.iter()
                .map(|op| match op {
                    Op::Case { arms, .. } => {
                        1 + arms.iter().map(|a| count(&a.ops)).sum::<usize>()
                    }
                    _ => 1,
                })
                .sum()
        }
        count(&self.ops)
    }

    /// `Σ_branches ⟨ψb|O|ψb⟩` — the expectation of the program's output.
    ///
    /// Substitutes the valuation and delegates to the **single** per-row
    /// branch enumerator, [`ResolvedProgram::expectation_pure`] (the
    /// resolved matrices carry the identical bits `Gate::matrix_at`
    /// produces, so this equals the pre-resolution executor bit for bit —
    /// there is no second enumeration copy to drift from it).
    pub fn expectation_pure(&self, values: &[f64], psi: &StateVector, obs: &Observable) -> f64 {
        self.resolve(values).expectation_pure(psi, obs)
    }

    /// Substitutes the slot values into the op list: every gate matrix is
    /// built exactly once, so a [`ResolvedProgram`] can be replayed against
    /// arbitrarily many input states with zero trigonometry and zero matrix
    /// allocation per run.
    ///
    /// # Panics
    ///
    /// Panics when `values` is shorter than the program's slot table.
    pub fn resolve(&self, values: &[f64]) -> ResolvedProgram<'_> {
        ResolvedProgram {
            ops: self
                .ops
                .iter()
                .map(|op| match op {
                    Op::Abort => ResolvedOp::Abort,
                    Op::Gate {
                        gate,
                        slot,
                        offset,
                        targets,
                        fixed,
                    } => match (slot, fixed) {
                        // Constant-angle gates borrow the matrix built at
                        // lowering time — zero trigonometry, zero allocation
                        // per valuation.
                        (None, Some(matrix)) => ResolvedOp::FixedGate { matrix, targets },
                        _ => {
                            let theta = slot.map_or(0.0, |s| values[s]) + offset;
                            ResolvedOp::Gate {
                                matrix: gate.matrix_at(theta),
                                targets,
                            }
                        }
                    },
                    Op::Init { k0, k1, target } => ResolvedOp::Init {
                        k0,
                        k1,
                        target: *target,
                    },
                    Op::Case { meas, arms } => ResolvedOp::Case {
                        meas,
                        arms: arms.iter().map(|arm| arm.resolve(values)).collect(),
                    },
                })
                .collect(),
        }
    }
}

/// The location and recipe of one parameter-dependent matrix inside a
/// [`TrajSkeleton`] template.
#[derive(Clone, Debug)]
struct SlotPatch {
    /// Path into the template: op index, then alternating arm index / op
    /// index through nested `Case`s (the addressing scheme of
    /// [`qdp_sim::TrajProgram::gate_matrix_mut`]).
    path: Vec<usize>,
    gate: Gate,
    slot: usize,
    offset: f64,
}

/// A pre-built [`qdp_sim::TrajProgram`] with **patchable parameter slots**
/// — the per-valuation artifact of the compile-once pipeline.
///
/// Building a trajectory program from scratch per valuation re-clones every
/// constant matrix, re-resolves the read-out, and re-walks the op tree;
/// only the parameterized matrices actually change. A skeleton does that
/// walk once: the template holds every constant matrix, measurement, and
/// arm structure final, with parameterized gates holding a placeholder
/// matrix (their value at slot 0), and [`at`](Self::at) clones the template
/// and overwrites **only** the recorded slot positions via
/// `TrajProgram::gate_matrix_mut`.
///
/// `skeleton.at(&values)` is bit-identical to
/// `program.resolve(&values).to_trajectory()`: both routes build every
/// matrix through the same `Gate::matrix_at` at the same angle, and the op
/// order is the same tree walk.
#[derive(Clone, Debug)]
pub struct TrajSkeleton {
    template: qdp_sim::TrajProgram,
    patches: Vec<SlotPatch>,
}

impl TrajSkeleton {
    /// Substitutes a valuation: clones the template and re-patches only the
    /// parameterized matrices.
    ///
    /// # Panics
    ///
    /// Panics when `values` is shorter than the program's slot table.
    pub fn at(&self, values: &[f64]) -> qdp_sim::TrajProgram {
        let mut out = self.template.clone();
        for p in &self.patches {
            *out.gate_matrix_mut(&p.path) = p.gate.matrix_at(values[p.slot] + p.offset);
        }
        out
    }

    /// How many parameterized slots the template re-patches per valuation.
    pub fn patch_count(&self) -> usize {
        self.patches.len()
    }
}

impl LoweredProgram {
    /// Builds the patchable trajectory skeleton of this program (see
    /// [`TrajSkeleton`]). Placeholder matrices for parameterized gates are
    /// built at angle `offset` and are always overwritten by
    /// [`TrajSkeleton::at`].
    pub fn to_skeleton(&self) -> TrajSkeleton {
        let mut patches = Vec::new();
        let mut prefix = Vec::new();
        let template = skeleton_template(&self.ops, &mut prefix, &mut patches);
        TrajSkeleton { template, patches }
    }
}

fn skeleton_template(
    ops: &[Op],
    prefix: &mut Vec<usize>,
    patches: &mut Vec<SlotPatch>,
) -> qdp_sim::TrajProgram {
    let mut out = qdp_sim::TrajProgram::new();
    // Ops map 1:1 onto trajectory ops (`Skip` vanished at lowering time),
    // so the template op index is the lowered op index.
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Abort => out.push_abort(),
            Op::Gate {
                gate,
                slot,
                offset,
                targets,
                fixed,
            } => {
                if let Some(s) = slot {
                    prefix.push(i);
                    patches.push(SlotPatch {
                        path: prefix.clone(),
                        gate: gate.clone(),
                        slot: *s,
                        offset: *offset,
                    });
                    prefix.pop();
                }
                let placeholder = match fixed {
                    Some(m) => m.clone(),
                    None => gate.matrix_at(*offset),
                };
                out.push_gate(placeholder, targets.clone());
            }
            Op::Init { target, .. } => out.push_init(*target),
            Op::Case { meas, arms } => {
                let arm_templates = arms
                    .iter()
                    .enumerate()
                    .map(|(a, arm)| {
                        prefix.push(i);
                        prefix.push(a);
                        let t = skeleton_template(&arm.ops, prefix, patches);
                        prefix.pop();
                        prefix.pop();
                        t
                    })
                    .collect();
                out.push_case(meas.clone(), arm_templates);
            }
        }
    }
    out
}

/// One op of a [`ResolvedProgram`]: like [`Op`] but with the gate matrix
/// already built for a fixed valuation.
#[derive(Clone, Debug)]
enum ResolvedOp<'p> {
    /// `abort`: drop the branch.
    Abort,
    /// A parameterized unitary with its matrix built for this valuation.
    Gate {
        matrix: Matrix,
        targets: &'p [usize],
    },
    /// A constant unitary borrowing the matrix hoisted at lowering time.
    FixedGate {
        matrix: &'p Matrix,
        targets: &'p [usize],
    },
    /// `q := |0⟩`, borrowing the pre-built Kraus pair.
    Init {
        k0: &'p Matrix,
        k1: &'p Matrix,
        target: usize,
    },
    /// A measurement case over pre-built operators and resolved arms.
    Case {
        meas: &'p Measurement,
        arms: Vec<ResolvedProgram<'p>>,
    },
}

/// A [`LoweredProgram`] with a valuation substituted in (see
/// [`LoweredProgram::resolve`]) — the replay artifact of batched
/// evaluation. The executor mirrors [`LoweredProgram::run_from`] op for op:
/// gate matrices carry the identical bits `Gate::matrix_at` produces, so
/// replayed results equal the unresolved executor's bit-for-bit.
#[derive(Clone, Debug)]
pub struct ResolvedProgram<'p> {
    ops: Vec<ResolvedOp<'p>>,
}

impl ResolvedProgram<'_> {
    /// Runs the program from op `start`, appending surviving unnormalised
    /// branches to `out` in the same depth-first order as
    /// `denot::run_pure_branches`.
    ///
    /// This is the **retained per-row branch-enumeration oracle**: the
    /// production batched path runs the branch-weighted sweep on the
    /// trajectory IR instead, and the randomized differential suite
    /// (`crates/core/tests/branch_weighted_differential.rs`) pins the two
    /// against each other at 1e-12.
    fn run_from(&self, start: usize, mut psi: StateVector, out: &mut Vec<StateVector>) {
        for (i, op) in self.ops.iter().enumerate().skip(start) {
            match op {
                ResolvedOp::Abort => return,
                ResolvedOp::Gate { matrix, targets } => {
                    psi.apply_gate(matrix, targets);
                }
                ResolvedOp::FixedGate { matrix, targets } => {
                    psi.apply_gate(matrix, targets);
                }
                ResolvedOp::Init { k0, k1, target } => {
                    let b1 = psi.with_gate(k1, &[*target]);
                    psi.apply_gate(k0, &[*target]);
                    if psi.norm_sqr() > PRUNE {
                        self.run_from(i + 1, psi, out);
                    }
                    if b1.norm_sqr() > PRUNE {
                        self.run_from(i + 1, b1, out);
                    }
                    return;
                }
                ResolvedOp::Case { meas, arms } => {
                    for b in meas.branches_pure(&psi) {
                        if b.probability > PRUNE {
                            let mut mids = Vec::new();
                            arms[b.outcome].run_from(0, b.state, &mut mids);
                            for mid in mids {
                                self.run_from(i + 1, mid, out);
                            }
                        }
                    }
                    return;
                }
            }
        }
        out.push(psi);
    }

    /// `Σ_branches ⟨ψb|O|ψb⟩` — the expectation of the program's output on
    /// one input state, by per-row branch enumeration (the retained
    /// oracle; see [`run_from`](Self::run_from)).
    pub fn expectation_pure(&self, psi: &StateVector, obs: &Observable) -> f64 {
        let mut branches = Vec::new();
        self.run_from(0, psi.clone(), &mut branches);
        branches.iter().map(|b| obs.expectation_pure(b)).sum()
    }

    /// Converts into an owned [`qdp_sim::TrajProgram`] — the **single
    /// lowered branching IR** both execution modes run: sampled trajectory
    /// sweeps ([`ShotEngine::run`]/[`ShotEngine::sample_sweep`]) and the
    /// branch-weighted exact sweep
    /// ([`ShotEngine::expectation_sweep`], the production path of
    /// [`expectation_batch`](Self::expectation_batch) for branching
    /// programs). Every gate matrix and measurement is carried over as-is.
    ///
    /// The only representational change is `q := |0⟩`: the per-row oracle
    /// enumerates both Kraus branches, while the trajectory form measures
    /// the qubit and flips on outcome 1 (`TrajProgram::push_init`) —
    /// exactly what `qdp_ad::estimator::sample_trajectory` does, so engine
    /// trajectories driven by the same streams match it bit for bit (and
    /// the exact sweep's branches agree with the Kraus pair to numerical
    /// precision).
    pub fn to_trajectory(&self) -> qdp_sim::TrajProgram {
        let mut out = qdp_sim::TrajProgram::new();
        for op in &self.ops {
            match op {
                ResolvedOp::Abort => out.push_abort(),
                ResolvedOp::Gate { matrix, targets } => {
                    out.push_gate(matrix.clone(), targets.to_vec());
                }
                ResolvedOp::FixedGate { matrix, targets } => {
                    out.push_gate((*matrix).clone(), targets.to_vec());
                }
                ResolvedOp::Init { target, .. } => out.push_init(*target),
                ResolvedOp::Case { meas, arms } => out.push_case(
                    (*meas).clone(),
                    arms.iter().map(ResolvedProgram::to_trajectory).collect(),
                ),
            }
        }
        out
    }

    /// The expectation of the program's output on **every** row of a batch,
    /// in row order.
    ///
    /// Straight-line programs (gates only — every compiled derivative of a
    /// control-free circuit, and the hot path of training) have exactly one
    /// branch per row, so the whole batch is evolved together, with two
    /// amortisations on top of the shared gate matrices:
    ///
    /// * **fusion** — single-qubit gates on *distinct* qubits commute, so
    ///   each qubit accumulates the 2×2 product of its pending rotations
    ///   and is flushed only when a multi-qubit gate touches it (or at the
    ///   end). A 25-gate derivative program collapses to a handful of
    ///   kernel sweeps;
    /// * **streaming** — each surviving operator goes through **one**
    ///   [`BatchedStates::apply_gate`] call that evolves all rows at once.
    ///
    /// Programs with `Init`/`Case`/`Abort` branch points — the
    /// measurement-controlled programs the code transformation produces —
    /// convert to the trajectory IR ([`to_trajectory`](Self::to_trajectory))
    /// and run the **branch-weighted exact sweep**
    /// ([`ShotEngine::expectation_sweep`]): all rows measured at once, the
    /// block forked into outcome-homogeneous weighted sub-batches that
    /// keep streaming batched (fused) kernel calls, leaf read-outs summed
    /// per row. Both paths share one IR with sampled execution; neither
    /// decays to per-row evaluation.
    ///
    /// Fusion and leaf-summation order reorder rounding, so batched
    /// results agree with the per-row oracle
    /// ([`expectation_pure`](Self::expectation_pure)) to numerical
    /// precision (≪ 1e-12) rather than bit-for-bit; the batched path
    /// itself is fully deterministic — identical bits for any thread
    /// count and any batch decomposition.
    pub fn expectation_batch(&self, states: &BatchedStates, obs: &Observable) -> Vec<f64> {
        let straight_line = self
            .ops
            .iter()
            .all(|op| matches!(op, ResolvedOp::Gate { .. } | ResolvedOp::FixedGate { .. }));
        if !straight_line {
            return ShotEngine::new(self.to_trajectory()).expectation_sweep(states.clone(), obs);
        }
        let n = states.num_qubits();
        let mut work = states.clone();
        // Per-qubit pending product of not-yet-applied single-qubit gates;
        // `pending[q] = g_k · … · g_1` in program order.
        let mut pending: Vec<Option<Matrix>> = vec![None; n];
        for op in &self.ops {
            let (matrix, targets): (&Matrix, &[usize]) = match op {
                ResolvedOp::Gate { matrix, targets } => (matrix, targets),
                ResolvedOp::FixedGate { matrix, targets } => (matrix, targets),
                _ => unreachable!("straight-line programs contain only gates"),
            };
            if let [t] = targets[..] {
                pending[t] = Some(match pending[t].take() {
                    None => matrix.clone(),
                    Some(prev) => matrix.mul(&prev),
                });
            } else {
                // A multi-qubit gate orders against the pending rotations
                // of its own targets: flush those (ascending qubit order,
                // deterministically), then apply the gate itself. Keeping
                // the flushes as separate 1q passes preserves the gate's
                // own kernel fast path (the gadget's controlled rotations
                // are block-diagonal; absorbing the flushed products into
                // the 4×4 would densify it and cost more than it saves).
                let mut ts: Vec<usize> = targets.to_vec();
                ts.sort_unstable();
                for t in ts {
                    if let Some(m) = pending[t].take() {
                        work.apply_gate(&m, &[t]);
                    }
                }
                work.apply_gate(matrix, targets);
            }
        }
        for (t, slot) in pending.iter_mut().enumerate() {
            if let Some(m) = slot.take() {
                work.apply_gate(&m, &[t]);
            }
        }
        work.expectations(obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdp_lang::{denot, parse_program};

    fn check_agreement(src: &str, values: &[(&str, f64)]) {
        let p = parse_program(src).unwrap();
        let reg = Register::from_program(&p);
        let params = Params::from_pairs(values.iter().map(|&(k, v)| (k, v)));
        let set = LoweredSet::lower(std::slice::from_ref(&p), &reg);
        let slots = set.slot_values(&params);
        let psi = StateVector::zero_state(reg.len());
        let obs = Observable::pauli_z(reg.len(), 0);

        let lowered = set.programs()[0].expectation_pure(&slots, &psi, &obs);
        let interpreted = denot::expectation_pure(&p, &reg, &params, &psi, &obs);
        assert!(
            (lowered - interpreted).abs() < 1e-14,
            "{src}: lowered {lowered} vs interpreted {interpreted}"
        );
    }

    #[test]
    fn straight_line_program_agrees_with_interpreter() {
        check_agreement("q1 *= RX(a); q1 *= RY(b); q1 *= RZ(a + pi/2); q1 *= H", &[
            ("a", 0.4),
            ("b", -1.2),
        ]);
    }

    #[test]
    fn branching_programs_agree_with_interpreter() {
        check_agreement(
            "q1 *= RX(a); case M[q1] = 0 -> q2 *= RY(b), 1 -> q2 := |0>; q1, q2 *= RZZ(a) end",
            &[("a", 0.8), ("b", 0.3)],
        );
        check_agreement(
            "q1 *= RY(a); while[2] M[q1] = 1 do q1 *= RY(b) done",
            &[("a", 1.9), ("b", 0.7)],
        );
        check_agreement("q1 *= H; abort[q1]", &[]);
    }

    #[test]
    fn resolved_executor_matches_unresolved_bitwise() {
        let p = parse_program(
            "q1 *= RX(a); case M[q1] = 0 -> q2 *= RY(b), 1 -> q2 := |0> end; q1, q2 *= RZZ(a)",
        )
        .unwrap();
        let reg = Register::from_program(&p);
        let set = LoweredSet::lower(std::slice::from_ref(&p), &reg);
        let values = set.slot_values(&Params::from_pairs([("a", 0.9), ("b", -0.4)]));
        let psi = StateVector::basis_state(reg.len(), 1);
        let obs = Observable::pauli_z(reg.len(), 1);
        let unresolved = set.programs()[0].expectation_pure(&values, &psi, &obs);
        let resolved = set.programs()[0].resolve(&values).expectation_pure(&psi, &obs);
        assert_eq!(unresolved.to_bits(), resolved.to_bits());
    }

    #[test]
    fn branching_expectation_batch_matches_per_row_oracle() {
        // Branching programs (the `while` forces branch points) run the
        // branch-weighted sweep; the retained per-row oracle pins it at
        // 1e-12 (leaf-summation order and the measure+flip form of `init`
        // move rounding; the randomized suite in
        // `branch_weighted_differential.rs` covers the full space).
        let p = parse_program(
            "q1 *= RY(a); while[2] M[q1] = 1 do q1 *= RY(b) done; q2 *= RX(a)",
        )
        .unwrap();
        let reg = Register::from_program(&p);
        let set = LoweredSet::lower(std::slice::from_ref(&p), &reg);
        let values = set.slot_values(&Params::from_pairs([("a", 1.2), ("b", 0.5)]));
        let obs = Observable::pauli_z(reg.len(), 0);
        let rows: Vec<StateVector> = (0..4).map(|k| StateVector::basis_state(reg.len(), k)).collect();
        let batch = qdp_sim::BatchedStates::from_states(&rows);
        let batched = set.expectation_batch(&values, &batch, &obs);
        for (r, psi) in rows.iter().enumerate() {
            let serial: f64 = set
                .programs()
                .iter()
                .map(|prog| prog.expectation_pure(&values, psi, &obs))
                .sum();
            assert!(
                (batched[r] - serial).abs() < 1e-12,
                "row {r}: batched {} vs per-row {serial}",
                batched[r]
            );
        }
    }

    #[test]
    fn branching_expectation_batch_is_invariant_under_batch_composition() {
        // Per-row results of the branch-weighted sweep carry identical
        // bits whether a row runs alone or inside any batch.
        let p = parse_program(
            "q1 *= RX(a); case M[q1] = 0 -> q2 *= RY(b), 1 -> q2 := |0> end; q1, q2 *= RZZ(a)",
        )
        .unwrap();
        let reg = Register::from_program(&p);
        let set = LoweredSet::lower(std::slice::from_ref(&p), &reg);
        let values = set.slot_values(&Params::from_pairs([("a", 0.9), ("b", -0.4)]));
        let obs = Observable::pauli_z(reg.len(), 1);
        let rows: Vec<StateVector> = (0..4).map(|k| StateVector::basis_state(reg.len(), k)).collect();
        let batch = qdp_sim::BatchedStates::from_states(&rows);
        let together = set.expectation_batch(&values, &batch, &obs);
        for (r, psi) in rows.iter().enumerate() {
            let alone = set.expectation_batch(
                &values,
                &qdp_sim::BatchedStates::from_states(std::slice::from_ref(psi)),
                &obs,
            )[0];
            assert_eq!(together[r].to_bits(), alone.to_bits(), "row {r}");
        }
    }

    #[test]
    #[should_panic(expected = "lowered against")]
    fn mismatched_batch_register_panics() {
        let p = parse_program("q1 *= RX(a)").unwrap();
        let reg = Register::from_program(&p);
        let set = LoweredSet::lower(std::slice::from_ref(&p), &reg);
        let values = set.slot_values(&Params::from_pairs([("a", 0.1)]));
        // 3-qubit rows against a 1-qubit lowering must be rejected loudly.
        let batch = qdp_sim::BatchedStates::zero(2, 3);
        let _ = set.expectation_batch(&values, &batch, &Observable::pauli_z(3, 0));
    }

    #[test]
    fn expectation_batch_of_empty_batch_and_empty_set() {
        let p = parse_program("q1 *= RX(a)").unwrap();
        let reg = Register::from_program(&p);
        let set = LoweredSet::lower(std::slice::from_ref(&p), &reg);
        let values = set.slot_values(&Params::from_pairs([("a", 0.1)]));
        let obs = Observable::pauli_z(1, 0);
        let empty = qdp_sim::BatchedStates::from_states(&[]);
        assert!(set.expectation_batch(&values, &empty, &obs).is_empty());

        let none = LoweredSet::default();
        let batch = qdp_sim::BatchedStates::zero(3, 1);
        assert_eq!(none.expectation_batch(&[], &batch, &obs), vec![0.0; 3]);
    }

    #[test]
    fn slots_are_shared_and_deduplicated() {
        let p = parse_program("q1 *= RX(a); q1 *= RY(a); q1 *= RZ(b)").unwrap();
        let reg = Register::from_program(&p);
        let set = LoweredSet::lower(std::slice::from_ref(&p), &reg);
        assert_eq!(set.param_names.len(), 2);
    }

    #[test]
    #[should_panic(expected = "has no value")]
    fn missing_parameter_panics_like_the_interpreter() {
        let p = parse_program("q1 *= RX(a)").unwrap();
        let reg = Register::from_program(&p);
        let set = LoweredSet::lower(std::slice::from_ref(&p), &reg);
        let _ = set.slot_values(&Params::new());
    }
}
