//! # qdp-sim
//!
//! Quantum simulation substrate for the reproduction of *On the Principles of
//! Differentiable Quantum Programming Languages* (PLDI 2020).
//!
//! The paper's evaluation runs entirely on classical simulation; this crate is
//! that simulator, built from scratch on [`qdp_linalg`]:
//!
//! * [`StateVector`] — pure states `|ψ⟩` with targeted gate application,
//! * [`BatchedStates`] — contiguous `batch × 2ⁿ` blocks of pure states for
//!   evaluating one compiled program against many inputs at once,
//! * [`DensityMatrix`] — partial density operators `ρ ∈ D(H)`, the carrier of
//!   the paper's denotational semantics (Fig. 1b),
//! * [`KrausChannel`] — admissible superoperators `E = Σk Ek ∘ Ek†` and their
//!   Schrödinger–Heisenberg duals `E*` (Section 2.2),
//! * [`Measurement`] — quantum measurements `{Mm}` with branch enumeration
//!   (Section 2.3),
//! * [`Observable`] — Hermitian read-outs `O` with `tr(Oρ)` expectations and
//!   shot-based sampling (Section 5),
//! * [`ShotEngine`] — batched execution of the [`TrajProgram`] branching
//!   IR in both modes: sampled trajectories of whole shot blocks with
//!   branch-grouped batching (Section 7), and exact **branch-weighted**
//!   sweeps that fork a block into every measurement outcome at once.
//!
//! Qubit `k` of an `n`-qubit system corresponds to bit `n-1-k` of a basis
//! index, i.e. qubit 0 is the most significant bit. This matches the
//! Kronecker-product order of [`qdp_linalg::PauliString`].
//!
//! # Examples
//!
//! ```
//! use qdp_linalg::Matrix;
//! use qdp_sim::{DensityMatrix, Observable, StateVector};
//!
//! // Prepare |+⟩ on one qubit and measure Z: expectation 0.
//! let mut psi = StateVector::zero_state(1);
//! psi.apply_gate(&Matrix::hadamard(), &[0]);
//! let rho = DensityMatrix::from_pure(&psi);
//! let z = Observable::pauli_z(1, 0);
//! assert!(z.expectation(&rho).abs() < 1e-12);
//! ```

// Production code routes failures through typed errors or messageful
// panics; bare unwrap/expect is confined to tests.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod batch;
pub mod channel;
#[cfg(test)]
pub(crate) mod test_support;
pub mod density;
pub mod error;
pub mod fault;
pub mod kernels;
pub(crate) mod lanes;
pub mod measurement;
pub mod observable;
pub mod sampling;
pub mod shots;
pub mod simd;
pub mod state;

pub use batch::BatchedStates;
pub use channel::KrausChannel;
pub use density::DensityMatrix;
pub use error::{HealthConfig, HealthPolicy, QdpError};
pub use measurement::{Measurement, MeasurementBranch};
pub use observable::{Observable, ObservableError};
pub use sampling::{
    chernoff_shots, collapse_with_draw, derive_seed, try_chernoff_shots, ProjectiveObservable,
    ShotSampler,
};
pub use shots::{ShotEngine, TrajProgram, TrajectoryRow, BRANCH_PRUNE, SHOT_TILE};
pub use state::StateVector;
