//! Batched shot-noise execution — trajectory sweeps over [`BatchedStates`].
//!
//! Section 7 of the paper spends a Chernoff budget of `O(m²/δ²)` sampled
//! trajectories per derivative estimate. Running those trajectories one at
//! a time repeats all parameter-independent work per shot: every gate
//! matrix is rebuilt, every kernel dispatch covers a single state, the
//! read-out is re-eigendecomposed. [`ShotEngine`] instead executes a whole
//! *block* of shots — one [`BatchedStates`] row per shot — so that
//!
//! * straight-line gate segments become **single batched kernel calls**
//!   streaming the operator over every row at once,
//! * measurements (`case` arms, `q := |0⟩` resets) are taken for **all**
//!   rows in one pass and the rows are regrouped into outcome-homogeneous
//!   sub-batches (*branch-grouped batching*) that keep enjoying batched
//!   kernels, instead of decaying to per-row evaluation, and
//! * the observable read-out is sampled per row against a
//!   [`ProjectiveObservable`] hoisted once per sweep.
//!
//! # Determinism contract
//!
//! Every row owns an independent [`ShotSampler`] stream. Measurement
//! collapse goes through the same [`collapse_with_draw`] the serial
//! sampler uses, gate streaming goes through [`BatchedStates::apply_gate`]
//! (bit-for-bit equal to per-row application), and regrouping preserves
//! row order within each outcome — so a batched sweep produces **bitwise**
//! the same outcomes and collapsed states as running each row alone with
//! the same stream, no matter how rows are grouped or how many threads run
//! the kernels. `crates/core/tests/shot_engine_differential.rs` is the
//! oracle.

use crate::batch::BatchedStates;
use crate::measurement::Measurement;
use crate::observable::Observable;
use crate::sampling::{collapse_with_draw, ProjectiveObservable, ShotSampler};
use crate::state::StateVector;
use qdp_linalg::Matrix;

/// Rows per parallel shot tile of [`ShotEngine::estimate_expectation`].
///
/// Fixed (not derived from the thread count) so the tile partition — and
/// with it every drawn value and every rounding order — is identical under
/// any `qdp_par` configuration.
pub const SHOT_TILE: usize = 256;

/// One operation of a sampled-trajectory program.
#[derive(Clone, Debug)]
enum TrajOp {
    /// An operator application with the matrix already built.
    Gate { matrix: Matrix, targets: Vec<usize> },
    /// `q := |0⟩`, sampled: measure `q` and flip on outcome 1.
    Init {
        meas: Measurement,
        flip: Matrix,
        target: usize,
    },
    /// A measurement branching over per-outcome arm programs.
    Case {
        meas: Measurement,
        arms: Vec<TrajProgram>,
    },
    /// Drop the trajectory.
    Abort,
}

/// A trajectory program: the sampled-execution form of a normal program,
/// with every matrix and measurement pre-built for a fixed valuation.
///
/// Built either directly through the `push_*` methods or from a lowered
/// derivative program (`qdp_ad::ResolvedProgram::to_trajectory`). The
/// sampled semantics mirror `qdp_ad::estimator::sample_trajectory` op for
/// op: `Init` measures the target and applies `X` on outcome 1, `Case`
/// draws one outcome from the Born rule and continues into that arm.
#[derive(Clone, Debug, Default)]
pub struct TrajProgram {
    ops: Vec<TrajOp>,
}

impl TrajProgram {
    /// An empty (skip) program.
    pub fn new() -> Self {
        TrajProgram::default()
    }

    /// Appends an operator application.
    pub fn push_gate(&mut self, matrix: Matrix, targets: Vec<usize>) {
        self.ops.push(TrajOp::Gate { matrix, targets });
    }

    /// Appends a `q := |0⟩` reset of qubit `target` (measure + conditional
    /// flip — the sampled form of the reset channel).
    pub fn push_init(&mut self, target: usize) {
        self.ops.push(TrajOp::Init {
            meas: Measurement::computational(vec![target]),
            flip: Matrix::pauli_x(),
            target,
        });
    }

    /// Appends a measurement case: `meas` is sampled once per trajectory
    /// and execution continues into `arms[outcome]`.
    ///
    /// # Panics
    ///
    /// Panics when the arm count does not match the outcome count.
    pub fn push_case(&mut self, meas: Measurement, arms: Vec<TrajProgram>) {
        assert_eq!(
            meas.num_outcomes(),
            arms.len(),
            "one arm per measurement outcome"
        );
        self.ops.push(TrajOp::Case { meas, arms });
    }

    /// Appends an abort: trajectories reaching it are dropped.
    pub fn push_abort(&mut self) {
        self.ops.push(TrajOp::Abort);
    }

    /// Number of top-level operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program is a bare `skip`.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// The result of one sampled trajectory (one batch row).
#[derive(Clone, Debug)]
pub struct TrajectoryRow {
    /// The final collapsed state, or `None` when the trajectory aborted.
    pub state: Option<StateVector>,
    /// Every measurement outcome drawn along the trajectory, in program
    /// order (`Init` resets included).
    pub outcomes: Vec<usize>,
}

/// A row in flight: its original batch index and outcome history.
#[derive(Clone, Debug)]
struct RowCtx {
    orig: usize,
    outcomes: Vec<usize>,
}

/// An outcome-homogeneous group of rows evolving together.
struct Group {
    states: BatchedStates,
    rows: Vec<RowCtx>,
    /// Fused-mode state: per qubit, the pending product of
    /// not-yet-applied single-qubit gates (`pending[q] = g_k · … · g_1` in
    /// program order). Always empty in bitwise (unfused) mode.
    pending: Vec<Option<Matrix>>,
}

impl Group {
    /// Applies the pending 1q products of `targets` (ascending qubit
    /// order, deterministically), as one batched kernel call each.
    fn flush(&mut self, targets: &[usize]) {
        let mut ts: Vec<usize> = targets.to_vec();
        ts.sort_unstable();
        for t in ts {
            if let Some(m) = self.pending[t].take() {
                self.states.apply_gate(&m, &[t]);
            }
        }
    }

    /// Applies every pending product (ascending qubit order).
    fn flush_all(&mut self) {
        for t in 0..self.pending.len() {
            if let Some(m) = self.pending[t].take() {
                self.states.apply_gate(&m, &[t]);
            }
        }
    }
}

/// The batched shot-noise executor for one [`TrajProgram`].
///
/// # Examples
///
/// ```
/// use qdp_linalg::Matrix;
/// use qdp_sim::{BatchedStates, ShotEngine, ShotSampler, TrajProgram};
///
/// // H then a computational measurement: every shot collapses to a basis
/// // state recorded in its outcome history.
/// let mut p = TrajProgram::new();
/// p.push_gate(Matrix::hadamard(), vec![0]);
/// p.push_case(
///     qdp_sim::Measurement::computational(vec![0]),
///     vec![TrajProgram::new(), TrajProgram::new()],
/// );
/// let engine = ShotEngine::new(p);
/// let mut samplers: Vec<ShotSampler> =
///     (0..8).map(|s| ShotSampler::derived(1, s)).collect();
/// let rows = engine.run(BatchedStates::zero(8, 1), &mut samplers);
/// for row in &rows {
///     assert_eq!(row.outcomes.len(), 1);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct ShotEngine {
    program: TrajProgram,
}

impl ShotEngine {
    /// Wraps a trajectory program for batched execution.
    pub fn new(program: TrajProgram) -> Self {
        ShotEngine { program }
    }

    /// The wrapped program.
    pub fn program(&self) -> &TrajProgram {
        &self.program
    }

    /// Runs one sampled trajectory per row of `states`, row `r` drawing
    /// from `samplers[r]`. Returns per-row results in input row order.
    ///
    /// This is the **bitwise-reference executor**: gates are applied one
    /// by one in program order, so results equal running each row as its
    /// own batch of one and (via the shared collapse primitive) the serial
    /// per-shot loop, bit for bit — see the module docs for the contract.
    ///
    /// # Panics
    ///
    /// Panics when `samplers.len() != states.len()`.
    pub fn run(&self, states: BatchedStates, samplers: &mut [ShotSampler]) -> Vec<TrajectoryRow> {
        let total_rows = states.len();
        let (finished, aborted) = self.sweep(states, samplers, false);
        let mut out: Vec<Option<TrajectoryRow>> = (0..total_rows).map(|_| None).collect();
        for group in finished {
            let Group { states, rows, .. } = group;
            for (r, ctx) in rows.into_iter().enumerate() {
                out[ctx.orig] = Some(TrajectoryRow {
                    state: Some(states.row_state(r)),
                    outcomes: ctx.outcomes,
                });
            }
        }
        for ctx in aborted {
            out[ctx.orig] = Some(TrajectoryRow {
                state: None,
                outcomes: ctx.outcomes,
            });
        }
        out.into_iter()
            .map(|row| row.expect("every row either finishes or aborts"))
            .collect()
    }

    /// Runs one trajectory per row and samples `readout` once on each
    /// surviving final state (0.0 for aborted rows, which draw nothing —
    /// matching the serial estimator). Returns per-row samples in input
    /// row order.
    ///
    /// The per-projector expectations of each final group are computed
    /// batch-wise with the observable's index layout hoisted once, so the
    /// read-out costs one batched pass per projector instead of one
    /// eigendecomposition per shot. On top of that, straight-line gate
    /// segments **fuse** commuting single-qubit gates per qubit into one
    /// 2×2 product before streaming (exactly like the exact batched
    /// evaluator's straight-line fast path), flushed at measurements,
    /// multi-qubit gates, and the read-out. Fusion reorders rounding, so
    /// samples agree with [`run`](Self::run)-plus-serial-sampling
    /// statistically (states differ by ≪ 1e-12) rather than bit for bit;
    /// the sweep itself stays fully deterministic — identical bits for any
    /// thread count, any batch decomposition, and any row grouping.
    ///
    /// # Panics
    ///
    /// Panics when `samplers.len() != states.len()`.
    pub fn sample_sweep(
        &self,
        states: BatchedStates,
        samplers: &mut [ShotSampler],
        readout: &ProjectiveObservable,
    ) -> Vec<f64> {
        let total_rows = states.len();
        let (finished, aborted) = self.sweep(states, samplers, true);
        let mut out = vec![0.0; total_rows];
        for group in finished {
            // One batched expectation pass per projector, shared by every
            // row of the group.
            let per_projector: Vec<Vec<f64>> = readout
                .pairs()
                .iter()
                .map(|(_, projector)| projector.expectation_batch(&group.states))
                .collect();
            for (r, ctx) in group.rows.iter().enumerate() {
                // The shared selection loop of `sample_with_draw`, with
                // the expectations read from the batched passes.
                let total: f64 = group.states.row(r).iter().map(|z| z.norm_sqr()).sum();
                if total <= 1e-300 {
                    continue;
                }
                let u = samplers[ctx.orig].next_uniform();
                out[ctx.orig] = readout.select_with(u, total, |k| per_projector[k][r]);
            }
        }
        drop(aborted); // aborted rows stay 0.0 and draw nothing
        out
    }

    /// Tiled parallel shot estimate of `⟨obs⟩` on the program's output from
    /// `shots` trajectories starting at `psi`: the mean of one read-out
    /// sample per shot (0 for aborted trajectories).
    ///
    /// Shots are split into fixed [`SHOT_TILE`]-row tiles fanned out across
    /// `qdp_par`; shot `s` draws from the derived stream
    /// `ShotSampler::derived(seed, s)` wherever it runs, and tile sums are
    /// reduced in tile order — the result is **bit-for-bit identical under
    /// any thread count**.
    ///
    /// # Panics
    ///
    /// Panics when `shots` is zero.
    pub fn estimate_expectation(
        &self,
        psi: &StateVector,
        obs: &Observable,
        shots: usize,
        seed: u64,
    ) -> f64 {
        self.estimate_expectation_prepared(psi, &ProjectiveObservable::new(obs), shots, seed)
    }

    /// [`estimate_expectation`](Self::estimate_expectation) with the
    /// read-out decomposition already built — what repeated-evaluation
    /// callers (a training epoch sweeping many inputs) use so the
    /// eigendecomposition happens once, not once per input.
    ///
    /// # Panics
    ///
    /// Panics when `shots` is zero.
    pub fn estimate_expectation_prepared(
        &self,
        psi: &StateVector,
        readout: &ProjectiveObservable,
        shots: usize,
        seed: u64,
    ) -> f64 {
        assert!(shots > 0, "need at least one shot");
        let tiles: Vec<(usize, usize)> = (0..shots)
            .step_by(SHOT_TILE)
            .map(|start| (start, SHOT_TILE.min(shots - start)))
            .collect();
        let sums = qdp_par::par_map(&tiles, |&(start, rows)| {
            let batch = BatchedStates::repeat(psi, rows);
            let mut samplers: Vec<ShotSampler> = (0..rows)
                .map(|r| ShotSampler::derived(seed, (start + r) as u64))
                .collect();
            self.sample_sweep(batch, &mut samplers, readout)
                .into_iter()
                .sum::<f64>()
        });
        sums.into_iter().sum::<f64>() / shots as f64
    }

    /// Executes the program over the whole batch, branch-grouping on every
    /// measurement; returns the surviving outcome-homogeneous groups and
    /// the aborted rows. With `fuse`, straight-line segments accumulate
    /// per-qubit 1q products instead of applying each gate immediately.
    fn sweep(
        &self,
        states: BatchedStates,
        samplers: &mut [ShotSampler],
        fuse: bool,
    ) -> (Vec<Group>, Vec<RowCtx>) {
        assert_eq!(
            states.len(),
            samplers.len(),
            "one sampler stream per batch row"
        );
        let group = Group {
            rows: (0..states.len())
                .map(|orig| RowCtx {
                    orig,
                    outcomes: Vec::new(),
                })
                .collect(),
            pending: vec![None; states.num_qubits()],
            states,
        };
        let mut finished = Vec::new();
        let mut aborted = Vec::new();
        if group.rows.is_empty() {
            return (finished, aborted);
        }
        exec(
            &self.program.ops,
            Vec::new(),
            group,
            samplers,
            fuse,
            &mut finished,
            &mut aborted,
        );
        (finished, aborted)
    }
}

/// Executes `ops` on `group`, with `cont` the stack of suspended op slices
/// to resume (innermost last) once `ops` is exhausted — the continuation a
/// `case` arm returns into.
fn exec<'p>(
    ops: &'p [TrajOp],
    cont: Vec<&'p [TrajOp]>,
    mut group: Group,
    samplers: &mut [ShotSampler],
    fuse: bool,
    finished: &mut Vec<Group>,
    aborted: &mut Vec<RowCtx>,
) {
    for (i, op) in ops.iter().enumerate() {
        match op {
            TrajOp::Gate { matrix, targets } => {
                if !fuse {
                    // Bitwise mode: one batched kernel call streams the
                    // operator over every row, in program order.
                    group.states.apply_gate(matrix, targets);
                } else if let [t] = targets[..] {
                    group.pending[t] = Some(match group.pending[t].take() {
                        None => matrix.clone(),
                        Some(prev) => matrix.mul(&prev),
                    });
                } else {
                    // A multi-qubit gate orders against the pending
                    // rotations of its own targets only.
                    group.flush(targets);
                    group.states.apply_gate(matrix, targets);
                }
            }
            TrajOp::Abort => {
                // Dropped rows never need their pending products.
                aborted.append(&mut group.rows);
                return;
            }
            TrajOp::Init { meas, flip, target } => {
                group.flush_all();
                let rest = &ops[i + 1..];
                for (outcome, mut sub) in measure_group(group, meas, samplers) {
                    if outcome == 1 {
                        sub.states.apply_gate(flip, &[*target]);
                    }
                    exec(rest, cont.clone(), sub, samplers, fuse, finished, aborted);
                }
                return;
            }
            TrajOp::Case { meas, arms } => {
                group.flush_all();
                let rest = &ops[i + 1..];
                for (outcome, sub) in measure_group(group, meas, samplers) {
                    let mut arm_cont = cont.clone();
                    arm_cont.push(rest);
                    exec(&arms[outcome].ops, arm_cont, sub, samplers, fuse, finished, aborted);
                }
                return;
            }
        }
    }
    let mut cont = cont;
    match cont.pop() {
        // Pending products flow into the continuation: there is no
        // measurement between an arm's trailing gates and the join.
        Some(next) => exec(next, cont, group, samplers, fuse, finished, aborted),
        None => {
            group.flush_all();
            finished.push(group);
        }
    }
}

/// Measures every row of `group` at once (each row drawing from its own
/// stream, collapsing through the serial-identical [`collapse_with_draw`])
/// and regroups the rows into outcome-homogeneous sub-batches.
///
/// Sub-batches are returned in ascending outcome order; rows keep their
/// relative order inside each sub-batch, so the regrouping is a pure
/// deterministic function of the drawn outcomes.
fn measure_group(
    group: Group,
    meas: &Measurement,
    samplers: &mut [ShotSampler],
) -> Vec<(usize, Group)> {
    debug_assert!(
        group.pending.iter().all(Option::is_none),
        "pending products must be flushed before measuring"
    );
    let Group { states, rows, pending } = group;
    let mut buckets: Vec<(Vec<RowCtx>, Vec<StateVector>)> = (0..meas.num_outcomes())
        .map(|_| (Vec::new(), Vec::new()))
        .collect();
    for (r, mut ctx) in rows.into_iter().enumerate() {
        let psi = states.row_state(r);
        let u = samplers[ctx.orig].next_uniform();
        let (outcome, collapsed) = collapse_with_draw(u, &psi, meas);
        ctx.outcomes.push(outcome);
        buckets[outcome].0.push(ctx);
        buckets[outcome].1.push(collapsed);
    }
    buckets
        .into_iter()
        .enumerate()
        .filter(|(_, (rows, _))| !rows.is_empty())
        .map(|(outcome, (rows, collapsed))| {
            (
                outcome,
                Group {
                    states: BatchedStates::from_states(&collapsed),
                    rows,
                    pending: pending.clone(),
                },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observable::Observable;

    fn rotation_y(theta: f64) -> Matrix {
        Matrix::rotation_from_involution(&Matrix::pauli_y(), theta)
    }

    #[test]
    fn straight_line_batch_matches_per_row_gates() {
        let mut p = TrajProgram::new();
        p.push_gate(Matrix::hadamard(), vec![0]);
        p.push_gate(Matrix::cnot(), vec![0, 1]);
        p.push_gate(rotation_y(0.7), vec![1]);
        let engine = ShotEngine::new(p);
        let inputs: Vec<StateVector> = (0..5).map(|k| StateVector::basis_state(2, k % 4)).collect();
        let mut samplers: Vec<ShotSampler> = (0..5).map(|s| ShotSampler::derived(3, s)).collect();
        let rows = engine.run(BatchedStates::from_states(&inputs), &mut samplers);
        for (input, row) in inputs.iter().zip(&rows) {
            let mut expected = input.clone();
            expected.apply_gate(&Matrix::hadamard(), &[0]);
            expected.apply_gate(&Matrix::cnot(), &[0, 1]);
            expected.apply_gate(&rotation_y(0.7), &[1]);
            assert!(row.outcomes.is_empty());
            assert_eq!(
                row.state.as_ref().unwrap().amplitudes(),
                expected.amplitudes()
            );
        }
    }

    #[test]
    fn init_resets_every_row_to_zero() {
        let mut p = TrajProgram::new();
        p.push_gate(Matrix::hadamard(), vec![0]);
        p.push_init(0);
        let engine = ShotEngine::new(p);
        let mut samplers: Vec<ShotSampler> = (0..32).map(|s| ShotSampler::derived(7, s)).collect();
        let rows = engine.run(BatchedStates::zero(32, 1), &mut samplers);
        let mut seen = [false, false];
        for row in &rows {
            assert_eq!(row.outcomes.len(), 1);
            seen[row.outcomes[0]] = true;
            let state = row.state.as_ref().unwrap();
            assert_eq!(state.classical_bit(0), Some(false));
        }
        // Both measurement outcomes occur across 32 shots of |+⟩.
        assert!(seen[0] && seen[1], "outcomes {seen:?}");
    }

    #[test]
    fn abort_rows_are_reported_as_none() {
        let mut killed = TrajProgram::new();
        killed.push_abort();
        let mut p = TrajProgram::new();
        p.push_gate(Matrix::hadamard(), vec![0]);
        p.push_case(
            Measurement::computational(vec![0]),
            vec![TrajProgram::new(), killed],
        );
        let engine = ShotEngine::new(p);
        let mut samplers: Vec<ShotSampler> = (0..64).map(|s| ShotSampler::derived(11, s)).collect();
        let rows = engine.run(BatchedStates::zero(64, 1), &mut samplers);
        let mut aborted = 0usize;
        for row in &rows {
            match row.outcomes[0] {
                0 => assert!(row.state.is_some()),
                _ => {
                    assert!(row.state.is_none());
                    aborted += 1;
                }
            }
        }
        assert!(aborted > 0, "no trajectory took the aborting arm");
    }

    #[test]
    fn sample_sweep_matches_run_plus_serial_sampling() {
        // One engine call with a read-out must equal running trajectories
        // first and sampling each surviving state with the continued
        // per-row stream. (Every straight-line segment here is a single
        // gate, so sweep fusion is trivially the identity and the
        // agreement is bitwise.)
        let mut arm1 = TrajProgram::new();
        arm1.push_gate(rotation_y(1.1), vec![1]);
        let mut p = TrajProgram::new();
        p.push_gate(Matrix::hadamard(), vec![0]);
        p.push_case(
            Measurement::computational(vec![0]),
            vec![TrajProgram::new(), arm1],
        );
        let engine = ShotEngine::new(p);
        let obs = Observable::pauli_z(2, 1);
        let readout = ProjectiveObservable::new(&obs);
        let shots = 40;

        let batch = BatchedStates::zero(shots, 2);
        let mut samplers: Vec<ShotSampler> =
            (0..shots).map(|s| ShotSampler::derived(5, s as u64)).collect();
        let samples = engine.sample_sweep(batch, &mut samplers, &readout);

        let batch = BatchedStates::zero(shots, 2);
        let mut samplers: Vec<ShotSampler> =
            (0..shots).map(|s| ShotSampler::derived(5, s as u64)).collect();
        let rows = engine.run(batch, &mut samplers);
        for (row, (sampler, sample)) in rows.iter().zip(samplers.iter_mut().zip(&samples)) {
            let expected = match &row.state {
                None => 0.0,
                Some(psi) => sampler.sample_observable(psi, &obs),
            };
            assert_eq!(expected.to_bits(), sample.to_bits());
        }
    }

    #[test]
    fn estimate_expectation_converges_and_is_deterministic() {
        let mut p = TrajProgram::new();
        p.push_gate(rotation_y(0.8), vec![0]);
        let engine = ShotEngine::new(p);
        let obs = Observable::pauli_z(1, 0);
        let psi = StateVector::zero_state(1);
        let est = engine.estimate_expectation(&psi, &obs, 40_000, 2024);
        assert!((est - 0.8f64.cos()).abs() < 0.02, "estimate {est}");
        let again = engine.estimate_expectation(&psi, &obs, 40_000, 2024);
        assert_eq!(est.to_bits(), again.to_bits());
    }

    #[test]
    fn empty_batch_is_harmless() {
        let engine = ShotEngine::new(TrajProgram::new());
        let rows = engine.run(BatchedStates::from_states(&[]), &mut []);
        assert!(rows.is_empty());
    }

    #[test]
    #[should_panic(expected = "one sampler stream per batch row")]
    fn mismatched_sampler_count_panics() {
        let engine = ShotEngine::new(TrajProgram::new());
        let mut samplers = vec![ShotSampler::seeded(1)];
        let _ = engine.run(BatchedStates::zero(2, 1), &mut samplers);
    }
}
