//! Resource analysis (Section 7): occurrence counts, compiled-program
//! counts, the Proposition 7.2 bound, and the Chernoff-style shot estimate.
//!
//! Run with: `cargo run --release --example resource_analysis`

use qdpl::ad::estimator::estimate_derivative;
use qdpl::ad::{analyze, differentiate};
use qdpl::lang::ast::Params;
use qdpl::lang::parse_program;
use qdpl::sim::{Observable, ShotSampler, StateVector};
use qdpl::vqc::families::{paper_instances, THETA};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Per-parameter reports on a small program.
    let program = parse_program(
        "q1 *= RX(a); q2 *= RY(b); q1, q2 *= RXX(a); \
         case M[q1] = 0 -> q2 *= RZ(a), 1 -> abort[q1, q2] end",
    )?;
    println!("per-parameter resource report (Prop. 7.2: |#∂| ≤ OC):");
    for r in analyze(&program)? {
        println!(
            "  ∂/∂{:<3} OC = {}, |#∂| = {}, bound {}",
            r.param,
            r.occurrence_count,
            r.derivative_programs,
            if r.satisfies_bound() { "holds" } else { "VIOLATED" }
        );
    }

    // The same sweep over the benchmark families.
    println!("\nbenchmark instances (differentiated parameter 'theta'):");
    for config in paper_instances() {
        let p = config.build();
        let oc = qdpl::ad::occurrence_count(&p, THETA);
        let m = differentiate(&p, THETA)?.compiled().len();
        println!("  {:<12} OC = {oc:>3}, |#∂| = {m:>3}", config.name);
        assert!(m <= oc, "Proposition 7.2 violated");
    }

    // Shot-based estimation on a 2-occurrence program.
    let program = parse_program("q1 *= RX(t); q1 *= RY(t)")?;
    let diff = differentiate(&program, "t")?;
    let params = Params::from_pairs([("t", 0.6)]);
    let obs = Observable::pauli_z(1, 0);
    let psi = StateVector::zero_state(1);
    let exact = diff.derivative_pure(&params, &obs, &psi);
    println!("\nshot-based estimation (m = {}):", diff.compiled().len());
    println!("  exact derivative: {exact:.6}");
    for shots in [500usize, 5_000, 50_000] {
        let mut sampler = ShotSampler::seeded(99);
        let est = estimate_derivative(&diff, &params, &obs, &psi, shots, &mut sampler);
        println!("  {shots:>6} shots → {est:+.6} (|err| {:.6})", (est - exact).abs());
    }
    Ok(())
}
