//! Differential tests of the batched [`qdp_sim::ShotEngine`] against the
//! serial trajectory sampler `qdp_ad::estimator::sample_trajectory` — the
//! oracle of branch-grouped batching.
//!
//! Randomized *branching* programs (computational `case`s, `q := |0⟩`
//! resets, bounded `while` loops, aborts; up to 8 qubits) are run on random
//! input batches with a **shared per-row seed stream**: batch row `r` and
//! the serial run of row `r` both draw from `ShotSampler::derived(seed, r)`.
//! For every row the two paths must produce
//!
//! * the identical measurement-outcome history, and
//! * the **bitwise** identical collapsed final state (or both abort),
//!
//! across batch sizes 1, 2, 16, and 33 (the off-by-one-past-a-power-of-two
//! size exercises the batch's power-of-two block decomposition *and* the
//! regrouped sub-batches' decompositions).

use qdp_ad::estimator::sample_trajectory_traced;
use qdp_ad::LoweredSet;
use qdp_lang::ast::{Angle, Gate, Params, Stmt, Var};
use qdp_lang::Register;
use qdp_linalg::{C64, Pauli};
use qdp_sim::{BatchedStates, ShotEngine, ShotSampler, StateVector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BATCH_SIZES: [usize; 4] = [1, 2, 16, 33];

fn var(i: usize) -> Var {
    Var::new(format!("q{}", i + 1))
}

/// A random normal program over `n` qubits mixing straight-line rotations
/// with the constructs that force measurement-time branching: `case`s,
/// resets, bounded `while` loops, and (rarely) an aborting arm.
fn random_branching_program(rng: &mut StdRng, n: usize, params: &[String], len: usize) -> Stmt {
    let axes = [Pauli::X, Pauli::Y, Pauli::Z];
    let mut stmts: Vec<Stmt> = Vec::with_capacity(len + n);
    // Touch every qubit once so the register spans all n qubits.
    for q in 0..n {
        stmts.push(Stmt::unitary(Gate::H, [var(q)]));
    }
    for _ in 0..len {
        let param = params[rng.gen_range(0..params.len())].clone();
        let axis = axes[rng.gen_range(0..3usize)];
        let q = rng.gen_range(0..n);
        match rng.gen_range(0..10usize) {
            0 | 1 => stmts.push(Stmt::rot(axis, param, var(q))),
            2 => stmts.push(Stmt::unitary(
                Gate::Rot {
                    axis,
                    angle: Angle {
                        param: Some(param),
                        offset: std::f64::consts::PI / 2.0,
                    },
                },
                [var(q)],
            )),
            3 if n >= 2 => {
                let mut q2 = rng.gen_range(0..n);
                while q2 == q {
                    q2 = rng.gen_range(0..n);
                }
                stmts.push(Stmt::unitary(
                    Gate::Coupling {
                        axis,
                        angle: Angle::param(param),
                    },
                    [var(q), var(q2)],
                ));
            }
            3 => stmts.push(Stmt::unitary(Gate::H, [var(q)])),
            4 | 5 => stmts.push(Stmt::init(var(q))),
            6 | 7 => {
                let other = params[rng.gen_range(0..params.len())].clone();
                let arm1 = if rng.gen_range(0..8usize) == 0 {
                    // A rare aborting arm: aborted rows must be reported
                    // identically by both paths.
                    Stmt::seq(vec![
                        Stmt::rot(axes[rng.gen_range(0..3usize)], other, var(q)),
                        Stmt::Abort { qs: vec![var(q)] },
                    ])
                } else {
                    Stmt::rot(axes[rng.gen_range(0..3usize)], other, var(q))
                };
                stmts.push(Stmt::Case {
                    qs: vec![var(q)],
                    arms: vec![Stmt::rot(axis, param, var((q + 1) % n)), arm1],
                });
            }
            _ => stmts.push(Stmt::while_bounded(
                var(q),
                rng.gen_range(1..3usize) as u32,
                Stmt::rot(axis, param, var(q)),
            )),
        }
    }
    Stmt::seq(stmts)
}

/// A random normalised pure state on `n` qubits.
fn random_state(rng: &mut StdRng, n: usize) -> StateVector {
    let dim = 1usize << n;
    let mut amps: Vec<C64> = (0..dim)
        .map(|_| C64::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
        .collect();
    let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
    for a in &mut amps {
        *a *= C64::real(1.0 / norm);
    }
    StateVector::from_amplitudes(n, amps)
}

/// Runs one program through both paths on shared per-row streams and
/// asserts bitwise agreement.
fn check_program(program: &Stmt, params: &Params, rng: &mut StdRng, seed: u64) {
    let reg = Register::from_program(program);
    let set = LoweredSet::lower(std::slice::from_ref(program), &reg);
    let values = set.slot_values(params);
    let engine = ShotEngine::new(set.programs()[0].resolve(&values).to_trajectory());

    for &batch_size in &BATCH_SIZES {
        let inputs: Vec<StateVector> = (0..batch_size)
            .map(|_| random_state(rng, reg.len()))
            .collect();

        let mut samplers: Vec<ShotSampler> = (0..batch_size)
            .map(|r| ShotSampler::derived(seed, r as u64))
            .collect();
        let batched = engine.run(BatchedStates::from_states(&inputs), &mut samplers);

        for (r, input) in inputs.iter().enumerate() {
            let mut serial_sampler = ShotSampler::derived(seed, r as u64);
            let mut serial_outcomes = Vec::new();
            let serial = sample_trajectory_traced(
                program,
                &reg,
                params,
                input,
                &mut serial_sampler,
                &mut serial_outcomes,
            );
            assert_eq!(
                serial_outcomes, batched[r].outcomes,
                "outcome history diverged on row {r} of batch {batch_size}"
            );
            match (&serial, &batched[r].state) {
                (None, None) => {}
                (Some(s), Some(b)) => {
                    let sa = s.amplitudes();
                    let ba = b.amplitudes();
                    assert_eq!(sa.len(), ba.len());
                    for (k, (x, y)) in sa.iter().zip(ba).enumerate() {
                        assert_eq!(
                            x.re.to_bits(),
                            y.re.to_bits(),
                            "row {r} amp {k} re: serial {x:?} vs batched {y:?}"
                        );
                        assert_eq!(
                            x.im.to_bits(),
                            y.im.to_bits(),
                            "row {r} amp {k} im: serial {x:?} vs batched {y:?}"
                        );
                    }
                }
                (s, b) => panic!(
                    "abort status diverged on row {r}: serial {:?} vs batched {:?}",
                    s.is_some(),
                    b.is_some()
                ),
            }
        }
    }
}

#[test]
fn batched_trajectories_match_serial_sampler_bitwise() {
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    for trial in 0..14 {
        let n = 1 + (trial % 5);
        let params: Vec<String> = (0..3).map(|i| format!("p{i}")).collect();
        let program = random_branching_program(&mut rng, n, &params, 4 + trial % 8);
        let values = Params::from_pairs(
            params
                .iter()
                .map(|p| (p.clone(), rng.gen::<f64>() * std::f64::consts::TAU)),
        );
        check_program(&program, &values, &mut rng, 0xBEEF + trial as u64);
    }
}

#[test]
fn batched_trajectories_match_serial_sampler_on_wide_registers() {
    // The n = 8 ceiling of the differential contract, with deeper
    // branching (every while unroll measures again).
    let mut rng = StdRng::seed_from_u64(0x8888);
    for trial in 0..3 {
        let params: Vec<String> = (0..4).map(|i| format!("w{i}")).collect();
        let program = random_branching_program(&mut rng, 8, &params, 10);
        let values = Params::from_pairs(
            params
                .iter()
                .map(|p| (p.clone(), rng.gen::<f64>() * std::f64::consts::TAU)),
        );
        check_program(&program, &values, &mut rng, 0xACE + trial as u64);
    }
}

#[test]
fn batched_trajectories_of_derivative_multisets_match_serial() {
    // The estimator's actual workload: the *compiled derivative* programs
    // of a branching source program, each run through both paths on the
    // ancilla-extended input.
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let src = "q1 *= RX(t); case M[q1] = 0 -> q2 *= RY(t), 1 -> q2 := |0> end; \
               while[2] M[q2] = 1 do q2 *= RY(t) done";
    let program = qdp_lang::parse_program(src).unwrap();
    let diff = qdp_ad::differentiate(&program, "t").unwrap();
    let params = Params::from_pairs([("t", 1.234)]);
    let skeleton = diff.skeleton();
    let values = skeleton.lowered().slot_values(&params);
    for (i, (compiled, lowered)) in diff
        .compiled()
        .iter()
        .zip(skeleton.lowered().programs())
        .enumerate()
    {
        let engine = ShotEngine::new(lowered.resolve(&values).to_trajectory());
        let ext_reg = diff.ext_register();
        for &batch_size in &[2usize, 9] {
            let inputs: Vec<StateVector> = (0..batch_size)
                .map(|_| StateVector::zero_state(1).tensor(&random_state(&mut rng, ext_reg.len() - 1)))
                .collect();
            let seed = 0x1000 + i as u64;
            let mut samplers: Vec<ShotSampler> = (0..batch_size)
                .map(|r| ShotSampler::derived(seed, r as u64))
                .collect();
            let batched = engine.run(BatchedStates::from_states(&inputs), &mut samplers);
            for (r, input) in inputs.iter().enumerate() {
                let mut sampler = ShotSampler::derived(seed, r as u64);
                let mut outcomes = Vec::new();
                let serial = sample_trajectory_traced(
                    compiled, ext_reg, &params, input, &mut sampler, &mut outcomes,
                );
                assert_eq!(outcomes, batched[r].outcomes, "program {i} row {r}");
                match (&serial, &batched[r].state) {
                    (None, None) => {}
                    (Some(s), Some(b)) => {
                        for (x, y) in s.amplitudes().iter().zip(b.amplitudes()) {
                            assert_eq!(x.re.to_bits(), y.re.to_bits(), "program {i} row {r}");
                            assert_eq!(x.im.to_bits(), y.im.to_bits(), "program {i} row {r}");
                        }
                    }
                    _ => panic!("abort status diverged on program {i} row {r}"),
                }
            }
        }
    }
}
