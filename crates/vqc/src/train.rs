//! Training loop for variational quantum classifiers (Section 8.1).
//!
//! Gradients of the loss flow through two stages: the classical chain rule
//! on the loss (`dL/d pred`) and the quantum derivative of the read-out
//! (`d pred/dθj`), the latter computed by the paper's code-transformation
//! scheme via [`qdp_ad::GradientEngine`]. Training is full-batch gradient
//! descent, exactly as in the paper's case study.

use crate::loss::Loss;
use crate::optim::Optimizer;
use qdp_ad::{GradientEngine, TransformError};
use qdp_lang::ast::{Params, Stmt};
use qdp_sim::{Observable, StateVector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// A labelled pure-state dataset.
pub type Dataset = Vec<(StateVector, f64)>;

/// A full-batch trainer for one program and read-out observable.
///
/// # Examples
///
/// ```
/// use qdp_vqc::circuits::p1;
/// use qdp_vqc::loss::SquaredLoss;
/// use qdp_vqc::optim::GradientDescent;
/// use qdp_vqc::task;
/// use qdp_vqc::train::Trainer;
///
/// let data = task::dataset()
///     .into_iter()
///     .map(|s| (s.input_state(), s.target()))
///     .collect();
/// let mut trainer = Trainer::new(&p1(), task::readout_observable(), data)?;
/// trainer.init_params_seeded(42);
/// let history = trainer.train(3, &SquaredLoss, &mut GradientDescent::new(0.2));
/// assert_eq!(history.len(), 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Trainer {
    engine: GradientEngine,
    observable: Observable,
    dataset: Dataset,
    params: BTreeMap<String, f64>,
}

impl Trainer {
    /// Builds a trainer, differentiating the program with respect to every
    /// parameter up front (the compile-time phase).
    ///
    /// # Errors
    ///
    /// Returns [`TransformError`] when the program contains gates outside
    /// the differentiable fragment.
    pub fn new(
        program: &Stmt,
        observable: Observable,
        dataset: Dataset,
    ) -> Result<Self, TransformError> {
        let engine = GradientEngine::new(program)?;
        let params = engine
            .parameters()
            .map(|name| (name.to_string(), 0.0))
            .collect();
        Ok(Trainer {
            engine,
            observable,
            dataset,
            params,
        })
    }

    /// Initialises all parameters uniformly in `[0, 2π)` from a seed.
    pub fn init_params_seeded(&mut self, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for value in self.params.values_mut() {
            *value = rng.gen::<f64>() * std::f64::consts::TAU;
        }
    }

    /// Current parameter values.
    pub fn params(&self) -> &BTreeMap<String, f64> {
        &self.params
    }

    /// Overwrites parameter values (missing names keep their value).
    pub fn set_params(&mut self, values: &BTreeMap<String, f64>) {
        for (name, v) in values {
            if let Some(slot) = self.params.get_mut(name) {
                *slot = *v;
            }
        }
    }

    /// The underlying gradient engine.
    pub fn engine(&self) -> &GradientEngine {
        &self.engine
    }

    fn params_struct(&self) -> Params {
        Params::from_pairs(self.params.iter().map(|(k, &v)| (k.clone(), v)))
    }

    /// Predictions `lθ(z)` for every sample under the current parameters.
    pub fn predictions(&self) -> Vec<f64> {
        let params = self.params_struct();
        self.dataset
            .iter()
            .map(|(psi, _)| self.engine.value_pure(&params, &self.observable, psi))
            .collect()
    }

    /// Total loss under the current parameters.
    pub fn loss_value(&self, loss: &impl Loss) -> f64 {
        self.predictions()
            .iter()
            .zip(&self.dataset)
            .map(|(&pred, (_, label))| loss.loss(pred, *label))
            .sum()
    }

    /// The gradient of the total loss with respect to every parameter.
    pub fn loss_gradient(&self, loss: &impl Loss) -> BTreeMap<String, f64> {
        let params = self.params_struct();
        let mut grads: BTreeMap<String, f64> =
            self.params.keys().map(|k| (k.clone(), 0.0)).collect();
        for (psi, label) in &self.dataset {
            let pred = self.engine.value_pure(&params, &self.observable, psi);
            let outer = loss.grad(pred, *label);
            if outer == 0.0 {
                continue;
            }
            let inner = self.engine.gradient_pure(&params, &self.observable, psi);
            for (name, g) in inner {
                *grads.get_mut(&name).expect("known parameter") += outer * g;
            }
        }
        grads
    }

    /// One full-batch epoch: computes the loss, takes one optimizer step,
    /// and returns the *pre-step* loss (matching how training curves are
    /// usually reported).
    pub fn epoch(&mut self, loss: &impl Loss, optimizer: &mut dyn Optimizer) -> f64 {
        let value = self.loss_value(loss);
        let grads = self.loss_gradient(loss);
        optimizer.step(&mut self.params, &grads);
        value
    }

    /// Runs `epochs` epochs and returns the loss history.
    pub fn train(
        &mut self,
        epochs: usize,
        loss: &impl Loss,
        optimizer: &mut dyn Optimizer,
    ) -> Vec<f64> {
        (0..epochs).map(|_| self.epoch(loss, optimizer)).collect()
    }

    /// Classification accuracy with a 0.5 decision threshold.
    pub fn accuracy(&self) -> f64 {
        let preds = self.predictions();
        let correct = preds
            .iter()
            .zip(&self.dataset)
            .filter(|(&p, (_, label))| (p >= 0.5) == (*label >= 0.5))
            .count();
        correct as f64 / self.dataset.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuits::{p1, p2};
    use crate::loss::SquaredLoss;
    use crate::optim::GradientDescent;
    use crate::task;

    fn data() -> Dataset {
        task::dataset()
            .into_iter()
            .map(|s| (s.input_state(), s.target()))
            .collect()
    }

    #[test]
    fn loss_gradient_matches_finite_difference() {
        let mut trainer = Trainer::new(&p1(), task::readout_observable(), data()).unwrap();
        trainer.init_params_seeded(3);
        let loss = SquaredLoss;
        let grads = trainer.loss_gradient(&loss);
        // Spot check three parameters against central differences.
        for name in ["T0", "F5", "T11"] {
            let base = trainer.params()[name];
            let h = 1e-5;
            let probe = |x: f64| {
                let mut p = trainer.params().clone();
                p.insert(name.to_string(), x);
                let mut t2 = Trainer::new(&p1(), task::readout_observable(), data()).unwrap();
                t2.set_params(&p);
                t2.loss_value(&loss)
            };
            let numeric = (probe(base + h) - probe(base - h)) / (2.0 * h);
            assert!(
                (grads[name] - numeric).abs() < 1e-6,
                "{name}: {} vs {numeric}",
                grads[name]
            );
        }
    }

    #[test]
    fn training_p1_reduces_loss() {
        let mut trainer = Trainer::new(&p1(), task::readout_observable(), data()).unwrap();
        trainer.init_params_seeded(7);
        let history = trainer.train(15, &SquaredLoss, &mut GradientDescent::new(0.3));
        assert!(history.last().unwrap() < &history[0], "{history:?}");
    }

    #[test]
    fn training_p2_reduces_loss() {
        let mut trainer = Trainer::new(&p2(), task::readout_observable(), data()).unwrap();
        trainer.init_params_seeded(7);
        let history = trainer.train(10, &SquaredLoss, &mut GradientDescent::new(0.3));
        assert!(history.last().unwrap() < &history[0], "{history:?}");
    }

    #[test]
    fn accuracy_is_a_fraction() {
        let mut trainer = Trainer::new(&p1(), task::readout_observable(), data()).unwrap();
        trainer.init_params_seeded(1);
        let acc = trainer.accuracy();
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn epoch_reports_pre_step_loss() {
        let mut trainer = Trainer::new(&p1(), task::readout_observable(), data()).unwrap();
        trainer.init_params_seeded(5);
        let loss_before = trainer.loss_value(&SquaredLoss);
        let reported = trainer.epoch(&SquaredLoss, &mut GradientDescent::new(0.1));
        assert!((reported - loss_before).abs() < 1e-12);
    }
}
