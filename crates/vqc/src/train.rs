//! Training loop for variational quantum classifiers (Section 8.1).
//!
//! Gradients of the loss flow through two stages: the classical chain rule
//! on the loss (`dL/d pred`) and the quantum derivative of the read-out
//! (`d pred/dθj`), the latter computed by the paper's code-transformation
//! scheme via [`qdp_ad::GradientEngine`]. Training is full-batch gradient
//! descent, exactly as in the paper's case study.
//!
//! The dataset is packed once into a [`BatchedStates`] block at
//! construction; every forward and gradient pass then evaluates the
//! compiled multisets against **all** samples in one batched sweep
//! (`GradientEngine::value_pure_batch` / `gradient_pure_batch`) instead of
//! looping the per-sample engine — parameter slots and gate matrices are
//! resolved once per epoch and shared by the whole batch. The results are
//! numerically identical to the per-sample loop (see
//! `crates/core/tests/batch_equivalence.rs`).

use crate::loss::Loss;
use crate::optim::Optimizer;
use qdp_ad::{GradientEngine, TransformError};
use qdp_lang::ast::{Params, Stmt};
use qdp_sim::{derive_seed, BatchedStates, Observable, StateVector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A labelled pure-state dataset.
pub type Dataset = Vec<(StateVector, f64)>;

/// Configuration of the trainer's hardware-realistic **shot-noise mode**:
/// every prediction and every quantum derivative is estimated from sampled
/// trajectories through the batched shot engine (Section 7's execution
/// model) instead of read off the exact simulator.
///
/// Streams derive deterministically from `seed`: epoch `e` uses
/// `derive_seed(seed, e)`, sample `r` of that epoch draws its forward
/// estimate from sub-stream `2r` and its gradient estimates from `2r + 1`
/// — a fixed seed reproduces a training run bit for bit under any thread
/// count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShotNoise {
    /// Trajectories per forward (prediction) estimate.
    pub value_shots: usize,
    /// Trajectories per parameter-derivative estimate. For the Chernoff
    /// guarantee pass `chernoff_shots(m, δ)`; smaller budgets trade
    /// gradient accuracy for wall time.
    pub gradient_shots: usize,
    /// Master seed of the run's shot streams.
    pub seed: u64,
}

/// A resumable snapshot of a [`Trainer`]'s training position: the epoch
/// counter, every parameter value, and the shot-noise configuration.
///
/// Because all of the trainer's randomness derives from
/// `(ShotNoise::seed, epoch)` — epoch `e` uses `derive_seed(seed, e)`,
/// with per-sample sub-streams `2r` / `2r + 1` below that — these three
/// pieces are the *entire* training state: restoring a checkpoint into a
/// fresh trainer over the same program and dataset and continuing
/// produces **bit-identical** parameters to the uninterrupted run.
/// Optimizer state is not carried; pair checkpoints with a stateless
/// optimizer (plain [`crate::optim::GradientDescent`]) or persist the
/// optimizer separately.
///
/// [`serialize`](Self::serialize) round-trips through a line-oriented text
/// format with every `f64` written as the hex of its IEEE-754 bits, so a
/// file round trip is exact.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// The shot-noise epoch counter at snapshot time.
    pub epoch: u64,
    /// Every parameter's value at snapshot time.
    pub params: BTreeMap<String, f64>,
    /// The shot-noise configuration (`None` = exact mode).
    pub shot_noise: Option<ShotNoise>,
}

/// A structured [`Checkpoint::deserialize`] failure. Restoring is
/// all-or-nothing: any of these means nothing was parsed into a trainer,
/// so a corrupt or truncated file can never silently restore a partial —
/// or bit-garbled — training position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// The input leads with a `qdp-checkpoint` header of a version this
    /// build does not read — a real checkpoint from a different release,
    /// not line noise.
    VersionMismatch {
        /// The header line as found.
        found: String,
    },
    /// The input does not lead with a checkpoint header at all (`None` =
    /// empty input).
    BadHeader {
        /// The first line as found.
        found: Option<String>,
    },
    /// The required `epoch` line never appeared — the classic signature
    /// of a file truncated near its start.
    MissingEpoch,
    /// A body line failed to parse; `what` names the defect.
    MalformedLine {
        /// The offending line.
        line: String,
        /// What was wrong with it.
        what: &'static str,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::VersionMismatch { found } => {
                write!(f, "unsupported checkpoint version: {found:?} (this build reads v1)")
            }
            CheckpointError::BadHeader { found } => {
                write!(f, "bad checkpoint header: {found:?}")
            }
            CheckpointError::MissingEpoch => {
                write!(f, "checkpoint is missing the epoch line (truncated file?)")
            }
            CheckpointError::MalformedLine { line, what } => {
                write!(f, "malformed checkpoint line {line:?}: {what}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl Checkpoint {
    /// Renders the checkpoint as a line-oriented text block (`f64`s as
    /// hex bit patterns, so deserialization is bit-exact).
    pub fn serialize(&self) -> String {
        let mut out = String::from("qdp-checkpoint v1\n");
        out.push_str(&format!("epoch {}\n", self.epoch));
        if let Some(cfg) = &self.shot_noise {
            out.push_str(&format!(
                "shots {} {} {}\n",
                cfg.value_shots, cfg.gradient_shots, cfg.seed
            ));
        }
        for (name, value) in &self.params {
            out.push_str(&format!("param {name} {:016x}\n", value.to_bits()));
        }
        out
    }

    /// Parses a checkpoint produced by [`serialize`](Self::serialize).
    ///
    /// # Errors
    ///
    /// Returns a typed [`CheckpointError`] on the first defect: an
    /// unsupported header version, a missing epoch, or a malformed line.
    /// Parameter payloads must be **exactly 16 hex digits** — the width
    /// `serialize` writes for an `f64`'s bits. A bare `from_str_radix`
    /// would happily accept a truncated payload (`"3ff"` parses to a tiny
    /// garbage double) or a `+` sign prefix, silently restoring corrupted
    /// values; the width check turns every such truncation into an error.
    pub fn deserialize(text: &str) -> Result<Self, CheckpointError> {
        let mut lines = text.lines();
        match lines.next() {
            Some("qdp-checkpoint v1") => {}
            Some(other) if other.starts_with("qdp-checkpoint ") => {
                return Err(CheckpointError::VersionMismatch { found: other.to_string() });
            }
            other => {
                return Err(CheckpointError::BadHeader { found: other.map(str::to_string) });
            }
        }
        let malformed = |line: &str, what: &'static str| CheckpointError::MalformedLine {
            line: line.to_string(),
            what,
        };
        let mut epoch = None;
        let mut shot_noise = None;
        let mut params = BTreeMap::new();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            match fields.as_slice() {
                ["epoch", e] => {
                    epoch = Some(
                        e.parse::<u64>()
                            .map_err(|_| malformed(line, "epoch must be a decimal u64"))?,
                    );
                }
                ["shots", v, g, s] => {
                    let parse = |x: &str| {
                        x.parse::<u64>()
                            .map_err(|_| malformed(line, "shots fields must be decimal u64s"))
                    };
                    shot_noise = Some(ShotNoise {
                        value_shots: parse(v)? as usize,
                        gradient_shots: parse(g)? as usize,
                        seed: parse(s)?,
                    });
                }
                ["param", name, bits] => {
                    if bits.len() != 16 || !bits.bytes().all(|b| b.is_ascii_hexdigit()) {
                        return Err(malformed(
                            line,
                            "param payload must be exactly 16 hex digits",
                        ));
                    }
                    let bits = u64::from_str_radix(bits, 16)
                        .map_err(|_| malformed(line, "param payload must be exactly 16 hex digits"))?;
                    params.insert(name.to_string(), f64::from_bits(bits));
                }
                _ => return Err(malformed(line, "unrecognised checkpoint line")),
            }
        }
        Ok(Checkpoint {
            epoch: epoch.ok_or(CheckpointError::MissingEpoch)?,
            params,
            shot_noise,
        })
    }
}

/// A full-batch trainer for one program and read-out observable.
///
/// # Examples
///
/// ```
/// use qdp_vqc::circuits::p1;
/// use qdp_vqc::loss::SquaredLoss;
/// use qdp_vqc::optim::GradientDescent;
/// use qdp_vqc::task;
/// use qdp_vqc::train::Trainer;
///
/// let data = task::dataset()
///     .into_iter()
///     .map(|s| (s.input_state(), s.target()))
///     .collect();
/// let mut trainer = Trainer::new(&p1(), task::readout_observable(), data)?;
/// trainer.init_params_seeded(42);
/// let history = trainer.train(3, &SquaredLoss, &mut GradientDescent::new(0.2));
/// assert_eq!(history.len(), 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Trainer {
    engine: Arc<GradientEngine>,
    observable: Observable,
    /// The dataset's input states packed contiguously — built once, reused
    /// by every batched forward/gradient sweep (the only copy held).
    batch: BatchedStates,
    /// The dataset's labels in row order.
    labels: Vec<f64>,
    params: BTreeMap<String, f64>,
    /// `Some` puts every evaluation on the shot-noise estimators.
    shot_noise: Option<ShotNoise>,
    /// Epoch counter of shot-noise mode — each [`epoch`](Self::epoch)
    /// advances it so successive steps draw fresh noise streams.
    shot_epoch: u64,
}

impl Trainer {
    /// Builds a trainer, differentiating the program with respect to every
    /// parameter up front (the compile-time phase) and packing the dataset
    /// into one contiguous batch.
    ///
    /// # Errors
    ///
    /// Returns [`TransformError`] when the program contains gates outside
    /// the differentiable fragment.
    pub fn new(
        program: &Stmt,
        observable: Observable,
        dataset: Dataset,
    ) -> Result<Self, TransformError> {
        let engine = Arc::new(GradientEngine::new(program)?);
        Ok(Self::with_engine(engine, observable, dataset))
    }

    /// Builds a trainer over an **already-compiled** engine — the engine
    /// a [`qdp_ad::GradientService`] hands out for a registered program,
    /// so the trainer and the service share one set of interned compiled
    /// artifacts instead of differentiating and lowering the program a
    /// second time.
    pub fn with_engine(
        engine: Arc<GradientEngine>,
        observable: Observable,
        dataset: Dataset,
    ) -> Self {
        let params = engine
            .parameters()
            .map(|name| (name.to_string(), 0.0))
            .collect();
        let (inputs, labels): (Vec<StateVector>, Vec<f64>) = dataset.into_iter().unzip();
        Trainer {
            engine,
            observable,
            batch: BatchedStates::from_states(&inputs),
            labels,
            params,
            shot_noise: None,
            shot_epoch: 0,
        }
    }

    /// Switches between exact evaluation (`None`, the default) and
    /// shot-noise mode: with `Some(cfg)`, [`predictions`](Self::predictions),
    /// [`loss_value`](Self::loss_value), [`loss_gradient`](Self::loss_gradient)
    /// and [`accuracy`](Self::accuracy) all run on sampled-trajectory
    /// estimates — training sees exactly what a hardware run would report.
    pub fn set_shot_noise(&mut self, cfg: Option<ShotNoise>) {
        self.shot_noise = cfg;
    }

    /// The active shot-noise configuration, if any.
    pub fn shot_noise(&self) -> Option<ShotNoise> {
        self.shot_noise
    }

    /// Initialises all parameters uniformly in `[0, 2π)` from a seed.
    pub fn init_params_seeded(&mut self, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for value in self.params.values_mut() {
            *value = rng.gen::<f64>() * std::f64::consts::TAU;
        }
    }

    /// Current parameter values.
    pub fn params(&self) -> &BTreeMap<String, f64> {
        &self.params
    }

    /// Overwrites parameter values (missing names keep their value).
    pub fn set_params(&mut self, values: &BTreeMap<String, f64>) {
        for (name, v) in values {
            if let Some(slot) = self.params.get_mut(name) {
                *slot = *v;
            }
        }
    }

    /// The underlying gradient engine.
    pub fn engine(&self) -> &GradientEngine {
        &self.engine
    }

    fn params_struct(&self) -> Params {
        Params::from_pairs(self.params.iter().map(|(k, &v)| (k.clone(), v)))
    }

    /// The derived stream of the current epoch (shot-noise mode).
    fn epoch_stream(&self, cfg: &ShotNoise) -> u64 {
        derive_seed(cfg.seed, self.shot_epoch)
    }

    /// Predictions `lθ(z)` for every sample under the current parameters —
    /// one batched sweep of the lowered forward program over all samples,
    /// or (in shot-noise mode) one trajectory-sampled estimate per sample.
    pub fn predictions(&self) -> Vec<f64> {
        let params = self.params_struct();
        match &self.shot_noise {
            None => self
                .engine
                .value_pure_batch(&params, &self.observable, &self.batch),
            Some(cfg) => {
                // One batch call: the forward program and read-out are
                // prepared once, and the rows (independent derived
                // streams) fan out across `qdp_par` workers.
                let stream = self.epoch_stream(cfg);
                let inputs: Vec<StateVector> =
                    (0..self.batch.len()).map(|r| self.batch.row_state(r)).collect();
                let seeds: Vec<u64> = (0..self.batch.len())
                    .map(|r| derive_seed(stream, 2 * r as u64))
                    .collect();
                self.engine.value_pure_shots_batch(
                    &params,
                    &self.observable,
                    &inputs,
                    cfg.value_shots,
                    &seeds,
                )
            }
        }
    }

    /// Total loss under the current parameters, from one batched forward
    /// sweep.
    pub fn loss_value(&self, loss: &impl Loss) -> f64 {
        self.predictions()
            .iter()
            .zip(&self.labels)
            .map(|(&pred, &label)| loss.loss(pred, label))
            .sum()
    }

    /// The gradient of the total loss with respect to every parameter.
    ///
    /// One batched forward sweep produces all predictions, one batched
    /// gradient sweep produces all per-sample quantum gradients; the chain
    /// rule then accumulates `Σr dL/d predr · d predr/dθj` in sample order,
    /// so the result matches the per-sample loop it replaced.
    pub fn loss_gradient(&self, loss: &impl Loss) -> BTreeMap<String, f64> {
        self.gradient_from_predictions(loss, &self.predictions())
    }

    /// The chain rule over already-computed predictions — shared by
    /// [`loss_gradient`](Self::loss_gradient) and [`epoch`](Self::epoch)
    /// so one forward pass (exact sweep or shot estimates) serves both
    /// the reported loss and the outer derivatives.
    ///
    /// In shot-noise mode the outer derivatives thus come from the *same*
    /// estimates `predictions()` reports (identical streams): the chain
    /// rule is applied to what the hardware would have measured.
    fn gradient_from_predictions(
        &self,
        loss: &impl Loss,
        preds: &[f64],
    ) -> BTreeMap<String, f64> {
        let params = self.params_struct();
        let mut grads: BTreeMap<String, f64> =
            self.params.keys().map(|k| (k.clone(), 0.0)).collect();
        let outers: Vec<f64> = preds
            .iter()
            .zip(&self.labels)
            .map(|(&pred, &label)| loss.grad(pred, label))
            .collect();
        if outers.iter().all(|&outer| outer == 0.0) {
            return grads;
        }
        match &self.shot_noise {
            None => {
                let inner = self
                    .engine
                    .gradient_pure_batch(&params, &self.observable, &self.batch);
                for (row, outer) in inner.iter().zip(&outers) {
                    if *outer == 0.0 {
                        continue;
                    }
                    for (name, g) in row {
                        *grads.get_mut(name).expect("known parameter") += outer * g;
                    }
                }
            }
            Some(cfg) => {
                // One batch call over the rows with gradient signal: the
                // per-parameter estimators are prepared once and shared
                // across the `qdp_par` row fan-out (independent derived
                // streams); accumulation stays in row order, so the
                // result is deterministic under any thread count.
                let stream = self.epoch_stream(cfg);
                let live: Vec<(usize, f64)> = outers
                    .iter()
                    .copied()
                    .enumerate()
                    .filter(|&(_, outer)| outer != 0.0)
                    .collect();
                let inputs: Vec<StateVector> =
                    live.iter().map(|&(r, _)| self.batch.row_state(r)).collect();
                let seeds: Vec<u64> = live
                    .iter()
                    .map(|&(r, _)| derive_seed(stream, 2 * r as u64 + 1))
                    .collect();
                let rows = self.engine.gradient_pure_shots_batch(
                    &params,
                    &self.observable,
                    &inputs,
                    cfg.gradient_shots,
                    &seeds,
                );
                for ((_, outer), row) in live.iter().zip(&rows) {
                    for (name, g) in row {
                        *grads.get_mut(name).expect("known parameter") += outer * g;
                    }
                }
            }
        }
        grads
    }

    /// One full-batch epoch: computes the loss, takes one optimizer step,
    /// and returns the *pre-step* loss (matching how training curves are
    /// usually reported). One forward pass serves both the reported loss
    /// and the chain rule. In shot-noise mode each epoch advances the
    /// noise stream first, so successive steps see fresh shots.
    pub fn epoch(&mut self, loss: &impl Loss, optimizer: &mut dyn Optimizer) -> f64 {
        self.shot_epoch = self.shot_epoch.wrapping_add(1);
        let preds = self.predictions();
        let value = preds
            .iter()
            .zip(&self.labels)
            .map(|(&pred, &label)| loss.loss(pred, label))
            .sum();
        let grads = self.gradient_from_predictions(loss, &preds);
        optimizer.step(&mut self.params, &grads);
        value
    }

    /// Snapshots the trainer's resumable state — see [`Checkpoint`] for
    /// the exact-resume contract.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            epoch: self.shot_epoch,
            params: self.params.clone(),
            shot_noise: self.shot_noise,
        }
    }

    /// Restores a [`Checkpoint`] taken from a trainer over the same
    /// program and dataset: epoch counter, parameter values (unknown
    /// names are ignored, as in [`set_params`](Self::set_params)), and
    /// shot-noise configuration. Training continued from here is
    /// bit-identical to the run the checkpoint was taken from.
    pub fn restore(&mut self, ckpt: &Checkpoint) {
        self.shot_epoch = ckpt.epoch;
        self.set_params(&ckpt.params);
        self.shot_noise = ckpt.shot_noise;
    }

    /// Runs `epochs` epochs and returns the loss history.
    pub fn train(
        &mut self,
        epochs: usize,
        loss: &impl Loss,
        optimizer: &mut dyn Optimizer,
    ) -> Vec<f64> {
        (0..epochs).map(|_| self.epoch(loss, optimizer)).collect()
    }

    /// Runs up to `epochs` epochs, stopping at the first **epoch
    /// boundary** past the wall-clock `deadline`, and returns the loss
    /// history of the epochs that ran.
    ///
    /// The deadline changes only *how many* epochs run, never the bits of
    /// the epochs that do run: each completed epoch (its loss value, its
    /// optimizer step, its shot-noise stream position) is bit-identical to
    /// the same-index epoch of an undeadlined [`train`](Self::train) call
    /// from the same state. An epoch already under way when the deadline
    /// passes completes normally — there are no torn optimizer steps — so
    /// the overrun is bounded by one epoch.
    pub fn train_for(
        &mut self,
        epochs: usize,
        loss: &impl Loss,
        optimizer: &mut dyn Optimizer,
        deadline: Duration,
    ) -> Vec<f64> {
        let cutoff = Instant::now() + deadline;
        let mut history = Vec::new();
        for _ in 0..epochs {
            if Instant::now() >= cutoff {
                break;
            }
            history.push(self.epoch(loss, optimizer));
        }
        history
    }

    /// Classification accuracy with a 0.5 decision threshold.
    pub fn accuracy(&self) -> f64 {
        let preds = self.predictions();
        let correct = preds
            .iter()
            .zip(&self.labels)
            .filter(|(&p, &label)| (p >= 0.5) == (label >= 0.5))
            .count();
        correct as f64 / self.labels.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuits::{p1, p2};
    use crate::loss::SquaredLoss;
    use crate::optim::GradientDescent;
    use crate::task;

    fn data() -> Dataset {
        task::dataset()
            .into_iter()
            .map(|s| (s.input_state(), s.target()))
            .collect()
    }

    #[test]
    fn loss_gradient_matches_finite_difference() {
        let mut trainer = Trainer::new(&p1(), task::readout_observable(), data()).unwrap();
        trainer.init_params_seeded(3);
        let loss = SquaredLoss;
        let grads = trainer.loss_gradient(&loss);
        // Spot check three parameters against central differences.
        for name in ["T0", "F5", "T11"] {
            let base = trainer.params()[name];
            let h = 1e-5;
            let probe = |x: f64| {
                let mut p = trainer.params().clone();
                p.insert(name.to_string(), x);
                let mut t2 = Trainer::new(&p1(), task::readout_observable(), data()).unwrap();
                t2.set_params(&p);
                t2.loss_value(&loss)
            };
            let numeric = (probe(base + h) - probe(base - h)) / (2.0 * h);
            assert!(
                (grads[name] - numeric).abs() < 1e-6,
                "{name}: {} vs {numeric}",
                grads[name]
            );
        }
    }

    #[test]
    fn batched_loss_and_gradient_match_per_sample_loop() {
        // The pre-batch implementation: one interpreter forward and one
        // per-sample gradient per dataset row. The batched trainer must
        // reproduce it to 1e-12 on both circuits (P2 exercises the
        // branching executor).
        for program in [p1(), p2()] {
            let dataset = data();
            let mut trainer =
                Trainer::new(&program, task::readout_observable(), dataset.clone()).unwrap();
            trainer.init_params_seeded(9);
            let loss = SquaredLoss;
            let params = trainer.params_struct();
            let engine = trainer.engine();
            let obs = task::readout_observable();

            let mut serial_loss = 0.0;
            let mut serial_grads: BTreeMap<String, f64> =
                trainer.params().keys().map(|k| (k.clone(), 0.0)).collect();
            for (psi, label) in &dataset {
                let pred = engine.value_pure(&params, &obs, psi);
                serial_loss += loss.loss(pred, *label);
                let outer = loss.grad(pred, *label);
                if outer == 0.0 {
                    continue;
                }
                for (name, g) in engine.gradient_pure(&params, &obs, psi) {
                    *serial_grads.get_mut(&name).unwrap() += outer * g;
                }
            }

            assert!((trainer.loss_value(&loss) - serial_loss).abs() < 1e-12);
            let batched = trainer.loss_gradient(&loss);
            for (name, s) in &serial_grads {
                assert!(
                    (batched[name] - s).abs() < 1e-12,
                    "dL/d{name}: batched {} vs serial {s}",
                    batched[name]
                );
            }
        }
    }

    #[test]
    fn training_p1_reduces_loss() {
        let mut trainer = Trainer::new(&p1(), task::readout_observable(), data()).unwrap();
        trainer.init_params_seeded(7);
        let history = trainer.train(15, &SquaredLoss, &mut GradientDescent::new(0.3));
        assert!(history.last().unwrap() < &history[0], "{history:?}");
    }

    #[test]
    fn train_for_with_a_generous_deadline_matches_train_bitwise() {
        let mut bounded = Trainer::new(&p1(), task::readout_observable(), data()).unwrap();
        bounded.init_params_seeded(7);
        let mut unbounded = Trainer::new(&p1(), task::readout_observable(), data()).unwrap();
        unbounded.init_params_seeded(7);

        let history = bounded.train_for(
            8,
            &SquaredLoss,
            &mut GradientDescent::new(0.3),
            Duration::from_secs(3600),
        );
        let reference = unbounded.train(8, &SquaredLoss, &mut GradientDescent::new(0.3));
        assert_eq!(history.len(), reference.len());
        for (i, (a, b)) in history.iter().zip(&reference).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "epoch {i} loss diverged");
        }
        for (name, v) in bounded.params() {
            assert_eq!(
                v.to_bits(),
                unbounded.params()[name].to_bits(),
                "parameter {name} diverged"
            );
        }
    }

    #[test]
    fn train_for_with_an_expired_deadline_runs_no_epochs() {
        let mut trainer = Trainer::new(&p1(), task::readout_observable(), data()).unwrap();
        trainer.init_params_seeded(7);
        let before = trainer.params().clone();
        let history = trainer.train_for(
            8,
            &SquaredLoss,
            &mut GradientDescent::new(0.3),
            Duration::ZERO,
        );
        assert!(history.is_empty());
        for (name, v) in trainer.params() {
            assert_eq!(v.to_bits(), before[name].to_bits(), "parameter {name} moved");
        }
    }

    #[test]
    fn training_p2_reduces_loss() {
        let mut trainer = Trainer::new(&p2(), task::readout_observable(), data()).unwrap();
        trainer.init_params_seeded(7);
        let history = trainer.train(10, &SquaredLoss, &mut GradientDescent::new(0.3));
        assert!(history.last().unwrap() < &history[0], "{history:?}");
    }

    #[test]
    fn shot_noise_training_p1_reduces_exact_loss() {
        // Train entirely on the hardware-realistic estimator, then judge
        // progress on the exact loss: the noisy gradients must still
        // descend on the paper's P1 classification task.
        let mut trainer = Trainer::new(&p1(), task::readout_observable(), data()).unwrap();
        trainer.init_params_seeded(3);
        let exact_before = trainer.loss_value(&SquaredLoss);
        trainer.set_shot_noise(Some(ShotNoise {
            value_shots: 96,
            gradient_shots: 64,
            seed: 2026,
        }));
        let noisy_history = trainer.train(6, &SquaredLoss, &mut GradientDescent::new(0.25));
        assert_eq!(noisy_history.len(), 6);
        trainer.set_shot_noise(None);
        let exact_after = trainer.loss_value(&SquaredLoss);
        // Exact training from this init reaches ≈2.0 from 2.77; the noisy
        // run lands in the same basin (ratio ≈0.72 across probe seeds —
        // 0.8 leaves honest headroom).
        assert!(
            exact_after < 0.8 * exact_before,
            "shot-noise training did not descend: {exact_before} -> {exact_after}"
        );
    }

    #[test]
    fn shot_noise_training_is_reproducible_per_seed() {
        let run = |seed: u64| {
            let mut trainer = Trainer::new(&p1(), task::readout_observable(), data()).unwrap();
            trainer.init_params_seeded(3);
            trainer.set_shot_noise(Some(ShotNoise {
                value_shots: 32,
                gradient_shots: 32,
                seed,
            }));
            trainer.train(2, &SquaredLoss, &mut GradientDescent::new(0.2));
            trainer.params().clone()
        };
        let a = run(11);
        let b = run(11);
        for (name, v) in &a {
            assert_eq!(v.to_bits(), b[name].to_bits(), "{name}");
        }
        // A different seed draws different shots.
        let c = run(12);
        assert!(a.iter().any(|(name, v)| v.to_bits() != c[name].to_bits()));
    }

    #[test]
    fn checkpoint_resume_is_bit_identical() {
        let noise = ShotNoise { value_shots: 32, gradient_shots: 32, seed: 17 };
        let make = || {
            let mut t = Trainer::new(&p1(), task::readout_observable(), data()).unwrap();
            t.init_params_seeded(3);
            t.set_shot_noise(Some(noise));
            t
        };

        // Uninterrupted run: 6 shot-noise epochs.
        let mut straight = make();
        straight.train(6, &SquaredLoss, &mut GradientDescent::new(0.2));

        // Interrupted run: 3 epochs, checkpoint through the text format,
        // resume in a *fresh* trainer, 3 more epochs.
        let mut first_half = make();
        first_half.train(3, &SquaredLoss, &mut GradientDescent::new(0.2));
        let text = first_half.checkpoint().serialize();
        drop(first_half);
        let ckpt = Checkpoint::deserialize(&text).unwrap();
        assert_eq!(ckpt.epoch, 3);
        assert_eq!(ckpt.shot_noise, Some(noise));
        let mut resumed = Trainer::new(&p1(), task::readout_observable(), data()).unwrap();
        resumed.restore(&ckpt);
        resumed.train(3, &SquaredLoss, &mut GradientDescent::new(0.2));

        for (name, v) in straight.params() {
            assert_eq!(
                v.to_bits(),
                resumed.params()[name].to_bits(),
                "{name} diverged after resume"
            );
        }
    }

    #[test]
    fn checkpoint_serialization_is_bit_exact() {
        let ckpt = Checkpoint {
            epoch: 41,
            params: BTreeMap::from([
                ("T0".to_string(), -0.0),
                ("F5".to_string(), std::f64::consts::PI),
                ("T11".to_string(), 1e-300),
            ]),
            shot_noise: None,
        };
        let round = Checkpoint::deserialize(&ckpt.serialize()).unwrap();
        assert_eq!(round.epoch, 41);
        assert_eq!(round.shot_noise, None);
        for (name, v) in &ckpt.params {
            assert_eq!(v.to_bits(), round.params[name].to_bits(), "{name}");
        }
    }

    #[test]
    fn checkpoint_deserialize_rejects_malformed_input() {
        assert!(Checkpoint::deserialize("").is_err());
        assert!(Checkpoint::deserialize("nonsense").is_err());
        assert!(Checkpoint::deserialize("qdp-checkpoint v1\n").is_err()); // no epoch
        assert!(Checkpoint::deserialize("qdp-checkpoint v1\nepoch x\n").is_err());
        assert!(
            Checkpoint::deserialize("qdp-checkpoint v1\nepoch 1\nparam T0 zz\n").is_err()
        );
        assert!(
            Checkpoint::deserialize("qdp-checkpoint v1\nepoch 1\nmystery line\n").is_err()
        );
    }

    #[test]
    fn checkpoint_deserialize_rejects_corrupt_payloads_with_typed_errors() {
        // Truncated or padded hex payloads once slipped through
        // `from_str_radix` and restored a bit-garbled f64; each must now
        // surface as a typed MalformedLine, never a silent partial restore.
        let corrupt = [
            "param t0 3ff",               // truncated payload
            "param t0 3ff00000000000000", // 17 digits
            "param t0 +ff0000000000000",  // sign prefix, 16 bytes
            "param t0 3ff000000000000g",  // non-hex digit
        ];
        for line in corrupt {
            let text = format!("qdp-checkpoint v1\nepoch 1\n{line}\n");
            match Checkpoint::deserialize(&text) {
                Err(CheckpointError::MalformedLine { what, .. }) => {
                    assert!(what.contains("16 hex"), "{line}: {what}")
                }
                other => panic!("{line}: expected MalformedLine, got {other:?}"),
            }
        }
        // A checkpoint from a future format version is told apart from
        // line noise.
        assert_eq!(
            Checkpoint::deserialize("qdp-checkpoint v2\nepoch 1\n"),
            Err(CheckpointError::VersionMismatch {
                found: "qdp-checkpoint v2".to_string()
            })
        );
        assert_eq!(
            Checkpoint::deserialize(""),
            Err(CheckpointError::BadHeader { found: None })
        );
        assert_eq!(
            Checkpoint::deserialize("qdp-checkpoint v1\n"),
            Err(CheckpointError::MissingEpoch)
        );
    }

    #[test]
    fn checkpoint_prefix_truncations_never_restore_garbage() {
        // Every byte-prefix of a real serialized checkpoint either errors
        // or parses to a checkpoint whose surviving params are bit-exact
        // copies of the originals — a torn write can lose trailing lines,
        // but it can never garble a value that does restore.
        let full = Checkpoint {
            epoch: 12,
            params: [("alpha".to_string(), -0.75), ("beta".to_string(), 1e-12)]
                .into_iter()
                .collect(),
            shot_noise: Some(ShotNoise {
                value_shots: 64,
                gradient_shots: 256,
                seed: 9,
            }),
        };
        let text = full.serialize();
        for cut in 0..text.len() {
            let prefix = &text[..cut];
            if let Ok(partial) = Checkpoint::deserialize(prefix) {
                // A cut inside the decimal epoch line can shorten the
                // number itself — inherent to the text format; the
                // hardening target is the hex f64 payloads below.
                if prefix.ends_with('\n') {
                    assert_eq!(partial.epoch, full.epoch, "prefix of {cut} bytes");
                }
                for (name, value) in &partial.params {
                    assert_eq!(
                        value.to_bits(),
                        full.params[name].to_bits(),
                        "prefix of {cut} bytes: param {name} restored garbled"
                    );
                }
            }
        }
    }

    #[test]
    fn accuracy_is_a_fraction() {
        let mut trainer = Trainer::new(&p1(), task::readout_observable(), data()).unwrap();
        trainer.init_params_seeded(1);
        let acc = trainer.accuracy();
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn epoch_reports_pre_step_loss() {
        let mut trainer = Trainer::new(&p1(), task::readout_observable(), data()).unwrap();
        trainer.init_params_seeded(5);
        let loss_before = trainer.loss_value(&SquaredLoss);
        let reported = trainer.epoch(&SquaredLoss, &mut GradientDescent::new(0.1));
        assert!((reported - loss_before).abs() < 1e-12);
    }
}
