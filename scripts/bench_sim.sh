#!/usr/bin/env bash
# Regenerates BENCH_sim.json — the simulator's perf-trajectory record
# (gate-apply and gradient wall-times, fast kernels vs the retained
# reference implementation). Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."
cargo run --release -p qdp-bench --bin bench_sim -- "${1:-BENCH_sim.json}"
