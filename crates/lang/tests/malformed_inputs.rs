//! Regression suite: malformed source must come back as a spanned
//! [`qdp_lang::parser::ParseError`], never as a panic. Every input here
//! is a truncation or mutation that once exercised a panicking path
//! (`expect("peeked")`-style internal unwraps) or plausibly could.

use qdp_lang::parse_program;

/// Inputs that must parse-fail gracefully. Each is paired with a
/// substring the error message must contain, so the errors stay
/// actionable, not just non-panicking.
const MALFORMED: &[(&str, &str)] = &[
    // Truncations ending right before an expected token.
    ("q1 *=", "end of input"),
    ("q1 :=", "expected"),
    ("q1", "expected"),
    ("case M[q1] = 0 -> skip[q1]", "unterminated case"),
    ("case M[q1] = 0 ->", "end of input"),
    ("case M[q1] =", "end of input"),
    ("case M[q1]", "expected"),
    ("case M[", "end of input"),
    ("case", "expected"),
    ("while[2] M[q1] = 1 do skip[q1]", "expected"),
    ("while[2] M[q1] = 1 do", "end of input"),
    ("while[2] M[q1] = 1", "expected"),
    ("while[2] M[q1] =", "end of input"),
    ("while[2]", "expected"),
    ("while[", "end of input"),
    ("skip[", "end of input"),
    ("abort[q1]; ", "end of input"),
    ("(a := |0>", "expected"),
    ("q1 *= RX(", "expected"),
    ("q1 *= RX(t", "expected"),
    // Wrong token where a specific kind is required.
    ("q1 *= 3", "expected"),
    ("case M[7] = 0 -> skip[q1] end", "identifier"),
    ("while[q] M[q1] = 1 do skip[q1] done", "integer"),
    ("q1 := |0> + + q2 := |0>", "expected"),
    // Lexer-level garbage.
    ("q1 # q2", "unexpected character"),
    ("\u{1F600}", "unexpected character"),
];

#[test]
fn malformed_inputs_error_instead_of_panicking() {
    for (src, needle) in MALFORMED {
        let result = std::panic::catch_unwind(|| parse_program(src));
        let outcome = result.unwrap_or_else(|_| panic!("parser panicked on {src:?}"));
        let err = outcome.expect_err(&format!("{src:?} unexpectedly parsed"));
        assert!(
            err.to_string().contains(needle),
            "{src:?}: error {err} does not mention {needle:?}"
        );
        assert!(
            err.position <= src.len(),
            "{src:?}: error position {} past end of input",
            err.position
        );
    }
}

#[test]
fn exhaustive_truncations_of_a_real_program_never_panic() {
    // Every prefix of a program exercising all statement forms must
    // either parse (some prefixes are complete programs) or error
    // cleanly with an in-bounds span.
    let src = "q1 := |0>; q1 *= RX(2 * t + pi / 2); \
               case M[q1] = 0 -> skip[q1], 1 -> q1 *= X end; \
               while[2] M[q1] = 1 do q1 *= RY(t) done; abort[q1]";
    for cut in 0..src.len() {
        if !src.is_char_boundary(cut) {
            continue;
        }
        let prefix = &src[..cut];
        let result = std::panic::catch_unwind(|| parse_program(prefix));
        let outcome = result.unwrap_or_else(|_| panic!("parser panicked on prefix {prefix:?}"));
        if let Err(e) = outcome {
            assert!(e.position <= prefix.len(), "prefix {prefix:?}: bad span");
        }
    }
}
