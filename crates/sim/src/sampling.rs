//! Shot-based sampling of measurements and observables.
//!
//! Section 7 of the paper analyses the *execution* of the differentiation
//! procedure: expectations `tr(Oρ)` are estimated by repeated projective
//! measurement, with `O(1/δ²)` repetitions for additive error `δ` (Chernoff
//! bound). This module provides that statistical layer over the exact
//! simulator.
//!
//! The randomness is organised around two primitives shared by every shot
//! path in the workspace:
//!
//! * [`collapse_with_draw`] — the Born-rule branch selection and collapse
//!   for one pre-drawn uniform variate. [`ShotSampler::measure`] and the
//!   batched [`crate::ShotEngine`] both call it, so a batched sweep and a
//!   serial per-shot loop driven by the same stream produce **bit-identical**
//!   outcomes and collapsed states.
//! * [`derive_seed`] — the stream-derivation contract: shot `s` of a run
//!   seeded with `seed` draws from `ShotSampler::derived(seed, s)`. Because
//!   each shot owns an independent stream, work can be tiled across threads
//!   in any way without changing a single drawn value.

use crate::measurement::Measurement;
use crate::observable::Observable;
use crate::state::StateVector;
use qdp_linalg::C64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The shot budget the paper's Chernoff analysis prescribes for estimating a
/// sum of `m` bounded (`-I ⊑ O ⊑ I`) program read-outs to additive
/// precision `delta` — Section 7's `O(m²/δ²)`, with the constant pinned to
/// `⌈m²/δ²⌉` (one shot estimates a single read-out to `δ = 1`).
///
/// This is the **single** definition in the workspace;
/// `qdp_ad::estimator::chernoff_shots` re-exports it.
///
/// # Panics
///
/// Panics when `delta` is not finite and positive — the panicking wrapper
/// of [`try_chernoff_shots`].
pub fn chernoff_shots(m: usize, delta: f64) -> usize {
    match try_chernoff_shots(m, delta) {
        Ok(shots) => shots,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible form of [`chernoff_shots`]: rejects a precision `delta` that is
/// not finite and positive (a non-finite δ would silently yield a zero or
/// nonsensical shot budget), **or so small that the budget `⌈(m/δ)²⌉` has
/// no `usize` representation**, with a typed
/// [`QdpError::InvalidPrecision`](crate::error::QdpError::InvalidPrecision).
pub fn try_chernoff_shots(m: usize, delta: f64) -> Result<usize, crate::error::QdpError> {
    if !delta.is_finite() || delta <= 0.0 {
        return Err(crate::error::QdpError::InvalidPrecision {
            value: delta,
            what: "precision",
        });
    }
    let m = m.max(1) as f64;
    let budget = ((m * m) / (delta * delta)).ceil();
    // An `as usize` cast of an oversized float silently saturates: a δ of,
    // say, 1e-200 would quietly clamp the budget to usize::MAX instead of
    // reporting that the requested precision is unsatisfiable. `>=` also
    // rejects the infinite budget a subnormal δ produces when δ²
    // underflows to zero (budget is never NaN: m ≥ 1 and δ is finite
    // positive, so the quotient is positive or +∞).
    if budget >= usize::MAX as f64 {
        return Err(crate::error::QdpError::InvalidPrecision {
            value: delta,
            what: "precision",
        });
    }
    Ok(budget as usize)
}

/// Derives the seed of stream `stream` of a run seeded with `seed` — a
/// SplitMix64 finalizer over `seed + (stream+1)·γ`, the standard recipe for
/// decorrelating enumerated substreams of one master seed.
///
/// This is the workspace-wide determinism contract for parallel shot
/// execution: shot `s` always draws from `ShotSampler::derived(seed, s)`,
/// no matter which thread or tile runs it.
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed.wrapping_add(stream.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Performs one Born-rule shot of `measurement` on a normalised pure state
/// for a **pre-drawn** uniform variate `u ∈ [0, 1)`: returns the sampled
/// outcome and the collapsed, renormalised state.
///
/// This is the deterministic core of [`ShotSampler::measure`], factored out
/// so batched executors that manage their own per-row streams perform the
/// *identical* floating-point selection and collapse arithmetic.
///
/// # Selected-branch collapse
///
/// Branch **probabilities are computed first**
/// ([`Measurement::branch_probabilities_pure`] — for computational
/// measurements one bucketed `|amp|²` pass, no operator applications) and
/// only the drawn outcome is materialised
/// ([`Measurement::collapse_pure`]), instead of building every branch via
/// `branches_pure` and discarding all but one. The probabilities and the
/// selected state carry the identical bits the `branches_pure` path
/// produces (signed zeros of the projector kernel included), so the
/// selection walk, the rescaling, and therefore every drawn trajectory in
/// the workspace are unchanged bit for bit — `branches_pure` stays as the
/// reference oracle the equivalence tests pin this against.
///
/// # Panics
///
/// Panics if the state has (numerically) zero norm.
pub fn collapse_with_draw(
    u: f64,
    psi: &StateVector,
    measurement: &Measurement,
) -> (usize, StateVector) {
    let total = psi.norm_sqr();
    assert!(total > 1e-300, "cannot measure a zero-norm state");
    let probs = measurement.branch_probabilities_pure(psi);
    let mut r: f64 = u * total;
    for (outcome, &p) in probs.iter().enumerate() {
        r -= p;
        if r <= 0.0 {
            let mut state = measurement.collapse_pure(psi, outcome);
            if p > 0.0 {
                state.scale(C64::real((total / p).sqrt().min(1e150)));
                // Renormalise to the parent state's norm.
                let norm = state.norm_sqr().sqrt();
                if norm > 0.0 {
                    state.scale(C64::real(total.sqrt() / norm));
                }
            }
            return (outcome, state);
        }
    }
    // Floating-point slack: fall back to the last branch with support.
    // Infallible: the walk only falls through when `total > 0`, so at
    // least one branch probability is positive.
    #[allow(clippy::expect_used)]
    let outcome = (0..probs.len())
        .rev()
        .find(|&m| probs[m] > 0.0)
        .expect("no branch has support");
    let mut state = measurement.collapse_pure(psi, outcome);
    let norm = state.norm_sqr().sqrt();
    if norm > 0.0 {
        state.scale(C64::real(total.sqrt() / norm));
    }
    (outcome, state)
}

/// The precomputed layout of a **diagonal** observable's read-out: which
/// spectral pair each computational-basis state belongs to, plus the
/// full-index target masks — everything one bucketed `|amp|²` pass needs.
#[derive(Clone, Debug)]
struct DiagonalReadout {
    /// Full-index bit of each target, in target order (first target most
    /// significant in the local index).
    masks: Vec<usize>,
    /// `pair_of_local[b]` = index into `pairs` of the projector containing
    /// local basis state `b`.
    pair_of_local: Vec<usize>,
}

/// An observable's spectral measurement `{(λm, Pm)}` hoisted for repeated
/// sampling: the eigendecomposition runs **once** and each projector is
/// wrapped as an [`Observable`] whose expectation fast path can be replayed
/// against arbitrarily many states (or batch rows) with zero per-shot
/// allocation.
///
/// **Diagonal fast path.** When the observable is diagonal in the
/// computational basis (`Z`-basis read-outs — `Z`, `|1⟩⟨1|`, every
/// `ZA ⊗ O` extension of a diagonal `O`: the common case of the paper's
/// pipeline), its projectors partition the basis states, so *all* pair
/// probabilities of a state come from **one bucketed `|amp|²` pass**
/// instead of one expectation pass per projector. Detection happens once at
/// construction; every sampling path (serial [`ShotSampler`] and the
/// batched `ShotEngine` read-out) routes through the same
/// [`row_probabilities`](Self::row_probabilities), so serial and batched
/// draws can never drift apart. [`ProjectiveObservable::general`] builds
/// the same decomposition with the fast path disabled — the reference the
/// equivalence tests compare against.
///
/// [`ShotSampler::sample_observable`] builds one per call; batched sweeps
/// build one per estimator invocation and share it across all shots.
#[derive(Clone, Debug)]
pub struct ProjectiveObservable {
    pairs: Vec<(f64, Observable)>,
    /// `Some` when the observable is diagonal and every projector cleanly
    /// partitions the basis states (see [`DiagonalReadout`]).
    diagonal: Option<DiagonalReadout>,
}

impl ProjectiveObservable {
    /// Decomposes `obs` into its `(eigenvalue, projector)` read-out pairs,
    /// detecting the diagonal fast path.
    pub fn new(obs: &Observable) -> Self {
        let mut out = ProjectiveObservable::general(obs);
        out.diagonal = out.detect_diagonal(obs);
        out
    }

    /// The same spectral decomposition with the diagonal fast path
    /// **disabled**: every probability goes through the per-projector
    /// expectation pass. This is the reference implementation the diagonal
    /// path is differentially tested against; production callers should use
    /// [`new`](Self::new).
    pub fn general(obs: &Observable) -> Self {
        ProjectiveObservable {
            pairs: obs
                .to_projective()
                .into_iter()
                .map(|(eigenvalue, projector)| {
                    (
                        eigenvalue,
                        Observable::new(obs.num_qubits(), obs.targets().to_vec(), projector),
                    )
                })
                .collect(),
            diagonal: None,
        }
    }

    /// Builds the [`DiagonalReadout`] when `obs` is diagonal in the
    /// computational basis and the spectral projectors partition the local
    /// basis states into clean 0/1 diagonal blocks; `None` otherwise.
    fn detect_diagonal(&self, obs: &Observable) -> Option<DiagonalReadout> {
        let m = obs.matrix();
        let dim = m.rows();
        for a in 0..dim {
            for b in 0..dim {
                if a != b && m.get(a, b) != C64::ZERO {
                    return None;
                }
            }
        }
        // Map each local basis state to the (single) projector containing
        // it. The projectors of a diagonal matrix are themselves diagonal
        // 0/1 matrices up to eigensolver round-off; anything murkier than a
        // clear 0-or-1 diagonal entry falls back to the general path.
        let mut pair_of_local = vec![usize::MAX; dim];
        for (k, (_, projector)) in self.pairs.iter().enumerate() {
            let p = projector.matrix();
            for (a, slot) in pair_of_local.iter_mut().enumerate() {
                for b in 0..dim {
                    let entry = p.get(a, b);
                    if a != b {
                        if entry.norm_sqr() > 1e-18 {
                            return None;
                        }
                        continue;
                    }
                    if entry.im.abs() > 1e-9 {
                        return None;
                    }
                    if entry.re > 0.5 {
                        if (entry.re - 1.0).abs() > 1e-9 || *slot != usize::MAX {
                            return None;
                        }
                        *slot = k;
                    } else if entry.re.abs() > 1e-9 {
                        return None;
                    }
                }
            }
        }
        if pair_of_local.contains(&usize::MAX) {
            return None;
        }
        let n = obs.num_qubits();
        Some(DiagonalReadout {
            masks: obs
                .targets()
                .iter()
                .map(|&t| 1usize << crate::kernels::qubit_bit(n, t))
                .collect(),
            pair_of_local,
        })
    }

    /// The `(eigenvalue, projector-observable)` pairs in eigenvalue order.
    pub fn pairs(&self) -> &[(f64, Observable)] {
        &self.pairs
    }

    /// Whether the diagonal fast path is engaged.
    pub fn is_diagonal(&self) -> bool {
        self.diagonal.is_some()
    }

    /// All pair probabilities (unnormalised — relative to the slice's
    /// squared norm) of one amplitude slice from a **single bucketed
    /// `|amp|²` pass**, or `None` when the observable is not diagonal.
    ///
    /// Every sampling path uses this same function when it returns `Some`,
    /// so serial and batched read-outs select from identical probabilities.
    pub fn row_probabilities(&self, amps: &[C64]) -> Option<Vec<f64>> {
        let mut probs = Vec::new();
        self.row_probabilities_into(amps, &mut probs).then_some(probs)
    }

    /// [`row_probabilities`](Self::row_probabilities) writing into a
    /// reusable buffer (cleared and refilled) — the retained **AoS oracle
    /// form**. Returns `false` (buffer untouched) when the observable is
    /// not diagonal.
    ///
    /// The bucket walk stays **serial** in index order (unlike the
    /// measurement sweeps, no lane split): the `pair_of_local` indirection
    /// maps basis states to buckets arbitrarily, so there are no
    /// constant-outcome runs to exploit, and the pinned order predates the
    /// lane contract. The plane form walks in the identical order, so the
    /// layouts agree bit for bit.
    pub fn row_probabilities_into(&self, amps: &[C64], probs: &mut Vec<f64>) -> bool {
        let Some(d) = self.diagonal.as_ref() else {
            return false;
        };
        probs.clear();
        probs.resize(self.pairs.len(), 0.0);
        for (i, a) in amps.iter().enumerate() {
            let local = crate::kernels::local_index(i, &d.masks);
            probs[d.pair_of_local[local]] += a.norm_sqr();
        }
        true
    }

    /// [`row_probabilities_into`](Self::row_probabilities_into) on one
    /// row's split `re`/`im` planes — the form the split-plane engine
    /// calls. The identical serial walk and `re² + im²` terms as the AoS
    /// oracle, so the layouts agree bit for bit.
    pub fn row_probabilities_planes_into(
        &self,
        re: &[f64],
        im: &[f64],
        probs: &mut Vec<f64>,
    ) -> bool {
        let Some(d) = self.diagonal.as_ref() else {
            return false;
        };
        debug_assert_eq!(re.len(), im.len(), "re/im planes must have equal lengths");
        probs.clear();
        probs.resize(self.pairs.len(), 0.0);
        for i in 0..re.len() {
            let local = crate::kernels::local_index(i, &d.masks);
            probs[d.pair_of_local[local]] += re[i] * re[i] + im[i] * im[i];
        }
        true
    }

    /// All pair probabilities of **every row** of a contiguous
    /// `rows × 2ⁿ` pair of split amplitude planes from **one bucketed
    /// `|amp|²` sweep**, or `false` (table untouched) when the observable
    /// is not diagonal: `table` is cleared and refilled with
    /// `rows × pairs` entries, row `r`'s probabilities at
    /// `table[r·pairs .. (r+1)·pairs]`.
    ///
    /// Each row's buckets accumulate the identical values in the identical
    /// order as the per-row forms on that row alone, so batched and
    /// per-row read-outs select from bit-identical probabilities.
    ///
    /// # Panics
    ///
    /// Panics when the planes are not `rows` whole rows.
    pub fn row_probabilities_block(
        &self,
        re: &[f64],
        im: &[f64],
        rows: usize,
        table: &mut Vec<f64>,
    ) -> bool {
        let Some(d) = self.diagonal.as_ref() else {
            return false;
        };
        let dim = 1usize << self.pairs[0].1.num_qubits();
        assert!(
            re.len() == rows * dim && im.len() == rows * dim,
            "block must hold {rows} whole {dim}-amplitude rows"
        );
        let pairs = self.pairs.len();
        table.clear();
        table.resize(rows * pairs, 0.0);
        for ((row_re, row_im), buckets) in re
            .chunks_exact(dim)
            .zip(im.chunks_exact(dim))
            .zip(table.chunks_exact_mut(pairs))
        {
            for i in 0..dim {
                let local = crate::kernels::local_index(i, &d.masks);
                buckets[d.pair_of_local[local]] += row_re[i] * row_re[i] + row_im[i] * row_im[i];
            }
        }
        true
    }

    /// The full `rows × pairs` read-out probability table of a batch —
    /// the block form every group read-out goes through: **one** bucketed
    /// sweep over the whole block for diagonal observables, one batched
    /// expectation pass per projector otherwise (never one pass per row).
    /// Values are identical to the per-row paths bit for bit, so serial
    /// and batched draws can never drift apart.
    ///
    /// # Panics
    ///
    /// Panics when register sizes differ.
    pub fn pair_probabilities_batch(
        &self,
        states: &crate::batch::BatchedStates,
        table: &mut Vec<f64>,
    ) {
        let (re, im) = states.planes();
        if self.row_probabilities_block(re, im, states.len(), table) {
            return;
        }
        let pairs = self.pairs.len();
        table.clear();
        table.resize(states.len() * pairs, 0.0);
        let mut column = Vec::new();
        for (k, (_, projector)) in self.pairs.iter().enumerate() {
            projector.expectation_batch_into(states, &mut column);
            for (r, &v) in column.iter().enumerate() {
                table[r * pairs + k] = v;
            }
        }
    }

    /// One projective sample for a pre-drawn uniform `u ∈ [0, 1)` against a
    /// raw amplitude slice whose squared norm is `total` (pass
    /// `psi.norm_sqr()`; callers must handle `total ≈ 0` themselves —
    /// see [`ShotSampler::sample_observable`]).
    ///
    /// Diagonal observables draw from one bucketed `|amp|²` pass; the rest
    /// evaluate one projector expectation per selection step (lazily, so
    /// early exits skip the remaining projectors). This AoS form is the
    /// retained oracle; the engine calls
    /// [`sample_with_draw_planes`](Self::sample_with_draw_planes).
    pub fn sample_with_draw(&self, u: f64, total: f64, amps: &[C64]) -> f64 {
        match self.row_probabilities(amps) {
            Some(probs) => self.select_with(u, total, |k| probs[k]),
            None => self.select_with(u, total, |k| self.pairs[k].1.expectation_amps(amps)),
        }
    }

    /// [`sample_with_draw`](Self::sample_with_draw) on one row's split
    /// `re`/`im` planes: identical probabilities (serial bucket walk or
    /// per-projector expectation, both bitwise-pinned across the layout
    /// seam) through the identical selection loop.
    pub fn sample_with_draw_planes(&self, u: f64, total: f64, re: &[f64], im: &[f64]) -> f64 {
        let mut probs = Vec::new();
        if self.row_probabilities_planes_into(re, im, &mut probs) {
            self.select_with(u, total, |k| probs[k])
        } else {
            self.select_with(u, total, |k| self.pairs[k].1.expectation_planes(re, im))
        }
    }

    /// The cumulative Born-rule selection shared by every sampling path:
    /// walks the pairs in order, subtracting `probability(k)` (evaluated
    /// lazily, so early exits skip the remaining projectors) from
    /// `u · total`, and returns the first eigenvalue driving the rest
    /// non-positive — the last eigenvalue under floating-point slack.
    ///
    /// [`sample_with_draw`](Self::sample_with_draw) and the batched
    /// read-out of `ShotEngine::sample_sweep` both go through this one
    /// loop, so their selection arithmetic can never drift apart.
    pub(crate) fn select_with(
        &self,
        u: f64,
        total: f64,
        mut probability: impl FnMut(usize) -> f64,
    ) -> f64 {
        let mut r = u * total;
        for (k, (eigenvalue, _)) in self.pairs.iter().enumerate() {
            r -= probability(k);
            if r <= 0.0 {
                return *eigenvalue;
            }
        }
        self.pairs.last().map(|(l, _)| *l).unwrap_or(0.0)
    }
}

/// A seeded sampler producing measurement shots from simulated states.
///
/// # Examples
///
/// ```
/// use qdp_linalg::Matrix;
/// use qdp_sim::{Observable, ShotSampler, StateVector};
///
/// let mut psi = StateVector::zero_state(1);
/// psi.apply_gate(&Matrix::hadamard(), &[0]);
/// let z = Observable::pauli_z(1, 0);
/// let mut sampler = ShotSampler::seeded(7);
/// let estimate = sampler.estimate_observable(&psi, &z, 4096);
/// assert!(estimate.abs() < 0.1); // true value is 0
/// ```
#[derive(Clone, Debug)]
pub struct ShotSampler {
    rng: StdRng,
}

impl ShotSampler {
    /// Creates a sampler with a fixed seed (reproducible runs).
    pub fn seeded(seed: u64) -> Self {
        ShotSampler {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The sampler of stream `stream` of a run seeded with `seed` — see
    /// [`derive_seed`] for the contract.
    pub fn derived(seed: u64, stream: u64) -> Self {
        ShotSampler::seeded(derive_seed(seed, stream))
    }

    /// Creates a sampler from operating-system entropy.
    pub fn from_entropy() -> Self {
        ShotSampler {
            rng: StdRng::from_entropy(),
        }
    }

    /// Draws one uniform variate in `[0, 1)` — the raw fuel of
    /// [`collapse_with_draw`] and
    /// [`ProjectiveObservable::sample_with_draw`].
    pub fn next_uniform(&mut self) -> f64 {
        self.rng.gen()
    }

    /// Draws a uniform index in `0..n`.
    pub fn uniform_index(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }

    /// Performs one shot of `measurement` on a normalised pure state;
    /// returns the sampled outcome and the collapsed, renormalised state.
    ///
    /// # Panics
    ///
    /// Panics if the state has (numerically) zero norm.
    pub fn measure(
        &mut self,
        psi: &StateVector,
        measurement: &Measurement,
    ) -> (usize, StateVector) {
        let u = self.next_uniform();
        collapse_with_draw(u, psi, measurement)
    }

    /// One shot of an observable: projectively measures in the observable's
    /// eigenbasis and returns the sampled eigenvalue.
    pub fn sample_observable(&mut self, psi: &StateVector, obs: &Observable) -> f64 {
        let total = psi.norm_sqr();
        if total <= 1e-300 {
            return 0.0;
        }
        let projective = ProjectiveObservable::new(obs);
        let u = self.next_uniform();
        let (re, im) = psi.planes();
        projective.sample_with_draw_planes(u, total, re, im)
    }

    /// Monte-Carlo estimate of `⟨O⟩` from `shots` projective samples.
    pub fn estimate_observable(
        &mut self,
        psi: &StateVector,
        obs: &Observable,
        shots: usize,
    ) -> f64 {
        assert!(shots > 0, "need at least one shot");
        let total = psi.norm_sqr();
        if total <= 1e-300 {
            return 0.0;
        }
        let projective = ProjectiveObservable::new(obs);
        let (re, im) = psi.planes();
        let mut acc = 0.0;
        for _ in 0..shots {
            let u = self.next_uniform();
            acc += projective.sample_with_draw_planes(u, total, re, im);
        }
        acc / shots as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdp_linalg::Matrix;

    #[test]
    fn measurement_statistics_approach_born_rule() {
        let mut psi = StateVector::zero_state(1);
        psi.apply_gate(&Matrix::hadamard(), &[0]);
        let m = Measurement::computational(vec![0]);
        let mut sampler = ShotSampler::seeded(42);
        let shots = 20_000;
        let mut ones = 0usize;
        for _ in 0..shots {
            let (outcome, _) = sampler.measure(&psi, &m);
            ones += outcome;
        }
        let freq = ones as f64 / shots as f64;
        assert!((freq - 0.5).abs() < 0.02, "frequency {freq} too far from 0.5");
    }

    #[test]
    fn collapsed_state_is_consistent() {
        let mut psi = StateVector::zero_state(2);
        psi.apply_gate(&Matrix::hadamard(), &[0]);
        psi.apply_gate(&Matrix::cnot(), &[0, 1]);
        let m = Measurement::computational(vec![0]);
        let mut sampler = ShotSampler::seeded(1);
        for _ in 0..20 {
            let (outcome, collapsed) = sampler.measure(&psi, &m);
            assert_eq!(collapsed.classical_bit(0), Some(outcome == 1));
            assert_eq!(collapsed.classical_bit(1), Some(outcome == 1));
            assert!((collapsed.norm_sqr() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn measure_equals_collapse_with_same_draw() {
        // `measure` must be exactly "draw one uniform, collapse": the
        // batched engine relies on this split to match the serial path
        // bit for bit.
        let mut psi = StateVector::zero_state(2);
        psi.apply_gate(&Matrix::hadamard(), &[0]);
        psi.apply_gate(&Matrix::cnot(), &[0, 1]);
        let m = Measurement::computational(vec![0]);
        let mut a = ShotSampler::seeded(31);
        let mut b = ShotSampler::seeded(31);
        for _ in 0..16 {
            let (o1, s1) = a.measure(&psi, &m);
            let u = b.next_uniform();
            let (o2, s2) = collapse_with_draw(u, &psi, &m);
            assert_eq!(o1, o2);
            assert_eq!(s1.amplitudes(), s2.amplitudes());
        }
    }

    #[test]
    fn observable_estimate_converges() {
        let psi = StateVector::zero_state(1); // ⟨Z⟩ = 1 exactly
        let z = Observable::pauli_z(1, 0);
        let mut sampler = ShotSampler::seeded(3);
        let est = sampler.estimate_observable(&psi, &z, 100);
        assert!((est - 1.0).abs() < 1e-12);
    }

    #[test]
    fn observable_estimate_on_superposition() {
        let mut psi = StateVector::zero_state(1);
        psi.apply_gate(
            &Matrix::rotation_from_involution(&Matrix::pauli_y(), 1.0),
            &[0],
        );
        let z = Observable::pauli_z(1, 0);
        let exact = z.expectation_pure(&psi);
        let mut sampler = ShotSampler::seeded(1234);
        let est = sampler.estimate_observable(&psi, &z, 40_000);
        assert!((est - exact).abs() < 0.02, "estimate {est} vs exact {exact}");
    }

    #[test]
    fn chernoff_shot_count_scales_quadratically() {
        assert_eq!(chernoff_shots(1, 0.1), 100);
        assert_eq!(chernoff_shots(2, 0.1), 400);
        assert_eq!(chernoff_shots(4, 0.1), 1600);
    }

    #[test]
    fn chernoff_budget_formula_is_pinned() {
        // The budget is exactly ⌈m²/δ²⌉ (m clamped to ≥ 1) — the single
        // definition `qdp_ad::estimator` re-exports.
        assert_eq!(chernoff_shots(3, 0.05), 3600);
        assert_eq!(chernoff_shots(0, 0.5), 4);
        assert_eq!(chernoff_shots(5, 0.3), (25.0f64 / 0.09).ceil() as usize);
        assert_eq!(chernoff_shots(1, 1.0), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn chernoff_rejects_nonpositive_delta() {
        let _ = chernoff_shots(2, 0.0);
    }

    #[test]
    fn chernoff_rejects_unrepresentable_budgets_at_extreme_delta() {
        // Pre-fix, ⌈(m/δ)²⌉ went through a bare `as usize` cast, which
        // silently saturates to usize::MAX for tiny δ — including the
        // subnormal range where δ² underflows to 0 and the budget is ∞.
        for bad in [1e-12, 1e-200, f64::MIN_POSITIVE] {
            match try_chernoff_shots(3, bad) {
                Err(crate::error::QdpError::InvalidPrecision { value, what }) => {
                    assert_eq!(value.to_bits(), bad.to_bits());
                    assert_eq!(what, "precision");
                }
                other => panic!("δ = {bad}: expected InvalidPrecision, got {other:?}"),
            }
            // The message must name the real failure — the budget has no
            // usize representation — not claim δ wasn't positive.
            let msg = try_chernoff_shots(3, bad).unwrap_err().to_string();
            assert!(msg.contains("overflows"), "{msg}");
        }
        // Just inside the cliff: ~1e18 shots is a representable (if
        // absurd) budget and must still be accepted.
        let huge = try_chernoff_shots(1, 1e-9).unwrap();
        assert!(huge > 0 && huge < usize::MAX, "budget {huge}");
    }

    #[test]
    fn derived_streams_are_reproducible_and_distinct() {
        let draws = |seed: u64, stream: u64| -> Vec<u64> {
            let mut s = ShotSampler::derived(seed, stream);
            (0..8).map(|_| (s.next_uniform() * 1e15) as u64).collect()
        };
        assert_eq!(draws(9, 0), draws(9, 0));
        assert_ne!(draws(9, 0), draws(9, 1));
        assert_ne!(draws(9, 0), draws(10, 0));
        // Adjacent streams of adjacent seeds must not collide either.
        assert_ne!(derive_seed(9, 1), derive_seed(10, 0));
    }

    /// The pre-selected-branch-collapse algorithm, kept verbatim as the
    /// `branches_pure`-based oracle the production path is pinned against.
    fn collapse_with_draw_oracle(
        u: f64,
        psi: &StateVector,
        measurement: &Measurement,
    ) -> (usize, StateVector) {
        let total = psi.norm_sqr();
        assert!(total > 1e-300, "cannot measure a zero-norm state");
        let branches = measurement.branches_pure(psi);
        let mut r: f64 = u * total;
        for b in &branches {
            r -= b.probability;
            if r <= 0.0 {
                let mut state = b.state.clone();
                if b.probability > 0.0 {
                    state.scale(C64::real((total / b.probability).sqrt().min(1e150)));
                    let norm = state.norm_sqr().sqrt();
                    if norm > 0.0 {
                        state.scale(C64::real(total.sqrt() / norm));
                    }
                }
                return (b.outcome, state);
            }
        }
        let last = branches
            .into_iter()
            .rev()
            .find(|b| b.probability > 0.0)
            .expect("no branch has support");
        let mut state = last.state.clone();
        let norm = state.norm_sqr().sqrt();
        if norm > 0.0 {
            state.scale(C64::real(total.sqrt() / norm));
        }
        (last.outcome, state)
    }

    use crate::test_support::awkward_state;

    #[test]
    fn selected_branch_collapse_matches_branches_pure_oracle_bitwise() {
        // Computational measurements (the fast path) and a rotated general
        // measurement, over states with zero/negative components and the
        // whole [0, 1) draw range — outcomes and collapsed amplitudes must
        // carry identical bits to the all-branches oracle.
        let h = Matrix::hadamard();
        let x_basis = Measurement::two_outcome(
            h.mul(&Matrix::basis_projector(2, 0)).mul(&h),
            h.mul(&Matrix::basis_projector(2, 1)).mul(&h),
            vec![1],
        );
        let measurements = [
            Measurement::computational(vec![0]),
            Measurement::computational(vec![2]),
            Measurement::computational(vec![1, 3]),
            x_basis,
        ];
        for (mi, m) in measurements.iter().enumerate() {
            for seed in 0..6u64 {
                let psi = awkward_state(4, 1000 * (mi as u64 + 1) + seed);
                for step in 0..16 {
                    let u = step as f64 / 16.0;
                    let (o_fast, s_fast) = collapse_with_draw(u, &psi, m);
                    let (o_ref, s_ref) = collapse_with_draw_oracle(u, &psi, m);
                    assert_eq!(o_fast, o_ref, "measurement {mi} seed {seed} u {u}");
                    let fast_bits: Vec<(u64, u64)> = s_fast
                        .amplitudes()
                        .iter()
                        .map(|a| (a.re.to_bits(), a.im.to_bits()))
                        .collect();
                    let ref_bits: Vec<(u64, u64)> = s_ref
                        .amplitudes()
                        .iter()
                        .map(|a| (a.re.to_bits(), a.im.to_bits()))
                        .collect();
                    assert_eq!(fast_bits, ref_bits, "measurement {mi} seed {seed} u {u}");
                }
            }
        }
    }

    #[test]
    fn diagonal_readout_is_detected_for_z_basis_observables() {
        assert!(ProjectiveObservable::new(&Observable::pauli_z(2, 1)).is_diagonal());
        assert!(ProjectiveObservable::new(&Observable::projector_one(3, 0)).is_diagonal());
        // The paper's extended read-out Z ⊗ |1⟩⟨1| is diagonal too.
        assert!(
            ProjectiveObservable::new(&Observable::projector_one(2, 1).with_ancilla_z())
                .is_diagonal()
        );
        // X is not.
        let x = Observable::new(1, vec![0], Matrix::pauli_x());
        assert!(!ProjectiveObservable::new(&x).is_diagonal());
        // `general` always disables the fast path.
        assert!(!ProjectiveObservable::general(&Observable::pauli_z(1, 0)).is_diagonal());
    }

    #[test]
    fn diagonal_readout_samples_match_general_path() {
        // Same decomposition, fast vs general probability evaluation: the
        // selected eigenvalue must agree on every draw and the bucketed
        // probabilities must match the per-projector passes to 1e-12.
        let observables = [
            Observable::pauli_z(3, 1),
            Observable::projector_one(3, 2),
            Observable::projector_one(2, 1).with_ancilla_z(),
        ];
        for (oi, obs) in observables.iter().enumerate() {
            let fast = ProjectiveObservable::new(obs);
            let general = ProjectiveObservable::general(obs);
            assert!(fast.is_diagonal(), "observable {oi}");
            for seed in 0..8u64 {
                let psi = awkward_state(obs.num_qubits(), 77 + seed);
                let total = psi.norm_sqr();
                let amps = psi.amplitudes();
                let (re, im) = psi.planes();
                let probs = fast.row_probabilities(&amps).unwrap();
                // The plane form must reproduce the AoS oracle's buckets
                // bit for bit.
                let mut plane_probs = Vec::new();
                assert!(fast.row_probabilities_planes_into(re, im, &mut plane_probs));
                for (k, (p, q)) in probs.iter().zip(&plane_probs).enumerate() {
                    assert_eq!(p.to_bits(), q.to_bits(), "observable {oi} pair {k}");
                }
                for (k, (_, projector)) in general.pairs().iter().enumerate() {
                    let reference = projector.expectation_amps(&amps);
                    assert!(
                        (probs[k] - reference).abs() < 1e-12,
                        "observable {oi} pair {k}: {} vs {reference}",
                        probs[k]
                    );
                }
                for step in 0..32 {
                    let u = (step as f64 + 0.5) / 32.0;
                    let a = fast.sample_with_draw(u, total, &amps);
                    let b = general.sample_with_draw(u, total, &amps);
                    assert_eq!(a.to_bits(), b.to_bits(), "observable {oi} u {u}");
                    let c = fast.sample_with_draw_planes(u, total, re, im);
                    let d = general.sample_with_draw_planes(u, total, re, im);
                    assert_eq!(a.to_bits(), c.to_bits(), "observable {oi} u {u} (planes)");
                    assert_eq!(b.to_bits(), d.to_bits(), "observable {oi} u {u} (planes)");
                }
            }
        }
    }

    #[test]
    fn seeded_samplers_are_reproducible() {
        let mut psi = StateVector::zero_state(1);
        psi.apply_gate(&Matrix::hadamard(), &[0]);
        let m = Measurement::computational(vec![0]);
        let run = |seed: u64| -> Vec<usize> {
            let mut s = ShotSampler::seeded(seed);
            (0..32).map(|_| s.measure(&psi, &m).0).collect()
        };
        assert_eq!(run(9), run(9));
    }
}
