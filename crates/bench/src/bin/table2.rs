//! Regenerates **Table 2** of the paper (Section 8.2): resource metrics of
//! the differentiation procedure on medium/large QNN, VQE and QAOA
//! instances with `if` and bounded-`while` controls.
//!
//! Usage: `cargo run --release -p qdp-bench --bin table2`

fn main() {
    println!("Table 2 — compiler output on medium/large VQC instances");
    println!("(measured by this reproduction; paper values in parentheses)\n");
    let rows = qdp_bench::table2_rows();
    print!("{}", qdp_bench::render_comparison(&rows));

    // The invariant the table is meant to demonstrate (Prop. 7.2).
    let violations: Vec<_> = rows
        .iter()
        .filter(|(m, _)| m.derivative_programs > m.oc)
        .collect();
    println!(
        "\nProposition 7.2 (|#∂/∂θ(·)| ≤ OC(·)): {}",
        if violations.is_empty() {
            "holds on every row".to_string()
        } else {
            format!("VIOLATED on {} rows", violations.len())
        }
    );

    println!("\nShot-noise execution cost (Section 7 Chernoff budgets):\n");
    print!("{}", qdp_bench::render_shot_budgets(&rows, &[0.3, 0.1, 0.05]));

    // Multi-parameter case study: the per-gradient total Σj ⌈mj²/δ²⌉.
    let p2 = qdp_vqc::circuits::p2();
    let budget = qdp_ad::gradient_shot_budget(&p2, 0.1).expect("P2 differentiable");
    println!(
        "\nfull-gradient budget at δ=0.1 for P2(Θ,Φ,Ψ) ({} parameters): {budget} trajectories",
        p2.parameters().len()
    );
}
