//! Cache-correctness suite of the interned-program pipeline (PR 8).
//!
//! * **Memoization differential** — randomized branching programs, the
//!   interned [`qdp_ad::CompiledSkeleton`] against a fresh
//!   [`LoweredSet::lower`] of the same compiled multiset: expectation
//!   sweeps must agree **bitwise**, and [`TrajSkeleton`] slot-patching must
//!   reproduce the freshly-resolved trajectory's sampled runs bit for bit
//!   across successive valuations of one shared skeleton.
//! * **Collision probes** — near-miss programs (wider register, renamed
//!   parameter, ancilla-extended register, shifted constant angle) must
//!   fingerprint apart and intern as distinct entries; a *forced* key
//!   collision is covered by the in-module cache tests.
//! * **Concurrent first-touch** — 8 threads interning one program through
//!   a fresh cache must share a single compilation.
//! * **Compile-count acceptance** — a 36-parameter `P2`-shaped circuit's
//!   shift-rule gradient lowers exactly **one** program skeleton (the
//!   gadget path lowers 36 multisets / 72 programs for the same gradient),
//!   and the two paths agree to 1e-8.

use qdp_ad::{differentiate, lower_invocations, GradientEngine, LoweredSet, ProgramCache};
use qdp_lang::ast::{Angle, Gate, Params, Stmt, Var};
use qdp_lang::{parse_program, program_fingerprint, Register};
use qdp_linalg::{C64, Pauli};
use qdp_sim::{BatchedStates, Observable, ShotEngine, ShotSampler, StateVector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;

fn var(i: usize) -> Var {
    Var::new(format!("q{}", i + 1))
}

/// A random branching program over `n` qubits: rotations, couplings,
/// resets, computational `case`s, and bounded `while` loops.
fn random_branching_program(rng: &mut StdRng, n: usize, params: &[String], len: usize) -> Stmt {
    let axes = [Pauli::X, Pauli::Y, Pauli::Z];
    let mut stmts: Vec<Stmt> = Vec::with_capacity(len + n);
    for q in 0..n {
        stmts.push(Stmt::unitary(Gate::H, [var(q)]));
    }
    for _ in 0..len {
        let param = params[rng.gen_range(0..params.len())].clone();
        let axis = axes[rng.gen_range(0..3usize)];
        let q = rng.gen_range(0..n);
        match rng.gen_range(0..8usize) {
            0 | 1 => stmts.push(Stmt::rot(axis, param, var(q))),
            2 => stmts.push(Stmt::unitary(
                Gate::Rot {
                    axis,
                    angle: Angle {
                        param: Some(param),
                        offset: std::f64::consts::PI / 2.0,
                    },
                },
                [var(q)],
            )),
            3 if n >= 2 => {
                let mut q2 = rng.gen_range(0..n);
                while q2 == q {
                    q2 = rng.gen_range(0..n);
                }
                stmts.push(Stmt::unitary(
                    Gate::Coupling {
                        axis,
                        angle: Angle::param(param),
                    },
                    [var(q), var(q2)],
                ));
            }
            3 => stmts.push(Stmt::unitary(Gate::H, [var(q)])),
            4 => stmts.push(Stmt::init(var(q))),
            5 | 6 => {
                let other = params[rng.gen_range(0..params.len())].clone();
                stmts.push(Stmt::Case {
                    qs: vec![var(q)],
                    arms: vec![
                        Stmt::rot(axis, param, var((q + 1) % n)),
                        Stmt::rot(axes[rng.gen_range(0..3usize)], other, var(q)),
                    ],
                });
            }
            _ => stmts.push(Stmt::while_bounded(
                var(q),
                rng.gen_range(1..3usize) as u32,
                Stmt::rot(axis, param, var(q)),
            )),
        }
    }
    Stmt::seq(stmts)
}

/// A random normalised pure state on `n` qubits.
fn random_state(rng: &mut StdRng, n: usize) -> StateVector {
    let dim = 1usize << n;
    let mut amps: Vec<C64> = (0..dim)
        .map(|_| C64::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
        .collect();
    let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
    for a in &mut amps {
        *a *= C64::real(1.0 / norm);
    }
    StateVector::from_amplitudes(n, amps)
}

// ---------------------------------------------------------------------------
// Memoization differentials
// ---------------------------------------------------------------------------

#[test]
fn interned_lowering_matches_fresh_lowering_bitwise() {
    let mut rng = StdRng::seed_from_u64(0xCACE);
    for trial in 0..10 {
        let n = 1 + (trial % 4);
        let params: Vec<String> = (0..3).map(|i| format!("mz{i}")).collect();
        let program = random_branching_program(&mut rng, n, &params, 4 + trial % 6);
        let diff = differentiate(&program, &params[0]).unwrap();

        let skeleton = diff.skeleton();
        let fresh = LoweredSet::lower(diff.compiled(), diff.ext_register());
        assert_eq!(skeleton.lowered().param_names(), fresh.param_names());

        let values = Params::from_pairs(
            params
                .iter()
                .map(|p| (p.clone(), rng.gen::<f64>() * std::f64::consts::TAU)),
        );
        let slots = fresh.slot_values(&values);
        let ext_obs = Observable::pauli_z(n, 0).with_ancilla_z();
        let inputs: Vec<StateVector> = (0..5)
            .map(|_| StateVector::zero_state(1).tensor(&random_state(&mut rng, n)))
            .collect();
        let batch = BatchedStates::from_states(&inputs);

        let cached_out = skeleton.lowered().expectation_batch(&slots, &batch, &ext_obs);
        let fresh_out = fresh.expectation_batch(&slots, &batch, &ext_obs);
        for (r, (c, f)) in cached_out.iter().zip(&fresh_out).enumerate() {
            assert_eq!(
                c.to_bits(),
                f.to_bits(),
                "trial {trial} row {r}: cached {c} vs fresh {f}"
            );
        }
    }
}

#[test]
fn trajectory_skeleton_patching_matches_fresh_resolution_bitwise() {
    // Two successive valuations through ONE interned skeleton: patching
    // must leave no residue of the first valuation in the second, and each
    // patched trajectory must drive the shot engine bit-identically to a
    // freshly resolved one.
    let mut rng = StdRng::seed_from_u64(0x7A7A);
    for trial in 0..8 {
        let n = 1 + (trial % 4);
        let params: Vec<String> = (0..3).map(|i| format!("tk{i}")).collect();
        let program = random_branching_program(&mut rng, n, &params, 5);
        let reg = Register::from_program(&program);
        let skeleton = ProgramCache::new().intern(std::slice::from_ref(&program), &reg);
        let fresh = LoweredSet::lower(std::slice::from_ref(&program), &reg);

        for round in 0..2 {
            let values = Params::from_pairs(
                params
                    .iter()
                    .map(|p| (p.clone(), rng.gen::<f64>() * std::f64::consts::TAU)),
            );
            let slots = fresh.slot_values(&values);
            let patched = ShotEngine::new(skeleton.trajectory_at(0, &slots));
            let resolved = ShotEngine::new(fresh.programs()[0].resolve(&slots).to_trajectory());

            let inputs: Vec<StateVector> = (0..4).map(|_| random_state(&mut rng, reg.len())).collect();
            let seed = 0xF00 + (trial * 2 + round) as u64;
            let mut samplers_a: Vec<ShotSampler> = (0..inputs.len())
                .map(|r| ShotSampler::derived(seed, r as u64))
                .collect();
            let mut samplers_b: Vec<ShotSampler> = (0..inputs.len())
                .map(|r| ShotSampler::derived(seed, r as u64))
                .collect();
            let out_a = patched.run(BatchedStates::from_states(&inputs), &mut samplers_a);
            let out_b = resolved.run(BatchedStates::from_states(&inputs), &mut samplers_b);
            for (r, (a, b)) in out_a.iter().zip(&out_b).enumerate() {
                assert_eq!(a.outcomes, b.outcomes, "trial {trial} round {round} row {r}");
                match (&a.state, &b.state) {
                    (None, None) => {}
                    (Some(x), Some(y)) => {
                        for (k, (xa, ya)) in x.amplitudes().iter().zip(y.amplitudes()).enumerate() {
                            assert_eq!(
                                xa.re.to_bits(),
                                ya.re.to_bits(),
                                "trial {trial} round {round} row {r} amp {k} re"
                            );
                            assert_eq!(
                                xa.im.to_bits(),
                                ya.im.to_bits(),
                                "trial {trial} round {round} row {r} amp {k} im"
                            );
                        }
                    }
                    _ => panic!("abort status diverged on trial {trial} round {round} row {r}"),
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Collision probes: near-miss programs must not alias
// ---------------------------------------------------------------------------

#[test]
fn near_miss_programs_fingerprint_and_intern_apart() {
    let base = parse_program("q1 *= RX(np)").unwrap();
    let base_reg = Register::from_program(&base);

    let renamed = parse_program("q1 *= RX(nq)").unwrap();
    let wide_reg = Register::from_vars([Var::new("q1"), Var::new("q2")]);
    let ext_reg = base_reg.with_ancilla_front(Var::new("Anc"));
    let offset = Stmt::unitary(
        Gate::Rot {
            axis: Pauli::X,
            angle: Angle {
                param: Some("np".to_string()),
                offset: 0.25,
            },
        },
        [Var::new("q1")],
    );

    let fp = program_fingerprint(&base, &base_reg);
    assert_ne!(
        fp,
        program_fingerprint(&renamed, &Register::from_program(&renamed)),
        "parameter rename must change the fingerprint"
    );
    assert_ne!(
        fp,
        program_fingerprint(&base, &wide_reg),
        "register width must be part of the key"
    );
    assert_ne!(
        fp,
        program_fingerprint(&base, &ext_reg),
        "ancilla extension must be part of the key"
    );
    assert_ne!(
        fp,
        program_fingerprint(&offset, &base_reg),
        "constant angle offset must change the fingerprint"
    );

    // And a fresh cache keeps all five variants as distinct entries with
    // distinct skeletons.
    let cache = ProgramCache::new();
    let s_base = cache.intern(std::slice::from_ref(&base), &base_reg);
    let s_renamed = cache.intern(std::slice::from_ref(&renamed), &Register::from_program(&renamed));
    let s_wide = cache.intern(std::slice::from_ref(&base), &wide_reg);
    let s_ext = cache.intern(std::slice::from_ref(&base), &ext_reg);
    let s_offset = cache.intern(std::slice::from_ref(&offset), &base_reg);
    assert!(!Arc::ptr_eq(&s_base, &s_renamed));
    assert!(!Arc::ptr_eq(&s_base, &s_wide));
    assert!(!Arc::ptr_eq(&s_base, &s_ext));
    assert!(!Arc::ptr_eq(&s_base, &s_offset));
    assert_eq!(cache.unique_programs(), 5);
    assert_eq!(cache.total_lowers(), 5);
}

// ---------------------------------------------------------------------------
// Concurrent first-touch
// ---------------------------------------------------------------------------

#[test]
fn concurrent_first_touch_compiles_once() {
    let cache = Arc::new(ProgramCache::new());
    let program = vec![parse_program("q1 *= RX(ct); q2 *= RY(ct); q1, q2 *= RZZ(cu)").unwrap()];
    let reg = Register::from_program(&program[0]);
    let barrier = Arc::new(std::sync::Barrier::new(8));

    let handles: Vec<_> = (0..8)
        .map(|_| {
            let cache = Arc::clone(&cache);
            let program = program.clone();
            let reg = reg.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                cache.intern(&program, &reg)
            })
        })
        .collect();
    let skeletons: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for s in &skeletons[1..] {
        assert!(Arc::ptr_eq(&skeletons[0], s), "all threads must share one skeleton");
    }
    let stats = cache.stats(&program, &reg).unwrap();
    assert_eq!(stats.lowers, 1, "first touch must compile exactly once");
    assert_eq!(stats.hits, 7, "the other seven interns are hits");
}

// ---------------------------------------------------------------------------
// Compile-count acceptance: 36 parameters, ONE lowered skeleton
// ---------------------------------------------------------------------------

/// The paper's `Q(Γ)` rotation block with parameters `"{prefix}0..11"`
/// over `q1..q4` — rebuilt locally so this binary's copy of the circuit is
/// interned by this test alone (the process-wide cache is shared by every
/// test thread in the binary; a unique program makes the compile-count
/// delta exact).
fn rot_block(prefix: &str) -> Stmt {
    let mut stmts = Vec::with_capacity(12);
    for (stage, axis) in [Pauli::X, Pauli::Y, Pauli::Z].into_iter().enumerate() {
        for q in 0..4 {
            stmts.push(Stmt::rot(
                axis,
                format!("{prefix}{}", stage * 4 + q),
                var(q),
            ));
        }
    }
    Stmt::seq(stmts)
}

/// `P2`-shaped: `Q(Θ); case M[q1] = 0 → Q(Φ), 1 → Q(Ψ) end`, 36 params.
fn p2_shaped() -> Stmt {
    Stmt::seq([
        rot_block("cT"),
        Stmt::Case {
            qs: vec![Var::new("q1")],
            arms: vec![rot_block("cF"), rot_block("cS")],
        },
    ])
}

#[test]
fn shift_gradient_of_36_param_circuit_lowers_exactly_one_skeleton() {
    let program = p2_shaped();
    let engine = GradientEngine::new(&program).unwrap();
    assert_eq!(engine.parameters().count(), 36);
    assert!(engine.shift_rule_eligible(), "each of the 36 params occurs once per path");
    // The gadget path compiles one multiset per parameter; the shift path
    // evaluates ONE shared skeleton at 72 shifted valuations instead.
    assert_eq!(engine.total_programs(), 36);

    let params = Params::from_pairs(
        engine
            .parameters()
            .enumerate()
            .map(|(i, name)| (name.to_string(), 0.2 + 0.31 * i as f64)),
    );
    let obs = Observable::pauli_z(4, 0);
    let psi = StateVector::zero_state(4);

    // Lowering happens on the interning thread (inside the entry's
    // `get_or_init`), and this binary interns this circuit nowhere else,
    // so the thread-local invocation counter delta is exact.
    let before = lower_invocations();
    let shift = engine.gradient_pure_shift(&params, &obs, &psi);
    let after_shift = lower_invocations();
    assert_eq!(
        after_shift - before,
        1,
        "a 36-param shift gradient must lower exactly one program skeleton"
    );
    assert_eq!(shift.len(), 36);

    // Warm repeat: zero additional compilations, bit-identical results.
    let warm = engine.gradient_pure_shift(&params, &obs, &psi);
    assert_eq!(lower_invocations(), after_shift, "warm calls must not re-lower");
    for (name, v) in &shift {
        assert_eq!(v.to_bits(), warm[name].to_bits(), "∂/∂{name} drifted across cache states");
    }

    // The gadget path: one lowered multiset per parameter — the 36× cost
    // the shift path collapses — and the two gradients agree to 1e-8.
    let before_gadget = lower_invocations();
    let gadget = engine.gradient_pure(&params, &obs, &psi);
    assert_eq!(
        lower_invocations() - before_gadget,
        36,
        "the gadget path lowers one multiset per parameter"
    );
    for (name, v) in &gadget {
        assert!(
            (shift[name] - v).abs() < 1e-8,
            "∂/∂{name}: shift {} vs gadget {v}",
            shift[name]
        );
    }
}

#[test]
fn shift_rule_matches_gadget_gradient_on_branching_programs() {
    let sources = [
        "q1 *= RX(ga); q2 *= RY(gb); q1, q2 *= RZZ(gc); q2 *= RZ(gd)",
        "q1 *= RX(ga); case M[q1] = 0 -> q2 *= RY(gb), 1 -> q2 *= RZ(gc) end; q2 *= RX(gd)",
        "q1 *= H; q1 *= RY(ga); case M[q1] = 0 -> q2 *= RX(gb), 1 -> q2 := |0> end",
    ];
    let mut rng = StdRng::seed_from_u64(0x51F7);
    for (i, src) in sources.iter().enumerate() {
        let program = parse_program(src).unwrap();
        let engine = GradientEngine::new(&program).unwrap();
        assert!(engine.shift_rule_eligible(), "program {i}");
        let n = engine.register().len();
        let params = Params::from_pairs(
            engine
                .parameters()
                .map(|name| (name.to_string(), rng.gen::<f64>() * std::f64::consts::TAU)),
        );
        let obs = Observable::pauli_z(n, n - 1);
        for _ in 0..3 {
            let psi = random_state(&mut rng, n);
            let shift = engine.gradient_pure_shift(&params, &obs, &psi);
            let gadget = engine.gradient_pure(&params, &obs, &psi);
            let diffs: BTreeMap<&String, f64> = shift
                .iter()
                .map(|(name, v)| (name, (v - gadget[name]).abs()))
                .collect();
            assert!(
                diffs.values().all(|&d| d < 1e-8),
                "program {i}: shift vs gadget diverged: {diffs:?}"
            );
        }
    }
}

#[test]
#[should_panic(expected = "occur exactly once")]
fn shift_rule_rejects_parameters_that_repeat_along_a_path() {
    let program = parse_program("q1 *= RX(rp); q1 *= RY(rp)").unwrap();
    let engine = GradientEngine::new(&program).unwrap();
    assert!(!engine.shift_rule_eligible());
    let _ = engine.gradient_pure_shift(
        &Params::from_pairs([("rp", 0.4)]),
        &Observable::pauli_z(1, 0),
        &StateVector::zero_state(1),
    );
}
