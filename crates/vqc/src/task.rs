//! The classification task of Section 8.1: 4-bit parity-style labels.
//!
//! Inputs are `z = z1z2z3z4 ∈ {0,1}⁴` with true label
//! `f(z) = ¬(z1 ⊕ z4)`; the circuit reads `z` as a computational basis
//! state, and the predicted label is the probability of measuring the 4th
//! qubit as `1` (observable `|1⟩⟨1|` on `q4`).

use qdp_sim::{Observable, StateVector};

/// One labelled sample: the 4 input bits and the target label.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Sample {
    /// The input bits `z1..z4`.
    pub bits: [bool; 4],
    /// The target label `f(z) ∈ {0, 1}`.
    pub label: bool,
}

impl Sample {
    /// The basis state `|z⟩` on 4 qubits.
    pub fn input_state(&self) -> StateVector {
        StateVector::from_bits(&self.bits)
    }

    /// The label as a float target for the loss.
    pub fn target(&self) -> f64 {
        f64::from(self.label)
    }
}

/// The labelling function `f(z) = ¬(z1 ⊕ z4)` of the paper.
pub fn label_fn(bits: [bool; 4]) -> bool {
    !(bits[0] ^ bits[3])
}

/// The full 16-sample dataset the paper trains on.
pub fn dataset() -> Vec<Sample> {
    (0..16usize)
        .map(|z| {
            let bits = [
                z & 0b1000 != 0,
                z & 0b0100 != 0,
                z & 0b0010 != 0,
                z & 0b0001 != 0,
            ];
            Sample {
                bits,
                label: label_fn(bits),
            }
        })
        .collect()
}

/// The read-out observable `|1⟩⟨1|` on `q4` (qubit index 3 of 4).
pub fn readout_observable() -> Observable {
    Observable::projector_one(4, 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_has_16_distinct_samples() {
        let data = dataset();
        assert_eq!(data.len(), 16);
        for (i, a) in data.iter().enumerate() {
            for b in &data[i + 1..] {
                assert_ne!(a.bits, b.bits);
            }
        }
    }

    #[test]
    fn labels_match_the_paper_function() {
        assert!(label_fn([false, false, false, false])); // ¬(0⊕0) = 1
        assert!(!label_fn([true, false, false, false])); // ¬(1⊕0) = 0
        assert!(label_fn([true, true, true, true])); // ¬(1⊕1) = 1
        assert!(!label_fn([false, true, true, true])); // ¬(0⊕1) = 0
    }

    #[test]
    fn labels_are_balanced() {
        let positives = dataset().iter().filter(|s| s.label).count();
        assert_eq!(positives, 8);
    }

    #[test]
    fn input_states_are_basis_states() {
        for s in dataset() {
            let psi = s.input_state();
            assert_eq!(psi.num_qubits(), 4);
            assert!((psi.norm_sqr() - 1.0).abs() < 1e-15);
            for (q, &bit) in s.bits.iter().enumerate() {
                assert_eq!(psi.classical_bit(q), Some(bit), "{:?}", s.bits);
            }
        }
    }

    #[test]
    fn readout_distinguishes_q4() {
        let obs = readout_observable();
        let one = StateVector::from_bits(&[false, false, false, true]);
        let zero = StateVector::from_bits(&[false, false, false, false]);
        assert!((obs.expectation_pure(&one) - 1.0).abs() < 1e-12);
        assert!(obs.expectation_pure(&zero).abs() < 1e-12);
    }
}
