//! A real variational-quantum-eigensolver run driven by the paper's
//! differentiation scheme: minimise the energy of a transverse-field Ising
//! chain over a hardware-efficient ansatz written in the `q-while`
//! language, and compare against exact diagonalisation.
//!
//! This is the workload the paper's VQE benchmark family models
//! (Section 8.2, after Peruzzo et al. 2014).
//!
//! Run with: `cargo run --release --example vqe_ising`

use qdpl::ad::GradientEngine;
use qdpl::lang::ast::Params;
use qdpl::sim::StateVector;
use qdpl::vqc::hamiltonian::{hardware_efficient_ansatz, transverse_field_ising};
use std::collections::BTreeMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 4;
    let hamiltonian = transverse_field_ising(n, 1.0, 1.0);
    let exact_ground = hamiltonian.min_eigenvalue();
    println!("transverse-field Ising chain, {n} sites, J = h = 1");
    println!("exact ground energy (diagonalisation): {exact_ground:.6}\n");

    let ansatz = hardware_efficient_ansatz(n, 2);
    let engine = GradientEngine::new(&ansatz)?;
    println!(
        "ansatz: {} gates, {} parameters, {} derivative programs per gradient",
        ansatz.gate_count(),
        engine.parameters().count(),
        engine.total_programs()
    );

    // Deterministic small perturbation away from zero so gradients flow.
    let mut values: BTreeMap<String, f64> = engine
        .parameters()
        .enumerate()
        .map(|(i, name)| (name.to_string(), 0.1 + 0.05 * (i as f64 % 7.0)))
        .collect();
    let psi = StateVector::zero_state(n);

    let lr = 0.1;
    let epochs = 200;
    println!("\n{:>6} {:>14}", "step", "energy ⟨H⟩");
    let mut energy = f64::INFINITY;
    for step in 0..=epochs {
        let params = Params::from_pairs(values.iter().map(|(k, &v)| (k.clone(), v)));
        energy = engine.value_pure(&params, &hamiltonian, &psi);
        if step % 25 == 0 {
            println!("{step:>6} {energy:>14.6}");
        }
        if step == epochs {
            break;
        }
        let grad = engine.gradient_pure(&params, &hamiltonian, &psi);
        for (name, g) in grad {
            *values.get_mut(&name).expect("known parameter") -= lr * g;
        }
    }

    let gap = energy - exact_ground;
    println!("\nfinal VQE energy: {energy:.6} (exact {exact_ground:.6}, gap {gap:.6})");
    assert!(gap >= -1e-9, "variational principle: VQE cannot undershoot");
    assert!(gap < 0.15, "expected near-ground convergence, gap = {gap}");
    println!("variational convergence to the ground state: ok");
    Ok(())
}
