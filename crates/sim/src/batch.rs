//! Batched pure-state storage — the batch axis of the evaluation engine.
//!
//! Training (Section 8.1) and shot-noise execution evaluate the *same*
//! compiled program multiset against many input states: the 16-sample
//! classification dataset, parallel shot batches, sweeps over initial
//! conditions. [`BatchedStates`] stores those inputs contiguously as a
//! `batch × 2ⁿ` amplitude block — **split-plane** like [`StateVector`]: one
//! contiguous `f64` plane of real parts, one of imaginary parts — so that
//!
//! * a gate can be applied to every row with the operator matrix built
//!   **once** (the per-row kernels are the same bit-deposit fast paths
//!   [`crate::kernels::apply_matrix_planes`] uses for a single state,
//!   including the runtime-dispatched [`crate::simd`] vector tiers — rows
//!   are plane slices, so batches inherit the explicit kernels for free),
//! * batched evaluators can hand out disjoint row plane slices to `qdp_par`
//!   workers without any per-row allocation, and
//! * every future backend (stabilizer, shot-noise, multi-backend dispatch)
//!   inherits one batch seam instead of inventing its own.
//!
//! Row `r` occupies plane entries `[r·2ⁿ, (r+1)·2ⁿ)`; rows never alias. All
//! per-row operations perform the identical floating-point instructions as
//! the corresponding single-[`StateVector`] operation, so a batched
//! evaluation agrees **bit-for-bit** with the per-sample loop it replaces,
//! regardless of thread count, batch size, or cache-tile boundaries.

use crate::kernels::{apply_matrix_planes, planes_to_aos};
use crate::lanes;
use crate::observable::Observable;
use crate::state::StateVector;
use qdp_linalg::{C64, Matrix};

/// Cap, in amplitudes, on the row blocks [`BatchedStates::apply_gate`]
/// hands to one kernel call: `2¹⁴` amplitudes = 256 KiB of plane data,
/// comfortably inside a per-core L2. A gate then streams each tile's two
/// planes once while they stay cache-resident across the row block, instead
/// of walking a batch-sized footprint per call. Tiling never changes
/// results: every amplitude's arithmetic depends only on its own orbit.
pub const L2_TILE_AMPS: usize = 1 << 14;

/// A batch of pure states of a common register, stored contiguously.
///
/// # Examples
///
/// ```
/// use qdp_linalg::Matrix;
/// use qdp_sim::{BatchedStates, StateVector};
///
/// let inputs = vec![StateVector::zero_state(2), StateVector::basis_state(2, 3)];
/// let mut batch = BatchedStates::from_states(&inputs);
/// batch.apply_gate(&Matrix::hadamard(), &[0]);
/// for (r, input) in inputs.iter().enumerate() {
///     // Each row evolves exactly as the single-state path would.
///     let expected = input.with_gate(&Matrix::hadamard(), &[0]);
///     assert_eq!(batch.row(r), expected.amplitudes());
/// }
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct BatchedStates {
    n_qubits: usize,
    rows: usize,
    re: Vec<f64>,
    im: Vec<f64>,
}

impl BatchedStates {
    /// A batch of `rows` copies of `|0…0⟩` on `n_qubits`.
    pub fn zero(rows: usize, n_qubits: usize) -> Self {
        let dim = 1usize << n_qubits;
        let mut re = vec![0.0; rows * dim];
        let im = vec![0.0; rows * dim];
        for r in 0..rows {
            re[r * dim] = 1.0;
        }
        BatchedStates { n_qubits, rows, re, im }
    }

    /// Packs a slice of states (all on the same register) into one batch.
    ///
    /// # Panics
    ///
    /// Panics when the states disagree on qubit count. An empty slice
    /// yields an empty batch over zero qubits.
    pub fn from_states(states: &[StateVector]) -> Self {
        let n_qubits = states.first().map_or(0, StateVector::num_qubits);
        let dim = 1usize << n_qubits;
        let mut re = Vec::with_capacity(states.len() * dim);
        let mut im = Vec::with_capacity(states.len() * dim);
        for s in states {
            assert_eq!(
                s.num_qubits(),
                n_qubits,
                "all states of a batch must share one register"
            );
            let (sre, sim) = s.planes();
            re.extend_from_slice(sre);
            im.extend_from_slice(sim);
        }
        BatchedStates {
            n_qubits,
            rows: states.len(),
            re,
            im,
        }
    }

    /// Builds a batch by gathering borrowed rows — the admission path of a
    /// request coalescer, where the inputs of concurrently queued clients
    /// live in separate allocations and are tiled into one contiguous block
    /// for a single kernel sweep.
    ///
    /// # Panics
    ///
    /// Panics when the rows disagree on the register width.
    pub fn gather(rows: &[&StateVector]) -> Self {
        let n_qubits = rows.first().map_or(0, |s| s.num_qubits());
        let dim = 1usize << n_qubits;
        let mut re = Vec::with_capacity(rows.len() * dim);
        let mut im = Vec::with_capacity(rows.len() * dim);
        for s in rows {
            assert_eq!(
                s.num_qubits(),
                n_qubits,
                "all states of a batch must share one register"
            );
            let (sre, sim) = s.planes();
            re.extend_from_slice(sre);
            im.extend_from_slice(sim);
        }
        BatchedStates {
            n_qubits,
            rows: rows.len(),
            re,
            im,
        }
    }

    /// A batch of `rows` copies of one state — the starting block of a shot
    /// sweep (every trajectory departs from the same prepared input). Built
    /// in one pass over the contiguous planes.
    pub fn repeat(psi: &StateVector, rows: usize) -> Self {
        let dim = psi.dim();
        let mut re = Vec::with_capacity(rows * dim);
        let mut im = Vec::with_capacity(rows * dim);
        let (sre, sim) = psi.planes();
        for _ in 0..rows {
            re.extend_from_slice(sre);
            im.extend_from_slice(sim);
        }
        BatchedStates {
            n_qubits: psi.num_qubits(),
            rows,
            re,
            im,
        }
    }

    /// Builds a batch from raw contiguous planes.
    ///
    /// # Panics
    ///
    /// Panics when the planes disagree in length or don't hold
    /// `rows · 2^n_qubits` entries.
    pub fn from_raw(rows: usize, n_qubits: usize, re: Vec<f64>, im: Vec<f64>) -> Self {
        assert_eq!(re.len(), im.len(), "re/im planes must have equal lengths");
        assert_eq!(
            re.len(),
            rows << n_qubits,
            "amplitude block must hold rows × 2^n entries"
        );
        BatchedStates { n_qubits, rows, re, im }
    }

    /// Number of rows (input states) in the batch.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Returns `true` when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Qubit count of every row.
    pub fn num_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Hilbert-space dimension `2ⁿ` of one row.
    pub fn dim(&self) -> usize {
        1usize << self.n_qubits
    }

    /// Gathers the full block into an owned interleaved copy — interop and
    /// oracle view only; hot loops read [`planes`](Self::planes).
    pub fn amplitudes(&self) -> Vec<C64> {
        planes_to_aos(&self.re, &self.im)
    }

    /// Borrows the full contiguous `(re, im)` planes.
    pub fn planes(&self) -> (&[f64], &[f64]) {
        (&self.re, &self.im)
    }

    /// Mutably borrows the full contiguous `(re, im)` planes.
    pub fn planes_mut(&mut self) -> (&mut [f64], &mut [f64]) {
        (&mut self.re, &mut self.im)
    }

    /// Gathers row `r` into an owned interleaved copy.
    ///
    /// # Panics
    ///
    /// Panics when `r` is out of range.
    pub fn row(&self, r: usize) -> Vec<C64> {
        let (re, im) = self.row_planes(r);
        planes_to_aos(re, im)
    }

    /// Borrows row `r`'s `(re, im)` planes.
    ///
    /// # Panics
    ///
    /// Panics when `r` is out of range.
    pub fn row_planes(&self, r: usize) -> (&[f64], &[f64]) {
        let dim = self.dim();
        debug_assert!(r < self.rows, "row {r} out of range for {} rows", self.rows);
        (&self.re[r * dim..(r + 1) * dim], &self.im[r * dim..(r + 1) * dim])
    }

    /// Mutably borrows row `r`'s `(re, im)` planes.
    ///
    /// # Panics
    ///
    /// Panics when `r` is out of range.
    pub fn row_planes_mut(&mut self, r: usize) -> (&mut [f64], &mut [f64]) {
        let dim = self.dim();
        debug_assert!(r < self.rows, "row {r} out of range for {} rows", self.rows);
        (
            &mut self.re[r * dim..(r + 1) * dim],
            &mut self.im[r * dim..(r + 1) * dim],
        )
    }

    /// Copies row `r` out into an owned [`StateVector`] — for results that
    /// must outlive the batch. Hot loops that only *read* a row should use
    /// the [`row_planes`](Self::row_planes) borrow (every `qdp-sim` per-row
    /// primitive has a plane form precisely so no owned state is needed).
    pub fn row_state(&self, r: usize) -> StateVector {
        let (re, im) = self.row_planes(r);
        StateVector::from_planes(self.n_qubits, re.to_vec(), im.to_vec())
    }

    /// Iterates over the row plane pairs in order.
    pub fn iter_row_planes(&self) -> impl Iterator<Item = (&[f64], &[f64])> {
        let dim = self.dim();
        self.re.chunks_exact(dim).zip(self.im.chunks_exact(dim))
    }

    /// Consumes the batch and returns its contiguous planes — the inverse
    /// of [`from_raw`](Self::from_raw), letting executors recycle a spent
    /// group's allocations instead of dropping them.
    pub fn into_raw(self) -> (Vec<f64>, Vec<f64>) {
        (self.re, self.im)
    }

    /// Per-row squared norms in row order, written into `out` (cleared and
    /// refilled): one pass over the contiguous planes, each row summed by
    /// the identical lane-split reduction [`StateVector::norm_sqr`]
    /// performs — so entries match per-row calls bit for bit.
    pub fn row_norms_sqr_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.iter_row_planes().map(|(re, im)| lanes::sum_norm_sqr(re, im)));
    }

    /// Applies an operator to **every** row on the given targets.
    ///
    /// A contiguous block of `2ᵏ` rows is indistinguishable from one
    /// `(k+n)`-qubit state whose `k` high (row-index) bits the gate never
    /// touches, so the batch is decomposed greedily into maximal
    /// power-of-two row blocks — capped at [`L2_TILE_AMPS`] amplitudes so a
    /// tile's planes stay L2-resident — and each block is handled by a
    /// **single** [`apply_matrix_planes`] call on targets shifted past the
    /// row bits: the same bit-deposit kernels as the single-state path,
    /// with their per-call dispatch amortised over the whole tile.
    ///
    /// Register qubit `q` of every row sits at bit `n−1−q` of its row-local
    /// index regardless of the block size, so each amplitude sees the
    /// identical floating-point operations a per-row
    /// [`StateVector::apply_gate`] would perform: results are bit-for-bit
    /// equal to the per-row loop, under any thread count, batch size, or
    /// tile cap.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or duplicate targets.
    pub fn apply_gate(&mut self, gate: &Matrix, targets: &[usize]) {
        if self.rows == 0 {
            return;
        }
        let dim = self.dim();
        let n = self.n_qubits;
        // Largest row-block exponent that keeps one tile within the cache
        // budget (at least one row, however large the register).
        let k_cap = if dim >= L2_TILE_AMPS { 0 } else { (L2_TILE_AMPS / dim).ilog2() as usize };
        let mut rest_re: &mut [f64] = &mut self.re;
        let mut rest_im: &mut [f64] = &mut self.im;
        let mut remaining = self.rows;
        // Shift targets past the row bits on the stack for the common
        // k ≤ 2 operators — one heap round trip per kernel call otherwise.
        let mut small = [0usize; 2];
        let mut spilled: Vec<usize>;
        while remaining > 0 {
            let k = (remaining.ilog2() as usize).min(k_cap);
            let block_rows = 1usize << k;
            let (block_re, tail_re) = rest_re.split_at_mut(block_rows * dim);
            let (block_im, tail_im) = rest_im.split_at_mut(block_rows * dim);
            let shifted: &[usize] = if targets.len() <= 2 {
                for (slot, &t) in small.iter_mut().zip(targets) {
                    *slot = t + k;
                }
                &small[..targets.len()]
            } else {
                spilled = targets.iter().map(|&t| t + k).collect();
                &spilled
            };
            apply_matrix_planes(block_re, block_im, n + k, gate, shifted);
            rest_re = tail_re;
            rest_im = tail_im;
            remaining -= block_rows;
        }
        crate::fault::kernel_checkpoint(self.n_qubits, self.rows, &mut self.re, &mut self.im);
    }

    /// The batch `{|0⟩ ⊗ |ψr⟩}` — every row extended by a fresh ancilla
    /// qubit prepended at index 0 in the `|0⟩` state. This is the batched
    /// analogue of [`StateVector::tensor`] with a leading zero ancilla,
    /// built in one pass over the planes.
    pub fn prepend_zero_ancilla(&self) -> BatchedStates {
        let dim = self.dim();
        let mut re = vec![0.0; self.rows * dim * 2];
        let mut im = vec![0.0; self.rows * dim * 2];
        for r in 0..self.rows {
            let (rre, rim) = self.row_planes(r);
            re[r * dim * 2..r * dim * 2 + dim].copy_from_slice(rre);
            im[r * dim * 2..r * dim * 2 + dim].copy_from_slice(rim);
        }
        BatchedStates {
            n_qubits: self.n_qubits + 1,
            rows: self.rows,
            re,
            im,
        }
    }

    /// Per-row expectation values `⟨ψr|O|ψr⟩` in row order, read straight
    /// off the row planes (no copies; the observable's target masks are
    /// computed once for the whole batch).
    ///
    /// # Panics
    ///
    /// Panics when the observable's register size differs.
    pub fn expectations(&self, obs: &Observable) -> Vec<f64> {
        obs.expectation_batch(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_batch_rows_are_zero_states() {
        let b = BatchedStates::zero(3, 2);
        assert_eq!(b.len(), 3);
        assert_eq!(b.dim(), 4);
        for r in 0..3 {
            assert_eq!(b.row_state(r), StateVector::zero_state(2));
        }
    }

    #[test]
    fn from_states_round_trips() {
        let states = vec![
            StateVector::basis_state(2, 1),
            StateVector::basis_state(2, 2),
            StateVector::zero_state(2),
        ];
        let b = BatchedStates::from_states(&states);
        for (r, s) in states.iter().enumerate() {
            assert_eq!(&b.row_state(r), s);
        }
        assert_eq!(b.iter_row_planes().count(), 3);
    }

    #[test]
    fn batched_gate_matches_per_state_gate_bitwise() {
        let mut states: Vec<StateVector> = (0..5)
            .map(|k| StateVector::basis_state(3, k))
            .collect();
        let mut batch = BatchedStates::from_states(&states);
        let h = Matrix::hadamard();
        let cnot = Matrix::cnot();
        batch.apply_gate(&h, &[1]);
        batch.apply_gate(&cnot, &[1, 2]);
        for s in &mut states {
            s.apply_gate(&h, &[1]);
            s.apply_gate(&cnot, &[1, 2]);
        }
        for (r, s) in states.iter().enumerate() {
            assert_eq!(batch.row(r), s.amplitudes(), "row {r}");
        }
    }

    #[test]
    fn tiled_blocks_match_per_state_gate_bitwise() {
        // 40 rows of 10 qubits = 40960 amps > L2_TILE_AMPS: apply_gate must
        // tile (16 + 16 + 8 rows) yet agree with the per-row path exactly.
        const { assert!(40 << 10 > L2_TILE_AMPS) };
        let mut states: Vec<StateVector> = (0..40)
            .map(|k| StateVector::basis_state(10, k * 17 % 1024))
            .collect();
        let mut batch = BatchedStates::from_states(&states);
        let h = Matrix::hadamard();
        let rz = Matrix::rotation_from_involution(&Matrix::pauli_z(), 0.4);
        batch.apply_gate(&h, &[3]);
        batch.apply_gate(&rz, &[9]);
        for s in &mut states {
            s.apply_gate(&h, &[3]);
            s.apply_gate(&rz, &[9]);
        }
        for (r, s) in states.iter().enumerate() {
            assert_eq!(batch.row(r), s.amplitudes(), "row {r}");
        }
    }

    #[test]
    fn prepend_zero_ancilla_matches_tensor() {
        let mut plus = StateVector::zero_state(2);
        plus.apply_gate(&Matrix::hadamard(), &[0]);
        let batch = BatchedStates::from_states(&[plus.clone(), StateVector::basis_state(2, 3)]);
        let ext = batch.prepend_zero_ancilla();
        assert_eq!(ext.num_qubits(), 3);
        let expected0 = StateVector::zero_state(1).tensor(&plus);
        assert_eq!(ext.row(0), expected0.amplitudes());
        let expected1 = StateVector::zero_state(1).tensor(&StateVector::basis_state(2, 3));
        assert_eq!(ext.row(1), expected1.amplitudes());
    }

    #[test]
    fn expectations_match_single_state_path() {
        let states = vec![
            StateVector::zero_state(2),
            StateVector::basis_state(2, 2),
        ];
        let b = BatchedStates::from_states(&states);
        let z = Observable::pauli_z(2, 0);
        let expect = b.expectations(&z);
        for (r, s) in states.iter().enumerate() {
            assert_eq!(expect[r], z.expectation_pure(s));
        }
    }

    #[test]
    fn empty_batch_is_harmless() {
        let mut b = BatchedStates::from_states(&[]);
        assert!(b.is_empty());
        b.apply_gate(&Matrix::identity(1), &[]);
        assert_eq!(b.expectations(&Observable::new(0, vec![], Matrix::identity(1))).len(), 0);
    }

    #[test]
    fn row_norms_match_per_row_norm_sqr_bitwise() {
        let mut states: Vec<StateVector> = (0..4).map(|k| StateVector::basis_state(2, k)).collect();
        for (k, s) in states.iter_mut().enumerate() {
            s.apply_gate(&Matrix::hadamard(), &[k % 2]);
            s.scale(C64::new(0.6, -0.3));
        }
        let b = BatchedStates::from_states(&states);
        let mut norms = vec![99.0];
        b.row_norms_sqr_into(&mut norms);
        assert_eq!(norms.len(), 4);
        for (r, s) in states.iter().enumerate() {
            assert_eq!(norms[r].to_bits(), s.norm_sqr().to_bits(), "row {r}");
        }
    }

    #[test]
    fn into_raw_round_trips_through_from_raw() {
        let b = BatchedStates::zero(3, 2);
        let (re, im) = b.clone().into_raw();
        assert_eq!(re.len(), 12);
        assert_eq!(BatchedStates::from_raw(3, 2, re, im), b);
    }

    #[test]
    #[should_panic(expected = "share one register")]
    fn mixed_register_sizes_panic() {
        let _ = BatchedStates::from_states(&[
            StateVector::zero_state(1),
            StateVector::zero_state(2),
        ]);
    }
}
