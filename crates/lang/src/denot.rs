//! Denotational semantics (Fig. 1b of the paper).
//!
//! `[[P]]` is a superoperator on partial density operators:
//!
//! ```text
//! [[abort]]ρ  = 0                  [[skip]]ρ = ρ
//! [[q:=|0⟩]]ρ = E_{q→0}(ρ)         [[U]]ρ    = UρU†
//! [[P1;P2]]ρ  = [[P2]]([[P1]]ρ)
//! [[case]]ρ   = Σm [[Pm]](Em(ρ))
//! [[while(T)]]ρ = Σ_{n<T} E0 ∘ ([[P1]] ∘ E1)ⁿ (ρ)
//! ```
//!
//! Two engines are provided: the reference density-operator interpreter
//! [`denote`], and a faster branching pure-state engine
//! ([`run_pure_branches`]) exploiting that every primitive maps pure states
//! to (finitely many) pure states. They agree — see the cross-check tests.

use crate::ast::{Params, Stmt};
use crate::register::Register;
use qdp_linalg::Matrix;
use qdp_sim::{DensityMatrix, Measurement, Observable, StateVector};

/// Evaluates `[[stmt]]ρ` for a *normal* program.
///
/// # Panics
///
/// Panics when the program contains additive choice (`Sum`) — additive
/// programs have multiset semantics, see [`crate::op_sem::trace_multiset`] —
/// or when a referenced variable/parameter is unbound.
///
/// # Examples
///
/// ```
/// use qdp_lang::{denot, parse_program, Register};
/// use qdp_lang::ast::Params;
/// use qdp_sim::DensityMatrix;
///
/// let p = parse_program("q1 *= H; q1 *= H")?;
/// let reg = Register::from_program(&p);
/// let rho = DensityMatrix::pure_zero(reg.len());
/// let out = denot::denote(&p, &reg, &Params::new(), &rho);
/// assert!(out.approx_eq(&rho, 1e-12)); // H;H = identity
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn denote(stmt: &Stmt, reg: &Register, params: &Params, rho: &DensityMatrix) -> DensityMatrix {
    match stmt {
        Stmt::Abort { .. } => DensityMatrix::zero_operator(rho.num_qubits()),
        Stmt::Skip { .. } => rho.clone(),
        Stmt::Init { q } => {
            let mut out = rho.clone();
            out.initialize_qubit(reg.indices_of(std::slice::from_ref(q))[0]);
            out
        }
        Stmt::Unitary { gate, qs } => {
            let mut out = rho.clone();
            out.apply_unitary(&gate.matrix(params), &reg.indices_of(qs));
            out
        }
        Stmt::Seq(a, b) => {
            let mid = denote(a, reg, params, rho);
            denote(b, reg, params, &mid)
        }
        Stmt::Case { qs, arms } => {
            let meas = Measurement::computational(reg.indices_of(qs));
            let mut acc = DensityMatrix::zero_operator(rho.num_qubits());
            for (m, arm) in arms.iter().enumerate() {
                let branch = meas.branch(rho, m);
                if branch.trace() > 1e-30 {
                    acc.add_assign(&denote(arm, reg, params, &branch));
                }
            }
            acc
        }
        Stmt::While { q, bound, body } => {
            let meas = Measurement::computational(reg.indices_of(std::slice::from_ref(q)));
            let mut acc = DensityMatrix::zero_operator(rho.num_qubits());
            let mut cur = rho.clone();
            for _ in 0..*bound {
                acc.add_assign(&meas.branch(&cur, 0));
                let continuing = meas.branch(&cur, 1);
                if continuing.trace() <= 1e-30 {
                    return acc;
                }
                cur = denote(body, reg, params, &continuing);
            }
            acc
        }
        Stmt::Sum(..) => panic!(
            "denote is defined on normal programs; compile the additive program first \
             (or use op_sem::trace_multiset)"
        ),
    }
}

/// Runs a normal program on a pure input, returning the unnormalised pure
/// branches whose outer-product sum equals `[[stmt]]|ψ⟩⟨ψ|`.
///
/// Branches with squared norm below `1e-24` are pruned.
///
/// # Panics
///
/// Panics on additive programs.
pub fn run_pure_branches(
    stmt: &Stmt,
    reg: &Register,
    params: &Params,
    psi: &StateVector,
) -> Vec<StateVector> {
    let mut out = Vec::new();
    run_pure_into(stmt, reg, params, psi.clone(), &mut out);
    out
}

/// Ownership-threading worker behind [`run_pure_branches`]: straight-line
/// segments mutate the incoming state in place (zero clones, zero
/// per-gate vectors); only measurement branch points fork the state.
fn run_pure_into(
    stmt: &Stmt,
    reg: &Register,
    params: &Params,
    mut psi: StateVector,
    out: &mut Vec<StateVector>,
) {
    const PRUNE: f64 = 1e-24;
    match stmt {
        Stmt::Abort { .. } => {}
        Stmt::Skip { .. } => out.push(psi),
        Stmt::Init { q } => {
            let idx = reg.indices_of(std::slice::from_ref(q))[0];
            let k0 = Matrix::from_real_rows(&[&[1.0, 0.0], &[0.0, 0.0]]);
            let k1 = Matrix::from_real_rows(&[&[0.0, 1.0], &[0.0, 0.0]]);
            let b1 = psi.with_gate(&k1, &[idx]);
            psi.apply_gate(&k0, &[idx]);
            for s in [psi, b1] {
                if s.norm_sqr() > PRUNE {
                    out.push(s);
                }
            }
        }
        Stmt::Unitary { gate, qs } => {
            psi.apply_gate(&gate.matrix(params), &reg.indices_of(qs));
            out.push(psi);
        }
        Stmt::Seq(a, b) => {
            let mut mids = Vec::new();
            run_pure_into(a, reg, params, psi, &mut mids);
            for mid in mids {
                run_pure_into(b, reg, params, mid, out);
            }
        }
        Stmt::Case { qs, arms } => {
            let meas = Measurement::computational(reg.indices_of(qs));
            for b in meas.branches_pure(&psi) {
                if b.probability > PRUNE {
                    run_pure_into(&arms[b.outcome], reg, params, b.state, out);
                }
            }
        }
        Stmt::While { .. } => {
            run_pure_into(&stmt.unfold_while_once(), reg, params, psi, out);
        }
        Stmt::Sum(..) => panic!("run_pure_branches is defined on normal programs"),
    }
}

/// Sums `⟨ψb|O|ψb⟩` over the pure branches of a program run — equal to
/// `tr(O · [[stmt]]|ψ⟩⟨ψ|)` but usually much cheaper than the density
/// engine.
pub fn expectation_pure(
    stmt: &Stmt,
    reg: &Register,
    params: &Params,
    psi: &StateVector,
    obs: &Observable,
) -> f64 {
    run_pure_branches(stmt, reg, params, psi)
        .iter()
        .map(|b| obs.expectation_pure(b))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Var;
    use crate::parser::parse_program;
    use qdp_linalg::Pauli;

    fn eval(src: &str, params: &[(&str, f64)]) -> (Stmt, Register, Params) {
        let p = parse_program(src).unwrap();
        let reg = Register::from_program(&p);
        let params = Params::from_pairs(params.iter().map(|&(k, v)| (k, v)));
        (p, reg, params)
    }

    #[test]
    fn abort_denotes_zero() {
        let (p, reg, params) = eval("abort[q1]", &[]);
        let out = denote(&p, &reg, &params, &DensityMatrix::pure_zero(1));
        assert_eq!(out.trace(), 0.0);
    }

    #[test]
    fn skip_is_identity() {
        let (p, reg, params) = eval("skip[q1]", &[]);
        let rho = DensityMatrix::pure_zero(1);
        assert!(denote(&p, &reg, &params, &rho).approx_eq(&rho, 1e-15));
    }

    #[test]
    fn case_sums_branches() {
        // H then measure: ½|0⟩⟨0| (skip branch) + ½|1⟩⟨1| flipped to |0⟩⟨0|.
        let (p, reg, params) = eval(
            "q1 *= H; case M[q1] = 0 -> skip[q1], 1 -> q1 *= X end",
            &[],
        );
        let out = denote(&p, &reg, &params, &DensityMatrix::pure_zero(1));
        assert!(out.approx_eq(&DensityMatrix::pure_zero(1), 1e-12));
    }

    #[test]
    fn case_with_abort_loses_probability() {
        let (p, reg, params) = eval(
            "q1 *= H; case M[q1] = 0 -> skip[q1], 1 -> abort[q1] end",
            &[],
        );
        let out = denote(&p, &reg, &params, &DensityMatrix::pure_zero(1));
        assert!((out.trace() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn while_iterates_at_most_bound_times() {
        // Guard always 1 (X sets q1 to |1⟩ before loop) and the body never
        // clears it, so after T iterations the remaining trace aborts.
        let (p, reg, params) = eval(
            "q1 *= X; while[3] M[q1] = 1 do skip[q1] done",
            &[],
        );
        let out = denote(&p, &reg, &params, &DensityMatrix::pure_zero(1));
        // Guard outcome is always 1, body never flips, loop exhausts: zero.
        assert!(out.trace() < 1e-12);
    }

    #[test]
    fn while_exits_when_guard_clears() {
        // Body flips q1 from 1 to 0, so exactly one iteration happens.
        let (p, reg, params) = eval(
            "q1 *= X; while[3] M[q1] = 1 do q1 *= X done",
            &[],
        );
        let out = denote(&p, &reg, &params, &DensityMatrix::pure_zero(1));
        assert!((out.trace() - 1.0).abs() < 1e-12);
        assert!(out.approx_eq(&DensityMatrix::pure_zero(1), 1e-12));
    }

    #[test]
    fn while_matches_macro_unfolding() {
        let (p, reg, params) = eval(
            "q1 *= RY(0.9); while[2] M[q1] = 1 do q1 *= RY(0.7) done",
            &[],
        );
        let Stmt::Seq(prefix, w) = &p else { panic!() };
        let rho = denote(prefix, &reg, &params, &DensityMatrix::pure_zero(1));
        let direct = denote(w, &reg, &params, &rho);
        let unfolded = denote(&w.unfold_while_once(), &reg, &params, &rho);
        assert!(direct.approx_eq(&unfolded, 1e-12));
    }

    #[test]
    fn pure_engine_matches_density_engine() {
        let (p, reg, params) = eval(
            "q1 *= RX(a); case M[q1] = 0 -> q2 *= RY(b), 1 -> q2 := |0>; q1, q2 *= RZZ(a) end; \
             while[2] M[q2] = 1 do q1 *= RZ(b) done",
            &[("a", 0.8), ("b", -0.4)],
        );
        let psi = StateVector::zero_state(reg.len())
            .with_gate(&Matrix::hadamard(), &[0])
            .with_gate(&Matrix::cnot(), &[0, 1]);
        let rho = DensityMatrix::from_pure(&psi);
        let dense = denote(&p, &reg, &params, &rho);
        let branches = run_pure_branches(&p, &reg, &params, &psi);
        let mut from_pure = DensityMatrix::zero_operator(reg.len());
        for b in &branches {
            from_pure.add_assign(&DensityMatrix::from_pure(b));
        }
        assert!(dense.approx_eq(&from_pure, 1e-10));
        // Expectation shortcut agrees too.
        let obs = Observable::pauli_z(reg.len(), 0);
        let lhs = obs.expectation(&dense);
        let rhs = expectation_pure(&p, &reg, &params, &psi, &obs);
        assert!((lhs - rhs).abs() < 1e-10);
    }

    #[test]
    fn init_on_entangled_pure_state_branches() {
        let p = Stmt::seq([
            Stmt::unitary(crate::ast::Gate::H, [Var::new("q1")]),
            Stmt::unitary(crate::ast::Gate::Cnot, [Var::new("q1"), Var::new("q2")]),
            Stmt::init("q1"),
        ]);
        let reg = Register::from_program(&p);
        let psi = StateVector::zero_state(2);
        let branches = run_pure_branches(&p, &reg, &Params::new(), &psi);
        assert_eq!(branches.len(), 2);
        let total: f64 = branches.iter().map(StateVector::norm_sqr).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rotation_parameters_feed_through() {
        let (p, reg, params) = eval("q1 *= RY(t)", &[("t", std::f64::consts::PI)]);
        // RY(π)|0⟩ = |1⟩ (up to phase).
        let out = denote(&p, &reg, &params, &DensityMatrix::pure_zero(1));
        let one = DensityMatrix::from_pure(&StateVector::basis_state(1, 1));
        assert!(out.approx_eq(&one, 1e-12));
        let _ = Pauli::Y; // axis used via parser
    }

    #[test]
    #[should_panic(expected = "normal programs")]
    fn additive_programs_are_rejected() {
        let p = Stmt::sum([Stmt::skip([Var::new("q1")]), Stmt::abort([Var::new("q1")])]);
        let reg = Register::from_program(&p);
        denote(&p, &reg, &Params::new(), &DensityMatrix::pure_zero(1));
    }
}
