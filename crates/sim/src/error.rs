//! Structured errors and numerical-health policies for fault-tolerant
//! execution.
//!
//! The engine's hot paths fan work out across `qdp_par` workers and trust
//! amplitudes to stay finite and norm-preserving between measurement
//! boundaries. [`QdpError`] is the typed surface a caller sees when either
//! assumption breaks: a worker tile panicked ([`QdpError::WorkerPanic`],
//! lifted from [`qdp_par::TileError`]), an amplitude sweep observed a
//! NaN/Inf ([`QdpError::NonFinite`]) or a norm that drifted outside
//! tolerance ([`QdpError::NormDrift`]), or an engine was configured with
//! invalid inputs ([`QdpError::InvalidMassBudget`],
//! [`QdpError::InvalidPrecision`]).
//!
//! [`HealthPolicy`] selects what a monitored engine does when a row fails
//! a health check; [`HealthConfig`] pairs the policy with the drift
//! tolerance. Monitoring is opt-in per engine — the default (no monitor)
//! adds zero work and keeps results bit-identical to the unmonitored
//! engine.

/// What a health-monitored engine does when a row fails a numerical check
/// at a measurement boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthPolicy {
    /// Abort the sweep with a typed [`QdpError`] naming the first failing
    /// row (lowest original row index — deterministic under any thread
    /// count).
    FailFast,
    /// Rescale the drifted row back to its expected norm and continue.
    /// Only finite drift is repairable: NaN/Inf amplitudes still fail
    /// fast, because there is no scale factor that undoes them.
    Renormalize,
    /// Drop the affected rows from the batched sweep and re-run each of
    /// them from its original input on the retained per-row reference
    /// path (serial branch enumeration for exact sweeps, serial
    /// trajectory replay for sampled sweeps). Healthy rows keep their
    /// batched bits.
    DegradeToOracle,
}

/// Per-engine numerical-health configuration: the recovery policy plus the
/// relative norm-drift tolerance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HealthConfig {
    /// Recovery policy for rows that fail a check.
    pub policy: HealthPolicy,
    /// Maximum tolerated relative drift `|actual − expected| / expected`
    /// of a row's squared norm between measurement boundaries. Unitary
    /// gates preserve norms to machine precision, so a handful of ulps of
    /// headroom suffices; the default is `1e-9`.
    pub drift_tol: f64,
}

impl HealthConfig {
    /// A config with the given policy and the default `1e-9` drift
    /// tolerance.
    pub fn with_policy(policy: HealthPolicy) -> Self {
        HealthConfig { policy, drift_tol: 1e-9 }
    }
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig::with_policy(HealthPolicy::FailFast)
    }
}

/// A structured execution error: the typed alternative to the panics the
/// infallible entry points keep for backwards compatibility.
#[derive(Clone, Debug, PartialEq)]
pub enum QdpError {
    /// A `qdp_par` worker tile panicked (and bounded retries, when
    /// enabled, did not heal it).
    WorkerPanic {
        /// Index of the failing tile in its fan-out.
        tile: usize,
        /// The original panic message.
        message: String,
    },
    /// A row's amplitudes produced a non-finite squared norm or branch
    /// probability at a measurement boundary.
    NonFinite {
        /// Original (pre-regrouping) row index in the caller's batch.
        row: usize,
        /// Which sweep observed it, e.g. `"row norms"` or
        /// `"branch probabilities"`.
        context: &'static str,
    },
    /// A row's squared norm drifted from its expected value by more than
    /// the configured tolerance.
    NormDrift {
        /// Original (pre-regrouping) row index in the caller's batch.
        row: usize,
        /// The squared norm the row should carry at this boundary.
        expected: f64,
        /// The squared norm the sweep observed.
        actual: f64,
        /// The relative tolerance that was exceeded.
        tolerance: f64,
    },
    /// `ShotEngine::try_with_mass_budget` was given an ε outside `[0, 1)`
    /// or a non-finite ε.
    InvalidMassBudget {
        /// The rejected value.
        epsilon: f64,
    },
    /// A Chernoff shot budget was requested with a precision δ that is
    /// not finite and positive, or one so small that the budget
    /// `⌈(m/δ)²⌉` has no `usize` representation (the naive float cast
    /// would saturate silently).
    InvalidPrecision {
        /// The rejected δ (or m, as named by the message).
        value: f64,
        /// Which input was rejected.
        what: &'static str,
    },
    /// A service request waited past its deadline while still queued
    /// (never admitted into a sweep), and was removed from the queue.
    DeadlineExceeded {
        /// The configured deadline, in milliseconds.
        deadline_ms: u64,
    },
    /// A service request was shed at submission because the tenant's
    /// pending queue was at its configured bound.
    Overloaded {
        /// Requests pending on the tenant when this one was rejected.
        pending: usize,
        /// The configured per-tenant queue bound.
        max_pending: usize,
    },
    /// A coalesced sweep died — a leader panicked mid-sweep (or its
    /// tenant lock was poisoned by a panicking holder) and the bounded
    /// re-serve budget was exhausted, so the group's members were failed
    /// with this typed error instead of hanging.
    ServicePanic {
        /// The panic message of the failed sweep (or a poison note).
        message: String,
    },
}

impl std::fmt::Display for QdpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QdpError::WorkerPanic { tile, message } => {
                write!(f, "worker tile {tile} panicked: {message}")
            }
            QdpError::NonFinite { row, context } => {
                write!(f, "row {row} produced a non-finite value in {context}")
            }
            QdpError::NormDrift { row, expected, actual, tolerance } => write!(
                f,
                "row {row} norm drifted: expected {expected}, got {actual} \
                 (relative tolerance {tolerance})"
            ),
            QdpError::InvalidMassBudget { epsilon } => {
                write!(f, "mass budget must be in [0, 1), got {epsilon}")
            }
            QdpError::InvalidPrecision { value, what } => {
                if value.is_finite() && *value > 0.0 {
                    // A finite positive value can only be rejected because
                    // the shot budget it implies has no machine
                    // representation.
                    write!(
                        f,
                        "{what} {value} is too demanding: the shot budget \
                         ⌈(m/δ)²⌉ overflows usize"
                    )
                } else {
                    write!(f, "{what} must be finite and positive, got {value}")
                }
            }
            QdpError::DeadlineExceeded { deadline_ms } => {
                write!(f, "request deadline of {deadline_ms} ms exceeded while queued")
            }
            QdpError::Overloaded { pending, max_pending } => write!(
                f,
                "tenant overloaded: {pending} requests pending at the \
                 configured bound of {max_pending}"
            ),
            QdpError::ServicePanic { message } => {
                write!(f, "coalesced sweep failed: {message}")
            }
        }
    }
}

impl std::error::Error for QdpError {}

impl From<qdp_par::TileError> for QdpError {
    fn from(e: qdp_par::TileError) -> Self {
        QdpError::WorkerPanic { tile: e.index, message: e.message }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = QdpError::NormDrift { row: 3, expected: 1.0, actual: 0.5, tolerance: 1e-9 };
        let s = e.to_string();
        assert!(s.contains("row 3") && s.contains("0.5"), "{s}");

        let e = QdpError::from(qdp_par::TileError {
            index: 2,
            message: "boom".to_string(),
        });
        assert_eq!(e, QdpError::WorkerPanic { tile: 2, message: "boom".to_string() });
        assert!(e.to_string().contains("tile 2"));
    }

    #[test]
    fn service_robustness_errors_name_their_limits() {
        let e = QdpError::DeadlineExceeded { deadline_ms: 25 };
        assert!(e.to_string().contains("25 ms"), "{e}");

        let e = QdpError::Overloaded { pending: 8, max_pending: 8 };
        let s = e.to_string();
        assert!(s.contains("8 requests") && s.contains("bound of 8"), "{s}");

        let e = QdpError::ServicePanic { message: "injected fault".to_string() };
        assert!(e.to_string().contains("injected fault"), "{e}");
    }

    #[test]
    fn default_health_config_fails_fast_with_tight_tolerance() {
        let cfg = HealthConfig::default();
        assert_eq!(cfg.policy, HealthPolicy::FailFast);
        assert!(cfg.drift_tol > 0.0 && cfg.drift_tol <= 1e-8);
    }
}
