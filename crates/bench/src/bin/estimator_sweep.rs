//! Regenerates the Section 7 execution/resource claims:
//!
//! 1. the sampling estimator of Eq. 7.1 converges to the exact derivative
//!    with error ~`m/√shots` (Chernoff: `O(m²/δ²)` shots for error `δ`),
//! 2. the paper's one-circuit gadget halves the circuit count of the
//!    two-circuit phase-shift rule.
//!
//! Usage: `cargo run --release -p qdp-bench --bin estimator_sweep`

use qdp_ad::estimator::estimate_derivative;
use qdp_ad::{differentiate, occurrence_count};
use qdp_lang::ast::Params;
use qdp_lang::parse_program;
use qdp_sim::{chernoff_shots, Observable, ShotSampler, StateVector};
use qdp_vqc::baseline::PhaseShift;

fn main() {
    // The paper's Simple-Case program (Example 6.1).
    let src = "case M[q1] = 0 -> q1 *= RX(t); q1 *= RY(t), 1 -> q1 *= RZ(t) end";
    let program = parse_program(src).expect("valid example");
    let diff = differentiate(&program, "t").expect("differentiable");
    let params = Params::from_pairs([("t", 0.9)]);
    let obs = Observable::pauli_z(1, 0);
    let mut psi = StateVector::zero_state(1);
    psi.apply_gate(&qdp_linalg::Matrix::hadamard(), &[0]);

    let exact = diff.derivative_pure(&params, &obs, &psi);
    let m = diff.compiled().len();
    println!("estimator convergence on Example 6.1 (Simple-Case)");
    println!("m = |#∂/∂t| = {m}, exact derivative = {exact:.6}\n");
    println!("{:>10} {:>14} {:>12}", "shots", "estimate", "|error|");
    for &shots in &[100usize, 400, 1600, 6400, 25600, 102400] {
        let mut sampler = ShotSampler::seeded(7 + shots as u64);
        let est = estimate_derivative(&diff, &params, &obs, &psi, shots, &mut sampler);
        println!("{shots:>10} {est:>14.6} {:>12.6}", (est - exact).abs());
    }
    println!(
        "\nChernoff budget for δ=0.05 with m={m}: {} shots",
        chernoff_shots(m, 0.05)
    );

    // Circuit-count comparison: gadget vs phase-shift on a circuit program.
    println!("\ncircuit count per gradient entry: gadget vs phase-shift rule");
    println!(
        "{:<44} {:>6} {:>10} {:>12}",
        "program", "OC", "gadget", "phase-shift"
    );
    for src in [
        "q1 *= RX(t); q1 *= RY(t)",
        "q1 *= RX(t); q1 *= RY(t); q1 *= RZ(t)",
        "q1 *= RX(t); q1, q2 *= RXX(t); q2 *= RZ(t)",
    ] {
        let program = parse_program(src).expect("valid");
        let oc = occurrence_count(&program, "t");
        let gadget = differentiate(&program, "t")
            .expect("differentiable")
            .compiled()
            .len();
        let shift = PhaseShift::new(&program)
            .expect("circuit")
            .circuit_evaluations_per_gradient();
        println!("{src:<44} {oc:>6} {gadget:>10} {shift:>12}");
    }
    println!("\nthe gadget needs OC circuits; the phase-shift rule needs 2·OC.");
}
