//! Regenerates **Figure 6** of the paper (Section 8.1): training-loss
//! curves of `P1` (no control) vs `P2` (with control) on the 4-bit
//! classification task `f(z) = ¬(z1 ⊕ z4)` with the squared loss (Eq. 8.3)
//! and gradient descent.
//!
//! `P1` is a product circuit, so its prediction for `q4` can only depend on
//! `z4`; its loss is information-theoretically floored (at 2.0 under the
//! plain Eq. 8.3 sum — the paper reports the same plateau on its own loss
//! scale as 0.5). `P2`'s measurement control lets the second layer depend
//! on `z1`, so its loss keeps falling — the paper's headline advantage of
//! differentiable programs over differentiable circuits.
//!
//! Usage: `cargo run --release -p qdp-bench --bin fig6 [epochs] [lr] [seed] [loss]`
//! (defaults: 1000 epochs, lr 0.5, seed 11, loss `squared`). Passing
//! `nll` as the loss trains with the average negative log-likelihood — the
//! loss the paper calls natural but found unsupported by PennyLane; this
//! reproduction supports it directly.

use qdp_vqc::circuits::{p1, p2};
use qdp_vqc::loss::{Loss, NegLogLikelihood, SquaredLoss};
use qdp_vqc::optim::GradientDescent;
use qdp_vqc::task;
use qdp_vqc::train::Trainer;

fn main() {
    let mut args = std::env::args().skip(1);
    let epochs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1000);
    let lr: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0.5);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(11);
    let loss_name = args.next().unwrap_or_else(|| "squared".to_string());
    let loss: Box<dyn Loss> = match loss_name.as_str() {
        "squared" => Box::new(SquaredLoss),
        "nll" => Box::new(NegLogLikelihood::default()),
        other => {
            eprintln!("unknown loss '{other}', expected 'squared' or 'nll'");
            std::process::exit(1);
        }
    };

    println!("Figure 6 — training P1 (no control) vs P2 (with control)");
    println!(
        "task: f(z) = ¬(z1⊕z4); loss: {loss_name}; optimizer: GD(lr={lr}); seed {seed}\n"
    );

    let data = || {
        task::dataset()
            .into_iter()
            .map(|s| (s.input_state(), s.target()))
            .collect()
    };

    let mut t1 = Trainer::new(&p1(), task::readout_observable(), data())
        .expect("P1 is differentiable");
    let mut t2 = Trainer::new(&p2(), task::readout_observable(), data())
        .expect("P2 is differentiable");
    t1.init_params_seeded(seed);
    t2.init_params_seeded(seed);

    let mut opt1 = GradientDescent::new(lr);
    let mut opt2 = GradientDescent::new(lr);

    println!("{:>6}  {:>12}  {:>12}", "epoch", "loss(P1)", "loss(P2)");
    let report_every = (epochs / 20).max(1);
    let mut h1 = Vec::with_capacity(epochs);
    let mut h2 = Vec::with_capacity(epochs);
    for epoch in 0..epochs {
        h1.push(t1.epoch(&loss, &mut opt1));
        h2.push(t2.epoch(&loss, &mut opt2));
        if epoch % report_every == 0 || epoch + 1 == epochs {
            println!(
                "{:>6}  {:>12.6}  {:>12.6}",
                epoch,
                h1.last().unwrap(),
                h2.last().unwrap()
            );
        }
    }

    let min1 = h1.iter().cloned().fold(f64::INFINITY, f64::min);
    let min2 = h2.iter().cloned().fold(f64::INFINITY, f64::min);
    println!("\nminimum loss: P1 = {min1:.4}, P2 = {min2:.4}");
    println!("final accuracy: P1 = {:.3}, P2 = {:.3}", t1.accuracy(), t2.accuracy());
    if loss_name == "squared" {
        println!(
            "\npaper shape check: P1 plateaus near its locality floor ({}), \
             P2 keeps decreasing ({})",
            if min1 > 1.5 { "reproduced" } else { "NOT reproduced" },
            if min2 < 0.25 * min1 { "reproduced" } else { "NOT reproduced" },
        );
    } else {
        println!(
            "\nNLL mode: P1 stuck above its locality floor, P2 separation {}",
            if min2 < 0.25 * min1 { "reproduced" } else { "NOT reproduced" },
        );
    }
    println!(
        "note: the phase-shift baseline (PennyLane's rule) can train P1 but \
         rejects P2 — see `cargo test -p qdp-vqc baseline`"
    );
}
