//! A long-lived, multi-tenant gradient front end with request coalescing.
//!
//! [`GradientService`] generalizes the one-valuation estimator embryo into
//! a server: clients register programs (deduplicated structurally — two
//! registrations of the same program share one tenant and therefore one
//! [`crate::GradientEngine`] and one interned skeleton) and submit
//! expectation/gradient requests from any number of threads. Requests
//! against the same tenant that are **compatible** — same request kind,
//! same valuation, same observable, same shot budget — coalesce into one
//! shared [`qdp_sim::BatchedStates`] tile: a single leader gathers the
//! queued inputs into one contiguous batch, runs **one** kernel sweep
//! through the engine's batched entry point, and distributes the per-row
//! results. The batch axis of PR 2 becomes the multi-tenancy axis.
//!
//! # Determinism contract
//!
//! Every client's result is **bit-identical to running its request solo**:
//!
//! * exact kinds ride the batched evaluators, whose per-row outputs are
//!   invariant under batch composition (pinned by
//!   `crates/core/tests/batch_equivalence.rs` and the branch-weighted
//!   differential suite) — row `r` of a coalesced sweep carries the same
//!   bits as a one-row sweep of that input;
//! * shot kinds pass each client's own seed as its row's stream
//!   (`row_seeds[r]`), and the batched shot entry points guarantee row `r`
//!   is bit-identical to the single-input call with that seed (the
//!   [`qdp_sim::derive_seed`] per-row stream contract of PR 3).
//!
//! So coalescing changes *when* work happens, never *what* any client
//! observes — under any thread count and any arrival interleaving.
//!
//! # Leadership protocol
//!
//! Per tenant: submitters enqueue under the tenant lock and wait on its
//! condvar. When no leader is active and at least
//! [`min_batch`](GradientService::with_admission) requests are pending (or
//! [`flush`](GradientService::flush) was called), one waiter elects itself
//! leader, drains the **head group** (the oldest request plus every
//! pending request compatible with it, in submission order), releases the
//! lock, runs the one batched sweep, publishes results keyed by ticket,
//! and steps down. Requests left behind (incompatible or arrived late)
//! are served by subsequent leaders; everything pending when the gate
//! opened is owed a sweep, so an incompatible remainder smaller than the
//! threshold cannot strand. A panicking leader steps down via an
//! RAII guard so followers re-elect instead of hanging; submissions are
//! validated on the caller's thread first so the sweep itself cannot fail
//! on malformed requests.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use qdp_lang::ast::{Params, Stmt};
use qdp_sim::{BatchedStates, Observable, StateVector};

use crate::exec::GradientEngine;
use crate::transform::TransformError;

/// What one request asks for. Seeds live here (not in the compatibility
/// key) so clients with distinct seeds still coalesce.
#[derive(Clone, Debug)]
enum Request {
    /// Exact forward value `⟨O⟩`.
    Value { params: Params, obs: Observable },
    /// Exact gradient via the per-parameter gadget multisets.
    Gradient { params: Params, obs: Observable },
    /// Exact gradient via the `±π/2` shift rule on the forward skeleton.
    ShiftGradient { params: Params, obs: Observable },
    /// Shot-sampled forward value on the client's seed stream.
    ValueShots {
        params: Params,
        obs: Observable,
        shots: usize,
        seed: u64,
    },
    /// Shot-sampled gradient on the client's seed stream.
    GradientShots {
        params: Params,
        obs: Observable,
        shots_per_param: usize,
        seed: u64,
    },
}

/// The result of one request.
#[derive(Clone, Debug)]
enum Output {
    Value(f64),
    Gradient(BTreeMap<String, f64>),
}

/// Whether two requests may share one batched sweep: same kind, same
/// valuation (`Params` is an ordered map, compared by value bits), same
/// observable (register width, targets, matrix entries — compared
/// bitwise via `Matrix: PartialEq`), same shot budget. Seeds are
/// intentionally excluded: they become per-row streams.
fn compatible(a: &Request, b: &Request) -> bool {
    fn obs_eq(x: &Observable, y: &Observable) -> bool {
        x.num_qubits() == y.num_qubits() && x.targets() == y.targets() && x.matrix() == y.matrix()
    }
    match (a, b) {
        (
            Request::Value { params: p1, obs: o1 },
            Request::Value { params: p2, obs: o2 },
        )
        | (
            Request::Gradient { params: p1, obs: o1 },
            Request::Gradient { params: p2, obs: o2 },
        )
        | (
            Request::ShiftGradient { params: p1, obs: o1 },
            Request::ShiftGradient { params: p2, obs: o2 },
        ) => p1 == p2 && obs_eq(o1, o2),
        (
            Request::ValueShots { params: p1, obs: o1, shots: s1, .. },
            Request::ValueShots { params: p2, obs: o2, shots: s2, .. },
        ) => s1 == s2 && p1 == p2 && obs_eq(o1, o2),
        (
            Request::GradientShots { params: p1, obs: o1, shots_per_param: s1, .. },
            Request::GradientShots { params: p2, obs: o2, shots_per_param: s2, .. },
        ) => s1 == s2 && p1 == p2 && obs_eq(o1, o2),
        _ => false,
    }
}

/// One queued request.
#[derive(Debug)]
struct Pending {
    ticket: u64,
    input: StateVector,
    request: Request,
}

#[derive(Debug, Default)]
struct TenantState {
    pending: Vec<Pending>,
    results: HashMap<u64, Output>,
    /// Whether a leader is currently running a sweep.
    leader: bool,
    /// Sticky "serve whatever is pending" override of the admission
    /// threshold; reset once the queue drains.
    flush: bool,
    /// Requests already admitted (the gate opened while they were queued)
    /// but not yet drained into a group. The admission threshold gates a
    /// *quiet* queue only: once it opens, everything pending at that
    /// moment is owed a sweep, so an incompatible remainder smaller than
    /// `min_batch` elects follow-up leaders instead of stranding.
    admitted: usize,
    next_ticket: u64,
}

/// One registered program: the shared engine plus the coalescing queue.
#[derive(Debug)]
struct Tenant {
    engine: Arc<GradientEngine>,
    state: Mutex<TenantState>,
    ready: Condvar,
    /// Batched sweeps run on behalf of this tenant.
    sweeps: AtomicUsize,
    /// Requests served (across all sweeps).
    served: AtomicUsize,
}

/// An opaque reference to a registered program — cheap to clone and share
/// across client threads.
#[derive(Clone, Debug)]
pub struct ProgramHandle {
    tenant: Arc<Tenant>,
}

/// The compile-once gradient server (see the module docs).
#[derive(Debug, Default)]
pub struct GradientService {
    tenants: Mutex<Vec<Arc<Tenant>>>,
    min_batch: usize,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Steps a panicked leader down so followers re-elect instead of hanging
/// forever on a leadership that will never complete.
struct LeaderGuard<'a> {
    tenant: &'a Tenant,
    armed: bool,
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            lock(&self.tenant.state).leader = false;
            self.tenant.ready.notify_all();
        }
    }
}

impl GradientService {
    /// A service that sweeps as soon as any request is pending
    /// (`min_batch = 1`): correct everywhere, coalescing opportunistically
    /// when requests happen to queue up.
    pub fn new() -> Self {
        GradientService {
            tenants: Mutex::new(Vec::new()),
            min_batch: 1,
        }
    }

    /// A service whose leaders wait until `min_batch` requests are pending
    /// before sweeping — the throughput knob: `N` compatible clients with
    /// `min_batch = N` are guaranteed to share exactly one sweep. Pair
    /// with [`flush`](Self::flush) when fewer requests may arrive.
    ///
    /// # Panics
    ///
    /// Panics when `min_batch` is zero.
    pub fn with_admission(min_batch: usize) -> Self {
        assert!(min_batch > 0, "admission threshold must be at least 1");
        GradientService {
            tenants: Mutex::new(Vec::new()),
            min_batch,
        }
    }

    /// Registers a program, deduplicating structurally: a program equal to
    /// an already-registered one returns a handle to the **same** tenant
    /// (same engine, same interned skeletons, shared coalescing queue).
    ///
    /// # Errors
    ///
    /// Returns the [`TransformError`] of engine construction.
    pub fn register(&self, program: &Stmt) -> Result<ProgramHandle, TransformError> {
        if let Some(t) = lock(&self.tenants)
            .iter()
            .find(|t| t.engine.program() == program)
        {
            return Ok(ProgramHandle { tenant: Arc::clone(t) });
        }
        // Engine construction (per-parameter transform + compile) runs
        // outside the registry lock; a racing duplicate is resolved on
        // re-entry below.
        let engine = Arc::new(GradientEngine::new(program)?);
        let mut tenants = lock(&self.tenants);
        if let Some(t) = tenants.iter().find(|t| t.engine.program() == program) {
            return Ok(ProgramHandle { tenant: Arc::clone(t) });
        }
        let tenant = Arc::new(Tenant {
            engine,
            state: Mutex::new(TenantState::default()),
            ready: Condvar::new(),
            sweeps: AtomicUsize::new(0),
            served: AtomicUsize::new(0),
        });
        tenants.push(Arc::clone(&tenant));
        Ok(ProgramHandle { tenant })
    }

    /// The handle's shared engine, for direct (uncoalesced) evaluation —
    /// e.g. wiring a `qdp-vqc` trainer onto the same compiled skeletons
    /// the service serves.
    pub fn engine(&self, handle: &ProgramHandle) -> Arc<GradientEngine> {
        Arc::clone(&handle.tenant.engine)
    }

    /// How many distinct programs are registered.
    pub fn tenant_count(&self) -> usize {
        lock(&self.tenants).len()
    }

    /// Batched sweeps run for this handle's program so far.
    pub fn sweeps(&self, handle: &ProgramHandle) -> usize {
        handle.tenant.sweeps.load(Ordering::Relaxed)
    }

    /// Requests served for this handle's program so far.
    pub fn served(&self, handle: &ProgramHandle) -> usize {
        handle.tenant.served.load(Ordering::Relaxed)
    }

    /// Overrides the admission threshold for everything currently pending
    /// on this handle's program: the next leader sweeps whatever is queued
    /// even if fewer than `min_batch` requests arrived.
    pub fn flush(&self, handle: &ProgramHandle) {
        lock(&handle.tenant.state).flush = true;
        handle.tenant.ready.notify_all();
    }

    /// Exact forward value `⟨O⟩` — blocks until a (possibly shared) sweep
    /// serves it.
    ///
    /// # Panics
    ///
    /// Panics when a used parameter has no value or the input width does
    /// not match the program register.
    pub fn expectation(
        &self,
        handle: &ProgramHandle,
        params: &Params,
        obs: &Observable,
        psi: &StateVector,
    ) -> f64 {
        self.validate(handle, params, psi);
        match self.submit(handle, psi.clone(), Request::Value {
            params: params.clone(),
            obs: obs.clone(),
        }) {
            Output::Value(v) => v,
            Output::Gradient(_) => unreachable!("value requests produce scalar outputs"),
        }
    }

    /// Exact gradient via the gadget multisets, keyed by parameter name.
    ///
    /// # Panics
    ///
    /// Same conditions as [`expectation`](Self::expectation).
    pub fn gradient(
        &self,
        handle: &ProgramHandle,
        params: &Params,
        obs: &Observable,
        psi: &StateVector,
    ) -> BTreeMap<String, f64> {
        self.validate(handle, params, psi);
        match self.submit(handle, psi.clone(), Request::Gradient {
            params: params.clone(),
            obs: obs.clone(),
        }) {
            Output::Gradient(g) => g,
            Output::Value(_) => unreachable!("gradient requests produce map outputs"),
        }
    }

    /// Exact gradient via the `±π/2` shift rule on the single interned
    /// forward skeleton (see
    /// [`GradientEngine::gradient_pure_shift_batch`]).
    ///
    /// # Panics
    ///
    /// Same conditions as [`expectation`](Self::expectation), plus
    /// shift-rule eligibility.
    pub fn gradient_shift(
        &self,
        handle: &ProgramHandle,
        params: &Params,
        obs: &Observable,
        psi: &StateVector,
    ) -> BTreeMap<String, f64> {
        self.validate(handle, params, psi);
        assert!(
            handle.tenant.engine.shift_rule_eligible(),
            "shift-rule gradient requires every parameter to occur exactly once \
             per execution path"
        );
        match self.submit(handle, psi.clone(), Request::ShiftGradient {
            params: params.clone(),
            obs: obs.clone(),
        }) {
            Output::Gradient(g) => g,
            Output::Value(_) => unreachable!("gradient requests produce map outputs"),
        }
    }

    /// Shot-sampled forward value on this client's own `seed` stream —
    /// bit-identical to [`GradientEngine::value_pure_shots`] with the same
    /// seed, no matter which clients it coalesced with.
    ///
    /// # Panics
    ///
    /// Same conditions as [`expectation`](Self::expectation), plus
    /// `shots > 0`.
    pub fn expectation_shots(
        &self,
        handle: &ProgramHandle,
        params: &Params,
        obs: &Observable,
        psi: &StateVector,
        shots: usize,
        seed: u64,
    ) -> f64 {
        self.validate(handle, params, psi);
        assert!(shots > 0, "need at least one shot");
        match self.submit(handle, psi.clone(), Request::ValueShots {
            params: params.clone(),
            obs: obs.clone(),
            shots,
            seed,
        }) {
            Output::Value(v) => v,
            Output::Gradient(_) => unreachable!("value requests produce scalar outputs"),
        }
    }

    /// Shot-sampled gradient on this client's own `seed` stream —
    /// bit-identical to [`GradientEngine::gradient_pure_shots`] with the
    /// same seed, no matter which clients it coalesced with.
    ///
    /// # Panics
    ///
    /// Same conditions as [`expectation`](Self::expectation), plus
    /// `shots_per_param > 0`.
    pub fn gradient_shots(
        &self,
        handle: &ProgramHandle,
        params: &Params,
        obs: &Observable,
        psi: &StateVector,
        shots_per_param: usize,
        seed: u64,
    ) -> BTreeMap<String, f64> {
        self.validate(handle, params, psi);
        assert!(shots_per_param > 0, "need at least one shot per parameter");
        match self.submit(handle, psi.clone(), Request::GradientShots {
            params: params.clone(),
            obs: obs.clone(),
            shots_per_param,
            seed,
        }) {
            Output::Gradient(g) => g,
            Output::Value(_) => unreachable!("gradient requests produce map outputs"),
        }
    }

    /// Fail fast on the caller's thread, before enqueueing: a request that
    /// would panic mid-sweep would strand its whole coalesced group.
    fn validate(&self, handle: &ProgramHandle, params: &Params, psi: &StateVector) {
        let engine = &handle.tenant.engine;
        assert_eq!(
            psi.num_qubits(),
            engine.register().len(),
            "input state width must match the program register"
        );
        for name in engine.parameters() {
            assert!(
                params.get(name).is_some(),
                "parameter '{name}' has no value"
            );
        }
    }

    /// Enqueues one request and blocks until its result is published,
    /// serving as leader when elected (see the module docs).
    fn submit(&self, handle: &ProgramHandle, input: StateVector, request: Request) -> Output {
        let tenant = &*handle.tenant;
        let mut st = lock(&tenant.state);
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.pending.push(Pending {
            ticket,
            input,
            request,
        });
        loop {
            if let Some(out) = st.results.remove(&ticket) {
                return out;
            }
            let admitted =
                st.pending.len() >= self.min_batch || st.flush || st.admitted > 0;
            if !st.leader && !st.pending.is_empty() && admitted {
                st.leader = true;
                if st.admitted == 0 {
                    // The gate just opened: everything queued right now is
                    // owed service, however the head groups split it.
                    st.admitted = st.pending.len();
                }
                // Drain the head group: oldest request plus every pending
                // request compatible with it, in submission order.
                let mut group: Vec<Pending> = Vec::new();
                let mut rest: Vec<Pending> = Vec::new();
                for p in st.pending.drain(..) {
                    if group.is_empty() || compatible(&group[0].request, &p.request) {
                        group.push(p);
                    } else {
                        rest.push(p);
                    }
                }
                st.pending = rest;
                st.admitted = st.admitted.saturating_sub(group.len());
                if st.pending.is_empty() {
                    st.flush = false;
                    st.admitted = 0;
                }
                drop(st);

                let mut guard = LeaderGuard {
                    tenant,
                    armed: true,
                };
                let outputs = run_group(&tenant.engine, &group);
                tenant.sweeps.fetch_add(1, Ordering::Relaxed);
                tenant.served.fetch_add(group.len(), Ordering::Relaxed);

                st = lock(&tenant.state);
                for (p, out) in group.iter().zip(outputs) {
                    st.results.insert(p.ticket, out);
                }
                st.leader = false;
                guard.armed = false;
                tenant.ready.notify_all();
                continue;
            }
            st = match tenant.ready.wait(st) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }
}

/// Runs one coalesced group as a single batched sweep and returns one
/// output per member, in group (submission) order.
fn run_group(engine: &GradientEngine, group: &[Pending]) -> Vec<Output> {
    let rows: Vec<&StateVector> = group.iter().map(|p| &p.input).collect();
    match &group[0].request {
        Request::Value { params, obs } => {
            let batch = BatchedStates::gather(&rows);
            engine
                .value_pure_batch(params, obs, &batch)
                .into_iter()
                .map(Output::Value)
                .collect()
        }
        Request::Gradient { params, obs } => {
            let batch = BatchedStates::gather(&rows);
            engine
                .gradient_pure_batch(params, obs, &batch)
                .into_iter()
                .map(Output::Gradient)
                .collect()
        }
        Request::ShiftGradient { params, obs } => {
            let batch = BatchedStates::gather(&rows);
            engine
                .gradient_pure_shift_batch(params, obs, &batch)
                .into_iter()
                .map(Output::Gradient)
                .collect()
        }
        Request::ValueShots {
            params, obs, shots, ..
        } => {
            let inputs: Vec<StateVector> = group.iter().map(|p| p.input.clone()).collect();
            let row_seeds: Vec<u64> = group.iter().map(|p| request_seed(&p.request)).collect();
            engine
                .value_pure_shots_batch(params, obs, &inputs, *shots, &row_seeds)
                .into_iter()
                .map(Output::Value)
                .collect()
        }
        Request::GradientShots {
            params,
            obs,
            shots_per_param,
            ..
        } => {
            let inputs: Vec<StateVector> = group.iter().map(|p| p.input.clone()).collect();
            let row_seeds: Vec<u64> = group.iter().map(|p| request_seed(&p.request)).collect();
            engine
                .gradient_pure_shots_batch(params, obs, &inputs, *shots_per_param, &row_seeds)
                .into_iter()
                .map(Output::Gradient)
                .collect()
        }
    }
}

/// The per-client seed of a shot request (exact requests carry none).
fn request_seed(request: &Request) -> u64 {
    match request {
        Request::ValueShots { seed, .. } | Request::GradientShots { seed, .. } => *seed,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdp_lang::parse_program;

    #[test]
    fn registration_deduplicates_structurally() {
        let service = GradientService::new();
        let p = parse_program("q1 *= RX(a); q1 *= RY(b)").unwrap();
        let same = parse_program("q1 *= RX(a); q1 *= RY(b)").unwrap();
        let other = parse_program("q1 *= RX(a); q1 *= RZ(b)").unwrap();
        let h1 = service.register(&p).unwrap();
        let h2 = service.register(&same).unwrap();
        let h3 = service.register(&other).unwrap();
        assert!(Arc::ptr_eq(&h1.tenant, &h2.tenant));
        assert!(!Arc::ptr_eq(&h1.tenant, &h3.tenant));
        assert_eq!(service.tenant_count(), 2);
    }

    #[test]
    fn solo_requests_match_direct_engine_calls() {
        let service = GradientService::new();
        let p = parse_program("q1 *= RX(a); q2 *= RY(b); q1, q2 *= RZZ(c)").unwrap();
        let handle = service.register(&p).unwrap();
        let engine = service.engine(&handle);
        let params = Params::from_pairs([("a", 0.3), ("b", -0.7), ("c", 1.9)]);
        let obs = Observable::pauli_z(2, 0);
        let psi = StateVector::zero_state(2);

        let v = service.expectation(&handle, &params, &obs, &psi);
        let direct_v = engine.value_pure_batch(
            &params,
            &obs,
            &BatchedStates::gather(&[&psi]),
        )[0];
        assert_eq!(v.to_bits(), direct_v.to_bits());

        let g = service.gradient(&handle, &params, &obs, &psi);
        let direct_g = engine.gradient_pure_batch(
            &params,
            &obs,
            &BatchedStates::gather(&[&psi]),
        );
        for (name, val) in &g {
            assert_eq!(val.to_bits(), direct_g[0][name].to_bits(), "∂/∂{name}");
        }

        let gs = service.gradient_shift(&handle, &params, &obs, &psi);
        for (name, val) in &g {
            assert!((gs[name] - val).abs() < 1e-10, "shift ∂/∂{name}");
        }
        assert_eq!(service.served(&handle), 3);
        assert_eq!(service.sweeps(&handle), 3);
    }

    #[test]
    #[should_panic(expected = "has no value")]
    fn missing_parameter_fails_fast_on_the_caller_thread() {
        let service = GradientService::new();
        let p = parse_program("q1 *= RX(a)").unwrap();
        let handle = service.register(&p).unwrap();
        let _ = service.expectation(
            &handle,
            &Params::new(),
            &Observable::pauli_z(1, 0),
            &StateVector::zero_state(1),
        );
    }

    #[test]
    #[should_panic(expected = "width must match")]
    fn mismatched_input_fails_fast_on_the_caller_thread() {
        let service = GradientService::new();
        let p = parse_program("q1 *= RX(a)").unwrap();
        let handle = service.register(&p).unwrap();
        let _ = service.expectation(
            &handle,
            &Params::from_pairs([("a", 0.2)]),
            &Observable::pauli_z(1, 0),
            &StateVector::zero_state(3),
        );
    }
}
