//! Timing of gradient evaluation (E3/E4 support): the paper's one-circuit
//! gadget versus the two-circuit phase-shift baseline on the control-free
//! `P1`, plus the gadget on the controlled `P2` (which the baseline cannot
//! express at all).

use criterion::{criterion_group, criterion_main, Criterion};
use qdp_ad::GradientEngine;
use qdp_lang::ast::Params;
use qdp_sim::StateVector;
use qdp_vqc::baseline::PhaseShift;
use qdp_vqc::circuits::{p1, p2};
use qdp_vqc::task;
use std::hint::black_box;
use std::time::Duration;

fn test_params(program: &qdp_lang::Stmt) -> Params {
    Params::from_pairs(
        program
            .parameters()
            .into_iter()
            .enumerate()
            .map(|(i, name)| (name, 0.2 + 0.31 * i as f64)),
    )
}

fn bench_gradient(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_gradient");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    let obs = task::readout_observable();
    let psi = StateVector::from_bits(&[true, false, true, false]);

    let program1 = p1();
    let params1 = test_params(&program1);
    let engine1 = GradientEngine::new(&program1).expect("differentiable");
    group.bench_function("gadget/P1 (24 params)", |b| {
        b.iter(|| black_box(engine1.gradient_pure(&params1, &obs, &psi)))
    });

    let shift = PhaseShift::new(&program1).expect("circuit");
    group.bench_function("phase-shift/P1 (24 params)", |b| {
        b.iter(|| black_box(shift.gradient(&params1, &obs, &psi)))
    });

    let program2 = p2();
    let params2 = test_params(&program2);
    let engine2 = GradientEngine::new(&program2).expect("differentiable");
    group.bench_function("gadget/P2 (36 params, with control)", |b| {
        b.iter(|| black_box(engine2.gradient_pure(&params2, &obs, &psi)))
    });
    group.finish();
}

fn bench_single_derivative(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_derivative");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let program = p2();
    let params = test_params(&program);
    let obs = task::readout_observable();
    let psi = StateVector::from_bits(&[false, true, false, true]);
    let diff = qdp_ad::differentiate(&program, "F3").expect("differentiable");
    group.bench_function("gadget/P2 ∂/∂F3", |b| {
        b.iter(|| black_box(diff.derivative_pure(&params, &obs, &psi)))
    });
    group.finish();
}

criterion_group!(benches, bench_gradient, bench_single_derivative);
criterion_main!(benches);
