//! Offline stand-in for the subset of the `rand` crate API this workspace
//! uses (`StdRng`, `Rng::gen`, `Rng::gen_range`, `SeedableRng`).
//!
//! The build environment has no network access, so the real `rand` cannot be
//! fetched; this path dependency provides the same call-sites backed by a
//! xoshiro256++ generator seeded through SplitMix64 (the standard seeding
//! recipe). It is deterministic, fast, and statistically more than adequate
//! for the Monte-Carlo sampling and parameter initialisation done here — but
//! it is **not** cryptographically secure.

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from raw generator output.
pub trait Uniform: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Uniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Uniform for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Uniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end - self.start) as u64;
                // Debiased multiply-shift (Lemire); the rejection loop is
                // entered with probability < span / 2^64.
                let mut x = rng.next_u64();
                let mut m = (x as u128) * (span as u128);
                let mut lo = m as u64;
                if lo < span {
                    let t = span.wrapping_neg() % span;
                    while lo < t {
                        x = rng.next_u64();
                        m = (x as u128) * (span as u128);
                        lo = m as u64;
                    }
                }
                self.start + ((m >> 64) as u64) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing sampling interface (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Uniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Construction interface (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Deterministic construction from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Construction from environmental entropy (time + ASLR); only used when
    /// reproducibility is explicitly not wanted.
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        let stack_probe = 0u8;
        let aslr = &stack_probe as *const u8 as u64;
        Self::seed_from_u64(t ^ aslr.rotate_left(32))
    }
}

/// Namespace mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's standard generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl StdRng {
        /// Convenience mirror of [`SeedableRng::from_entropy`].
        pub fn from_entropy() -> Self {
            <Self as SeedableRng>::from_entropy()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.gen::<u64>()).collect::<Vec<_>>(),
            (0..8).map(|_| b.gen::<u64>()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_samples_live_in_unit_interval_and_look_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn gen_range_is_unbiased_enough_and_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            let k = rng.gen_range(0..5usize);
            counts[k] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "{counts:?}");
        }
        for _ in 0..1000 {
            let x = rng.gen_range(10..13usize);
            assert!((10..13).contains(&x));
        }
    }
}
