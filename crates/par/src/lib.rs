//! # qdp-par
//!
//! Minimal deterministic fork-join parallelism built on [`std::thread::scope`].
//!
//! The build environment for this workspace is fully offline, so `rayon` is
//! not available; this crate provides the small subset the simulator and the
//! gradient engine need:
//!
//! * [`par_map`] — order-preserving parallel map over a slice,
//! * [`par_chunks_mut`] — parallel iteration over disjoint contiguous chunks
//!   of a mutable slice (each callback also receives the chunk's offset),
//! * [`max_threads`] / [`set_max_threads`] — the global worker budget.
//!
//! **Determinism.** Results are always assembled in input order and any
//! reductions are performed by the caller over that ordered output, so a
//! computation produces bit-identical results regardless of how many threads
//! actually ran — including the degenerate single-thread case. The test suite
//! of `qdp-ad` relies on this.
//!
//! **Nesting.** A global token budget caps the number of *extra* worker
//! threads alive at any instant. Nested calls (e.g. a parallel gradient whose
//! per-parameter work parallelises gate application) degrade gracefully to
//! sequential execution instead of oversubscribing the machine.
//!
//! **Environment override.** The `QDP_PAR_THREADS` environment variable,
//! when set to a positive integer, fixes the detected parallelism for the
//! whole process (it is read once, on first use). CI uses it to run the
//! entire test suite under forced 1- and 8-thread configurations so that
//! any result depending on the thread count fails loudly. A runtime
//! [`set_max_threads`] call still takes precedence; `set_max_threads(0)`
//! falls back to the environment value (or hardware detection when the
//! variable is unset or invalid).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Global budget of extra worker threads (beyond the calling thread).
static TOKENS: OnceLock<AtomicUsize> = OnceLock::new();
/// Optional override of the detected parallelism (0 = auto-detect).
static MAX_OVERRIDE: AtomicUsize = AtomicUsize::new(0);
/// Cached effective parallelism — the `QDP_PAR_THREADS` environment
/// variable when set to a positive integer, hardware detection otherwise.
/// Cached because `available_parallelism()` is a syscall and this is
/// queried on every kernel invocation.
static DETECTED: OnceLock<usize> = OnceLock::new();

fn tokens() -> &'static AtomicUsize {
    TOKENS.get_or_init(|| AtomicUsize::new(detected_parallelism().saturating_sub(1)))
}

fn detected_parallelism() -> usize {
    let over = MAX_OVERRIDE.load(Ordering::Relaxed);
    if over > 0 {
        return over;
    }
    *DETECTED.get_or_init(|| {
        std::env::var("QDP_PAR_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    })
}

/// The number of threads a top-level parallel call may use (including the
/// calling thread itself).
pub fn max_threads() -> usize {
    detected_parallelism()
}

/// Overrides the detected hardware parallelism (useful in tests; pass 1 to
/// force sequential execution globally, 0 to restore auto-detection).
///
/// Resets the worker budget to the new effective parallelism; callers must
/// be quiesced (no parallel call in flight) when switching.
pub fn set_max_threads(n: usize) {
    MAX_OVERRIDE.store(n, Ordering::Relaxed);
    let effective = detected_parallelism();
    if let Some(t) = TOKENS.get() {
        t.store(effective.saturating_sub(1), Ordering::Relaxed);
    }
}

/// Tries to reserve up to `want` extra worker threads from the global budget;
/// returns how many were actually granted (possibly zero).
fn acquire(want: usize) -> usize {
    if want == 0 {
        return 0;
    }
    let t = tokens();
    let mut cur = t.load(Ordering::Relaxed);
    loop {
        let grant = want.min(cur);
        if grant == 0 {
            return 0;
        }
        match t.compare_exchange_weak(cur, cur - grant, Ordering::AcqRel, Ordering::Relaxed) {
            Ok(_) => return grant,
            Err(now) => cur = now,
        }
    }
}

fn release(n: usize) {
    if n > 0 {
        tokens().fetch_add(n, Ordering::AcqRel);
    }
}

/// Returns acquired tokens even if the parallel region unwinds (a panicking
/// worker must not permanently drain the global budget).
struct TokenGuard(usize);

impl Drop for TokenGuard {
    fn drop(&mut self) {
        release(self.0);
    }
}

/// Order-preserving parallel map: `out[i] = f(&items[i])`.
///
/// Splits `items` into contiguous runs, maps each run on its own scoped
/// thread, and concatenates the per-run outputs in order. Falls back to a
/// plain sequential map when `items` is small or the thread budget is
/// exhausted.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let extra = if n < 2 { 0 } else { acquire((n - 1).min(max_threads().saturating_sub(1))) };
    if extra == 0 {
        return items.iter().map(f).collect();
    }
    let _guard = TokenGuard(extra);
    let workers = extra + 1;
    let chunk = n.div_ceil(workers);
    let f = &f;
    let parts: Vec<&[T]> = items.chunks(chunk).collect();
    let mut results: Vec<Vec<R>> = std::thread::scope(|s| {
        let handles: Vec<_> = parts[1..]
            .iter()
            .map(|&part| s.spawn(move || part.iter().map(f).collect::<Vec<R>>()))
            .collect();
        let first: Vec<R> = parts[0].iter().map(f).collect();
        let mut all = vec![first];
        for h in handles {
            all.push(h.join().expect("qdp-par worker panicked"));
        }
        all
    });
    let mut out: Vec<R> = Vec::with_capacity(n);
    for part in &mut results {
        out.append(part);
    }
    out
}

/// Parallel iteration over disjoint contiguous chunks of `data`.
///
/// `f(offset, chunk)` is invoked once per chunk, where `offset` is the index
/// of the chunk's first element in `data`. Chunk boundaries are aligned to
/// multiples of `align` elements (pass 1 for no constraint) so kernels can
/// guarantee that index orbits never cross a boundary. Runs sequentially when
/// the slice is short or no worker threads are available.
pub fn par_chunks_mut<T, F>(data: &mut [T], align: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = data.len();
    let align = align.max(1);
    let max_chunks = n / align;
    let extra = if max_chunks < 2 {
        0
    } else {
        acquire((max_chunks - 1).min(max_threads().saturating_sub(1)))
    };
    if extra == 0 {
        f(0, data);
        return;
    }
    let _guard = TokenGuard(extra);
    let workers = extra + 1;
    // Round the chunk length up to a multiple of `align`.
    let chunk = n.div_ceil(workers).div_ceil(align) * align;
    let f = &f;
    std::thread::scope(|s| {
        let mut offset = 0usize;
        let mut rest = data;
        let mut handles = Vec::with_capacity(workers);
        while rest.len() > chunk {
            let (head, tail) = rest.split_at_mut(chunk);
            let off = offset;
            handles.push(s.spawn(move || f(off, head)));
            offset += chunk;
            rest = tail;
        }
        if !rest.is_empty() {
            f(offset, rest);
        }
        for h in handles {
            h.join().expect("qdp-par worker panicked");
        }
    });
}

/// Parallel iteration over two equal-length mutable slices split at the same
/// points: `f(a_chunk, b_chunk)` sees corresponding chunks. Used by kernels
/// whose index orbits pair element `i` of one half with element `i` of the
/// other (e.g. a gate on the top bit).
///
/// # Panics
///
/// Panics when the slices have different lengths.
pub fn par_zip_chunks_mut<T, F>(a: &mut [T], b: &mut [T], f: F)
where
    T: Send,
    F: Fn(&mut [T], &mut [T]) + Sync,
{
    assert_eq!(a.len(), b.len(), "zipped slices must have equal lengths");
    let n = a.len();
    let extra = if n < 2 {
        0
    } else {
        acquire((n - 1).min(max_threads().saturating_sub(1)))
    };
    if extra == 0 {
        f(a, b);
        return;
    }
    let _guard = TokenGuard(extra);
    let workers = extra + 1;
    let chunk = n.div_ceil(workers);
    let f = &f;
    std::thread::scope(|s| {
        let mut rest_a = a;
        let mut rest_b = b;
        let mut handles = Vec::with_capacity(workers);
        while rest_a.len() > chunk {
            let (head_a, tail_a) = rest_a.split_at_mut(chunk);
            let (head_b, tail_b) = rest_b.split_at_mut(chunk);
            handles.push(s.spawn(move || f(head_a, head_b)));
            rest_a = tail_a;
            rest_b = tail_b;
        }
        if !rest_a.is_empty() {
            f(rest_a, rest_b);
        }
        for h in handles {
            h.join().expect("qdp-par worker panicked");
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        assert_eq!(par_map(&[] as &[usize], |&x| x), Vec::<usize>::new());
        assert_eq!(par_map(&[7usize], |&x| x + 1), vec![8]);
    }

    #[test]
    fn par_chunks_mut_covers_every_element_once() {
        let mut data = vec![0u32; 4096];
        par_chunks_mut(&mut data, 8, |offset, chunk| {
            for (i, slot) in chunk.iter_mut().enumerate() {
                *slot += (offset + i) as u32;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i as u32);
        }
    }

    #[test]
    fn par_chunks_mut_respects_alignment() {
        let mut data = vec![0u8; 1000];
        par_chunks_mut(&mut data, 64, |offset, chunk| {
            assert_eq!(offset % 64, 0, "chunk offset must be aligned");
            chunk.fill(1);
        });
        assert!(data.iter().all(|&b| b == 1));
    }

    #[test]
    fn nested_calls_do_not_deadlock() {
        let outer: Vec<usize> = (0..16).collect();
        let sums = par_map(&outer, |&i| {
            let inner: Vec<usize> = (0..64).map(|j| i * 64 + j).collect();
            par_map(&inner, |&x| x).into_iter().sum::<usize>()
        });
        let total: usize = sums.iter().sum();
        assert_eq!(total, (0..1024).sum::<usize>());
    }

    #[test]
    fn par_zip_chunks_mut_pairs_corresponding_elements() {
        let mut a: Vec<usize> = (0..5000).collect();
        let mut b: Vec<usize> = (0..5000).map(|x| x * 10).collect();
        par_zip_chunks_mut(&mut a, &mut b, |ca, cb| {
            for (x, y) in ca.iter_mut().zip(cb.iter_mut()) {
                let (nx, ny) = (*y, *x);
                *x = nx;
                *y = ny;
            }
        });
        for i in 0..5000 {
            assert_eq!(a[i], i * 10);
            assert_eq!(b[i], i);
        }
    }

    #[test]
    fn set_max_threads_zero_restores_detected_budget() {
        // Exact token counts race with sibling tests acquiring workers, so
        // assert the reported parallelism and that work still completes.
        // `QDP_PAR_THREADS` (the CI matrix) takes precedence over hardware
        // detection, so the restored value must honour it too.
        let detected = std::env::var("QDP_PAR_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        set_max_threads(4);
        assert_eq!(max_threads(), 4);
        set_max_threads(0);
        assert_eq!(max_threads(), detected);
        let out = par_map(&[1usize, 2, 3, 4], |&x| x * x);
        assert_eq!(out, vec![1, 4, 9, 16]);
    }

    #[test]
    fn deterministic_across_repeats() {
        let items: Vec<f64> = (0..10_000).map(|i| (i as f64).sin()).collect();
        let a: f64 = par_map(&items, |&x| x * x).iter().sum();
        let b: f64 = par_map(&items, |&x| x * x).iter().sum();
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
