//! The case-study circuits of Section 8.1: `Q(Γ)`, `P1(Θ,Φ)`, `P2(Θ,Φ,Ψ)`.
//!
//! `Q(Γ)` is a 4-qubit layer of single-qubit rotations:
//!
//! ```text
//! Q(Γ) ≡ RX(γ1)[q1]; …; RX(γ4)[q4];
//!        RY(γ5)[q1]; …; RY(γ8)[q4];
//!        RZ(γ9)[q1]; …; RZ(γ12)[q4]
//! ```
//!
//! `P1(Θ,Φ) = Q(Θ); Q(Φ)` has no control; `P2(Θ,Φ,Ψ)` replaces the second
//! layer by a measurement-controlled `case` — the construct that gives the
//! paper's training advantage (Fig. 6) and that circuit-only schemes such as
//! the phase-shift rule cannot express.

use qdp_lang::ast::{Stmt, Var};
use qdp_linalg::Pauli;

/// Number of qubits in the case-study circuits.
pub const CASE_STUDY_QUBITS: usize = 4;
/// Number of parameters per `Q` block.
pub const PARAMS_PER_BLOCK: usize = 12;

/// The qubit variables `q1..q4`.
pub fn case_study_vars() -> Vec<Var> {
    (1..=CASE_STUDY_QUBITS)
        .map(|i| Var::new(format!("q{i}")))
        .collect()
}

/// Parameter names `"{prefix}0" .. "{prefix}11"` for one `Q` block.
pub fn block_param_names(prefix: &str) -> Vec<String> {
    (0..PARAMS_PER_BLOCK).map(|i| format!("{prefix}{i}")).collect()
}

/// The rotation block `Q(Γ)` with parameters named `"{prefix}0..11"`.
pub fn q_block(prefix: &str) -> Stmt {
    let names = block_param_names(prefix);
    let mut stmts = Vec::with_capacity(PARAMS_PER_BLOCK);
    for (stage, axis) in [Pauli::X, Pauli::Y, Pauli::Z].into_iter().enumerate() {
        for q in 0..CASE_STUDY_QUBITS {
            stmts.push(Stmt::rot(
                axis,
                names[stage * CASE_STUDY_QUBITS + q].as_str(),
                format!("q{}", q + 1).as_str(),
            ));
        }
    }
    Stmt::seq(stmts)
}

/// `P1(Θ,Φ) ≡ Q(Θ); Q(Φ)` (Eq. 8.1) — 24 parameters `T0..11`, `F0..11`.
pub fn p1() -> Stmt {
    Stmt::seq([q_block("T"), q_block("F")])
}

/// `P2(Θ,Φ,Ψ) ≡ Q(Θ); case M[q1] = 0 → Q(Φ), 1 → Q(Ψ) end` (Eq. 8.2) —
/// 36 parameters `T0..11`, `F0..11`, `S0..11`.
pub fn p2() -> Stmt {
    Stmt::seq([
        q_block("T"),
        Stmt::Case {
            qs: vec![Var::new("q1")],
            arms: vec![q_block("F"), q_block("S")],
        },
    ])
}

/// All parameter names of [`p1`].
pub fn p1_param_names() -> Vec<String> {
    let mut names = block_param_names("T");
    names.extend(block_param_names("F"));
    names
}

/// All parameter names of [`p2`].
pub fn p2_param_names() -> Vec<String> {
    let mut names = block_param_names("T");
    names.extend(block_param_names("F"));
    names.extend(block_param_names("S"));
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdp_lang::{wf, Register};

    #[test]
    fn q_block_has_12_gates_and_12_params() {
        let b = q_block("T");
        assert_eq!(b.gate_count(), 12);
        assert_eq!(b.parameters().len(), 12);
        wf::check(&b).unwrap();
    }

    #[test]
    fn p1_and_p2_execute_same_gate_count_per_run() {
        // The paper notes P1 and P2 execute the same number of gates per
        // run: each run of P2 takes exactly one case arm.
        let p1 = p1();
        let p2 = p2();
        assert_eq!(p1.gate_count(), 24);
        // Static count includes both arms; per-trace count is 24.
        assert_eq!(p2.gate_count(), 36);
        wf::check(&p1).unwrap();
        wf::check(&p2).unwrap();
    }

    #[test]
    fn parameter_sets_are_disjoint_and_complete() {
        let p2 = p2();
        let params = p2.parameters();
        assert_eq!(params.len(), 36);
        for name in p2_param_names() {
            assert!(params.contains(&name), "{name} missing");
        }
    }

    #[test]
    fn each_parameter_occurs_once() {
        // Key property for the resource analysis: every parameter of the
        // case study occurs exactly once, so |#∂/∂α| = 1 for all α.
        let p = p2();
        for name in p2_param_names() {
            assert_eq!(qdp_ad::occurrence_count(&p, &name), 1, "{name}");
        }
    }

    #[test]
    fn registers_are_four_qubits() {
        assert_eq!(Register::from_program(&p1()).len(), 4);
        assert_eq!(Register::from_program(&p2()).len(), 4);
    }
}
