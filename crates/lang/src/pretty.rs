//! Pretty-printer for the concrete syntax.
//!
//! The printer and [`crate::parser`] round-trip: `parse(to_source(p)) == p`
//! for every well-formed program (property-tested). The paper reports
//! `#lines` for its benchmark programs (Tables 2–3); [`line_count`] measures
//! the same quantity on pretty-printed sources.

use crate::ast::{Stmt, Var};
use std::fmt::Write as _;

/// Renders a program in concrete syntax.
///
/// # Examples
///
/// ```
/// use qdp_lang::ast::Stmt;
/// use qdp_linalg::Pauli;
///
/// let p = Stmt::seq([
///     Stmt::rot(Pauli::X, "t", "q1"),
///     Stmt::rot(Pauli::Y, "t", "q1"),
/// ]);
/// assert_eq!(qdp_lang::pretty::to_source(&p), "q1 *= RX(t);\nq1 *= RY(t)");
/// ```
pub fn to_source(stmt: &Stmt) -> String {
    let mut out = String::new();
    write_stmt(&mut out, stmt, 0, Prec::Top);
    out
}

/// Number of non-empty lines in the pretty-printed source — the `#lines`
/// metric of the paper's tables.
pub fn line_count(stmt: &Stmt) -> usize {
    to_source(stmt).lines().filter(|l| !l.trim().is_empty()).count()
}

/// Ambient precedence: whether parentheses are needed around `+` / `;`.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Prec {
    /// Top level or case-arm level: both `+` and `;` print bare.
    Top,
    /// Inside a sequence operand: `+` needs parentheses.
    Seq,
    /// Inside a sum operand on the left: `+` is left-associative so a left
    /// child `+` prints bare, a right child needs parentheses.
    SumRight,
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_vars(out: &mut String, qs: &[Var]) {
    for (i, q) in qs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{q}");
    }
}

fn write_stmt(out: &mut String, stmt: &Stmt, level: usize, prec: Prec) {
    match stmt {
        Stmt::Abort { qs } => {
            indent(out, level);
            out.push_str("abort[");
            write_vars(out, qs);
            out.push(']');
        }
        Stmt::Skip { qs } => {
            indent(out, level);
            out.push_str("skip[");
            write_vars(out, qs);
            out.push(']');
        }
        Stmt::Init { q } => {
            indent(out, level);
            let _ = write!(out, "{q} := |0>");
        }
        Stmt::Unitary { gate, qs } => {
            indent(out, level);
            write_vars(out, qs);
            let _ = write!(out, " *= {}", gate.mnemonic());
            if let Some(angle) = gate.angle() {
                let _ = write!(out, "({angle})");
            }
        }
        Stmt::Seq(a, b) => {
            write_stmt(out, a, level, Prec::Seq);
            out.push_str(";\n");
            write_stmt(out, b, level, Prec::Seq);
        }
        Stmt::Sum(a, b) => {
            let parens = prec == Prec::Seq || prec == Prec::SumRight;
            if parens {
                indent(out, level);
                out.push_str("(\n");
                write_stmt(out, a, level + 1, Prec::Top);
                out.push('\n');
                indent(out, level + 1);
                out.push_str("+\n");
                write_stmt(out, b, level + 1, Prec::SumRight);
                out.push('\n');
                indent(out, level);
                out.push(')');
            } else {
                write_stmt(out, a, level, Prec::Top);
                out.push('\n');
                indent(out, level);
                out.push_str("+\n");
                write_stmt(out, b, level, Prec::SumRight);
            }
        }
        Stmt::Case { qs, arms } => {
            indent(out, level);
            out.push_str("case M[");
            write_vars(out, qs);
            out.push_str("] =\n");
            for (m, arm) in arms.iter().enumerate() {
                indent(out, level + 1);
                let _ = writeln!(out, "{m} ->");
                write_stmt(out, arm, level + 2, Prec::Top);
                if m + 1 < arms.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            indent(out, level);
            out.push_str("end");
        }
        Stmt::While { q, bound, body } => {
            indent(out, level);
            let _ = writeln!(out, "while[{bound}] M[{q}] = 1 do");
            write_stmt(out, body, level + 1, Prec::Top);
            out.push('\n');
            indent(out, level);
            out.push_str("done");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Angle, Gate};
    use qdp_linalg::Pauli;

    #[test]
    fn atomic_statements_render() {
        assert_eq!(to_source(&Stmt::init("q1")), "q1 := |0>");
        assert_eq!(
            to_source(&Stmt::abort([Var::new("q1"), Var::new("q2")])),
            "abort[q1, q2]"
        );
        assert_eq!(to_source(&Stmt::skip([Var::new("a")])), "skip[a]");
    }

    #[test]
    fn parameterized_gates_render_with_angles() {
        let s = Stmt::unitary(
            Gate::CRot {
                controls: 1,
                axis: Pauli::Z,
                angle: Angle::param("t").shifted(std::f64::consts::PI),
            },
            [Var::new("A"), Var::new("q1")],
        );
        assert_eq!(to_source(&s), "A, q1 *= CRZ(t + pi)");
        let s = Stmt::unitary(
            Gate::CRot {
                controls: 2,
                axis: Pauli::X,
                angle: Angle::param("t"),
            },
            [Var::new("A2"), Var::new("A1"), Var::new("q1")],
        );
        assert_eq!(to_source(&s), "A2, A1, q1 *= CCRX(t)");
    }

    #[test]
    fn sequences_are_semicolon_separated_lines() {
        let p = Stmt::seq([Stmt::init("a"), Stmt::init("b"), Stmt::init("c")]);
        assert_eq!(to_source(&p), "a := |0>;\nb := |0>;\nc := |0>");
        assert_eq!(line_count(&p), 3);
    }

    #[test]
    fn sums_inside_sequences_get_parenthesised() {
        let sum = Stmt::sum([Stmt::init("a"), Stmt::init("b")]);
        let p = Stmt::seq([Stmt::init("c"), sum]);
        let src = to_source(&p);
        assert!(src.contains('('), "needs parens: {src}");
        assert!(src.contains(')'));
    }

    #[test]
    fn case_renders_all_arms() {
        let p = Stmt::case_qubit("q1", Stmt::skip([Var::new("q1")]), Stmt::init("q1"));
        let src = to_source(&p);
        assert!(src.starts_with("case M[q1] ="));
        assert!(src.contains("0 ->"));
        assert!(src.contains("1 ->"));
        assert!(src.trim_end().ends_with("end"));
    }

    #[test]
    fn while_renders_bound_and_guard() {
        let p = Stmt::while_bounded("q2", 3, Stmt::skip([Var::new("q2")]));
        let src = to_source(&p);
        assert!(src.starts_with("while[3] M[q2] = 1 do"));
        assert!(src.trim_end().ends_with("done"));
    }
}
