//! Property tests for the fast-path gate kernels: on randomised operators,
//! amplitudes, and scattered targets, every dispatch path of `apply_matrix`
//! must agree with the slow `embed` lift (small n) and with the full-range
//! reference kernel (up to n = 10) to 1e-12 — including the parallel splits,
//! which are forced on by raising the `qdp-par` thread override.

use qdp_linalg::{C64, CVector, Matrix};
use qdp_sim::kernels::{
    apply_matrix, apply_matrix_reference, embed, left_mul, right_mul, right_mul_transposed,
};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Domain-shaped draws over the workspace's seeded generator.
struct TestRng(StdRng);

impl TestRng {
    fn new(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }

    fn f64(&mut self) -> f64 {
        self.0.gen::<f64>() * 2.0 - 1.0
    }

    fn c64(&mut self) -> C64 {
        C64::new(self.f64(), self.f64())
    }

    fn index(&mut self, n: usize) -> usize {
        (self.0.next_u64() % n as u64) as usize
    }

    fn amps(&mut self, len: usize) -> Vec<C64> {
        (0..len).map(|_| self.c64()).collect()
    }

    /// `k` distinct targets out of `n`, in random order.
    fn targets(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut pool: Vec<usize> = (0..n).collect();
        let mut out = Vec::with_capacity(k);
        for _ in 0..k {
            out.push(pool.swap_remove(self.index(pool.len())));
        }
        out
    }

    fn dense(&mut self, dim: usize) -> Matrix {
        Matrix::from_data(dim, dim, (0..dim * dim).map(|_| self.c64()).collect())
    }

    fn real_dense(&mut self, dim: usize) -> Matrix {
        Matrix::from_data(
            dim,
            dim,
            (0..dim * dim).map(|_| C64::real(self.f64())).collect(),
        )
    }

    fn diagonal(&mut self, dim: usize) -> Matrix {
        Matrix::diagonal(&(0..dim).map(|_| self.c64()).collect::<Vec<_>>())
    }

    /// A random block-diagonal 4×4 (`|0⟩⟨0|⊗A + |1⟩⟨1|⊗B`, the controlled
    /// shape).
    fn block_diag(&mut self, identity_top: bool) -> Matrix {
        let mut m = Matrix::zeros(4, 4);
        for (row0, col0, ident) in [(0usize, 0usize, identity_top), (2, 2, false)] {
            for i in 0..2 {
                for j in 0..2 {
                    let v = if ident {
                        if i == j { C64::ONE } else { C64::ZERO }
                    } else {
                        self.c64()
                    };
                    m.set(row0 + i, col0 + j, v);
                }
            }
        }
        m
    }
}

fn assert_close(fast: &[C64], slow: &[C64], what: &str) {
    for (i, (a, b)) in fast.iter().zip(slow).enumerate() {
        assert!(
            a.approx_eq(*b, 1e-12),
            "{what}: entry {i} differs: {a} vs {b}"
        );
    }
}

#[test]
fn random_operators_match_embed_small_n() {
    let mut rng = TestRng::new(1);
    for n in 1..=6usize {
        for k in 1..=3usize.min(n) {
            for rep in 0..8 {
                let targets = rng.targets(n, k);
                let m = rng.dense(1 << k);
                let amps = rng.amps(1 << n);

                let expected = embed(n, &m, &targets).mul_vec(&CVector::new(amps.clone()));
                let mut fast = amps.clone();
                apply_matrix(&mut fast, n, &m, &targets);
                assert_close(
                    &fast,
                    expected.as_slice(),
                    &format!("n={n} k={k} rep={rep} targets={targets:?}"),
                );
            }
        }
    }
}

#[test]
fn random_operators_match_reference_up_to_n10() {
    let mut rng = TestRng::new(2);
    for n in [7usize, 8, 9, 10] {
        for k in 1..=3usize {
            for rep in 0..4 {
                let targets = rng.targets(n, k);
                let m = rng.dense(1 << k);
                let amps = rng.amps(1 << n);

                let mut slow = amps.clone();
                apply_matrix_reference(&mut slow, n, &m, &targets);
                let mut fast = amps.clone();
                apply_matrix(&mut fast, n, &m, &targets);
                assert_close(
                    &fast,
                    &slow,
                    &format!("n={n} k={k} rep={rep} targets={targets:?}"),
                );
            }
        }
    }
}

#[test]
fn specialised_shapes_match_reference() {
    let mut rng = TestRng::new(3);
    let n = 9usize;
    for rep in 0..6 {
        let amps = rng.amps(1 << n);

        // Real 2×2 (H/RY-shaped).
        let t = rng.targets(n, 1);
        let m = rng.real_dense(2);
        let mut fast = amps.clone();
        apply_matrix(&mut fast, n, &m, &t);
        let mut slow = amps.clone();
        apply_matrix_reference(&mut slow, n, &m, &t);
        assert_close(&fast, &slow, &format!("real-2x2 rep={rep} t={t:?}"));

        // Diagonal 1q and 2q (RZ/CZ-shaped).
        for k in 1..=2usize {
            let t = rng.targets(n, k);
            let m = rng.diagonal(1 << k);
            let mut fast = amps.clone();
            apply_matrix(&mut fast, n, &m, &t);
            let mut slow = amps.clone();
            apply_matrix_reference(&mut slow, n, &m, &t);
            assert_close(&fast, &slow, &format!("diag-{k}q rep={rep} t={t:?}"));
        }

        // Controlled / block-diagonal 4×4, with and without identity block.
        for identity_top in [true, false] {
            let t = rng.targets(n, 2);
            let m = rng.block_diag(identity_top);
            let mut fast = amps.clone();
            apply_matrix(&mut fast, n, &m, &t);
            let mut slow = amps.clone();
            apply_matrix_reference(&mut slow, n, &m, &t);
            assert_close(
                &fast,
                &slow,
                &format!("blockdiag(id={identity_top}) rep={rep} t={t:?}"),
            );
        }
    }
}

#[test]
fn parallel_split_paths_are_bitwise_deterministic() {
    // Force the thread override high enough that both the aligned in-place
    // split and the zipped-halves top-bit path actually engage (the array
    // length 2^15 exceeds PAR_MIN_LEN), then require bitwise equality with
    // the single-threaded result.
    let mut rng = TestRng::new(4);
    let n = 15usize;
    let amps = rng.amps(1 << n);
    let dense = rng.dense(2);
    let diag = rng.diagonal(4);

    // Low target bit (aligned in-place split), high target bit (gather), and
    // a 2q diagonal.
    let cases: Vec<(Matrix, Vec<usize>)> = vec![
        (dense.clone(), vec![n - 1]), // bit 0: align = 2, chunked split
        (dense.clone(), vec![0]),     // top bit: zipped orbit halves
        (diag.clone(), vec![0, n - 1]),
    ];
    for (m, targets) in &cases {
        qdp_par::set_max_threads(1);
        let mut serial = amps.clone();
        apply_matrix(&mut serial, n, m, targets);

        qdp_par::set_max_threads(8);
        let mut parallel = amps.clone();
        apply_matrix(&mut parallel, n, m, targets);
        qdp_par::set_max_threads(0); // restore auto-detection

        assert_eq!(
            serial, parallel,
            "parallel result must be bit-identical (targets {targets:?})"
        );
    }
}

#[test]
fn density_left_right_mul_match_matrix_products() {
    let mut rng = TestRng::new(5);
    for n in 1..=4usize {
        let dim = 1usize << n;
        for k in 1..=2usize.min(n) {
            let targets = rng.targets(n, k);
            let m = rng.dense(1 << k);
            let flat = rng.amps(dim * dim);
            let rho = Matrix::from_data(dim, dim, flat.clone());
            let lifted = embed(n, &m, &targets);

            let mut left = flat.clone();
            left_mul(&mut left, n, &m, &targets);
            assert!(
                Matrix::from_data(dim, dim, left).approx_eq(&lifted.mul(&rho), 1e-12),
                "left_mul n={n} targets={targets:?}"
            );

            let mut right = flat.clone();
            right_mul(&mut right, n, &m, &targets);
            assert!(
                Matrix::from_data(dim, dim, right).approx_eq(&rho.mul(&lifted), 1e-12),
                "right_mul n={n} targets={targets:?}"
            );

            let mut right_t = flat.clone();
            right_mul_transposed(&mut right_t, n, &m.transpose(), &targets);
            assert!(
                Matrix::from_data(dim, dim, right_t).approx_eq(&rho.mul(&lifted), 1e-12),
                "right_mul_transposed n={n} targets={targets:?}"
            );
        }
    }
}
