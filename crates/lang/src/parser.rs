//! Recursive-descent parser for the concrete syntax.
//!
//! Grammar (lowest precedence first; `+` binds looser than `;`, matching the
//! paper's convention in Section 4.1):
//!
//! ```text
//! program := sum
//! sum     := seq ('+' seq)*
//! seq     := atom (';' atom)*
//! atom    := 'abort' '[' vars ']'
//!          | 'skip'  '[' vars ']'
//!          | var ':=' '|0>'
//!          | vars '*=' GATE ('(' angle ')')?
//!          | 'case' 'M' '[' vars ']' '=' (INT '->' sum),+ 'end'
//!          | 'while' '[' INT ']' 'M' '[' var ']' '=' '1' 'do' sum 'done'
//!          | '(' sum ')'
//! angle   := ('-')? aterm (('+'|'-') aterm)*
//! aterm   := INT | FLOAT | 'pi' | NUM '*' 'pi' | 'pi' '/' NUM | IDENT
//! ```

use crate::ast::{Angle, Gate, Stmt, Var};
use crate::lexer::{tokenize, LexError, Token, TokenKind};
use qdp_linalg::Pauli;
use std::f64::consts::PI;
use std::fmt;

/// A parse error with byte position.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// Byte offset in the source.
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            position: e.position,
        }
    }
}

/// Parses a program from source text.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input.
///
/// # Examples
///
/// ```
/// use qdp_lang::parse_program;
///
/// let p = parse_program("q1 *= RX(t); q1 *= RY(t)")?;
/// assert_eq!(p.gate_count(), 2);
/// # Ok::<(), qdp_lang::parser::ParseError>(())
/// ```
pub fn parse_program(src: &str) -> Result<Stmt, ParseError> {
    let tokens = tokenize(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        src_len: src.len(),
    };
    let stmt = p.parse_sum()?;
    if let Some(t) = p.peek() {
        return Err(ParseError {
            message: format!("unexpected {} after end of program", t.kind),
            position: t.start,
        });
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    src_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1)
    }

    fn position(&self) -> usize {
        self.peek().map(|t| t.start).unwrap_or(self.src_len)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            position: self.position(),
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, ParseError> {
        match self.peek() {
            Some(t) if &t.kind == kind => {}
            Some(t) => {
                return Err(ParseError {
                    message: format!("expected {kind}, found {}", t.kind),
                    position: t.start,
                })
            }
            None => return Err(self.error(format!("expected {kind}, found end of input"))),
        }
        // The peeked token is present and matches, so `advance` yields it;
        // the fallback error keeps this panic-free regardless.
        self.advance()
            .ok_or_else(|| self.error(format!("expected {kind}, found end of input")))
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Token {
                kind: TokenKind::Ident(name),
                ..
            }) => {
                let name = name.clone();
                self.advance();
                Ok(name)
            }
            Some(t) => Err(ParseError {
                message: format!("expected identifier, found {}", t.kind),
                position: t.start,
            }),
            None => Err(self.error("expected identifier, found end of input")),
        }
    }

    fn expect_int(&mut self) -> Result<u64, ParseError> {
        match self.peek() {
            Some(Token {
                kind: TokenKind::Int(n),
                ..
            }) => {
                let n = *n;
                self.advance();
                Ok(n)
            }
            Some(t) => Err(ParseError {
                message: format!("expected integer, found {}", t.kind),
                position: t.start,
            }),
            None => Err(self.error("expected integer, found end of input")),
        }
    }

    fn parse_sum(&mut self) -> Result<Stmt, ParseError> {
        let mut acc = self.parse_seq()?;
        while matches!(self.peek().map(|t| &t.kind), Some(TokenKind::Plus)) {
            self.advance();
            let rhs = self.parse_seq()?;
            acc = Stmt::Sum(Box::new(acc), Box::new(rhs));
        }
        Ok(acc)
    }

    fn parse_seq(&mut self) -> Result<Stmt, ParseError> {
        let mut stmts = vec![self.parse_atom()?];
        while matches!(self.peek().map(|t| &t.kind), Some(TokenKind::Semicolon)) {
            self.advance();
            stmts.push(self.parse_atom()?);
        }
        Ok(Stmt::seq(stmts))
    }

    fn parse_atom(&mut self) -> Result<Stmt, ParseError> {
        match self.peek().map(|t| t.kind.clone()) {
            Some(TokenKind::Abort) => {
                self.advance();
                let qs = self.parse_bracketed_vars()?;
                Ok(Stmt::Abort { qs })
            }
            Some(TokenKind::Skip) => {
                self.advance();
                let qs = self.parse_bracketed_vars()?;
                Ok(Stmt::Skip { qs })
            }
            Some(TokenKind::Case) => self.parse_case(),
            Some(TokenKind::While) => self.parse_while(),
            Some(TokenKind::LParen) => {
                self.advance();
                let inner = self.parse_sum()?;
                self.expect(&TokenKind::RParen)?;
                Ok(inner)
            }
            Some(TokenKind::Ident(_)) => self.parse_init_or_unitary(),
            Some(other) => Err(self.error(format!("expected a statement, found {other}"))),
            None => Err(self.error("expected a statement, found end of input")),
        }
    }

    fn parse_bracketed_vars(&mut self) -> Result<Vec<Var>, ParseError> {
        self.expect(&TokenKind::LBracket)?;
        let vars = self.parse_var_list()?;
        self.expect(&TokenKind::RBracket)?;
        Ok(vars)
    }

    fn parse_var_list(&mut self) -> Result<Vec<Var>, ParseError> {
        let mut vars = vec![Var::new(self.expect_ident()?)];
        while matches!(self.peek().map(|t| &t.kind), Some(TokenKind::Comma)) {
            self.advance();
            vars.push(Var::new(self.expect_ident()?));
        }
        Ok(vars)
    }

    fn parse_init_or_unitary(&mut self) -> Result<Stmt, ParseError> {
        // `q := |0>` vs `q(, q)* *= GATE…` — decided by the token after the
        // first identifier.
        if matches!(self.peek2().map(|t| &t.kind), Some(TokenKind::Assign)) {
            let name = self.expect_ident()?;
            self.expect(&TokenKind::Assign)?;
            self.expect(&TokenKind::KetZero)?;
            return Ok(Stmt::init(name.as_str()));
        }
        let qs = self.parse_var_list()?;
        self.expect(&TokenKind::ApplyAssign)?;
        let mnemonic_pos = self.position();
        let mnemonic = self.expect_ident()?;
        let gate = self.parse_gate(&mnemonic, mnemonic_pos)?;
        if gate.arity() != qs.len() {
            return Err(ParseError {
                message: format!(
                    "gate {} takes {} qubit(s), got {}",
                    gate.mnemonic(),
                    gate.arity(),
                    qs.len()
                ),
                position: mnemonic_pos,
            });
        }
        Ok(Stmt::Unitary { gate, qs })
    }

    fn parse_gate(&mut self, mnemonic: &str, pos: usize) -> Result<Gate, ParseError> {
        let fixed = match mnemonic {
            "H" => Some(Gate::H),
            "X" => Some(Gate::X),
            "Y" => Some(Gate::Y),
            "Z" => Some(Gate::Z),
            "CNOT" => Some(Gate::Cnot),
            _ => None,
        };
        if let Some(g) = fixed {
            return Ok(g);
        }
        // Rotation mnemonics: `C*R(X|Y|Z){1,2}` — one leading `C` per
        // control qubit, doubled axis for couplings.
        let controls = mnemonic.chars().take_while(|&c| c == 'C').count();
        let rest = &mnemonic[controls..];
        let parsed = match rest {
            "RX" => Some((Pauli::X, false)),
            "RY" => Some((Pauli::Y, false)),
            "RZ" => Some((Pauli::Z, false)),
            "RXX" => Some((Pauli::X, true)),
            "RYY" => Some((Pauli::Y, true)),
            "RZZ" => Some((Pauli::Z, true)),
            _ => None,
        };
        let Some((axis, coupling)) = parsed else {
            return Err(ParseError {
                message: format!("unknown gate '{mnemonic}'"),
                position: pos,
            });
        };
        self.expect(&TokenKind::LParen)?;
        let angle = self.parse_angle()?;
        self.expect(&TokenKind::RParen)?;
        Ok(match (controls, coupling) {
            (0, false) => Gate::Rot { axis, angle },
            (0, true) => Gate::Coupling { axis, angle },
            (k, false) => Gate::CRot {
                controls: k,
                axis,
                angle,
            },
            (k, true) => Gate::CCoupling {
                controls: k,
                axis,
                angle,
            },
        })
    }

    fn parse_angle(&mut self) -> Result<Angle, ParseError> {
        let mut param: Option<String> = None;
        let mut offset = 0.0f64;
        let mut sign = 1.0f64;
        if matches!(self.peek().map(|t| &t.kind), Some(TokenKind::Minus)) {
            self.advance();
            sign = -1.0;
        }
        loop {
            let pos = self.position();
            match self.peek().map(|t| t.kind.clone()) {
                Some(TokenKind::Ident(name)) => {
                    self.advance();
                    if sign < 0.0 {
                        return Err(ParseError {
                            message: "negated parameters are not supported in angles".into(),
                            position: pos,
                        });
                    }
                    if param.replace(name).is_some() {
                        return Err(ParseError {
                            message: "an angle may reference at most one parameter".into(),
                            position: pos,
                        });
                    }
                }
                Some(TokenKind::Pi) => {
                    self.advance();
                    let mut value = PI;
                    if matches!(self.peek().map(|t| &t.kind), Some(TokenKind::Slash)) {
                        self.advance();
                        value /= self.parse_number()?;
                    }
                    offset += sign * value;
                }
                Some(TokenKind::Int(_)) | Some(TokenKind::Float(_)) => {
                    let mut value = self.parse_number()?;
                    if matches!(self.peek().map(|t| &t.kind), Some(TokenKind::Star)) {
                        self.advance();
                        self.expect(&TokenKind::Pi)?;
                        value *= PI;
                        if matches!(self.peek().map(|t| &t.kind), Some(TokenKind::Slash)) {
                            self.advance();
                            value /= self.parse_number()?;
                        }
                    }
                    offset += sign * value;
                }
                _ => return Err(self.error("expected an angle term")),
            }
            match self.peek().map(|t| &t.kind) {
                Some(TokenKind::Plus) => {
                    self.advance();
                    sign = 1.0;
                }
                Some(TokenKind::Minus) => {
                    self.advance();
                    sign = -1.0;
                }
                _ => break,
            }
        }
        Ok(Angle { param, offset })
    }

    fn parse_number(&mut self) -> Result<f64, ParseError> {
        match self.peek().map(|t| t.kind.clone()) {
            Some(TokenKind::Int(n)) => {
                self.advance();
                Ok(n as f64)
            }
            Some(TokenKind::Float(x)) => {
                self.advance();
                Ok(x)
            }
            _ => Err(self.error("expected a number")),
        }
    }

    fn parse_case(&mut self) -> Result<Stmt, ParseError> {
        self.expect(&TokenKind::Case)?;
        self.expect(&TokenKind::Meas)?;
        let qs = self.parse_bracketed_vars()?;
        self.expect(&TokenKind::Equals)?;
        let expected_arms = 1usize << qs.len();
        let mut arms: Vec<Stmt> = Vec::with_capacity(expected_arms);
        loop {
            let label_pos = self.position();
            let label = self.expect_int()? as usize;
            if label != arms.len() {
                return Err(ParseError {
                    message: format!(
                        "case arms must be labelled consecutively from 0; expected {}, found {label}",
                        arms.len()
                    ),
                    position: label_pos,
                });
            }
            self.expect(&TokenKind::Arrow)?;
            arms.push(self.parse_sum()?);
            match self.peek().map(|t| &t.kind) {
                Some(TokenKind::Comma) => {
                    self.advance();
                }
                Some(TokenKind::End) => break,
                Some(other) => {
                    let other = other.clone();
                    return Err(self.error(format!("expected ',' or 'end' in case, found {other}")));
                }
                None => return Err(self.error("unterminated case statement")),
            }
        }
        self.expect(&TokenKind::End)?;
        if arms.len() != expected_arms {
            return Err(self.error(format!(
                "case over {} qubit(s) needs {expected_arms} arms, found {}",
                qs.len(),
                arms.len()
            )));
        }
        Ok(Stmt::Case { qs, arms })
    }

    fn parse_while(&mut self) -> Result<Stmt, ParseError> {
        self.expect(&TokenKind::While)?;
        self.expect(&TokenKind::LBracket)?;
        let bound_pos = self.position();
        let bound = self.expect_int()?;
        if bound == 0 {
            return Err(ParseError {
                message: "while bound must be at least 1".into(),
                position: bound_pos,
            });
        }
        self.expect(&TokenKind::RBracket)?;
        self.expect(&TokenKind::Meas)?;
        self.expect(&TokenKind::LBracket)?;
        let q = Var::new(self.expect_ident()?);
        self.expect(&TokenKind::RBracket)?;
        self.expect(&TokenKind::Equals)?;
        let one_pos = self.position();
        if self.expect_int()? != 1 {
            return Err(ParseError {
                message: "while guards have the form M[q] = 1".into(),
                position: one_pos,
            });
        }
        self.expect(&TokenKind::Do)?;
        let body = self.parse_sum()?;
        self.expect(&TokenKind::Done)?;
        Ok(Stmt::While {
            q,
            bound: bound as u32,
            body: Box::new(body),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_init_and_unitary() {
        let p = parse_program("q1 := |0>; q1 *= RX(t)").unwrap();
        let Stmt::Seq(a, b) = p else { panic!() };
        assert!(matches!(*a, Stmt::Init { .. }));
        let Stmt::Unitary { gate, qs } = *b else { panic!() };
        assert_eq!(gate.mnemonic(), "RX");
        assert_eq!(qs, vec![Var::new("q1")]);
    }

    #[test]
    fn parses_all_gate_mnemonics() {
        for (src, arity) in [
            ("q1 *= H", 1),
            ("q1 *= X", 1),
            ("q1 *= RY(a)", 1),
            ("q1, q2 *= RZZ(a)", 2),
            ("q1, q2 *= CRX(a)", 2),
            ("q1, q2 *= CNOT", 2),
            ("a, q1, q2 *= CRYY(b)", 3),
        ] {
            let p = parse_program(src).unwrap_or_else(|e| panic!("{src}: {e}"));
            let Stmt::Unitary { gate, qs } = p else { panic!("{src}") };
            assert_eq!(gate.arity(), arity, "{src}");
            assert_eq!(qs.len(), arity, "{src}");
        }
    }

    #[test]
    fn parses_angle_forms() {
        for (src, expected_param, expected_offset) in [
            ("q *= RX(t)", Some("t"), 0.0),
            ("q *= RX(t + pi)", Some("t"), PI),
            ("q *= RX(t - pi/2)", Some("t"), -PI / 2.0),
            ("q *= RX(pi)", None, PI),
            ("q *= RX(2*pi)", None, 2.0 * PI),
            ("q *= RX(0.5)", None, 0.5),
            ("q *= RX(-0.5)", None, -0.5),
            ("q *= RX(pi/4 + t)", Some("t"), PI / 4.0),
        ] {
            let p = parse_program(src).unwrap_or_else(|e| panic!("{src}: {e}"));
            let Stmt::Unitary { gate, .. } = p else { panic!() };
            let angle = gate.angle().unwrap();
            assert_eq!(angle.param.as_deref(), expected_param, "{src}");
            assert!((angle.offset - expected_offset).abs() < 1e-12, "{src}");
        }
    }

    #[test]
    fn plus_binds_looser_than_semicolon() {
        let p = parse_program("a := |0>; b := |0> + c := |0>; d := |0>").unwrap();
        let Stmt::Sum(lhs, rhs) = p else { panic!("expected sum at top") };
        assert!(matches!(*lhs, Stmt::Seq(..)));
        assert!(matches!(*rhs, Stmt::Seq(..)));
    }

    #[test]
    fn sum_is_left_associative() {
        let p = parse_program("a := |0> + b := |0> + c := |0>").unwrap();
        let Stmt::Sum(lhs, _) = p else { panic!() };
        assert!(matches!(*lhs, Stmt::Sum(..)));
    }

    #[test]
    fn parses_case_with_arms() {
        let p = parse_program(
            "case M[q1] = 0 -> skip[q1], 1 -> q1 *= RZ(t) end",
        )
        .unwrap();
        let Stmt::Case { qs, arms } = p else { panic!() };
        assert_eq!(qs.len(), 1);
        assert_eq!(arms.len(), 2);
    }

    #[test]
    fn parses_two_qubit_case() {
        let p = parse_program(
            "case M[q1, q2] = 0 -> skip[q1], 1 -> skip[q1], 2 -> skip[q1], 3 -> abort[q1] end",
        )
        .unwrap();
        let Stmt::Case { arms, .. } = p else { panic!() };
        assert_eq!(arms.len(), 4);
    }

    #[test]
    fn rejects_incomplete_case() {
        let err = parse_program("case M[q1, q2] = 0 -> skip[q1], 1 -> skip[q1] end").unwrap_err();
        assert!(err.message.contains("needs 4 arms"), "{err}");
    }

    #[test]
    fn rejects_out_of_order_arms() {
        let err = parse_program("case M[q1] = 1 -> skip[q1], 0 -> skip[q1] end").unwrap_err();
        assert!(err.message.contains("consecutively"), "{err}");
    }

    #[test]
    fn parses_while_loop() {
        let p = parse_program("while[2] M[q1] = 1 do q1 *= RX(t) done").unwrap();
        let Stmt::While { q, bound, .. } = p else { panic!() };
        assert_eq!(q, Var::new("q1"));
        assert_eq!(bound, 2);
    }

    #[test]
    fn rejects_zero_bound_while() {
        let err = parse_program("while[0] M[q1] = 1 do skip[q1] done").unwrap_err();
        assert!(err.message.contains("at least 1"), "{err}");
    }

    #[test]
    fn rejects_arity_mismatch() {
        let err = parse_program("q1 *= CNOT").unwrap_err();
        assert!(err.message.contains("takes 2"), "{err}");
    }

    #[test]
    fn rejects_unknown_gate() {
        let err = parse_program("q1 *= WUMBO(t)").unwrap_err();
        assert!(err.message.contains("unknown gate"), "{err}");
    }

    #[test]
    fn rejects_trailing_tokens() {
        let err = parse_program("skip[q1] skip[q2]").unwrap_err();
        assert!(err.message.contains("after end of program"), "{err}");
    }

    #[test]
    fn parens_group_sums() {
        let p = parse_program("a := |0>; (b := |0> + c := |0>)").unwrap();
        let Stmt::Seq(_, rhs) = p else { panic!() };
        assert!(matches!(*rhs, Stmt::Sum(..)));
    }
}
