//! Shot-based sampling of measurements and observables.
//!
//! Section 7 of the paper analyses the *execution* of the differentiation
//! procedure: expectations `tr(Oρ)` are estimated by repeated projective
//! measurement, with `O(1/δ²)` repetitions for additive error `δ` (Chernoff
//! bound). This module provides that statistical layer over the exact
//! simulator.
//!
//! The randomness is organised around two primitives shared by every shot
//! path in the workspace:
//!
//! * [`collapse_with_draw`] — the Born-rule branch selection and collapse
//!   for one pre-drawn uniform variate. [`ShotSampler::measure`] and the
//!   batched [`crate::ShotEngine`] both call it, so a batched sweep and a
//!   serial per-shot loop driven by the same stream produce **bit-identical**
//!   outcomes and collapsed states.
//! * [`derive_seed`] — the stream-derivation contract: shot `s` of a run
//!   seeded with `seed` draws from `ShotSampler::derived(seed, s)`. Because
//!   each shot owns an independent stream, work can be tiled across threads
//!   in any way without changing a single drawn value.

use crate::measurement::Measurement;
use crate::observable::Observable;
use crate::state::StateVector;
use qdp_linalg::C64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The shot budget the paper's Chernoff analysis prescribes for estimating a
/// sum of `m` bounded (`-I ⊑ O ⊑ I`) program read-outs to additive
/// precision `delta` — Section 7's `O(m²/δ²)`, with the constant pinned to
/// `⌈m²/δ²⌉` (one shot estimates a single read-out to `δ = 1`).
///
/// This is the **single** definition in the workspace;
/// `qdp_ad::estimator::chernoff_shots` re-exports it.
///
/// # Panics
///
/// Panics when `delta` is not positive.
pub fn chernoff_shots(m: usize, delta: f64) -> usize {
    assert!(delta > 0.0, "precision must be positive");
    let m = m.max(1) as f64;
    ((m * m) / (delta * delta)).ceil() as usize
}

/// Derives the seed of stream `stream` of a run seeded with `seed` — a
/// SplitMix64 finalizer over `seed + (stream+1)·γ`, the standard recipe for
/// decorrelating enumerated substreams of one master seed.
///
/// This is the workspace-wide determinism contract for parallel shot
/// execution: shot `s` always draws from `ShotSampler::derived(seed, s)`,
/// no matter which thread or tile runs it.
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed.wrapping_add(stream.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Performs one Born-rule shot of `measurement` on a normalised pure state
/// for a **pre-drawn** uniform variate `u ∈ [0, 1)`: returns the sampled
/// outcome and the collapsed, renormalised state.
///
/// This is the deterministic core of [`ShotSampler::measure`], factored out
/// so batched executors that manage their own per-row streams perform the
/// *identical* floating-point selection and collapse arithmetic.
///
/// # Panics
///
/// Panics if the state has (numerically) zero norm.
pub fn collapse_with_draw(
    u: f64,
    psi: &StateVector,
    measurement: &Measurement,
) -> (usize, StateVector) {
    let total = psi.norm_sqr();
    assert!(total > 1e-300, "cannot measure a zero-norm state");
    let branches = measurement.branches_pure(psi);
    let mut r: f64 = u * total;
    for b in &branches {
        r -= b.probability;
        if r <= 0.0 {
            let mut state = b.state.clone();
            if b.probability > 0.0 {
                state.scale(C64::real((total / b.probability).sqrt().min(1e150)));
                // Renormalise to the parent state's norm.
                let norm = state.norm_sqr().sqrt();
                if norm > 0.0 {
                    state.scale(C64::real(total.sqrt() / norm));
                }
            }
            return (b.outcome, state);
        }
    }
    // Floating-point slack: fall back to the last branch with support.
    let last = branches
        .into_iter()
        .rev()
        .find(|b| b.probability > 0.0)
        .expect("no branch has support");
    let mut state = last.state.clone();
    let norm = state.norm_sqr().sqrt();
    if norm > 0.0 {
        state.scale(C64::real(total.sqrt() / norm));
    }
    (last.outcome, state)
}

/// An observable's spectral measurement `{(λm, Pm)}` hoisted for repeated
/// sampling: the eigendecomposition runs **once** and each projector is
/// wrapped as an [`Observable`] whose expectation fast path can be replayed
/// against arbitrarily many states (or batch rows) with zero per-shot
/// allocation.
///
/// [`ShotSampler::sample_observable`] builds one per call; batched sweeps
/// build one per estimator invocation and share it across all shots.
#[derive(Clone, Debug)]
pub struct ProjectiveObservable {
    pairs: Vec<(f64, Observable)>,
}

impl ProjectiveObservable {
    /// Decomposes `obs` into its `(eigenvalue, projector)` read-out pairs.
    pub fn new(obs: &Observable) -> Self {
        ProjectiveObservable {
            pairs: obs
                .to_projective()
                .into_iter()
                .map(|(eigenvalue, projector)| {
                    (
                        eigenvalue,
                        Observable::new(obs.num_qubits(), obs.targets().to_vec(), projector),
                    )
                })
                .collect(),
        }
    }

    /// The `(eigenvalue, projector-observable)` pairs in eigenvalue order.
    pub fn pairs(&self) -> &[(f64, Observable)] {
        &self.pairs
    }

    /// One projective sample for a pre-drawn uniform `u ∈ [0, 1)` against a
    /// raw amplitude slice whose squared norm is `total` (pass
    /// `psi.norm_sqr()`; callers must handle `total ≈ 0` themselves —
    /// see [`ShotSampler::sample_observable`]).
    pub fn sample_with_draw(&self, u: f64, total: f64, amps: &[C64]) -> f64 {
        self.select_with(u, total, |k| self.pairs[k].1.expectation_amps(amps))
    }

    /// The cumulative Born-rule selection shared by every sampling path:
    /// walks the pairs in order, subtracting `probability(k)` (evaluated
    /// lazily, so early exits skip the remaining projectors) from
    /// `u · total`, and returns the first eigenvalue driving the rest
    /// non-positive — the last eigenvalue under floating-point slack.
    ///
    /// [`sample_with_draw`](Self::sample_with_draw) and the batched
    /// read-out of `ShotEngine::sample_sweep` both go through this one
    /// loop, so their selection arithmetic can never drift apart.
    pub(crate) fn select_with(
        &self,
        u: f64,
        total: f64,
        mut probability: impl FnMut(usize) -> f64,
    ) -> f64 {
        let mut r = u * total;
        for (k, (eigenvalue, _)) in self.pairs.iter().enumerate() {
            r -= probability(k);
            if r <= 0.0 {
                return *eigenvalue;
            }
        }
        self.pairs.last().map(|(l, _)| *l).unwrap_or(0.0)
    }
}

/// A seeded sampler producing measurement shots from simulated states.
///
/// # Examples
///
/// ```
/// use qdp_linalg::Matrix;
/// use qdp_sim::{Observable, ShotSampler, StateVector};
///
/// let mut psi = StateVector::zero_state(1);
/// psi.apply_gate(&Matrix::hadamard(), &[0]);
/// let z = Observable::pauli_z(1, 0);
/// let mut sampler = ShotSampler::seeded(7);
/// let estimate = sampler.estimate_observable(&psi, &z, 4096);
/// assert!(estimate.abs() < 0.1); // true value is 0
/// ```
#[derive(Debug)]
pub struct ShotSampler {
    rng: StdRng,
}

impl ShotSampler {
    /// Creates a sampler with a fixed seed (reproducible runs).
    pub fn seeded(seed: u64) -> Self {
        ShotSampler {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The sampler of stream `stream` of a run seeded with `seed` — see
    /// [`derive_seed`] for the contract.
    pub fn derived(seed: u64, stream: u64) -> Self {
        ShotSampler::seeded(derive_seed(seed, stream))
    }

    /// Creates a sampler from operating-system entropy.
    pub fn from_entropy() -> Self {
        ShotSampler {
            rng: StdRng::from_entropy(),
        }
    }

    /// Draws one uniform variate in `[0, 1)` — the raw fuel of
    /// [`collapse_with_draw`] and
    /// [`ProjectiveObservable::sample_with_draw`].
    pub fn next_uniform(&mut self) -> f64 {
        self.rng.gen()
    }

    /// Draws a uniform index in `0..n`.
    pub fn uniform_index(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }

    /// Performs one shot of `measurement` on a normalised pure state;
    /// returns the sampled outcome and the collapsed, renormalised state.
    ///
    /// # Panics
    ///
    /// Panics if the state has (numerically) zero norm.
    pub fn measure(
        &mut self,
        psi: &StateVector,
        measurement: &Measurement,
    ) -> (usize, StateVector) {
        let u = self.next_uniform();
        collapse_with_draw(u, psi, measurement)
    }

    /// One shot of an observable: projectively measures in the observable's
    /// eigenbasis and returns the sampled eigenvalue.
    pub fn sample_observable(&mut self, psi: &StateVector, obs: &Observable) -> f64 {
        let total = psi.norm_sqr();
        if total <= 1e-300 {
            return 0.0;
        }
        let projective = ProjectiveObservable::new(obs);
        let u = self.next_uniform();
        projective.sample_with_draw(u, total, psi.amplitudes())
    }

    /// Monte-Carlo estimate of `⟨O⟩` from `shots` projective samples.
    pub fn estimate_observable(
        &mut self,
        psi: &StateVector,
        obs: &Observable,
        shots: usize,
    ) -> f64 {
        assert!(shots > 0, "need at least one shot");
        let total = psi.norm_sqr();
        if total <= 1e-300 {
            return 0.0;
        }
        let projective = ProjectiveObservable::new(obs);
        let mut acc = 0.0;
        for _ in 0..shots {
            let u = self.next_uniform();
            acc += projective.sample_with_draw(u, total, psi.amplitudes());
        }
        acc / shots as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdp_linalg::Matrix;

    #[test]
    fn measurement_statistics_approach_born_rule() {
        let mut psi = StateVector::zero_state(1);
        psi.apply_gate(&Matrix::hadamard(), &[0]);
        let m = Measurement::computational(vec![0]);
        let mut sampler = ShotSampler::seeded(42);
        let shots = 20_000;
        let mut ones = 0usize;
        for _ in 0..shots {
            let (outcome, _) = sampler.measure(&psi, &m);
            ones += outcome;
        }
        let freq = ones as f64 / shots as f64;
        assert!((freq - 0.5).abs() < 0.02, "frequency {freq} too far from 0.5");
    }

    #[test]
    fn collapsed_state_is_consistent() {
        let mut psi = StateVector::zero_state(2);
        psi.apply_gate(&Matrix::hadamard(), &[0]);
        psi.apply_gate(&Matrix::cnot(), &[0, 1]);
        let m = Measurement::computational(vec![0]);
        let mut sampler = ShotSampler::seeded(1);
        for _ in 0..20 {
            let (outcome, collapsed) = sampler.measure(&psi, &m);
            assert_eq!(collapsed.classical_bit(0), Some(outcome == 1));
            assert_eq!(collapsed.classical_bit(1), Some(outcome == 1));
            assert!((collapsed.norm_sqr() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn measure_equals_collapse_with_same_draw() {
        // `measure` must be exactly "draw one uniform, collapse": the
        // batched engine relies on this split to match the serial path
        // bit for bit.
        let mut psi = StateVector::zero_state(2);
        psi.apply_gate(&Matrix::hadamard(), &[0]);
        psi.apply_gate(&Matrix::cnot(), &[0, 1]);
        let m = Measurement::computational(vec![0]);
        let mut a = ShotSampler::seeded(31);
        let mut b = ShotSampler::seeded(31);
        for _ in 0..16 {
            let (o1, s1) = a.measure(&psi, &m);
            let u = b.next_uniform();
            let (o2, s2) = collapse_with_draw(u, &psi, &m);
            assert_eq!(o1, o2);
            assert_eq!(s1.amplitudes(), s2.amplitudes());
        }
    }

    #[test]
    fn observable_estimate_converges() {
        let psi = StateVector::zero_state(1); // ⟨Z⟩ = 1 exactly
        let z = Observable::pauli_z(1, 0);
        let mut sampler = ShotSampler::seeded(3);
        let est = sampler.estimate_observable(&psi, &z, 100);
        assert!((est - 1.0).abs() < 1e-12);
    }

    #[test]
    fn observable_estimate_on_superposition() {
        let mut psi = StateVector::zero_state(1);
        psi.apply_gate(
            &Matrix::rotation_from_involution(&Matrix::pauli_y(), 1.0),
            &[0],
        );
        let z = Observable::pauli_z(1, 0);
        let exact = z.expectation_pure(&psi);
        let mut sampler = ShotSampler::seeded(1234);
        let est = sampler.estimate_observable(&psi, &z, 40_000);
        assert!((est - exact).abs() < 0.02, "estimate {est} vs exact {exact}");
    }

    #[test]
    fn chernoff_shot_count_scales_quadratically() {
        assert_eq!(chernoff_shots(1, 0.1), 100);
        assert_eq!(chernoff_shots(2, 0.1), 400);
        assert_eq!(chernoff_shots(4, 0.1), 1600);
    }

    #[test]
    fn chernoff_budget_formula_is_pinned() {
        // The budget is exactly ⌈m²/δ²⌉ (m clamped to ≥ 1) — the single
        // definition `qdp_ad::estimator` re-exports.
        assert_eq!(chernoff_shots(3, 0.05), 3600);
        assert_eq!(chernoff_shots(0, 0.5), 4);
        assert_eq!(chernoff_shots(5, 0.3), (25.0f64 / 0.09).ceil() as usize);
        assert_eq!(chernoff_shots(1, 1.0), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn chernoff_rejects_nonpositive_delta() {
        let _ = chernoff_shots(2, 0.0);
    }

    #[test]
    fn derived_streams_are_reproducible_and_distinct() {
        let draws = |seed: u64, stream: u64| -> Vec<u64> {
            let mut s = ShotSampler::derived(seed, stream);
            (0..8).map(|_| (s.next_uniform() * 1e15) as u64).collect()
        };
        assert_eq!(draws(9, 0), draws(9, 0));
        assert_ne!(draws(9, 0), draws(9, 1));
        assert_ne!(draws(9, 0), draws(10, 0));
        // Adjacent streams of adjacent seeds must not collide either.
        assert_ne!(derive_seed(9, 1), derive_seed(10, 0));
    }

    #[test]
    fn seeded_samplers_are_reproducible() {
        let mut psi = StateVector::zero_state(1);
        psi.apply_gate(&Matrix::hadamard(), &[0]);
        let m = Measurement::computational(vec![0]);
        let run = |seed: u64| -> Vec<usize> {
            let mut s = ShotSampler::seeded(seed);
            (0..32).map(|_| s.measure(&psi, &m).0).collect()
        };
        assert_eq!(run(9), run(9));
    }
}
