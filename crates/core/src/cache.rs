//! The interned-program cache — lowering as a memoized query, with a
//! bounded cost-weighted footprint.
//!
//! Every gradient entry point used to re-lower its compiled multiset from
//! the AST behind its own `OnceLock`: `Differentiated`, `GradientEngine`'s
//! forward program, and `PreparedDerivativeEstimator` each paid the full
//! parse-tree walk, register resolution, loop unrolling, and constant
//! matrix construction for programs the process had already compiled.
//! [`ProgramCache`] deletes that duplication: interning a compiled multiset
//! returns an [`Arc<CompiledSkeleton>`] that is built **once per resident
//! entry** and shared by every caller thereafter.
//!
//! # Cache key contract
//!
//! The key is [`qdp_lang::multiset_fingerprint`] — a structural hash of the
//! ordered program list **and** the register it lowers against (variable
//! names, order, width; an ancilla-extended register keys differently from
//! its base). The hash only routes the lookup: every entry stores the full
//! compiled multiset and register, and lookup verifies deep structural
//! equality before sharing, so a 64-bit collision costs a bucket scan but
//! can never alias two different programs onto one skeleton.
//!
//! # Bounded residency
//!
//! A long-lived multi-program server cannot let the cache grow
//! monotonically. A cache built with [`ProgramCache::with_capacity`]
//! charges each entry a **cost weight** — the skeleton's total lowered op
//! count plus its trajectory patch slots, a direct proxy for the matrices
//! and op lists held resident — and never holds more total weight than the
//! capacity. Overflow evicts by **second-chance** (clock) order: entries
//! touched since their last consideration get one more lap before they go.
//! Three properties keep eviction safe:
//!
//! * **Warm hits are bitwise-unchanged**: a hit returns the same
//!   `Arc<CompiledSkeleton>` the first touch built; eviction only governs
//!   *residency*, never mutates a skeleton.
//! * **Pinning by `Arc`**: an evicted skeleton stays fully usable for as
//!   long as any caller holds its `Arc` — eviction drops the cache's
//!   reference, nothing else. A later intern of the same program simply
//!   recompiles a fresh entry.
//! * **Oversized bypass**: a program whose weight alone exceeds the
//!   capacity is built and returned but never kept resident, so one huge
//!   program cannot wipe the whole working set.
//!
//! [`ProgramCache::global`] defaults to a generous bound (`2²⁰` weight
//! units — far above any training-loop working set, so the compile-once
//! contract of short-lived processes is unaffected), overridable with the
//! `QDP_CACHE_WEIGHT` environment variable (`0` = unbounded).
//!
//! # Concurrency
//!
//! The bucket map is held behind a `Mutex` only long enough to find or
//! insert an entry; lowering itself runs inside the entry's own
//! `OnceLock::get_or_init`, so concurrent first-touch of one program lowers
//! once (every other thread blocks on that entry alone, not on the cache),
//! and first-touch of *different* programs never serializes against each
//! other's compilation. A lock poisoned by a panicking holder is recovered
//! by rebuilding the map empty (mid-eviction bookkeeping cannot be
//! trusted): outstanding `Arc`s keep working, later interns recompile.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use qdp_lang::{multiset_fingerprint, Register, Stmt};
use qdp_sim::TrajProgram;

use crate::lowered::{LoweredSet, TrajSkeleton};

/// Everything parameter-independent about one compiled multiset, built once
/// at intern time: the lowered op lists (constant matrices hoisted) and one
/// patchable trajectory skeleton per program.
#[derive(Debug)]
pub struct CompiledSkeleton {
    lowered: LoweredSet,
    trajectories: Vec<TrajSkeleton>,
}

impl CompiledSkeleton {
    fn build(compiled: &[Stmt], reg: &Register) -> Self {
        let lowered = LoweredSet::lower(compiled, reg);
        let trajectories = lowered
            .programs()
            .iter()
            .map(crate::lowered::LoweredProgram::to_skeleton)
            .collect();
        CompiledSkeleton {
            lowered,
            trajectories,
        }
    }

    /// The shared lowered multiset.
    pub fn lowered(&self) -> &LoweredSet {
        &self.lowered
    }

    /// One patchable trajectory skeleton per lowered program, in multiset
    /// order.
    pub fn trajectories(&self) -> &[TrajSkeleton] {
        &self.trajectories
    }

    /// Substitutes a valuation into program `i`'s skeleton — bit-identical
    /// to `lowered().programs()[i].resolve(values).to_trajectory()` with
    /// only the parameterized matrices rebuilt.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range or `values` is shorter than the slot
    /// table.
    pub fn trajectory_at(&self, i: usize, values: &[f64]) -> TrajProgram {
        self.trajectories[i].at(values)
    }

    /// The cost weight residency charges for this skeleton: total lowered
    /// ops (counting nested measurement arms) plus trajectory patch slots.
    /// Always at least 1, so bookkeeping can never free an entry for free.
    fn weight(&self) -> usize {
        let ops: usize = self
            .lowered
            .programs()
            .iter()
            .map(crate::lowered::LoweredProgram::op_weight)
            .sum();
        let patches: usize = self.trajectories.iter().map(TrajSkeleton::patch_count).sum();
        (ops + patches).max(1)
    }
}

/// Per-entry bookkeeping: the verified identity plus the lazily-built
/// skeleton, its usage counters, and its clock state.
#[derive(Debug)]
struct Entry {
    key: u64,
    compiled: Vec<Stmt>,
    register: Register,
    cell: OnceLock<Arc<CompiledSkeleton>>,
    lowers: AtomicUsize,
    hits: AtomicUsize,
    /// The skeleton's cost weight, set once the build completes (entries
    /// join the clock only after that point).
    weight: AtomicUsize,
    /// Second-chance bit: set on every warm hit (not at insertion, so a
    /// never-reused entry is the first eviction candidate), cleared for
    /// one lap of grace when the clock hand passes the entry.
    referenced: AtomicBool,
}

/// Usage counters of one interned program (see
/// [`ProgramCache::stats`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheStats {
    /// How many times the entry's skeleton was compiled — at most 1.
    pub lowers: usize,
    /// How many interns were served from the already-built skeleton.
    pub hits: usize,
}

/// Whole-cache observability counters (see [`ProgramCache::counters`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheCounters {
    /// Interns served from an already-built skeleton.
    pub hits: usize,
    /// Interns that had to compile (first touch, or re-touch after
    /// eviction).
    pub misses: usize,
    /// Entries removed to keep the resident weight under capacity
    /// (including oversized bypasses).
    pub evictions: usize,
    /// Total resident cost weight right now.
    pub weight: usize,
    /// The configured bound, `None` when unbounded.
    pub capacity: Option<usize>,
}

/// The guarded state: buckets for lookup, the clock for eviction order,
/// and the resident-weight ledger. One mutex guards all three so their
/// invariants (clock entries ⊆ bucket entries, `weight` = Σ clock entry
/// weights) hold at every unlock.
#[derive(Debug, Default)]
struct CacheInner {
    buckets: HashMap<u64, Vec<Arc<Entry>>>,
    clock: VecDeque<Arc<Entry>>,
    weight: usize,
    capacity: Option<usize>,
}

/// A memoization table from structural program fingerprints to shared
/// compiled skeletons, with optional cost-weighted residency bounds (see
/// the module docs). One global instance ([`ProgramCache::global`]) backs
/// every gradient entry point; fresh instances exist for tests that need
/// isolated first-touch behaviour.
#[derive(Debug, Default)]
pub struct ProgramCache {
    inner: Mutex<CacheInner>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    evictions: AtomicUsize,
}

impl ProgramCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        ProgramCache::default()
    }

    /// An empty cache that never holds more than `capacity` total cost
    /// weight resident.
    pub fn with_capacity(capacity: usize) -> Self {
        let cache = ProgramCache::default();
        cache.lock_inner().capacity = Some(capacity);
        cache
    }

    /// The process-wide cache every gradient entry point interns through.
    /// Bounded at `2²⁰` weight units by default; `QDP_CACHE_WEIGHT`
    /// overrides (`0` = unbounded).
    pub fn global() -> &'static ProgramCache {
        static GLOBAL: OnceLock<ProgramCache> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            match std::env::var("QDP_CACHE_WEIGHT")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
            {
                Some(0) => ProgramCache::new(),
                Some(cap) => ProgramCache::with_capacity(cap),
                None => ProgramCache::with_capacity(1 << 20),
            }
        })
    }

    /// Locks the state, recovering a lock poisoned by a panicking holder:
    /// mid-eviction bookkeeping cannot be trusted, so the map rebuilds
    /// empty (outstanding `Arc`s keep working; later interns recompile).
    /// The configured capacity survives.
    fn lock_inner(&self) -> MutexGuard<'_, CacheInner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => {
                self.inner.clear_poison();
                let mut g = poisoned.into_inner();
                g.buckets.clear();
                g.clock.clear();
                g.weight = 0;
                g
            }
        }
    }

    /// Evicts clock entries (second-chance order) until the resident
    /// weight fits `cap`.
    fn enforce(&self, inner: &mut CacheInner, cap: usize) {
        while inner.weight > cap {
            let Some(e) = inner.clock.pop_front() else {
                break;
            };
            if e.referenced.swap(false, Ordering::Relaxed) {
                // Touched since the hand last passed: one more lap.
                inner.clock.push_back(e);
                continue;
            }
            let w = e.weight.load(Ordering::Relaxed);
            if let Some(bucket) = inner.buckets.get_mut(&e.key) {
                bucket.retain(|x| !Arc::ptr_eq(x, &e));
                if bucket.is_empty() {
                    inner.buckets.remove(&e.key);
                }
            }
            inner.weight -= w.min(inner.weight);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Interns a compiled multiset over a register: returns the shared
    /// skeleton, compiling it only on the first touch of this exact
    /// (multiset, register) pair since it was last resident.
    ///
    /// # Panics
    ///
    /// Panics when lowering does (additive programs, variables outside the
    /// register).
    pub fn intern(&self, compiled: &[Stmt], reg: &Register) -> Arc<CompiledSkeleton> {
        self.intern_keyed(multiset_fingerprint(compiled, reg), compiled, reg)
    }

    /// The intern body, with the key supplied by the caller — split out so
    /// collision behaviour is testable (two different programs forced onto
    /// one key must still get distinct skeletons).
    fn intern_keyed(&self, key: u64, compiled: &[Stmt], reg: &Register) -> Arc<CompiledSkeleton> {
        let entry = {
            let mut inner = self.lock_inner();
            let bucket = inner.buckets.entry(key).or_default();
            match bucket
                .iter()
                .find(|e| e.register == *reg && e.compiled == compiled)
            {
                Some(e) => Arc::clone(e),
                None => {
                    let e = Arc::new(Entry {
                        key,
                        compiled: compiled.to_vec(),
                        register: reg.clone(),
                        cell: OnceLock::new(),
                        lowers: AtomicUsize::new(0),
                        hits: AtomicUsize::new(0),
                        weight: AtomicUsize::new(0),
                        referenced: AtomicBool::new(false),
                    });
                    bucket.push(Arc::clone(&e));
                    e
                }
            }
        };
        // Lowering runs outside the map lock; losers of a first-touch race
        // block on this entry's cell only.
        let mut fresh = false;
        let skeleton = entry
            .cell
            .get_or_init(|| {
                fresh = true;
                entry.lowers.fetch_add(1, Ordering::Relaxed);
                Arc::new(CompiledSkeleton::build(&entry.compiled, &entry.register))
            })
            .clone();
        if fresh {
            self.misses.fetch_add(1, Ordering::Relaxed);
            let w = skeleton.weight();
            entry.weight.store(w, Ordering::Relaxed);
            let mut inner = self.lock_inner();
            match inner.capacity {
                Some(cap) if w > cap => {
                    // Oversized bypass: hand the skeleton out but never
                    // keep it resident — it would evict everything else
                    // for a single program.
                    if let Some(bucket) = inner.buckets.get_mut(&key) {
                        bucket.retain(|x| !Arc::ptr_eq(x, &entry));
                        if bucket.is_empty() {
                            inner.buckets.remove(&key);
                        }
                    }
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                cap => {
                    // The entry may have been dropped by a concurrent
                    // poison rebuild or `set_capacity` sweep; only charge
                    // residency while it is still reachable for lookup.
                    let resident = inner
                        .buckets
                        .get(&key)
                        .is_some_and(|b| b.iter().any(|x| Arc::ptr_eq(x, &entry)));
                    if resident {
                        inner.clock.push_back(Arc::clone(&entry));
                        inner.weight += w;
                        if let Some(cap) = cap {
                            self.enforce(&mut inner, cap);
                        }
                    }
                }
            }
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
            entry.hits.fetch_add(1, Ordering::Relaxed);
            entry.referenced.store(true, Ordering::Relaxed);
        }
        skeleton
    }

    /// Reconfigures the residency bound (`None` = unbounded), evicting
    /// immediately if the resident weight no longer fits.
    pub fn set_capacity(&self, capacity: Option<usize>) {
        let mut inner = self.lock_inner();
        inner.capacity = capacity;
        if let Some(cap) = capacity {
            self.enforce(&mut inner, cap);
        }
    }

    /// Whole-cache counters: hit/miss/eviction totals plus the current
    /// resident weight and configured bound.
    pub fn counters(&self) -> CacheCounters {
        let inner = self.lock_inner();
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            weight: inner.weight,
            capacity: inner.capacity,
        }
    }

    /// The usage counters of one interned program, or `None` when the pair
    /// is not currently resident.
    pub fn stats(&self, compiled: &[Stmt], reg: &Register) -> Option<CacheStats> {
        let inner = self.lock_inner();
        let bucket = inner.buckets.get(&multiset_fingerprint(compiled, reg))?;
        let entry = bucket
            .iter()
            .find(|e| e.register == *reg && e.compiled == compiled)?;
        Some(CacheStats {
            lowers: entry.lowers.load(Ordering::Relaxed),
            hits: entry.hits.load(Ordering::Relaxed),
        })
    }

    /// How many distinct programs are currently resident.
    pub fn unique_programs(&self) -> usize {
        self.lock_inner().buckets.values().map(Vec::len).sum()
    }

    /// Total compilations across currently-resident entries — equals
    /// [`unique_programs`](Self::unique_programs) once every entry's first
    /// touch has completed.
    pub fn total_lowers(&self) -> usize {
        self.lock_inner()
            .buckets
            .values()
            .flatten()
            .map(|e| e.lowers.load(Ordering::Relaxed))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdp_lang::parse_program;

    fn program(src: &str) -> (Vec<Stmt>, Register) {
        let p = parse_program(src).unwrap();
        let reg = Register::from_program(&p);
        (vec![p], reg)
    }

    #[test]
    fn intern_compiles_once_and_shares_the_skeleton() {
        let cache = ProgramCache::new();
        let (p, reg) = program("q1 *= RX(a); q1 *= H");
        let first = cache.intern(&p, &reg);
        let second = cache.intern(&p, &reg);
        assert!(Arc::ptr_eq(&first, &second), "interns must share one skeleton");
        assert_eq!(
            cache.stats(&p, &reg),
            Some(CacheStats { lowers: 1, hits: 1 })
        );
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.evictions), (1, 1, 0));
        assert!(c.weight > 0 && c.capacity.is_none());
    }

    #[test]
    fn forced_key_collision_does_not_alias() {
        // Drive two structurally different programs through one bucket: the
        // deep-equality check must keep their skeletons distinct.
        let cache = ProgramCache::new();
        let (p1, reg1) = program("q1 *= RX(a)");
        let (p2, reg2) = program("q1 *= RY(b); q1 *= H");
        let s1 = cache.intern_keyed(42, &p1, &reg1);
        let s2 = cache.intern_keyed(42, &p2, &reg2);
        assert!(!Arc::ptr_eq(&s1, &s2), "collision must not alias skeletons");
        assert_eq!(s1.lowered().param_names(), ["a"]);
        assert_eq!(s2.lowered().param_names(), ["b"]);
        assert_eq!(cache.unique_programs(), 2);
        assert_eq!(cache.total_lowers(), 2);
        // Re-interning under the collided key still finds the right entry.
        assert!(Arc::ptr_eq(&s1, &cache.intern_keyed(42, &p1, &reg1)));
    }

    #[test]
    fn register_variants_get_distinct_entries() {
        use qdp_lang::Var;
        let cache = ProgramCache::new();
        let p = vec![parse_program("q1 *= RX(a)").unwrap()];
        let base = Register::from_vars([Var::new("q1")]);
        let wide = Register::from_vars([Var::new("q1"), Var::new("q2")]);
        let ext = base.with_ancilla_front(Var::new("A"));
        let s_base = cache.intern(&p, &base);
        let s_wide = cache.intern(&p, &wide);
        let s_ext = cache.intern(&p, &ext);
        assert!(!Arc::ptr_eq(&s_base, &s_wide));
        assert!(!Arc::ptr_eq(&s_base, &s_ext));
        assert_eq!(cache.unique_programs(), 3);
    }

    #[test]
    fn capacity_bound_holds_and_second_chance_protects_hot_entries() {
        // Learn real weights first, then size the capacity to fit exactly
        // two of the three programs.
        let probe = ProgramCache::new();
        let (pa, ra) = program("q1 *= RX(a)");
        let (pb, rb) = program("q1 *= RY(b)");
        let (pc, rc) = program("q1 *= RZ(c)");
        probe.intern(&pa, &ra);
        let w = probe.counters().weight;

        let cache = ProgramCache::with_capacity(2 * w);
        cache.intern(&pa, &ra);
        cache.intern(&pb, &rb);
        assert_eq!(cache.counters().weight, 2 * w);
        // Touch A so its referenced bit protects it for one lap.
        cache.intern(&pa, &ra);
        cache.intern(&pc, &rc);
        let c = cache.counters();
        assert!(c.weight <= 2 * w, "resident weight {} over bound {}", c.weight, 2 * w);
        assert_eq!(c.evictions, 1);
        assert!(cache.stats(&pa, &ra).is_some(), "hot entry A must survive");
        assert!(cache.stats(&pb, &rb).is_none(), "cold entry B must be evicted");
        assert!(cache.stats(&pc, &rc).is_some(), "new entry C must be resident");
        // Re-interning the evicted program recompiles a fresh entry.
        let again = cache.intern(&pb, &rb);
        assert_eq!(again.lowered().param_names(), ["b"]);
        assert_eq!(cache.stats(&pb, &rb).map(|s| s.lowers), Some(1));
    }

    #[test]
    fn pinned_arcs_survive_eviction_and_warm_hits_stay_identical() {
        let probe = ProgramCache::new();
        let (pa, ra) = program("q1 *= RX(a)");
        probe.intern(&pa, &ra);
        let w = probe.counters().weight;

        let cache = ProgramCache::with_capacity(w);
        let pinned = cache.intern(&pa, &ra);
        let warm = cache.intern(&pa, &ra);
        assert!(Arc::ptr_eq(&pinned, &warm), "warm hit returns the same skeleton");
        // Evict A from a capacity of one entry: the warm hit above earns A
        // one lap of grace (the first overflow evicts the unreferenced
        // newcomer B instead), so a second B intern is what displaces A.
        let (pb, rb) = program("q1 *= RY(b)");
        cache.intern(&pb, &rb);
        assert!(cache.stats(&pa, &ra).is_some(), "hot A survives its grace lap");
        cache.intern(&pb, &rb);
        assert!(cache.stats(&pa, &ra).is_none(), "A must be evicted");
        // The pinned skeleton is untouched by eviction.
        assert_eq!(pinned.lowered().param_names(), ["a"]);
        let traj = pinned.trajectory_at(0, &[0.3]);
        assert!(!traj.is_empty());
    }

    #[test]
    fn oversized_programs_bypass_residency() {
        let cache = ProgramCache::with_capacity(1);
        let (p, reg) = program("q1 *= RX(a); q1 *= H; q1 *= RY(b)");
        let s = cache.intern(&p, &reg);
        // The skeleton is handed out fully usable...
        assert_eq!(s.lowered().param_names(), ["a", "b"]);
        // ...but never kept resident.
        assert_eq!(cache.unique_programs(), 0);
        let c = cache.counters();
        assert_eq!((c.weight, c.evictions), (0, 1));
    }

    #[test]
    fn shrinking_capacity_evicts_immediately() {
        let cache = ProgramCache::new();
        let (pa, ra) = program("q1 *= RX(a)");
        let (pb, rb) = program("q1 *= RY(b)");
        cache.intern(&pa, &ra);
        cache.intern(&pb, &rb);
        assert_eq!(cache.unique_programs(), 2);
        cache.set_capacity(Some(0));
        assert_eq!(cache.unique_programs(), 0);
        assert_eq!(cache.counters().weight, 0);
        // Unbounding again lets entries stay resident.
        cache.set_capacity(None);
        cache.intern(&pa, &ra);
        assert_eq!(cache.unique_programs(), 1);
    }

    #[test]
    fn poisoned_cache_lock_rebuilds_an_empty_usable_map() {
        let cache = Arc::new(ProgramCache::with_capacity(1 << 10));
        let (p, reg) = program("q1 *= RX(a)");
        let pinned = cache.intern(&p, &reg);

        // Poison the inner lock from a thread that panics while holding it.
        let c = Arc::clone(&cache);
        let poisoner = std::thread::spawn(move || {
            let _guard = c.inner.lock().unwrap();
            panic!("injected poison");
        });
        assert!(poisoner.join().is_err());

        // Recovery rebuilds empty: the entry is gone but the pinned Arc
        // still works, and a fresh intern recompiles.
        assert_eq!(cache.unique_programs(), 0);
        assert_eq!(cache.counters().weight, 0);
        assert_eq!(pinned.lowered().param_names(), ["a"]);
        let again = cache.intern(&p, &reg);
        assert!(!Arc::ptr_eq(&pinned, &again), "post-poison intern recompiles");
        assert_eq!(again.lowered().param_names(), ["a"]);
        assert_eq!(cache.counters().capacity, Some(1 << 10));
    }
}
