//! # qdp-par
//!
//! Minimal deterministic fork-join parallelism built on [`std::thread::scope`].
//!
//! The build environment for this workspace is fully offline, so `rayon` is
//! not available; this crate provides the small subset the simulator and the
//! gradient engine need:
//!
//! * [`par_map`] — order-preserving parallel map over a slice,
//! * [`par_chunks_mut`] — parallel iteration over disjoint contiguous chunks
//!   of a mutable slice (each callback also receives the chunk's offset),
//! * [`max_threads`] / [`set_max_threads`] — the global worker budget.
//!
//! **Determinism.** Results are always assembled in input order and any
//! reductions are performed by the caller over that ordered output, so a
//! computation produces bit-identical results regardless of how many threads
//! actually ran — including the degenerate single-thread case. The test suite
//! of `qdp-ad` relies on this.
//!
//! **Nesting.** A global token budget caps the number of *extra* worker
//! threads alive at any instant. Nested calls (e.g. a parallel gradient whose
//! per-parameter work parallelises gate application) degrade gracefully to
//! sequential execution instead of oversubscribing the machine.
//!
//! **Environment override.** The `QDP_PAR_THREADS` environment variable,
//! when set to a positive integer, fixes the detected parallelism for the
//! whole process (it is read once, on first use). CI uses it to run the
//! entire test suite under forced 1- and 8-thread configurations so that
//! any result depending on the thread count fails loudly. A runtime
//! [`set_max_threads`] call still takes precedence; `set_max_threads(0)`
//! falls back to the environment value (or hardware detection when the
//! variable is unset or invalid).
//!
//! **Panic isolation.** Every item of a parallel map runs under
//! [`std::panic::catch_unwind`], so a panicking tile never tears down the
//! process by itself. [`try_par_map`] surfaces the failure as a typed
//! [`TileError`] naming the lowest failing item index (deterministic under
//! any thread interleaving); [`try_par_map_retry`] additionally re-runs
//! failed items — valid because tiles are pure and order-invariant by
//! contract, so a retry is bit-identical to a first-try success. [`par_map`]
//! keeps its infallible signature by re-raising the original panic message
//! on the calling thread, which also makes panic propagation identical
//! between the sequential fallback and the threaded path.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Global budget of extra worker threads (beyond the calling thread).
static TOKENS: OnceLock<AtomicUsize> = OnceLock::new();
/// Optional override of the detected parallelism (0 = auto-detect).
static MAX_OVERRIDE: AtomicUsize = AtomicUsize::new(0);
/// Cached effective parallelism — the `QDP_PAR_THREADS` environment
/// variable when set to a positive integer, hardware detection otherwise.
/// Cached because `available_parallelism()` is a syscall and this is
/// queried on every kernel invocation.
static DETECTED: OnceLock<usize> = OnceLock::new();

fn tokens() -> &'static AtomicUsize {
    TOKENS.get_or_init(|| AtomicUsize::new(detected_parallelism().saturating_sub(1)))
}

fn detected_parallelism() -> usize {
    let over = MAX_OVERRIDE.load(Ordering::Relaxed);
    if over > 0 {
        return over;
    }
    *DETECTED.get_or_init(|| {
        std::env::var("QDP_PAR_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    })
}

/// The number of threads a top-level parallel call may use (including the
/// calling thread itself).
pub fn max_threads() -> usize {
    detected_parallelism()
}

/// Overrides the detected hardware parallelism (useful in tests; pass 1 to
/// force sequential execution globally, 0 to restore auto-detection).
///
/// Resets the worker budget to the new effective parallelism; callers must
/// be quiesced (no parallel call in flight) when switching.
pub fn set_max_threads(n: usize) {
    MAX_OVERRIDE.store(n, Ordering::Relaxed);
    let effective = detected_parallelism();
    if let Some(t) = TOKENS.get() {
        t.store(effective.saturating_sub(1), Ordering::Relaxed);
    }
}

/// Tries to reserve up to `want` extra worker threads from the global budget;
/// returns how many were actually granted (possibly zero).
fn acquire(want: usize) -> usize {
    if want == 0 {
        return 0;
    }
    let t = tokens();
    let mut cur = t.load(Ordering::Relaxed);
    loop {
        let grant = want.min(cur);
        if grant == 0 {
            return 0;
        }
        match t.compare_exchange_weak(cur, cur - grant, Ordering::AcqRel, Ordering::Relaxed) {
            Ok(_) => return grant,
            Err(now) => cur = now,
        }
    }
}

fn release(n: usize) {
    if n > 0 {
        tokens().fetch_add(n, Ordering::AcqRel);
    }
}

/// Returns acquired tokens even if the parallel region unwinds (a panicking
/// worker must not permanently drain the global budget).
struct TokenGuard(usize);

impl Drop for TokenGuard {
    fn drop(&mut self) {
        release(self.0);
    }
}

/// A tile (one item of a parallel map) that panicked instead of returning.
///
/// `index` is the item's position in the input slice — by the determinism
/// contract it identifies the same work under any thread count — and
/// `message` carries the original panic payload when it was a string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TileError {
    /// Index of the failing item in the input slice. When several tiles
    /// fail, the lowest index is reported (deterministic under any
    /// interleaving).
    pub index: usize,
    /// The panic message, or a placeholder for non-string payloads.
    pub message: String,
}

impl std::fmt::Display for TileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker tile {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for TileError {}

/// Extracts a human-readable message from a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The shared fan-out core: order-preserving map with every item call
/// isolated under `catch_unwind`. Worker threads can therefore never
/// panic through `f`; a `join` error is re-raised verbatim (it can only
/// mean a panic outside the guarded call, e.g. allocator failure).
fn map_isolated<T, R, F>(items: &[T], f: &F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let call = |x: &T| catch_unwind(AssertUnwindSafe(|| f(x))).map_err(panic_message);
    let n = items.len();
    let extra = if n < 2 { 0 } else { acquire((n - 1).min(max_threads().saturating_sub(1))) };
    if extra == 0 {
        return items.iter().map(call).collect();
    }
    let _guard = TokenGuard(extra);
    let workers = extra + 1;
    let chunk = n.div_ceil(workers);
    let call = &call;
    let parts: Vec<&[T]> = items.chunks(chunk).collect();
    let mut results: Vec<Vec<Result<R, String>>> = std::thread::scope(|s| {
        let handles: Vec<_> = parts[1..]
            .iter()
            .map(|&part| s.spawn(move || part.iter().map(call).collect::<Vec<_>>()))
            .collect();
        let first: Vec<Result<R, String>> = parts[0].iter().map(call).collect();
        let mut all = vec![first];
        for h in handles {
            all.push(h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)));
        }
        all
    });
    let mut out = Vec::with_capacity(n);
    for part in &mut results {
        out.append(part);
    }
    out
}

/// Flattens per-item results into the first (lowest-index) failure, if any.
fn collect_tiles<R>(results: Vec<Result<R, String>>) -> Result<Vec<R>, TileError> {
    let mut out = Vec::with_capacity(results.len());
    let mut first_err: Option<TileError> = None;
    for (index, r) in results.into_iter().enumerate() {
        match r {
            Ok(v) => out.push(v),
            Err(message) => {
                if first_err.is_none() {
                    first_err = Some(TileError { index, message });
                }
            }
        }
    }
    match first_err {
        None => Ok(out),
        Some(e) => Err(e),
    }
}

/// Order-preserving parallel map: `out[i] = f(&items[i])`.
///
/// Splits `items` into contiguous runs, maps each run on its own scoped
/// thread, and concatenates the per-run outputs in order. Falls back to a
/// plain sequential map when `items` is small or the thread budget is
/// exhausted.
///
/// # Panics
///
/// A panicking item re-raises its original panic message on the calling
/// thread after every other item has completed — identical behaviour to
/// the sequential fallback modulo the completion of later items. Use
/// [`try_par_map`] or [`try_par_map_retry`] to receive a [`TileError`]
/// instead.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    match collect_tiles(map_isolated(items, &f)) {
        Ok(out) => out,
        Err(e) => panic!("{}", e.message),
    }
}

/// Fallible order-preserving parallel map: like [`par_map`], but a
/// panicking item surfaces as `Err(TileError)` — naming the lowest failing
/// item index — instead of tearing down the calling thread. All items run
/// to completion before the error is reported, so the global thread budget
/// is fully restored on return.
pub fn try_par_map<T, R, F>(items: &[T], f: F) -> Result<Vec<R>, TileError>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    collect_tiles(map_isolated(items, &f))
}

/// [`try_par_map`] with bounded retries: items that panicked are re-run
/// sequentially on the calling thread, in index order, up to `max_retries`
/// additional attempts each.
///
/// Retrying is sound because map items are pure functions of their input
/// by the crate's determinism contract — a successful retry returns the
/// same bits a first-try success would have, so transient faults (a
/// poisoned scratch buffer, an injected test fault) heal without
/// observable effect. Items that still fail after the budget surface as
/// the lowest-index [`TileError`].
pub fn try_par_map_retry<T, R, F>(items: &[T], f: F, max_retries: usize) -> Result<Vec<R>, TileError>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let mut results = map_isolated(items, &f);
    for _ in 0..max_retries {
        if results.iter().all(Result::is_ok) {
            break;
        }
        for (i, slot) in results.iter_mut().enumerate() {
            if slot.is_err() {
                *slot = catch_unwind(AssertUnwindSafe(|| f(&items[i]))).map_err(panic_message);
            }
        }
    }
    collect_tiles(results)
}

/// Parallel iteration over disjoint contiguous chunks of `data`.
///
/// `f(offset, chunk)` is invoked once per chunk, where `offset` is the index
/// of the chunk's first element in `data`. Chunk boundaries are aligned to
/// multiples of `align` elements (pass 1 for no constraint) so kernels can
/// guarantee that index orbits never cross a boundary. Runs sequentially when
/// the slice is short or no worker threads are available.
pub fn par_chunks_mut<T, F>(data: &mut [T], align: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = data.len();
    let align = align.max(1);
    let max_chunks = n / align;
    let extra = if max_chunks < 2 {
        0
    } else {
        acquire((max_chunks - 1).min(max_threads().saturating_sub(1)))
    };
    if extra == 0 {
        f(0, data);
        return;
    }
    let _guard = TokenGuard(extra);
    let workers = extra + 1;
    // Round the chunk length up to a multiple of `align`.
    let chunk = n.div_ceil(workers).div_ceil(align) * align;
    let f = &f;
    let first_err = std::thread::scope(|s| {
        let mut offset = 0usize;
        let mut rest = data;
        let mut handles = Vec::with_capacity(workers);
        while rest.len() > chunk {
            let (head, tail) = rest.split_at_mut(chunk);
            let off = offset;
            handles.push(s.spawn(move || {
                catch_unwind(AssertUnwindSafe(|| f(off, head))).map_err(panic_message)
            }));
            offset += chunk;
            rest = tail;
        }
        let own = if rest.is_empty() {
            Ok(())
        } else {
            catch_unwind(AssertUnwindSafe(|| f(offset, rest))).map_err(panic_message)
        };
        // Join every worker before deciding the outcome so a panic never
        // leaves chunks half-processed behind the caller's back; report
        // the lowest-offset failure (spawn order) deterministically.
        let mut first_err: Option<String> = None;
        for h in handles {
            if let Err(msg) = h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)) {
                if first_err.is_none() {
                    first_err = Some(msg);
                }
            }
        }
        first_err.or(own.err())
    });
    if let Some(msg) = first_err {
        panic!("{msg}");
    }
}

/// Parallel iteration over two equal-length mutable slices split at the same
/// points: `f(a_chunk, b_chunk)` sees corresponding chunks. Used by kernels
/// whose index orbits pair element `i` of one half with element `i` of the
/// other (e.g. a gate on the top bit).
///
/// # Panics
///
/// Panics when the slices have different lengths.
pub fn par_zip_chunks_mut<T, F>(a: &mut [T], b: &mut [T], f: F)
where
    T: Send,
    F: Fn(&mut [T], &mut [T]) + Sync,
{
    assert_eq!(a.len(), b.len(), "zipped slices must have equal lengths");
    let n = a.len();
    let extra = if n < 2 {
        0
    } else {
        acquire((n - 1).min(max_threads().saturating_sub(1)))
    };
    if extra == 0 {
        f(a, b);
        return;
    }
    let _guard = TokenGuard(extra);
    let workers = extra + 1;
    let chunk = n.div_ceil(workers);
    let f = &f;
    let first_err = std::thread::scope(|s| {
        let mut rest_a = a;
        let mut rest_b = b;
        let mut handles = Vec::with_capacity(workers);
        while rest_a.len() > chunk {
            let (head_a, tail_a) = rest_a.split_at_mut(chunk);
            let (head_b, tail_b) = rest_b.split_at_mut(chunk);
            handles.push(s.spawn(move || {
                catch_unwind(AssertUnwindSafe(|| f(head_a, head_b))).map_err(panic_message)
            }));
            rest_a = tail_a;
            rest_b = tail_b;
        }
        let own = if rest_a.is_empty() {
            Ok(())
        } else {
            catch_unwind(AssertUnwindSafe(|| f(rest_a, rest_b))).map_err(panic_message)
        };
        let mut first_err: Option<String> = None;
        for h in handles {
            if let Err(msg) = h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)) {
                if first_err.is_none() {
                    first_err = Some(msg);
                }
            }
        }
        first_err.or(own.err())
    });
    if let Some(msg) = first_err {
        panic!("{msg}");
    }
}

/// Parallel iteration over two equal-length mutable slices split at the
/// same aligned points: `f(offset, a_chunk, b_chunk)` sees corresponding
/// chunks of both slices, with `offset` the index of the chunks' first
/// element. The split-plane kernels use this to walk the `re` and `im`
/// planes of a state in lockstep; `align` keeps index orbits inside one
/// chunk exactly as in [`par_chunks_mut`].
///
/// # Panics
///
/// Panics when the slices have different lengths.
pub fn par_chunks2_mut<T, F>(a: &mut [T], b: &mut [T], align: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T], &mut [T]) + Sync,
{
    assert_eq!(a.len(), b.len(), "zipped slices must have equal lengths");
    let n = a.len();
    let align = align.max(1);
    let max_chunks = n / align;
    let extra = if max_chunks < 2 {
        0
    } else {
        acquire((max_chunks - 1).min(max_threads().saturating_sub(1)))
    };
    if extra == 0 {
        f(0, a, b);
        return;
    }
    let _guard = TokenGuard(extra);
    let workers = extra + 1;
    let chunk = n.div_ceil(workers).div_ceil(align) * align;
    let f = &f;
    let first_err = std::thread::scope(|s| {
        let mut offset = 0usize;
        let mut rest_a = a;
        let mut rest_b = b;
        let mut handles = Vec::with_capacity(workers);
        while rest_a.len() > chunk {
            let (head_a, tail_a) = rest_a.split_at_mut(chunk);
            let (head_b, tail_b) = rest_b.split_at_mut(chunk);
            let off = offset;
            handles.push(s.spawn(move || {
                catch_unwind(AssertUnwindSafe(|| f(off, head_a, head_b))).map_err(panic_message)
            }));
            offset += chunk;
            rest_a = tail_a;
            rest_b = tail_b;
        }
        let own = if rest_a.is_empty() {
            Ok(())
        } else {
            catch_unwind(AssertUnwindSafe(|| f(offset, rest_a, rest_b))).map_err(panic_message)
        };
        let mut first_err: Option<String> = None;
        for h in handles {
            if let Err(msg) = h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)) {
                if first_err.is_none() {
                    first_err = Some(msg);
                }
            }
        }
        first_err.or(own.err())
    });
    if let Some(msg) = first_err {
        panic!("{msg}");
    }
}

/// Parallel iteration over four equal-length mutable slices split at the
/// same points: `f(a_chunk, b_chunk, c_chunk, d_chunk)` sees corresponding
/// chunks. The split-plane single-qubit kernel uses this when the target is
/// the top bit, pairing the contiguous lo/hi orbit halves of the `re` plane
/// with the matching halves of the `im` plane.
///
/// # Panics
///
/// Panics when the slices have different lengths.
pub fn par_zip4_chunks_mut<T, F>(a: &mut [T], b: &mut [T], c: &mut [T], d: &mut [T], f: F)
where
    T: Send,
    F: Fn(&mut [T], &mut [T], &mut [T], &mut [T]) + Sync,
{
    let n = a.len();
    assert!(
        b.len() == n && c.len() == n && d.len() == n,
        "zipped slices must have equal lengths"
    );
    let extra = if n < 2 {
        0
    } else {
        acquire((n - 1).min(max_threads().saturating_sub(1)))
    };
    if extra == 0 {
        f(a, b, c, d);
        return;
    }
    let _guard = TokenGuard(extra);
    let workers = extra + 1;
    let chunk = n.div_ceil(workers);
    let f = &f;
    let first_err = std::thread::scope(|s| {
        let mut rest_a = a;
        let mut rest_b = b;
        let mut rest_c = c;
        let mut rest_d = d;
        let mut handles = Vec::with_capacity(workers);
        while rest_a.len() > chunk {
            let (ha, ta) = rest_a.split_at_mut(chunk);
            let (hb, tb) = rest_b.split_at_mut(chunk);
            let (hc, tc) = rest_c.split_at_mut(chunk);
            let (hd, td) = rest_d.split_at_mut(chunk);
            handles.push(s.spawn(move || {
                catch_unwind(AssertUnwindSafe(|| f(ha, hb, hc, hd))).map_err(panic_message)
            }));
            rest_a = ta;
            rest_b = tb;
            rest_c = tc;
            rest_d = td;
        }
        let own = if rest_a.is_empty() {
            Ok(())
        } else {
            catch_unwind(AssertUnwindSafe(|| f(rest_a, rest_b, rest_c, rest_d)))
                .map_err(panic_message)
        };
        let mut first_err: Option<String> = None;
        for h in handles {
            if let Err(msg) = h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)) {
                if first_err.is_none() {
                    first_err = Some(msg);
                }
            }
        }
        first_err.or(own.err())
    });
    if let Some(msg) = first_err {
        panic!("{msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        assert_eq!(par_map(&[] as &[usize], |&x| x), Vec::<usize>::new());
        assert_eq!(par_map(&[7usize], |&x| x + 1), vec![8]);
    }

    #[test]
    fn par_chunks_mut_covers_every_element_once() {
        let mut data = vec![0u32; 4096];
        par_chunks_mut(&mut data, 8, |offset, chunk| {
            for (i, slot) in chunk.iter_mut().enumerate() {
                *slot += (offset + i) as u32;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i as u32);
        }
    }

    #[test]
    fn par_chunks_mut_respects_alignment() {
        let mut data = vec![0u8; 1000];
        par_chunks_mut(&mut data, 64, |offset, chunk| {
            assert_eq!(offset % 64, 0, "chunk offset must be aligned");
            chunk.fill(1);
        });
        assert!(data.iter().all(|&b| b == 1));
    }

    #[test]
    fn nested_calls_do_not_deadlock() {
        let outer: Vec<usize> = (0..16).collect();
        let sums = par_map(&outer, |&i| {
            let inner: Vec<usize> = (0..64).map(|j| i * 64 + j).collect();
            par_map(&inner, |&x| x).into_iter().sum::<usize>()
        });
        let total: usize = sums.iter().sum();
        assert_eq!(total, (0..1024).sum::<usize>());
    }

    #[test]
    fn par_chunks2_mut_pairs_aligned_chunks() {
        let mut a: Vec<usize> = (0..4096).collect();
        let mut b: Vec<usize> = (0..4096).map(|x| x + 7).collect();
        par_chunks2_mut(&mut a, &mut b, 16, |offset, ca, cb| {
            assert_eq!(offset % 16, 0, "chunk offset must be aligned");
            assert_eq!(ca.len(), cb.len());
            for (i, (x, y)) in ca.iter_mut().zip(cb.iter_mut()).enumerate() {
                assert_eq!(*y, *x + 7, "planes desynced at {}", offset + i);
                *x += offset;
                *y += offset;
            }
        });
        for i in 0..4096 {
            // offset is the largest multiple of the chunk size ≤ i only in
            // the sequential case; either way both slices saw the same one.
            assert_eq!(b[i], a[i] + 7);
        }
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn par_chunks2_mut_rejects_length_mismatch() {
        let mut a = vec![0u8; 8];
        let mut b = vec![0u8; 9];
        par_chunks2_mut(&mut a, &mut b, 1, |_, _, _| {});
    }

    #[test]
    fn par_zip4_chunks_mut_splits_all_four_in_lockstep() {
        let n = 5000usize;
        let mut a: Vec<usize> = (0..n).collect();
        let mut b: Vec<usize> = (0..n).map(|x| x * 2).collect();
        let mut c: Vec<usize> = (0..n).map(|x| x * 3).collect();
        let mut d: Vec<usize> = (0..n).map(|x| x * 4).collect();
        par_zip4_chunks_mut(&mut a, &mut b, &mut c, &mut d, |ca, cb, cc, cd| {
            for i in 0..ca.len() {
                assert_eq!(cb[i], ca[i] * 2);
                assert_eq!(cc[i], ca[i] * 3);
                assert_eq!(cd[i], ca[i] * 4);
                cd[i] += cb[i] + cc[i];
            }
        });
        for (i, &v) in d.iter().enumerate() {
            assert_eq!(v, i * 9);
        }
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn par_zip4_chunks_mut_rejects_length_mismatch() {
        let mut a = vec![0u8; 4];
        let mut b = vec![0u8; 4];
        let mut c = vec![0u8; 3];
        let mut d = vec![0u8; 4];
        par_zip4_chunks_mut(&mut a, &mut b, &mut c, &mut d, |_, _, _, _| {});
    }

    #[test]
    fn par_zip_chunks_mut_pairs_corresponding_elements() {
        let mut a: Vec<usize> = (0..5000).collect();
        let mut b: Vec<usize> = (0..5000).map(|x| x * 10).collect();
        par_zip_chunks_mut(&mut a, &mut b, |ca, cb| {
            for (x, y) in ca.iter_mut().zip(cb.iter_mut()) {
                let (nx, ny) = (*y, *x);
                *x = nx;
                *y = ny;
            }
        });
        for i in 0..5000 {
            assert_eq!(a[i], i * 10);
            assert_eq!(b[i], i);
        }
    }

    #[test]
    fn set_max_threads_zero_restores_detected_budget() {
        // Exact token counts race with sibling tests acquiring workers, so
        // assert the reported parallelism and that work still completes.
        // `QDP_PAR_THREADS` (the CI matrix) takes precedence over hardware
        // detection, so the restored value must honour it too.
        let detected = std::env::var("QDP_PAR_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        set_max_threads(4);
        assert_eq!(max_threads(), 4);
        set_max_threads(0);
        assert_eq!(max_threads(), detected);
        let out = par_map(&[1usize, 2, 3, 4], |&x| x * x);
        assert_eq!(out, vec![1, 4, 9, 16]);
    }

    #[test]
    fn deterministic_across_repeats() {
        let items: Vec<f64> = (0..10_000).map(|i| (i as f64).sin()).collect();
        let a: f64 = par_map(&items, |&x| x * x).iter().sum();
        let b: f64 = par_map(&items, |&x| x * x).iter().sum();
        assert_eq!(a.to_bits(), b.to_bits());
    }

    /// Panic-isolation tests inject real panics; silence the default hook's
    /// stderr spew for the duration of one closure (hook is global, so these
    /// tests serialize on a lock).
    fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
        static HOOK_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _guard = HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = catch_unwind(AssertUnwindSafe(f));
        std::panic::set_hook(prev);
        match out {
            Ok(v) => v,
            Err(p) => std::panic::resume_unwind(p),
        }
    }

    #[test]
    fn try_par_map_matches_par_map_on_healthy_input() {
        let items: Vec<f64> = (0..4096).map(|i| (i as f64).cos()).collect();
        let ok = try_par_map(&items, |&x| x * x).unwrap();
        let plain = par_map(&items, |&x| x * x);
        assert_eq!(ok.len(), plain.len());
        for (a, b) in ok.iter().zip(plain.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn try_par_map_reports_lowest_failing_index() {
        with_quiet_panics(|| {
            let items: Vec<usize> = (0..64).collect();
            let err = try_par_map(&items, |&x| {
                assert!(x != 13 && x != 40, "tile {x} exploded");
                x * 2
            })
            .unwrap_err();
            assert_eq!(err.index, 13);
            assert!(err.message.contains("tile 13 exploded"), "{}", err.message);
        });
    }

    #[test]
    fn try_par_map_retry_heals_transient_faults() {
        with_quiet_panics(|| {
            // Item 7 panics on its first attempt only; the bounded retry
            // must heal it and return the same bits as a clean run.
            let fired = AtomicUsize::new(0);
            let items: Vec<usize> = (0..32).collect();
            let out = try_par_map_retry(
                &items,
                |&x| {
                    if x == 7 && fired.fetch_add(1, Ordering::SeqCst) == 0 {
                        panic!("transient");
                    }
                    x + 1
                },
                2,
            )
            .unwrap();
            assert_eq!(out, (1..=32).collect::<Vec<_>>());
            assert_eq!(fired.load(Ordering::SeqCst), 2);
        });
    }

    #[test]
    fn try_par_map_retry_exhausts_budget_into_tile_error() {
        with_quiet_panics(|| {
            let attempts = AtomicUsize::new(0);
            let items: Vec<usize> = (0..8).collect();
            let err = try_par_map_retry(
                &items,
                |&x| {
                    if x == 3 {
                        attempts.fetch_add(1, Ordering::SeqCst);
                        panic!("permanent fault");
                    }
                    x
                },
                2,
            )
            .unwrap_err();
            assert_eq!(err.index, 3);
            assert!(err.message.contains("permanent fault"));
            // First pass + two retries.
            assert_eq!(attempts.load(Ordering::SeqCst), 3);
        });
    }

    #[test]
    fn par_map_repanics_with_original_message() {
        with_quiet_panics(|| {
            let items: Vec<usize> = (0..128).collect();
            let caught = catch_unwind(AssertUnwindSafe(|| {
                par_map(&items, |&x| {
                    assert!(x != 100, "original payload {x}");
                    x
                })
            }))
            .unwrap_err();
            assert!(panic_message(caught).contains("original payload 100"));
        });
    }

    #[test]
    fn worker_panic_does_not_drain_token_budget() {
        with_quiet_panics(|| {
            let items: Vec<usize> = (0..256).collect();
            for _ in 0..4 {
                let _ = try_par_map(&items, |&x| {
                    assert!(x % 97 != 96, "boom");
                    x
                });
            }
            // Budget must be fully restored: a healthy run still parallelises
            // and produces the right answer.
            let out = par_map(&items, |&x| x * 3);
            assert_eq!(out, (0..256).map(|x| x * 3).collect::<Vec<_>>());
        });
    }

    #[test]
    fn par_chunks_mut_propagates_worker_panic_message() {
        with_quiet_panics(|| {
            let caught = catch_unwind(AssertUnwindSafe(|| {
                let mut data = vec![0u32; 4096];
                par_chunks_mut(&mut data, 1, |offset, chunk| {
                    // Exactly one chunk holds the final element, whether the
                    // run is threaded or degraded to sequential.
                    assert!(offset + chunk.len() < 4096, "chunk fault at {offset}");
                    chunk.fill(1);
                });
            }))
            .unwrap_err();
            assert!(panic_message(caught).contains("chunk fault"));
        });
    }
}
