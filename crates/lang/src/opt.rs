//! Semantics-preserving program simplification.
//!
//! A light peephole/normalisation pass over `q-while(T)` and additive
//! programs, of the kind a production compiler would run before the
//! differentiation transform (smaller inputs mean fewer and smaller
//! compiled derivative programs):
//!
//! * `skip` elimination in sequences,
//! * abort normalisation: any essentially-aborting statement becomes a
//!   single `abort[v]` (`[[S; abort]] = [[abort; S]] = 0` since all
//!   denotations are linear maps),
//! * additive abort absorption `(abort + S) ⇒ S`, matching the compile
//!   rules of Fig. 3 (note: this drops zero-trace execution traces from the
//!   Definition 4.1 multiset, which Proposition 4.2 ignores anyway),
//! * cancellation of adjacent self-inverse gates (`H;H`, `X;X`, `CNOT;CNOT`
//!   on identical operands),
//! * merging of adjacent constant-angle rotations on the same operands and
//!   axis, and removal of rotations by multiples of `4π` (`Rσ` has period
//!   `4π`; `2π` flips a global phase, which is only safe to drop for
//!   rotations, not controlled ones — we stay conservative and use `4π`).
//!
//! The pass never changes `[[P]]` on the original register and never
//! increases the gate count (property-tested).

use crate::ast::{Angle, Gate, Stmt};
use std::f64::consts::PI;

/// Simplifies a program. The result denotes the same superoperator over the
/// original register (variables may disappear syntactically — evaluate
/// against an explicitly constructed [`crate::register::Register`] when that
/// matters).
pub fn simplify(stmt: &Stmt) -> Stmt {
    let vars = stmt.qvar();
    let simplified = go(stmt);
    match simplified {
        Some(s) => {
            if s.essentially_aborts() {
                Stmt::abort(vars)
            } else {
                s
            }
        }
        // Everything was eliminated: the identity program.
        None => Stmt::skip(vars),
    }
}

/// Core rewriter: `None` means "the statement is a no-op".
fn go(stmt: &Stmt) -> Option<Stmt> {
    match stmt {
        Stmt::Skip { .. } => None,
        Stmt::Abort { .. } | Stmt::Init { .. } => Some(stmt.clone()),
        Stmt::Unitary { gate, .. } => {
            if is_identity_rotation(gate) {
                None
            } else {
                Some(stmt.clone())
            }
        }
        Stmt::Seq(..) => {
            // Flatten, simplify children, then peephole over the window.
            let mut flat = Vec::new();
            flatten(stmt, &mut flat);
            let mut items: Vec<Stmt> = flat.into_iter().filter_map(|s| go(&s)).collect();
            // Abort normalisation: anything after a guaranteed abort is dead,
            // and a sequence containing an abort aborts as a whole.
            if let Some(pos) = items.iter().position(Stmt::essentially_aborts) {
                items.truncate(pos + 1);
                return Some(Stmt::abort(stmt.qvar()));
            }
            peephole(&mut items);
            match items.len() {
                0 => None,
                1 => Some(items.pop().expect("non-empty")),
                _ => Some(Stmt::seq(items)),
            }
        }
        Stmt::Case { qs, arms } => Some(Stmt::Case {
            qs: qs.clone(),
            arms: arms
                .iter()
                .map(|arm| go(arm).unwrap_or_else(|| Stmt::skip(arm.qvar())))
                .collect(),
        }),
        Stmt::While { q, bound, body } => Some(Stmt::While {
            q: q.clone(),
            bound: *bound,
            body: Box::new(go(body).unwrap_or_else(|| Stmt::skip(body.qvar()))),
        }),
        Stmt::Sum(a, b) => {
            let sa = go(a).unwrap_or_else(|| Stmt::skip(a.qvar()));
            let sb = go(b).unwrap_or_else(|| Stmt::skip(b.qvar()));
            // Additive abort absorption (mirrors the Fig. 3 Sum rule).
            match (sa.essentially_aborts(), sb.essentially_aborts()) {
                (true, true) => Some(Stmt::abort(stmt.qvar())),
                (true, false) => Some(sb),
                (false, true) => Some(sa),
                (false, false) => Some(Stmt::Sum(Box::new(sa), Box::new(sb))),
            }
        }
    }
}

fn flatten(stmt: &Stmt, out: &mut Vec<Stmt>) {
    match stmt {
        Stmt::Seq(a, b) => {
            flatten(a, out);
            flatten(b, out);
        }
        other => out.push(other.clone()),
    }
}

/// One left-to-right peephole sweep, repeated to a fixed point: cancels
/// adjacent self-inverse gates and merges constant rotations.
fn peephole(items: &mut Vec<Stmt>) {
    loop {
        let mut changed = false;
        let mut i = 0;
        while i + 1 < items.len() {
            match combine(&items[i], &items[i + 1]) {
                Combine::Cancel => {
                    items.drain(i..=i + 1);
                    changed = true;
                    i = i.saturating_sub(1);
                }
                Combine::Replace(merged) => {
                    items[i] = merged;
                    items.remove(i + 1);
                    changed = true;
                }
                Combine::Keep => i += 1,
            }
        }
        if !changed {
            return;
        }
    }
}

enum Combine {
    Cancel,
    Replace(Stmt),
    Keep,
}

fn combine(a: &Stmt, b: &Stmt) -> Combine {
    let (Stmt::Unitary { gate: ga, qs: qa }, Stmt::Unitary { gate: gb, qs: qb }) = (a, b) else {
        return Combine::Keep;
    };
    if qa != qb {
        return Combine::Keep;
    }
    // Self-inverse fixed gates cancel.
    if ga == gb && matches!(ga, Gate::H | Gate::X | Gate::Y | Gate::Z | Gate::Cnot) {
        return Combine::Cancel;
    }
    // Constant rotations on the same axis merge.
    match (ga, gb) {
        (
            Gate::Rot { axis: ax_a, angle: an_a },
            Gate::Rot { axis: ax_b, angle: an_b },
        ) if ax_a == ax_b && an_a.param.is_none() && an_b.param.is_none() => {
            merged_rotation(an_a.offset + an_b.offset, |angle| Gate::Rot {
                axis: *ax_a,
                angle,
            })
            .map_or(Combine::Cancel, |g| {
                Combine::Replace(Stmt::Unitary {
                    gate: g,
                    qs: qa.clone(),
                })
            })
        }
        (
            Gate::Coupling { axis: ax_a, angle: an_a },
            Gate::Coupling { axis: ax_b, angle: an_b },
        ) if ax_a == ax_b && an_a.param.is_none() && an_b.param.is_none() => {
            merged_rotation(an_a.offset + an_b.offset, |angle| Gate::Coupling {
                axis: *ax_a,
                angle,
            })
            .map_or(Combine::Cancel, |g| {
                Combine::Replace(Stmt::Unitary {
                    gate: g,
                    qs: qa.clone(),
                })
            })
        }
        _ => Combine::Keep,
    }
}

/// `None` when the summed angle is a multiple of `4π` (the rotation is the
/// identity), otherwise the merged gate.
fn merged_rotation(total: f64, ctor: impl Fn(Angle) -> Gate) -> Option<Gate> {
    if is_multiple_of_4pi(total) {
        None
    } else {
        Some(ctor(Angle::constant(total)))
    }
}

fn is_multiple_of_4pi(x: f64) -> bool {
    let period = 4.0 * PI;
    let r = (x / period - (x / period).round()).abs();
    r < 1e-12
}

fn is_identity_rotation(gate: &Gate) -> bool {
    match gate {
        Gate::Rot { angle, .. } | Gate::Coupling { angle, .. } => {
            angle.param.is_none() && is_multiple_of_4pi(angle.offset)
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Params;
    use crate::denot::denote;
    use crate::parser::parse_program;
    use crate::register::Register;
    use qdp_sim::DensityMatrix;

    fn simplified(src: &str) -> Stmt {
        simplify(&parse_program(src).unwrap())
    }

    fn semantics_preserved(src: &str, values: &[(&str, f64)]) {
        let p = parse_program(src).unwrap();
        let s = simplify(&p);
        let reg = Register::from_program(&p);
        let params = Params::from_pairs(values.iter().map(|&(k, v)| (k, v)));
        let mut rho = DensityMatrix::pure_zero(reg.len());
        rho.apply_unitary(&qdp_linalg::Matrix::hadamard(), &[0]);
        let before = denote(&p, &reg, &params, &rho);
        let after = denote(&s, &reg, &params, &rho);
        assert!(before.approx_eq(&after, 1e-10), "{src}\n⇒ {s:?}");
        assert!(s.gate_count() <= p.gate_count(), "{src}");
    }

    #[test]
    fn skip_elimination() {
        let s = simplified("skip[q1]; q1 *= H; skip[q1]");
        assert_eq!(s.gate_count(), 1);
        assert!(matches!(s, Stmt::Unitary { .. }));
    }

    #[test]
    fn double_hadamard_cancels() {
        let s = simplified("q1 *= H; q1 *= H");
        assert!(matches!(s, Stmt::Skip { .. }));
    }

    #[test]
    fn cancellation_cascades() {
        // X H H X collapses completely: inner pair first, then outer.
        let s = simplified("q1 *= X; q1 *= H; q1 *= H; q1 *= X");
        assert!(matches!(s, Stmt::Skip { .. }), "{s:?}");
    }

    #[test]
    fn constant_rotations_merge() {
        let s = simplified("q1 *= RX(0.25); q1 *= RX(0.5)");
        let Stmt::Unitary { gate: Gate::Rot { angle, .. }, .. } = &s else {
            panic!("{s:?}")
        };
        assert!((angle.offset - 0.75).abs() < 1e-12);
    }

    #[test]
    fn full_period_rotations_vanish() {
        let s = simplified("q1 *= RZ(2*pi); q1 *= RZ(2*pi)");
        assert!(matches!(s, Stmt::Skip { .. }), "{s:?}");
        // 2π alone is −I globally — kept, to stay phase-correct under control.
        let s = simplified("q1 *= RZ(2*pi)");
        assert!(matches!(s, Stmt::Unitary { .. }));
    }

    #[test]
    fn parameterized_rotations_do_not_merge() {
        let s = simplified("q1 *= RX(a); q1 *= RX(b)");
        assert_eq!(s.gate_count(), 2);
    }

    #[test]
    fn abort_normalisation_truncates() {
        let s = simplified("q1 *= H; abort[q1]; q1 *= X");
        assert!(matches!(s, Stmt::Abort { .. }));
    }

    #[test]
    fn sum_absorbs_aborting_components() {
        let s = simplified("abort[q1] + q1 *= H");
        assert!(matches!(s, Stmt::Unitary { .. }));
        let s = simplified("abort[q1] + abort[q1]");
        assert!(matches!(s, Stmt::Abort { .. }));
    }

    #[test]
    fn preserves_semantics_on_assorted_programs() {
        for src in [
            "q1 *= H; q1 *= H; q1 *= RX(a)",
            "skip[q1, q2]; q1, q2 *= CNOT; q1, q2 *= CNOT; q2 *= RY(b)",
            "q1 *= RX(0.3); q1 *= RX(0.7); case M[q1] = 0 -> skip[q1], 1 -> q1 *= X; q1 *= X end",
            "while[2] M[q1] = 1 do q1 *= H; q1 *= H; q1 *= X done",
            "q1 *= RZ(2*pi); q1 *= RZ(2*pi); q1 *= RY(a)",
            "q1 *= H; case M[q1] = 0 -> abort[q1], 1 -> abort[q1] end",
        ] {
            semantics_preserved(src, &[("a", 0.9), ("b", -1.2)]);
        }
    }

    #[test]
    fn simplify_before_differentiation_shrinks_derivatives() {
        // Cancelled gates cannot contribute derivative programs.
        let p = parse_program("q1 *= H; q1 *= H; q1 *= RX(t); q1 *= RX(0.1); q1 *= RX(0.2)")
            .unwrap();
        let s = simplify(&p);
        assert_eq!(s.gate_count(), 2, "{s:?}");
    }

    #[test]
    fn whole_program_of_noops_becomes_skip_over_qvar() {
        let s = simplified("skip[q1, q2]; q1 *= H; q1 *= H");
        let Stmt::Skip { qs } = &s else { panic!("{s:?}") };
        assert_eq!(qs.len(), 2, "register preserved");
    }
}
