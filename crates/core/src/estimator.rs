//! Shot-based estimation of derivatives (Section 7, “Execution”).
//!
//! On hardware one cannot read `tr((ZA⊗O)·[[P′i]]ρ)` exactly; the paper's
//! procedure estimates the sum (7.1) by treating `sum/m` as an observable on
//! the program that first draws `i` uniformly from the `m` compiled programs
//! and then runs `P′i`. A Chernoff bound gives `O(m²/δ²)` repetitions for
//! additive error `δ`, each consuming a fresh copy of the input state — the
//! resource `|#∂/∂θ(P)|` controls.

use crate::exec::Differentiated;
use qdp_lang::ast::{Params, Stmt};
use qdp_lang::Register;
use qdp_linalg::Matrix;
use qdp_sim::{
    BatchedStates, Measurement, Observable, ProjectiveObservable, ShotEngine, ShotSampler,
    StateVector, SHOT_TILE,
};

/// Runs one *sampled trajectory* of a normal program on a pure state:
/// measurement outcomes are drawn from the Born rule and the state collapses
/// accordingly. Returns `None` when the trajectory aborts.
///
/// # Panics
///
/// Panics on additive programs.
pub fn sample_trajectory(
    stmt: &Stmt,
    reg: &Register,
    params: &Params,
    psi: &StateVector,
    sampler: &mut ShotSampler,
) -> Option<StateVector> {
    let mut outcomes = Vec::new();
    sample_trajectory_traced(stmt, reg, params, psi, sampler, &mut outcomes)
}

/// [`sample_trajectory`] with the drawn measurement outcomes appended to
/// `outcomes` in program order (`init` resets included) — the serial
/// reference the batched [`ShotEngine`] is differentially tested against.
///
/// # Panics
///
/// Panics on additive programs.
pub fn sample_trajectory_traced(
    stmt: &Stmt,
    reg: &Register,
    params: &Params,
    psi: &StateVector,
    sampler: &mut ShotSampler,
    outcomes: &mut Vec<usize>,
) -> Option<StateVector> {
    match stmt {
        Stmt::Abort { .. } => None,
        Stmt::Skip { .. } => Some(psi.clone()),
        Stmt::Init { q } => {
            let idx = reg.indices_of(std::slice::from_ref(q))[0];
            // E_{q→0} on a pure state: branch on the current value of q,
            // then map both branches to |0⟩. Equivalent to measuring q and
            // applying X on outcome 1.
            let meas = Measurement::computational(vec![idx]);
            let (outcome, mut collapsed) = sampler.measure(psi, &meas);
            outcomes.push(outcome);
            if outcome == 1 {
                collapsed.apply_gate(&Matrix::pauli_x(), &[idx]);
            }
            Some(collapsed)
        }
        Stmt::Unitary { gate, qs } => {
            Some(psi.with_gate(&gate.matrix(params), &reg.indices_of(qs)))
        }
        Stmt::Seq(a, b) => {
            let mid = sample_trajectory_traced(a, reg, params, psi, sampler, outcomes)?;
            sample_trajectory_traced(b, reg, params, &mid, sampler, outcomes)
        }
        Stmt::Case { qs, arms } => {
            let meas = Measurement::computational(reg.indices_of(qs));
            let (outcome, collapsed) = sampler.measure(psi, &meas);
            outcomes.push(outcome);
            sample_trajectory_traced(&arms[outcome], reg, params, &collapsed, sampler, outcomes)
        }
        Stmt::While { .. } => {
            sample_trajectory_traced(&stmt.unfold_while_once(), reg, params, psi, sampler, outcomes)
        }
        Stmt::Sum(..) => panic!("sample_trajectory is defined on normal programs"),
    }
}

/// A shot-based estimate of the derivative computed by a [`Differentiated`]
/// artifact on a pure input — the **serial per-shot reference loop**.
///
/// Each shot: draw `i` uniformly from the `m` compiled programs, run a
/// sampled trajectory of `P′i` on `|0⟩A ⊗ |ψ⟩`, sample the observable
/// `ZA ⊗ O` once (0 when the trajectory aborted), and scale by `m`.
/// The estimator is unbiased for the exact derivative.
///
/// This interprets the AST one shot at a time on a single state; it is kept
/// as the oracle and benchmark baseline of
/// [`estimate_derivative_batched`], which spends the same budget in batched
/// trajectory sweeps (`estimator_shots` in `BENCH_sim.json` tracks the
/// gap).
///
/// Returns 0 when the derivative multiset is empty.
pub fn estimate_derivative(
    diff: &Differentiated,
    params: &Params,
    obs: &Observable,
    psi: &StateVector,
    shots: usize,
    sampler: &mut ShotSampler,
) -> f64 {
    assert!(shots > 0, "need at least one shot");
    let m = diff.compiled().len();
    if m == 0 {
        return 0.0;
    }
    let ext_obs = obs.with_ancilla_z();
    let ext_psi = StateVector::zero_state(1).tensor(psi);
    let mut acc = 0.0;
    for _ in 0..shots {
        let i = sampler.uniform_index(m);
        let program = &diff.compiled()[i];
        match sample_trajectory(program, diff.ext_register(), params, &ext_psi, sampler) {
            None => {}
            Some(final_state) => {
                acc += sampler.sample_observable(&final_state, &ext_obs);
            }
        }
    }
    m as f64 * acc / shots as f64
}

/// A batched shot-noise estimate of the same sum — the production path.
///
/// The estimator is statistically identical to [`estimate_derivative`]
/// (uniform program draws, Born-rule trajectories, one `ZA ⊗ O` sample per
/// shot, scaled by `m`) but spends the Chernoff budget in **batched
/// trajectory sweeps**:
///
/// * each compiled program is resolved **once** per call
///   (`ResolvedProgram` → [`qdp_sim::TrajProgram`]): every gate matrix is
///   built a single time and the `ZA ⊗ O` eigendecomposition is hoisted
///   out of the shot loop entirely,
/// * the per-shot program indices are drawn **up front** from the master
///   stream `ShotSampler::seeded(seed)`,
/// * shots are split into fixed [`SHOT_TILE`]-sized tiles fanned out
///   across `qdp_par`; within a tile, same-program shots form one
///   [`BatchedStates`] block per program (one row per shot) that a
///   [`ShotEngine`] sweeps with branch-grouped batching,
/// * shot `s` draws its trajectory and read-out from the derived stream
///   `ShotSampler::derived(seed, s)` wherever it runs, and tile sums are
///   reduced in tile order.
///
/// The last two points make the result **bit-for-bit identical under any
/// thread count** for a fixed `seed` — the determinism contract CI pins
/// under forced 1/2/8-thread configurations.
///
/// Returns 0 when the derivative multiset is empty.
///
/// # Panics
///
/// Panics when `shots` is zero or a used parameter has no value.
pub fn estimate_derivative_batched(
    diff: &Differentiated,
    params: &Params,
    obs: &Observable,
    psi: &StateVector,
    shots: usize,
    seed: u64,
) -> f64 {
    PreparedDerivativeEstimator::new(diff, params, obs).estimate(psi, shots, seed)
}

/// [`estimate_derivative_batched`] split into its per-valuation setup and
/// its per-evaluation sweep: programs resolved into [`ShotEngine`]s and
/// the `ZA ⊗ O` read-out eigendecomposed **once**, reusable across
/// arbitrarily many inputs and seeds. Batch evaluators (the shot-noise
/// `Trainer` sweeping a dataset) build one per parameter per epoch and
/// share it across the row fan-out.
#[derive(Clone, Debug)]
pub struct PreparedDerivativeEstimator {
    engines: Vec<ShotEngine>,
    readout: ProjectiveObservable,
    /// The extended observable `ZA ⊗ O` itself, for the exact baseline.
    ext_obs: Observable,
}

/// The valuation-independent half of a [`PreparedDerivativeEstimator`]:
/// the interned compiled skeleton (trajectory templates with constant
/// matrices final), the decomposed `ZA ⊗ O` read-out, and the extended
/// observable. Everything here depends only on (program, observable) —
/// **not** on the parameter values — so a caller evaluating many
/// valuations (a parameter-shift sweep, a training loop) builds this once
/// and calls [`prepare`](Self::prepare) per valuation, which re-patches
/// only the shifted parameter slots.
#[derive(Clone, Debug)]
pub struct DerivativeEstimatorSkeleton {
    skeleton: std::sync::Arc<crate::cache::CompiledSkeleton>,
    readout: ProjectiveObservable,
    ext_obs: Observable,
}

impl DerivativeEstimatorSkeleton {
    /// Interns the compiled multiset of `diff` (shared across the process
    /// via [`crate::ProgramCache`]) and decomposes the extended read-out.
    pub fn new(diff: &Differentiated, obs: &Observable) -> Self {
        let ext_obs = obs.with_ancilla_z();
        DerivativeEstimatorSkeleton {
            skeleton: diff.skeleton(),
            readout: ProjectiveObservable::new(&ext_obs),
            ext_obs,
        }
    }

    /// Substitutes one valuation: clones the trajectory templates and
    /// overwrites only the parameterized matrices
    /// ([`crate::TrajSkeleton::at`]). Bit-identical to resolving the
    /// multiset from scratch under the same valuation.
    ///
    /// # Panics
    ///
    /// Panics when a used parameter has no value.
    pub fn prepare(&self, params: &Params) -> PreparedDerivativeEstimator {
        let values = self.skeleton.lowered().slot_values(params);
        PreparedDerivativeEstimator {
            engines: (0..self.skeleton.trajectories().len())
                .map(|i| ShotEngine::new(self.skeleton.trajectory_at(i, &values)))
                .collect(),
            readout: self.readout.clone(),
            ext_obs: self.ext_obs.clone(),
        }
    }
}

impl PreparedDerivativeEstimator {
    /// Resolves the compiled multiset of `diff` under `params` and
    /// decomposes the extended read-out — the one-valuation convenience
    /// form of [`DerivativeEstimatorSkeleton::new`] +
    /// [`prepare`](DerivativeEstimatorSkeleton::prepare); multi-valuation
    /// callers should hold the skeleton instead.
    ///
    /// # Panics
    ///
    /// Panics when a used parameter has no value.
    pub fn new(diff: &Differentiated, params: &Params, obs: &Observable) -> Self {
        DerivativeEstimatorSkeleton::new(diff, obs).prepare(params)
    }

    /// The number of compiled programs `m` of the underlying multiset.
    pub fn num_programs(&self) -> usize {
        self.engines.len()
    }

    /// The **exact** value of the estimated sum (Eq. 7.1) on one input —
    /// the baseline every shot estimate converges to — computed on the
    /// *same* trajectory IR the sampled sweeps run: each resolved
    /// program's engine executes the branch-weighted exact sweep
    /// ([`ShotEngine::expectation_sweep`]) and the per-program values sum
    /// in multiset order. Agrees with
    /// [`Differentiated::derivative_pure`]'s per-row enumeration to
    /// numerical precision, and is bit-for-bit deterministic under any
    /// thread count.
    pub fn exact(&self, psi: &StateVector) -> f64 {
        self.try_exact(psi).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible twin of [`exact`](Self::exact): worker-panic exhaustion
    /// surfaces as a typed [`qdp_sim::QdpError::WorkerPanic`] instead of a
    /// panic.
    ///
    /// # Errors
    ///
    /// Returns [`qdp_sim::QdpError::WorkerPanic`] when a program's tile
    /// panicked and the bounded bit-identical retries did not heal it.
    pub fn try_exact(&self, psi: &StateVector) -> Result<f64, qdp_sim::QdpError> {
        let ext_psi = StateVector::zero_state(1).tensor(psi);
        // Engines are pure per call, so a panicked tile retries
        // bit-identically before the failure is surfaced.
        Ok(qdp_par::try_par_map_retry(
            &self.engines,
            |engine| engine.expectation_sweep(BatchedStates::repeat(&ext_psi, 1), &self.ext_obs)[0],
            TILE_RETRIES,
        )
        .map_err(qdp_sim::QdpError::from)?
        .into_iter()
        .sum())
    }

    /// One batched derivative estimate — identical bits to
    /// [`estimate_derivative_batched`] with the same arguments.
    ///
    /// # Panics
    ///
    /// Panics when `shots` is zero.
    pub fn estimate(&self, psi: &StateVector, shots: usize, seed: u64) -> f64 {
        self.try_estimate(psi, shots, seed)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible twin of [`estimate`](Self::estimate) — same contract as
    /// [`try_exact`](Self::try_exact).
    ///
    /// # Errors
    ///
    /// Returns [`qdp_sim::QdpError::WorkerPanic`] when a shot tile
    /// panicked and the bounded bit-identical retries did not heal it.
    ///
    /// # Panics
    ///
    /// Panics when `shots` is zero.
    pub fn try_estimate(
        &self,
        psi: &StateVector,
        shots: usize,
        seed: u64,
    ) -> Result<f64, qdp_sim::QdpError> {
        assert!(shots > 0, "need at least one shot");
        let m = self.engines.len();
        if m == 0 {
            return Ok(0.0);
        }
        let ext_psi = StateVector::zero_state(1).tensor(psi);

        // Per-shot program indices, drawn up front from the master stream.
        let mut master = ShotSampler::seeded(seed);
        let indices: Vec<u32> = (0..shots).map(|_| master.uniform_index(m) as u32).collect();

        let tiles: Vec<(usize, &[u32])> = indices
            .chunks(SHOT_TILE)
            .enumerate()
            .map(|(t, chunk)| (t * SHOT_TILE, chunk))
            .collect();
        let tile_sums = qdp_par::try_par_map_retry(&tiles, |&(start, chunk)| {
            let mut acc = 0.0;
            for (prog, engine) in self.engines.iter().enumerate() {
                // The tile's shots of this program become one batch row
                // each.
                let shot_ids: Vec<usize> = chunk
                    .iter()
                    .enumerate()
                    .filter(|&(_, &ix)| ix as usize == prog)
                    .map(|(r, _)| start + r)
                    .collect();
                if shot_ids.is_empty() {
                    continue;
                }
                let batch = BatchedStates::repeat(&ext_psi, shot_ids.len());
                let mut samplers: Vec<ShotSampler> = shot_ids
                    .iter()
                    .map(|&s| ShotSampler::derived(seed, s as u64))
                    .collect();
                acc += engine
                    .sample_sweep(batch, &mut samplers, &self.readout)
                    .into_iter()
                    .sum::<f64>();
            }
            acc
        }, TILE_RETRIES)
        .map_err(qdp_sim::QdpError::from)?;
        Ok(m as f64 * tile_sums.into_iter().sum::<f64>() / shots as f64)
    }
}

/// Bounded retry budget for panicked worker tiles: tiles are pure per
/// call (fresh batch, fresh derived streams), so a retry is bit-identical
/// to a first-try success, and two retries heal any transient fault the
/// fault-injection suite models.
const TILE_RETRIES: usize = 2;

/// The shot budget the Chernoff analysis prescribes for precision `delta`
/// given `m` compiled programs — the single workspace definition lives in
/// the simulator ([`qdp_sim::chernoff_shots`]); this is a re-export.
pub use qdp_sim::chernoff_shots;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::differentiate;
    use qdp_lang::parse_program;

    #[test]
    fn trajectory_of_deterministic_program() {
        let p = parse_program("q1 *= X; q1 *= X").unwrap();
        let reg = Register::from_program(&p);
        let mut sampler = ShotSampler::seeded(5);
        let out = sample_trajectory(&p, &reg, &Params::new(), &StateVector::zero_state(1), &mut sampler)
            .unwrap();
        assert_eq!(out.classical_bit(0), Some(false));
    }

    #[test]
    fn trajectory_aborts_on_abort() {
        let p = parse_program("q1 *= X; abort[q1]").unwrap();
        let reg = Register::from_program(&p);
        let mut sampler = ShotSampler::seeded(5);
        assert!(sample_trajectory(
            &p,
            &reg,
            &Params::new(),
            &StateVector::zero_state(1),
            &mut sampler
        )
        .is_none());
    }

    #[test]
    fn trajectory_init_resets_qubit() {
        let p = parse_program("q1 *= H; q1 := |0>").unwrap();
        let reg = Register::from_program(&p);
        let mut sampler = ShotSampler::seeded(11);
        for _ in 0..10 {
            let out = sample_trajectory(
                &p,
                &reg,
                &Params::new(),
                &StateVector::zero_state(1),
                &mut sampler,
            )
            .unwrap();
            assert_eq!(out.classical_bit(0), Some(false));
        }
    }

    #[test]
    fn trajectory_case_branches_statistically() {
        let p = parse_program("q1 *= H; case M[q1] = 0 -> skip[q1], 1 -> q1 *= X end").unwrap();
        let reg = Register::from_program(&p);
        let mut sampler = ShotSampler::seeded(21);
        // Both branches end in |0⟩ (identity or X after measuring 1).
        for _ in 0..20 {
            let out = sample_trajectory(
                &p,
                &reg,
                &Params::new(),
                &StateVector::zero_state(1),
                &mut sampler,
            )
            .unwrap();
            assert_eq!(out.classical_bit(0), Some(false));
        }
    }

    #[test]
    fn estimator_is_consistent_with_exact_derivative() {
        let p = parse_program("q1 *= RY(t)").unwrap();
        let diff = differentiate(&p, "t").unwrap();
        let params = Params::from_pairs([("t", 0.8)]);
        let obs = Observable::pauli_z(1, 0);
        let psi = StateVector::zero_state(1);
        let exact = diff.derivative_pure(&params, &obs, &psi);
        let mut sampler = ShotSampler::seeded(2024);
        let estimate = estimate_derivative(&diff, &params, &obs, &psi, 60_000, &mut sampler);
        assert!(
            (estimate - exact).abs() < 0.03,
            "estimate {estimate} vs exact {exact}"
        );
    }

    #[test]
    fn estimator_handles_multi_program_multisets() {
        // Two occurrences of t → m = 2 compiled programs.
        let p = parse_program("q1 *= RX(t); q1 *= RY(t)").unwrap();
        let diff = differentiate(&p, "t").unwrap();
        assert_eq!(diff.compiled().len(), 2);
        let params = Params::from_pairs([("t", 0.5)]);
        let obs = Observable::pauli_z(1, 0);
        let psi = StateVector::zero_state(1);
        let exact = diff.derivative_pure(&params, &obs, &psi);
        let mut sampler = ShotSampler::seeded(7);
        let estimate = estimate_derivative(&diff, &params, &obs, &psi, 80_000, &mut sampler);
        assert!(
            (estimate - exact).abs() < 0.05,
            "estimate {estimate} vs exact {exact}"
        );
    }

    #[test]
    fn estimator_of_parameterless_program_is_zero() {
        let p = parse_program("q1 *= H").unwrap();
        let diff = differentiate(&p, "t").unwrap();
        assert!(diff.compiled().is_empty());
        let mut sampler = ShotSampler::seeded(1);
        let est = estimate_derivative(
            &diff,
            &Params::new(),
            &Observable::pauli_z(1, 0),
            &StateVector::zero_state(1),
            10,
            &mut sampler,
        );
        assert_eq!(est, 0.0);
    }

    #[test]
    fn chernoff_budget_grows_with_m() {
        assert!(chernoff_shots(4, 0.1) > chernoff_shots(2, 0.1));
    }

    #[test]
    fn batched_estimator_is_consistent_with_exact_derivative() {
        let p = parse_program("q1 *= RX(t); q1 *= RY(t)").unwrap();
        let diff = differentiate(&p, "t").unwrap();
        let params = Params::from_pairs([("t", 0.5)]);
        let obs = Observable::pauli_z(1, 0);
        let psi = StateVector::zero_state(1);
        let exact = diff.derivative_pure(&params, &obs, &psi);
        let estimate = estimate_derivative_batched(&diff, &params, &obs, &psi, 80_000, 7);
        assert!(
            (estimate - exact).abs() < 0.05,
            "estimate {estimate} vs exact {exact}"
        );
    }

    #[test]
    fn batched_estimator_handles_control_flow_programs() {
        let p = parse_program(
            "q1 *= RX(t); case M[q1] = 0 -> q1 *= RY(t), 1 -> q1 *= RZ(t) end; \
             while[2] M[q1] = 1 do q1 *= RY(t) done",
        )
        .unwrap();
        let diff = differentiate(&p, "t").unwrap();
        let params = Params::from_pairs([("t", 1.1)]);
        let obs = Observable::pauli_z(1, 0);
        let psi = StateVector::zero_state(1);
        let exact = diff.derivative_pure(&params, &obs, &psi);
        let estimate = estimate_derivative_batched(&diff, &params, &obs, &psi, 120_000, 77);
        assert!(
            (estimate - exact).abs() < 0.06,
            "estimate {estimate} vs exact {exact}"
        );
    }

    #[test]
    fn batched_estimator_of_parameterless_program_is_zero() {
        let p = parse_program("q1 *= H").unwrap();
        let diff = differentiate(&p, "t").unwrap();
        assert!(diff.compiled().is_empty());
        let est = estimate_derivative_batched(
            &diff,
            &Params::new(),
            &Observable::pauli_z(1, 0),
            &StateVector::zero_state(1),
            10,
            1,
        );
        assert_eq!(est, 0.0);
    }

    #[test]
    fn prepared_exact_baseline_matches_per_row_derivative() {
        // The estimator's exact baseline runs on the unified trajectory IR
        // (branch-weighted sweep); the per-row enumeration pins it.
        for src in [
            "q1 *= RX(t); q1 *= RY(t)",
            "q1 *= RX(t); case M[q1] = 0 -> q1 *= RY(t), 1 -> q1 *= RZ(t) end",
            "q1 *= RY(t); while[2] M[q1] = 1 do q1 *= RY(t) done",
        ] {
            let p = parse_program(src).unwrap();
            let diff = differentiate(&p, "t").unwrap();
            let params = Params::from_pairs([("t", 0.8)]);
            let obs = Observable::pauli_z(1, 0);
            let prepared = PreparedDerivativeEstimator::new(&diff, &params, &obs);
            for k in 0..2usize {
                let psi = StateVector::basis_state(1, k);
                let exact = prepared.exact(&psi);
                let oracle = diff.derivative_pure(&params, &obs, &psi);
                assert!(
                    (exact - oracle).abs() < 1e-12,
                    "{src} on |{k}⟩: IR {exact} vs oracle {oracle}"
                );
            }
        }
    }

    #[test]
    fn batched_estimator_is_reproducible_per_seed() {
        let p = parse_program("q1 *= RX(t); q1 *= RY(t)").unwrap();
        let diff = differentiate(&p, "t").unwrap();
        let params = Params::from_pairs([("t", 0.9)]);
        let obs = Observable::pauli_z(1, 0);
        let psi = StateVector::zero_state(1);
        let run = |seed: u64| estimate_derivative_batched(&diff, &params, &obs, &psi, 3000, seed);
        assert_eq!(run(4).to_bits(), run(4).to_bits());
        assert_ne!(run(4).to_bits(), run(5).to_bits());
    }

    #[test]
    fn estimator_handles_control_flow_programs() {
        // Derivative programs of a case statement contain measurements that
        // the trajectory sampler must resolve shot by shot.
        let p = parse_program(
            "q1 *= RX(t); case M[q1] = 0 -> q1 *= RY(t), 1 -> q1 *= RZ(t) end",
        )
        .unwrap();
        let diff = differentiate(&p, "t").unwrap();
        let params = Params::from_pairs([("t", 1.1)]);
        let obs = Observable::pauli_z(1, 0);
        let psi = StateVector::zero_state(1);
        let exact = diff.derivative_pure(&params, &obs, &psi);
        let mut sampler = ShotSampler::seeded(77);
        let estimate = estimate_derivative(&diff, &params, &obs, &psi, 120_000, &mut sampler);
        assert!(
            (estimate - exact).abs() < 0.05,
            "estimate {estimate} vs exact {exact}"
        );
    }

    #[test]
    fn estimator_handles_bounded_while() {
        let p = parse_program("q1 *= RY(t); while[2] M[q1] = 1 do q1 *= RY(t) done").unwrap();
        let diff = differentiate(&p, "t").unwrap();
        let params = Params::from_pairs([("t", 0.7)]);
        let obs = Observable::pauli_z(1, 0);
        let psi = StateVector::zero_state(1);
        let exact = diff.derivative_pure(&params, &obs, &psi);
        let mut sampler = ShotSampler::seeded(3);
        let estimate = estimate_derivative(&diff, &params, &obs, &psi, 120_000, &mut sampler);
        assert!(
            (estimate - exact).abs() < 0.07,
            "estimate {estimate} vs exact {exact}"
        );
    }
}
