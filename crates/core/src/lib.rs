//! # qdp-ad
//!
//! The core contribution of *On the Principles of Differentiable Quantum
//! Programming Languages* (PLDI 2020), reproduced in Rust:
//!
//! * [`transform`] — the code-transformation rules `∂/∂θj(·)` of Fig. 4 with
//!   the single-circuit `R′σ` gadgets (Definition 6.1),
//! * [`semantics`] — observable semantics, semantics with ancilla, and
//!   differential semantics (Definitions 5.1–5.3),
//! * [`logic`] — the differentiation logic `S′(θ)|S(θ)` of Fig. 5 as
//!   derivation trees with a proof checker (Theorem 6.2),
//! * [`exec`] — the transform → compile → evaluate pipeline and a cached
//!   [`GradientEngine`],
//! * [`resource`] — occurrence counts and `|#∂/∂θj(P)|` (Definitions 7.1 and
//!   4.3, Proposition 7.2),
//! * [`estimator`] — shot-based estimation with the `O(m²/δ²)` Chernoff
//!   budget (Section 7).
//!
//! # Examples
//!
//! Differentiate a program with a quantum `case` — the construct the
//! phase-shift rule cannot handle — and evaluate the derivative exactly:
//!
//! ```
//! use qdp_ad::differentiate;
//! use qdp_lang::ast::Params;
//! use qdp_lang::parse_program;
//! use qdp_sim::{DensityMatrix, Observable};
//!
//! let p = parse_program(
//!     "q1 *= RX(t); case M[q1] = 0 -> q2 *= RY(t), 1 -> q2 *= RZ(t) end",
//! )?;
//! let diff = differentiate(&p, "t")?;
//! let d = diff.derivative(
//!     &Params::from_pairs([("t", 0.3)]),
//!     &Observable::pauli_z(2, 1),
//!     &DensityMatrix::pure_zero(2),
//! );
//! assert!(d.is_finite());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// Production code routes failures through typed errors or messageful
// panics; bare unwrap/expect is confined to tests.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod cache;
pub mod estimator;
pub mod exec;
pub mod logic;
pub mod lowered;
pub mod resource;
pub mod semantics;
pub mod service;
pub mod transform;

pub use cache::{CacheCounters, CacheStats, CompiledSkeleton, ProgramCache};
pub use exec::{differentiate, Differentiated, GradientEngine};
pub use lowered::{lower_invocations, LoweredProgram, LoweredSet, ResolvedProgram, TrajSkeleton};
pub use service::{
    GradientService, OverloadPolicy, ProgramHandle, RequestOptions, ServiceConfig,
};
pub use logic::{check, derive, Derivation, Judgement, Rule};
pub use resource::{analyze, gradient_shot_budget, occurrence_count, ResourceReport};
pub use transform::{fresh_ancilla, transform, TransformError};
