//! End-to-end pipeline tests: parse → well-formedness → logic derivation →
//! transform → compile → simulate → gradient → train.

use qdpl::ad::{check, derive, differentiate, fresh_ancilla, GradientEngine};
use qdpl::lang::ast::Params;
use qdpl::lang::{parse_program, wf, Register};
use qdpl::sim::{DensityMatrix, Observable, StateVector};
use qdpl::vqc::loss::{Loss, SquaredLoss};
use qdpl::vqc::optim::{Adam, GradientDescent, Momentum, Optimizer};
use qdpl::vqc::task;
use qdpl::vqc::train::Trainer;

const PIPELINE_SRC: &str = "
    // prepare an entangled pair, then branch on a measurement
    q1 *= H;
    q1, q2 *= RXX(alpha);
    case M[q1] =
      0 -> q2 *= RY(beta),
      1 -> q2 := |0>; q2 *= RZ(alpha)
    end;
    while[2] M[q2] = 1 do
      q1 *= RX(beta)
    done";

#[test]
fn full_pipeline_from_source_to_gradient() {
    // Parse and validate.
    let program = parse_program(PIPELINE_SRC).expect("parses");
    wf::check(&program).expect("well-formed");
    let reg = Register::from_program(&program);
    assert_eq!(reg.len(), 2);

    // Build and check the logic derivation for each parameter.
    for param in ["alpha", "beta"] {
        let ancilla = fresh_ancilla(&program, param);
        let derivation = derive(&program, param, &ancilla).expect("derivable");
        check(&derivation, param, &ancilla).expect("derivation checks");
    }

    // Gradient against finite differences on a mixed input.
    let engine = GradientEngine::new(&program).expect("differentiable");
    let params = Params::from_pairs([("alpha", 0.9), ("beta", -0.6)]);
    let obs = Observable::pauli_z(2, 0);
    let mut rho = DensityMatrix::pure_zero(2);
    rho.apply_unitary(&qdpl::linalg::Matrix::hadamard(), &[1]);
    let grad = engine.gradient(&params, &obs, &rho);
    for (name, value) in &grad {
        let numeric = qdpl::ad::semantics::numeric_derivative(
            &program, &reg, &params, name, &obs, &rho, 1e-5,
        );
        assert!(
            (value - numeric).abs() < 1e-7,
            "∂/∂{name}: {value} vs {numeric}"
        );
    }
}

#[test]
fn derivative_agrees_between_density_and_pure_paths() {
    let program = parse_program(PIPELINE_SRC).expect("parses");
    let diff = differentiate(&program, "alpha").expect("differentiable");
    let params = Params::from_pairs([("alpha", 0.4), ("beta", 1.3)]);
    let obs = Observable::projector_one(2, 1);
    let psi = StateVector::zero_state(2);
    let dense = diff.derivative(&params, &obs, &DensityMatrix::from_pure(&psi));
    let pure = diff.derivative_pure(&params, &obs, &psi);
    assert!((dense - pure).abs() < 1e-10);
}

#[test]
fn all_optimizers_train_the_case_study() {
    let data: qdpl::vqc::train::Dataset = task::dataset()
        .into_iter()
        .map(|s| (s.input_state(), s.target()))
        .collect();
    let optimizers: Vec<Box<dyn Optimizer>> = vec![
        Box::new(GradientDescent::new(0.4)),
        Box::new(Momentum::new(0.2, 0.5)),
        Box::new(Adam::new(0.1)),
    ];
    for mut opt in optimizers {
        let mut trainer = Trainer::new(
            &qdpl::vqc::circuits::p2(),
            task::readout_observable(),
            data.clone(),
        )
        .expect("differentiable");
        trainer.init_params_seeded(23);
        let before = trainer.loss_value(&SquaredLoss);
        for _ in 0..6 {
            trainer.epoch(&SquaredLoss, opt.as_mut());
        }
        let after = trainer.loss_value(&SquaredLoss);
        assert!(
            after < before,
            "{}: loss {before} → {after}",
            opt.name()
        );
    }
}

#[test]
fn nll_loss_also_trains() {
    use qdpl::vqc::loss::NegLogLikelihood;
    let data: qdpl::vqc::train::Dataset = task::dataset()
        .into_iter()
        .map(|s| (s.input_state(), s.target()))
        .collect();
    let mut trainer = Trainer::new(
        &qdpl::vqc::circuits::p2(),
        task::readout_observable(),
        data,
    )
    .expect("differentiable");
    trainer.init_params_seeded(5);
    let nll = NegLogLikelihood::default();
    let before = trainer.loss_value(&nll);
    let mut opt = GradientDescent::new(0.05);
    for _ in 0..6 {
        trainer.epoch(&nll, &mut opt);
    }
    assert!(trainer.loss_value(&nll) < before);
}

#[test]
fn losses_satisfy_their_contracts() {
    let sq = SquaredLoss;
    assert_eq!(sq.loss(0.5, 0.5), 0.0);
    assert!(sq.loss(0.0, 1.0) > 0.0);
}

#[test]
fn umbrella_reexports_are_wired() {
    // One symbol per crate, to catch re-export regressions.
    let _ = qdpl::linalg::C64::ONE;
    let _ = qdpl::sim::DensityMatrix::pure_zero(1);
    let _ = qdpl::lang::parse_program("skip[q1]").expect("parses");
    let _ = qdpl::ad::occurrence_count(
        &qdpl::lang::parse_program("q1 *= RX(t)").expect("parses"),
        "t",
    );
    let _ = qdpl::vqc::circuits::p1();
}
