//! Targeted gate-application kernels — the hot loops of the simulator.
//!
//! A `k`-qubit operator is applied to an amplitude array without ever
//! materialising the `2ⁿ × 2ⁿ` lifted operator. Density matrices reuse the
//! same kernels by viewing a `2ⁿ × 2ⁿ` row-major array as a state vector over
//! `2n` qubits (row qubits occupy the **high** half of the flattened index,
//! column qubits the low half).
//!
//! # Kernel strategy
//!
//! The public entry point [`apply_matrix`] dispatches on operator shape:
//!
//! * **Base enumeration.** Only the `2^(n−k)` base indices (target bits
//!   clear) are visited, produced directly by *bit-deposit* over the
//!   non-target mask — never the full `2ⁿ` range with a mask test per index
//!   (that reference behaviour survives as [`apply_matrix_reference`] for
//!   validation and benchmarking).
//! * **Specialised `k = 1` / `k = 2` kernels.** Allocation-free: the operator
//!   is copied to stack scratch, the 2×2 / 4×4 multiply is fully unrolled,
//!   and amplitudes are accessed through raw slices instead of per-element
//!   [`Matrix::get`].
//! * **Diagonal fast path.** Phase-type operators (`RZ`, `CZ`, projectors
//!   onto basis states, …) touch each amplitude exactly once with a single
//!   multiply.
//! * **Block-diagonal (controlled) fast path.** Operators of the form
//!   `|0⟩⟨0| ⊗ A + |1⟩⟨1| ⊗ B` — every controlled rotation the
//!   differentiation gadget emits, plus `CNOT` — skip the zero blocks,
//!   halving the multiply count.
//! * **Parallel split.** Above [`PAR_MIN_LEN`] amplitudes the work is split
//!   across threads via `qdp_par`: in place over contiguous aligned chunks
//!   when the target bits lie below the chunk boundary, or by zipping the
//!   two contiguous orbit halves in lockstep when the target is the top
//!   bit. Every split performs the identical floating-point operations per
//!   output element as the serial kernel, so results are bit-for-bit
//!   deterministic regardless of thread count.
//!
//! Every fast path is validated against [`embed`] on randomised inputs to
//! `1e-12` (see `crates/sim/tests/kernel_properties.rs`).

use crate::simd::{self, Chain1q, SimdTier};
use qdp_linalg::{C64, Matrix};
use std::sync::atomic::{AtomicBool, Ordering};

/// Arrays at least this long may be split across threads.
pub const PAR_MIN_LEN: usize = 1 << 14;

/// When set, [`apply_matrix`] routes through [`apply_matrix_reference`] —
/// used by benchmarks to measure end-to-end speedups of the fast paths.
static REFERENCE_MODE: AtomicBool = AtomicBool::new(false);

/// Forces every kernel through the slow reference implementation (for
/// benchmarking the fast paths end-to-end). Affects all threads.
pub fn set_reference_kernels(on: bool) {
    REFERENCE_MODE.store(on, Ordering::Relaxed);
}

/// Whether [`set_reference_kernels`] is currently engaged.
pub fn reference_kernels_enabled() -> bool {
    REFERENCE_MODE.load(Ordering::Relaxed)
}

/// Bit position (from the least significant end) of qubit `q` in an
/// `n`-qubit basis index. Qubit 0 is the most significant bit.
#[inline]
pub fn qubit_bit(n: usize, q: usize) -> usize {
    debug_assert!(q < n, "qubit index {q} out of range for {n} qubits");
    n - 1 - q
}

/// The local (operator-space) index of `full_index` under the target
/// `masks`, with `masks[0]` the **most significant** local bit — the one
/// shared definition of the target-order convention every bucketing pass
/// (measurement probabilities, selected-branch collapse, diagonal
/// read-outs) folds full indices through.
#[inline]
pub(crate) fn local_index(full_index: usize, masks: &[usize]) -> usize {
    let k = masks.len();
    let mut local = 0usize;
    for (j, &mask) in masks.iter().enumerate() {
        if full_index & mask != 0 {
            local |= 1 << (k - 1 - j);
        }
    }
    local
}

/// Expands `i` by inserting a zero bit at each position in `sorted_bits`
/// (ascending): the `i`-th base index whose `sorted_bits` are all clear.
/// This is how the kernels enumerate exactly the `2^(n−k)` orbit bases
/// instead of scanning all `2ⁿ` indices.
#[inline]
pub(crate) fn deposit_zeros(mut i: usize, sorted_bits: &[usize]) -> usize {
    for &b in sorted_bits {
        let low = (1usize << b) - 1;
        i = ((i & !low) << 1) | (i & low);
    }
    i
}

fn validate(amps: &[C64], n: usize, m: &Matrix, targets: &[usize]) {
    let k = targets.len();
    assert!(m.rows() == 1 << k && m.cols() == 1 << k, "operator dimension must be 2^{k}");
    assert_eq!(amps.len(), 1 << n, "amplitude array must have length 2^{n}");
    for (i, t) in targets.iter().enumerate() {
        assert!(*t < n, "target {t} out of range for {n} qubits");
        for u in &targets[i + 1..] {
            assert_ne!(t, u, "duplicate target qubit {t}");
        }
    }
}

/// Applies an arbitrary `2ᵏ × 2ᵏ` matrix `m` to the amplitudes `amps` of an
/// `n`-qubit register on the given distinct `targets`.
///
/// The matrix need not be unitary — measurement operators and Kraus operators
/// are applied with the same kernel. Target order is significant: `targets[0]`
/// is the most significant qubit of the local index into `m`.
///
/// # Panics
///
/// Panics when dimensions are inconsistent or targets repeat.
pub fn apply_matrix(amps: &mut [C64], n: usize, m: &Matrix, targets: &[usize]) {
    validate(amps, n, m, targets);
    if reference_kernels_enabled() {
        apply_matrix_reference_unchecked(amps, n, m, targets);
        return;
    }
    match *targets {
        [t] => apply_1q(amps, n, m, t),
        [t0, t1] => apply_2q(amps, n, m, t0, t1),
        _ => apply_kq(amps, n, m, targets),
    }
}

/// Left-multiplies a square amplitude array (row-major, dimension `2ⁿ`) by
/// the operator `m` on `targets`: `A ← (m lifted) · A`.
pub fn left_mul(a: &mut [C64], n: usize, m: &Matrix, targets: &[usize]) {
    // Row index bits occupy the high half of the flattened 2n-qubit index,
    // so row qubit q maps to qubit q of the doubled register.
    apply_matrix(a, 2 * n, m, targets);
}

/// Right-multiplies a square amplitude array by the operator `m` on
/// `targets`: `A ← A · (m lifted)`.
///
/// Allocates a transposed copy of `m` on every call; hot paths that apply
/// the same operator repeatedly should cache the transpose and use
/// [`right_mul_transposed`] instead.
pub fn right_mul(a: &mut [C64], n: usize, m: &Matrix, targets: &[usize]) {
    right_mul_transposed(a, n, &m.transpose(), targets);
}

/// Like [`right_mul`], but takes the operator **already transposed** so no
/// per-call allocation happens: `A ← A · (m_tᵀ lifted)`.
pub fn right_mul_transposed(a: &mut [C64], n: usize, m_t: &Matrix, targets: &[usize]) {
    // (A·M)_{ij} = Σ_b A_{ib} M_{bj} = Σ_b (Mᵀ)_{jb} A_{ib}: apply Mᵀ on the
    // column qubits, which sit in the low half of the doubled register.
    let shifted: Vec<usize> = targets.iter().map(|&t| t + n).collect();
    apply_matrix(a, 2 * n, m_t, &shifted);
}

// ---------------------------------------------------------------------------
// k = 1
// ---------------------------------------------------------------------------

fn apply_1q(amps: &mut [C64], n: usize, m: &Matrix, t: usize) {
    let md = m.as_slice();
    let (m00, m01, m10, m11) = (md[0], md[1], md[2], md[3]);
    let mask = 1usize << qubit_bit(n, t);

    if m01 == C64::ZERO && m10 == C64::ZERO {
        apply_diag(amps, &[mask], &[m00, m11]);
        return;
    }

    // Real operators (H, RY, X, …) need four real multiplies per output
    // component instead of the full complex product. The arithmetic below
    // performs the identical floating-point operations the generic path
    // would after its zero-imaginary terms are folded, so both paths agree
    // bitwise.
    if m00.im == 0.0 && m01.im == 0.0 && m10.im == 0.0 && m11.im == 0.0 {
        let (r00, r01, r10, r11) = (m00.re, m01.re, m10.re, m11.re);
        apply_1q_with(amps, mask, |a0, a1| {
            (
                C64::new(r00 * a0.re + r01 * a1.re, r00 * a0.im + r01 * a1.im),
                C64::new(r10 * a0.re + r11 * a1.re, r10 * a0.im + r11 * a1.im),
            )
        });
    } else {
        apply_1q_with(amps, mask, |a0, a1| {
            (
                C64::ZERO.mul_add(m00, a0).mul_add(m01, a1),
                C64::ZERO.mul_add(m10, a0).mul_add(m11, a1),
            )
        });
    }
}

/// Shared driver of the dense single-qubit kernels: `pair` maps the orbit
/// `(amps[base], amps[base|mask])` to its new values.
fn apply_1q_with(amps: &mut [C64], mask: usize, pair: impl Fn(C64, C64) -> (C64, C64) + Sync) {
    let align = mask << 1;
    let serial = |chunk: &mut [C64]| {
        for block in chunk.chunks_exact_mut(align) {
            let (lo_half, hi_half) = block.split_at_mut(mask);
            for (lo, hi) in lo_half.iter_mut().zip(hi_half.iter_mut()) {
                let (a, b) = pair(*lo, *hi);
                *lo = a;
                *hi = b;
            }
        }
    };
    // Small arrays (the pure-state gradient path) never touch the parallel
    // machinery: straight into the serial loop.
    if amps.len() < PAR_MIN_LEN || qdp_par::max_threads() < 2 {
        serial(amps);
        return;
    }
    if amps.len() / align < 2 {
        // `mask` is the top bit (`left_mul` on row qubit 0 of a density
        // matrix is the only way here): the two orbit halves are contiguous,
        // so split and zip them in lockstep — no snapshot, each orbit
        // computed once, bit-identical to the serial loop.
        let (lo_half, hi_half) = amps.split_at_mut(mask);
        qdp_par::par_zip_chunks_mut(lo_half, hi_half, |lo_chunk, hi_chunk| {
            for (lo, hi) in lo_chunk.iter_mut().zip(hi_chunk.iter_mut()) {
                let (a, b) = pair(*lo, *hi);
                *lo = a;
                *hi = b;
            }
        });
        return;
    }
    // In place over contiguous chunks: an index orbit {base, base|mask}
    // stays inside any aligned chunk of 2·mask elements.
    qdp_par::par_chunks_mut(amps, align, |_, chunk| serial(chunk));
}

// ---------------------------------------------------------------------------
// k = 2
// ---------------------------------------------------------------------------

fn apply_2q(amps: &mut [C64], n: usize, m: &Matrix, t0: usize, t1: usize) {
    let md = m.as_slice();
    let mut mm = [C64::ZERO; 16];
    mm.copy_from_slice(md);
    let mask0 = 1usize << qubit_bit(n, t0); // most significant local bit
    let mask1 = 1usize << qubit_bit(n, t1);

    let diagonal = (0..4).all(|a| (0..4).all(|b| a == b || mm[4 * a + b] == C64::ZERO));
    if diagonal {
        apply_diag(amps, &[mask0, mask1], &[mm[0], mm[5], mm[10], mm[15]]);
        return;
    }

    // Block-diagonal in the first target: |0⟩⟨0| ⊗ A + |1⟩⟨1| ⊗ B. This is
    // every controlled gate the differentiation gadget emits (the control is
    // the most significant target by convention), plus CNOT.
    let block_diagonal = mm[2] == C64::ZERO
        && mm[3] == C64::ZERO
        && mm[6] == C64::ZERO
        && mm[7] == C64::ZERO
        && mm[8] == C64::ZERO
        && mm[9] == C64::ZERO
        && mm[12] == C64::ZERO
        && mm[13] == C64::ZERO;
    if block_diagonal {
        // A acts on the t1 bit where the t0 bit is clear, B where it is set.
        apply_blockdiag_ctrl(
            amps,
            mask0,
            mask1,
            [mm[0], mm[1], mm[4], mm[5]],
            [mm[10], mm[11], mm[14], mm[15]],
        );
        return;
    }

    let (b_lo, b_hi) = if mask0 < mask1 {
        (mask0.trailing_zeros() as usize, mask1.trailing_zeros() as usize)
    } else {
        (mask1.trailing_zeros() as usize, mask0.trailing_zeros() as usize)
    };
    let low = (1usize << b_lo) - 1;
    let mid = (1usize << b_hi) - 1;
    let off = [0usize, mask1, mask0, mask0 | mask1];

    let quarter = amps.len() >> 2;
    let body = |amps: &mut [C64], start: usize, end: usize, shift: usize| {
        for i in start..end {
            let x = ((i & !low) << 1) | (i & low);
            let base = (((x & !mid) << 1) | (x & mid)) - shift;
            let s = [
                amps[base | off[0]],
                amps[base | off[1]],
                amps[base | off[2]],
                amps[base | off[3]],
            ];
            for (a, &o) in off.iter().enumerate() {
                let row = 4 * a;
                amps[base | o] = C64::ZERO
                    .mul_add(mm[row], s[0])
                    .mul_add(mm[row + 1], s[1])
                    .mul_add(mm[row + 2], s[2])
                    .mul_add(mm[row + 3], s[3]);
            }
        }
    };

    let align = 1usize << (b_hi + 1);
    if amps.len() >= PAR_MIN_LEN && qdp_par::max_threads() > 1 && amps.len() / align >= 2 {
        // Aligned chunks contain whole orbits: bases within a chunk start at
        // base index offset/4 adjusted for deposited bits. Easier and just as
        // fast: recompute the global base range per chunk.
        qdp_par::par_chunks_mut(amps, align, |offset, chunk| {
            // Chunks are aligned to whole orbits, and the bit-deposit map is
            // monotone, so the chunk starting at `offset` covers exactly the
            // base indices [offset/4, offset/4 + chunk.len()/4).
            let first = offset >> 2;
            body(chunk, first, first + (chunk.len() >> 2), offset);
        });
        return;
    }
    body(amps, 0, quarter, 0);
}

/// Applies the 2×2 blocks `a` (control clear) and `b` (control set) of a
/// block-diagonal two-qubit operator. `cmask` is the control bit, `tmask`
/// the target bit.
fn apply_blockdiag_ctrl(amps: &mut [C64], cmask: usize, tmask: usize, a: [C64; 4], b: [C64; 4]) {
    let identity_a = a[0] == C64::ONE && a[1] == C64::ZERO && a[2] == C64::ZERO && a[3] == C64::ONE;
    let align = (cmask.max(tmask)) << 1;
    let body = |offset: usize, chunk: &mut [C64]| {
        let quarter = chunk.len() >> 2;
        let (b_lo, b_hi) = (
            cmask.min(tmask).trailing_zeros() as usize,
            cmask.max(tmask).trailing_zeros() as usize,
        );
        let low = (1usize << b_lo) - 1;
        let mid = (1usize << b_hi) - 1;
        let first = offset >> 2;
        for i in first..first + quarter {
            let x = ((i & !low) << 1) | (i & low);
            let base = (((x & !mid) << 1) | (x & mid)) - offset;
            if !identity_a {
                let s0 = chunk[base];
                let s1 = chunk[base | tmask];
                chunk[base] = C64::ZERO.mul_add(a[0], s0).mul_add(a[1], s1);
                chunk[base | tmask] = C64::ZERO.mul_add(a[2], s0).mul_add(a[3], s1);
            }
            let s2 = chunk[base | cmask];
            let s3 = chunk[base | cmask | tmask];
            chunk[base | cmask] = C64::ZERO.mul_add(b[0], s2).mul_add(b[1], s3);
            chunk[base | cmask | tmask] = C64::ZERO.mul_add(b[2], s2).mul_add(b[3], s3);
        }
    };
    if amps.len() < PAR_MIN_LEN || qdp_par::max_threads() < 2 {
        body(0, amps);
    } else {
        qdp_par::par_chunks_mut(amps, align, body);
    }
}

// ---------------------------------------------------------------------------
// Diagonal operators (any k)
// ---------------------------------------------------------------------------

/// Multiplies each amplitude by the diagonal entry selected by its target
/// bits. `masks[j]` is the bit of local index bit `k-1-j` (i.e. `masks[0]`
/// is the most significant local bit).
///
/// Amplitudes are processed in runs of `min(masks)` consecutive elements —
/// the local index is constant within a run, so it is computed once per run
/// and **identity runs are skipped entirely**. That is what makes `CZ` touch
/// a quarter of the array and a basis projector half of it.
fn apply_diag(amps: &mut [C64], masks: &[usize], diag: &[C64]) {
    if diag.iter().all(|&d| d == C64::ONE) {
        return; // identity: nothing to do
    }
    let k = masks.len();
    // Infallible: diagonal kernels are only built for k ≥ 1 targets.
    #[allow(clippy::expect_used)]
    let run = *masks.iter().min().expect("diagonal kernel needs targets");
    let body = |offset: usize, chunk: &mut [C64]| {
        for (r, block) in chunk.chunks_exact_mut(run).enumerate() {
            let start = offset + r * run;
            let mut local = 0usize;
            for (j, &mask) in masks.iter().enumerate() {
                if start & mask != 0 {
                    local |= 1 << (k - 1 - j);
                }
            }
            let d = diag[local];
            if d == C64::ONE {
                continue;
            }
            if d.im == 0.0 {
                let s = d.re;
                for a in block.iter_mut() {
                    *a = C64::new(a.re * s, a.im * s);
                }
            } else {
                for a in block.iter_mut() {
                    *a *= d;
                }
            }
        }
    };
    if amps.len() < PAR_MIN_LEN || qdp_par::max_threads() < 2 {
        body(0, amps);
    } else {
        qdp_par::par_chunks_mut(amps, run, body);
    }
}

// ---------------------------------------------------------------------------
// General k ≥ 3
// ---------------------------------------------------------------------------

fn apply_kq(amps: &mut [C64], n: usize, m: &Matrix, targets: &[usize]) {
    let k = targets.len();
    let dim_local = 1usize << k;
    let masks: Vec<usize> = targets.iter().map(|&t| 1usize << qubit_bit(n, t)).collect();

    // Offsets of each local basis state within the full index.
    let mut offsets = vec![0usize; dim_local];
    for (a, off) in offsets.iter_mut().enumerate() {
        for (j, mask) in masks.iter().enumerate() {
            if a & (1 << (k - 1 - j)) != 0 {
                *off |= mask;
            }
        }
    }

    // Sorted target bit positions for the bit-deposit base enumeration.
    let mut bits: Vec<usize> = masks.iter().map(|m| m.trailing_zeros() as usize).collect();
    bits.sort_unstable();

    let md = m.as_slice();
    let mut scratch = vec![C64::ZERO; dim_local];
    let n_bases = 1usize << (n - k);
    for i in 0..n_bases {
        let base = deposit_zeros(i, &bits);
        for (slot, &off) in scratch.iter_mut().zip(offsets.iter()) {
            *slot = amps[base | off];
        }
        for (a, &off) in offsets.iter().enumerate() {
            let row = a * dim_local;
            let mut acc = C64::ZERO;
            for (b, &sb) in scratch.iter().enumerate() {
                acc = acc.mul_add(md[row + b], sb);
            }
            amps[base | off] = acc;
        }
    }
}

// ---------------------------------------------------------------------------
// Split-plane (SoA) kernels
// ---------------------------------------------------------------------------
//
// PR 7 moved `StateVector`/`BatchedStates` to a split-plane layout: the real
// and imaginary components live in two separate contiguous `f64` planes
// instead of an interleaved `Vec<C64>`. The kernels below are *structural
// transcriptions* of the AoS kernels above — every orbit is loaded into
// `C64` temporaries, transformed by the **same** `C64` expressions, and
// stored back — so bitwise agreement with the AoS path is by construction,
// not by accident. What changes is the memory shape: after inlining, LLVM
// sees plain scalar loops over four contiguous `f64` streams (lo-re, lo-im,
// hi-re, hi-im) with provably disjoint `&mut` slices, which is exactly the
// shape its loop vectorizer turns into 4-wide AVX2 code (see
// `.cargo/config.toml`). The AoS kernels stay as the cross-layout oracle;
// `layout_differential.rs` pins the two layouts against each other.

/// Loads amplitude `i` from split planes.
#[inline(always)]
fn ld(re: &[f64], im: &[f64], i: usize) -> C64 {
    C64::new(re[i], im[i])
}

/// Stores amplitude `i` into split planes.
#[inline(always)]
fn st(re: &mut [f64], im: &mut [f64], i: usize, z: C64) {
    re[i] = z.re;
    im[i] = z.im;
}

/// Gathers split planes into an interleaved AoS copy.
pub fn planes_to_aos(re: &[f64], im: &[f64]) -> Vec<C64> {
    debug_assert_eq!(re.len(), im.len(), "re/im planes must have equal lengths");
    re.iter().zip(im.iter()).map(|(&r, &i)| C64::new(r, i)).collect()
}

/// Scatters an interleaved AoS slice into split planes.
///
/// # Panics
///
/// Panics when the lengths disagree.
pub fn aos_to_planes(amps: &[C64], re: &mut [f64], im: &mut [f64]) {
    assert!(
        amps.len() == re.len() && amps.len() == im.len(),
        "plane lengths must match the amplitude count"
    );
    for (i, a) in amps.iter().enumerate() {
        re[i] = a.re;
        im[i] = a.im;
    }
}

fn validate_planes(re: &[f64], im: &[f64], n: usize, m: &Matrix, targets: &[usize]) {
    assert_eq!(re.len(), im.len(), "re/im planes must have equal lengths");
    let k = targets.len();
    assert!(m.rows() == 1 << k && m.cols() == 1 << k, "operator dimension must be 2^{k}");
    assert_eq!(re.len(), 1 << n, "amplitude array must have length 2^{n}");
    for (i, t) in targets.iter().enumerate() {
        assert!(*t < n, "target {t} out of range for {n} qubits");
        for u in &targets[i + 1..] {
            assert_ne!(t, u, "duplicate target qubit {t}");
        }
    }
}

/// Split-plane twin of [`apply_matrix`]: applies a `2ᵏ × 2ᵏ` operator on
/// `targets` to amplitudes stored as separate `re`/`im` planes.
///
/// Performs the identical floating-point operations per amplitude as
/// [`apply_matrix`] on the interleaved layout — results agree bit for bit,
/// under any thread count (the parallel splits mirror the AoS ones).
///
/// # Panics
///
/// Panics when dimensions are inconsistent, plane lengths differ, or
/// targets repeat.
pub fn apply_matrix_planes(re: &mut [f64], im: &mut [f64], n: usize, m: &Matrix, targets: &[usize]) {
    validate_planes(re, im, n, m, targets);
    if reference_kernels_enabled() {
        // The oracle stays AoS on purpose: gather, run the reference scan,
        // scatter — a cross-layout round trip every reference-mode caller
        // exercises for free.
        let mut amps = planes_to_aos(re, im);
        apply_matrix_reference_unchecked(&mut amps, n, m, targets);
        aos_to_planes(&amps, re, im);
        return;
    }
    match *targets {
        [t] => apply_1q_planes(re, im, n, m, t),
        [t0, t1] => apply_2q_planes(re, im, n, m, t0, t1),
        _ => apply_kq_planes(re, im, n, m, targets),
    }
}

fn apply_1q_planes(re: &mut [f64], im: &mut [f64], n: usize, m: &Matrix, t: usize) {
    let md = m.as_slice();
    let (m00, m01, m10, m11) = (md[0], md[1], md[2], md[3]);
    let mask = 1usize << qubit_bit(n, t);

    if m01 == C64::ZERO && m10 == C64::ZERO {
        apply_diag_planes(re, im, &[mask], &[m00, m11]);
        return;
    }

    // Explicit SIMD tier for the dense contiguous-run and `mask = 1`
    // orbits (see `crate::simd` for the bitwise-oracle contract).
    // `mask == 2` is deliberately left to the scalar kernel: its
    // two-element runs are too short for full vectors and the stride-2
    // deinterleave shape does not apply.
    let tier = simd::active_tier();
    if tier != SimdTier::Scalar && mask != 2 {
        let g = [m00, m01, m10, m11];
        let chain = simd::classify_1q(&g, true);
        apply_1q_dense_simd(re, im, mask, &g, chain, tier);
        return;
    }

    // Same real/generic split as `apply_1q`, with the per-orbit arithmetic
    // transcribed onto raw plane scalars. The expressions below perform the
    // identical floating-point operations (same order, same associativity,
    // leading `0.0 +` terms of the `C64::mul_add` chain included) as the
    // `C64` closures in `apply_1q` — results agree bit for bit. Passing
    // scalars instead of `C64` aggregates is what lets LLVM keep the four
    // streams in vector registers: the struct round trip defeated the SLP
    // vectorizer and cost ~2× on cache-resident strided orbits.
    // The closures capture the coefficients **by value** (`move`): captured
    // by reference, every loop iteration reloads them through a double
    // indirection the alias analysis cannot hoist past the plane stores,
    // which costs ~3× on cache-resident orbits.
    if m00.im == 0.0 && m01.im == 0.0 && m10.im == 0.0 && m11.im == 0.0 {
        let (r00, r01, r10, r11) = (m00.re, m01.re, m10.re, m11.re);
        apply_1q_with_planes(re, im, mask, move |a0r, a0i, a1r, a1i| {
            (
                r00 * a0r + r01 * a1r,
                r00 * a0i + r01 * a1i,
                r10 * a0r + r11 * a1r,
                r10 * a0i + r11 * a1i,
            )
        });
    } else {
        apply_1q_with_planes(re, im, mask, move |a0r, a0i, a1r, a1i| {
            complex_pair(m00, m01, m10, m11, a0r, a0i, a1r, a1i)
        });
    }
}

/// The generic-complex orbit update `(g_row0 · a, g_row1 · a)` on raw plane
/// scalars: the exact floating-point operation sequence of
/// `C64::ZERO.mul_add(g00, a0).mul_add(g01, a1)` (and the second row),
/// leading `0.0 +` terms included — `0.0 + x` flushes a negative-zero `x`
/// to `+0.0`, so folding it away would change bits.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub(crate) fn complex_pair(
    g00: C64,
    g01: C64,
    g10: C64,
    g11: C64,
    a0r: f64,
    a0i: f64,
    a1r: f64,
    a1i: f64,
) -> (f64, f64, f64, f64) {
    let s0r = (0.0 + g00.re * a0r) - g00.im * a0i;
    let s0i = (0.0 + g00.re * a0i) + g00.im * a0r;
    let lor = (s0r + g01.re * a1r) - g01.im * a1i;
    let loi = (s0i + g01.re * a1i) + g01.im * a1r;
    let s1r = (0.0 + g10.re * a0r) - g10.im * a0i;
    let s1i = (0.0 + g10.re * a0i) + g10.im * a0r;
    let hir = (s1r + g11.re * a1r) - g11.im * a1i;
    let hii = (s1i + g11.re * a1i) + g11.im * a1r;
    (lor, loi, hir, hii)
}

/// Plane twin of [`apply_1q_with`]. The inner loop runs over four disjoint
/// `&mut [f64]` streams obtained by `split_at_mut`, which is the
/// noalias-friendly shape the autovectorizer needs. The orbit callback
/// takes and returns **raw scalars** (`a0.re, a0.im, a1.re, a1.im`), never
/// `C64` values: aggregate formation in the hot loop blocks SLP
/// vectorization of the four streams.
fn apply_1q_with_planes(
    re: &mut [f64],
    im: &mut [f64],
    mask: usize,
    pair: impl Fn(f64, f64, f64, f64) -> (f64, f64, f64, f64) + Copy + Sync,
) {
    // The sweep is a by-value `#[inline(always)]` helper rather than a
    // shared closure: a closure used by both the serial and the parallel
    // dispatch gets outlined, and the outlined copy re-reads the gate
    // coefficients through a captured reference on every orbit — the alias
    // analysis cannot hoist those loads past the plane stores. Inlining a
    // `Copy` closure at each call site keeps the coefficients in registers.
    #[inline(always)]
    fn sweep(
        cre: &mut [f64],
        cim: &mut [f64],
        mask: usize,
        pair: impl Fn(f64, f64, f64, f64) -> (f64, f64, f64, f64) + Copy,
    ) {
        let align = mask << 1;
        for (bre, bim) in cre.chunks_exact_mut(align).zip(cim.chunks_exact_mut(align)) {
            let (lre, hre) = bre.split_at_mut(mask);
            let (lim, him) = bim.split_at_mut(mask);
            for i in 0..mask {
                let (lr, li, hr, hi) = pair(lre[i], lim[i], hre[i], him[i]);
                lre[i] = lr;
                lim[i] = li;
                hre[i] = hr;
                him[i] = hi;
            }
        }
    }
    let align = mask << 1;
    if re.len() < PAR_MIN_LEN || qdp_par::max_threads() < 2 {
        sweep(re, im, mask, pair);
        return;
    }
    if re.len() / align < 2 {
        // `mask` is the top bit: the two orbit halves are contiguous; zip
        // all four streams in lockstep.
        let (lre, hre) = re.split_at_mut(mask);
        let (lim, him) = im.split_at_mut(mask);
        qdp_par::par_zip4_chunks_mut(lre, lim, hre, him, move |lr, li, hr, hi| {
            for i in 0..lr.len() {
                let (ar, ai, br, bi) = pair(lr[i], li[i], hr[i], hi[i]);
                lr[i] = ar;
                li[i] = ai;
                hr[i] = br;
                hi[i] = bi;
            }
        });
        return;
    }
    qdp_par::par_chunks2_mut(re, im, align, move |_, cre, cim| sweep(cre, cim, mask, pair));
}

/// SIMD twin of [`apply_1q_with_planes`]: the identical serial / top-bit /
/// aligned-chunk parallel split (chunk boundaries are invisible to these
/// elementwise kernels, so any split produces the same bits), with the
/// inner sweeps dispatched to the `crate::simd` tier kernels.
fn apply_1q_dense_simd(
    re: &mut [f64],
    im: &mut [f64],
    mask: usize,
    g: &[C64; 4],
    chain: Chain1q,
    tier: SimdTier,
) {
    let g = *g;
    let align = mask << 1;
    if re.len() < PAR_MIN_LEN || qdp_par::max_threads() < 2 {
        simd::sweep_1q(tier, re, im, mask, &g, chain);
        return;
    }
    if re.len() / align < 2 {
        // `mask` is the top bit: the two orbit halves are contiguous; zip
        // all four streams in lockstep.
        let (lre, hre) = re.split_at_mut(mask);
        let (lim, him) = im.split_at_mut(mask);
        qdp_par::par_zip4_chunks_mut(lre, lim, hre, him, move |lr, li, hr, hi| {
            simd::run_1q(tier, lr, li, hr, hi, &g, chain);
        });
        return;
    }
    qdp_par::par_chunks2_mut(re, im, align, move |_, cre, cim| {
        simd::sweep_1q(tier, cre, cim, mask, &g, chain)
    });
}

fn apply_2q_planes(re: &mut [f64], im: &mut [f64], n: usize, m: &Matrix, t0: usize, t1: usize) {
    let md = m.as_slice();
    let mut mm = [C64::ZERO; 16];
    mm.copy_from_slice(md);
    let mask0 = 1usize << qubit_bit(n, t0); // most significant local bit
    let mask1 = 1usize << qubit_bit(n, t1);

    let diagonal = (0..4).all(|a| (0..4).all(|b| a == b || mm[4 * a + b] == C64::ZERO));
    if diagonal {
        apply_diag_planes(re, im, &[mask0, mask1], &[mm[0], mm[5], mm[10], mm[15]]);
        return;
    }

    let block_diagonal = mm[2] == C64::ZERO
        && mm[3] == C64::ZERO
        && mm[6] == C64::ZERO
        && mm[7] == C64::ZERO
        && mm[8] == C64::ZERO
        && mm[9] == C64::ZERO
        && mm[12] == C64::ZERO
        && mm[13] == C64::ZERO;
    if block_diagonal {
        apply_blockdiag_ctrl_planes(
            re,
            im,
            mask0,
            mask1,
            [mm[0], mm[1], mm[4], mm[5]],
            [mm[10], mm[11], mm[14], mm[15]],
        );
        return;
    }

    let (b_lo, b_hi) = if mask0 < mask1 {
        (mask0.trailing_zeros() as usize, mask1.trailing_zeros() as usize)
    } else {
        (mask1.trailing_zeros() as usize, mask0.trailing_zeros() as usize)
    };
    let low = (1usize << b_lo) - 1;
    let mid = (1usize << b_hi) - 1;
    let off = [0usize, mask1, mask0, mask0 | mask1];

    let quarter = re.len() >> 2;
    let body = |cre: &mut [f64], cim: &mut [f64], start: usize, end: usize, shift: usize| {
        for i in start..end {
            let x = ((i & !low) << 1) | (i & low);
            let base = (((x & !mid) << 1) | (x & mid)) - shift;
            let s = [
                ld(cre, cim, base | off[0]),
                ld(cre, cim, base | off[1]),
                ld(cre, cim, base | off[2]),
                ld(cre, cim, base | off[3]),
            ];
            for (a, &o) in off.iter().enumerate() {
                let row = 4 * a;
                let z = C64::ZERO
                    .mul_add(mm[row], s[0])
                    .mul_add(mm[row + 1], s[1])
                    .mul_add(mm[row + 2], s[2])
                    .mul_add(mm[row + 3], s[3]);
                st(cre, cim, base | o, z);
            }
        }
    };

    // Chunked-run SIMD treatment (ROADMAP item-1 follow-up): consecutive
    // base indices below bit `b_lo` are contiguous — `deposit` inserts its
    // zeros above them — so the base enumeration proceeds in runs of
    // `2^b_lo` and each run feeds the vector kernel four contiguous
    // streams at `base + off[..]`. Runs never span parallel chunks: chunk
    // starts are multiples of `2^(b_hi-1) >= 2^b_lo` quarter-indices.
    // `b_lo < 2` runs are too short for vectors and stay scalar.
    let tier = simd::active_tier();
    let simd_runs = tier != SimdTier::Scalar && b_lo >= 2;
    let run_len = 1usize << b_lo;
    let simd_body = move |cre: &mut [f64], cim: &mut [f64], start: usize, end: usize, shift: usize| {
        let mut i = start;
        while i < end {
            let x = ((i & !low) << 1) | (i & low);
            let base = (((x & !mid) << 1) | (x & mid)) - shift;
            simd::run_2q(tier, cre, cim, base, &off, &mm, run_len);
            i += run_len;
        }
    };

    let align = 1usize << (b_hi + 1);
    if re.len() >= PAR_MIN_LEN && qdp_par::max_threads() > 1 && re.len() / align >= 2 {
        qdp_par::par_chunks2_mut(re, im, align, |offset, cre, cim| {
            let first = offset >> 2;
            if simd_runs {
                simd_body(cre, cim, first, first + (cre.len() >> 2), offset);
            } else {
                body(cre, cim, first, first + (cre.len() >> 2), offset);
            }
        });
        return;
    }
    if simd_runs {
        simd_body(re, im, 0, quarter, 0);
    } else {
        body(re, im, 0, quarter, 0);
    }
}

/// Plane twin of [`apply_blockdiag_ctrl`], restructured into contiguous
/// orbit **runs** (like [`apply_1q_with_planes`]) instead of per-orbit
/// index arithmetic: the target bit splits each `2·tmask` block into
/// lo/hi halves, and the control bit selects whole blocks (`cmask >
/// tmask`) or aligned `cmask`-length runs inside the halves (`cmask <
/// tmask`) — every inner loop is a branch-free vectorizable sweep. The
/// per-orbit arithmetic is [`complex_pair`], the exact transcription of
/// the `C64::mul_add` chain the AoS kernel applies; orbits are
/// independent, so the changed visit order cannot change any bits.
fn apply_blockdiag_ctrl_planes(
    re: &mut [f64],
    im: &mut [f64],
    cmask: usize,
    tmask: usize,
    a: [C64; 4],
    b: [C64; 4],
) {
    let identity_a = a[0] == C64::ONE && a[1] == C64::ZERO && a[2] == C64::ZERO && a[3] == C64::ONE;
    let align = (cmask.max(tmask)) << 1;
    let tier = simd::active_tier();

    // `tmask == 1`: every orbit is a stride-2 pair, i.e. the `mask = 1`
    // deinterleave-kernel shape, with the control bit constant over
    // alternating `cmask`-length segments. Route whole chunks through the
    // SIMD segment sweep (chunks are `2·cmask`-aligned either way).
    if tmask == 1 && tier != SimdTier::Scalar {
        let body = move |_: usize, cre: &mut [f64], cim: &mut [f64]| {
            simd::sweep_blockdiag_t1(tier, cre, cim, cmask, &a, &b, identity_a);
        };
        if re.len() < PAR_MIN_LEN || qdp_par::max_threads() < 2 {
            body(0, re, im);
        } else {
            qdp_par::par_chunks2_mut(re, im, align, body);
        }
        return;
    }

    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn run(
        g: &[C64; 4],
        lre: &mut [f64],
        lim: &mut [f64],
        hre: &mut [f64],
        him: &mut [f64],
        start: usize,
        len: usize,
    ) {
        for i in start..start + len {
            let (lr, li, hr, hi) =
                complex_pair(g[0], g[1], g[2], g[3], lre[i], lim[i], hre[i], him[i]);
            lre[i] = lr;
            lim[i] = li;
            hre[i] = hr;
            him[i] = hi;
        }
    }

    // Every control-selected segment in the general path has the same
    // loop-invariant length — `tmask` when the control sits above the
    // target, `cmask` otherwise — so decide once, outside the sweep,
    // whether segments go through the SIMD contiguous-run kernel or the
    // inline scalar loop. Keeping the choice out of the per-segment path
    // matters twice over: short segments (e.g. a CNOT whose target sits
    // near the low bit) cannot amortize the non-inlinable
    // `#[target_feature]` call, and a tier branch *inside* the hot loop
    // pessimizes the scalar body's own codegen. The scalar block-diagonal
    // kernel has no real fast path, so chains are classified with
    // `allow_real = false`.
    let seg_len = tmask.min(cmask);
    let use_simd = tier != SimdTier::Scalar && seg_len >= 32;

    let body = |offset: usize, cre: &mut [f64], cim: &mut [f64]| {
        let tb = tmask << 1;
        for (r, (bre, bim)) in
            cre.chunks_exact_mut(tb).zip(cim.chunks_exact_mut(tb)).enumerate()
        {
            let bstart = offset + r * tb;
            let (lre, hre) = bre.split_at_mut(tmask);
            let (lim, him) = bim.split_at_mut(tmask);
            if cmask > tmask {
                // The control bit is constant across this block.
                if bstart & cmask != 0 {
                    run(&b, lre, lim, hre, him, 0, tmask);
                } else if !identity_a {
                    run(&a, lre, lim, hre, him, 0, tmask);
                }
            } else {
                // `bstart` is `2·tmask`-aligned and `cmask < tmask`, so the
                // control bit of orbit `i` is `i & cmask`: control-set
                // orbits form `cmask`-length runs at odd multiples.
                let mut i = cmask;
                while i < tmask {
                    run(&b, lre, lim, hre, him, i, cmask);
                    i += cmask << 1;
                }
                if !identity_a {
                    let mut i = 0;
                    while i < tmask {
                        run(&a, lre, lim, hre, him, i, cmask);
                        i += cmask << 1;
                    }
                }
            }
        }
    };

    let chain_a = simd::classify_1q(&a, false);
    let chain_b = simd::classify_1q(&b, false);
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn seg_simd(
        tier: SimdTier,
        chain: Chain1q,
        g: &[C64; 4],
        lre: &mut [f64],
        lim: &mut [f64],
        hre: &mut [f64],
        him: &mut [f64],
        start: usize,
        len: usize,
    ) {
        let end = start + len;
        simd::run_1q(
            tier,
            &mut lre[start..end],
            &mut lim[start..end],
            &mut hre[start..end],
            &mut him[start..end],
            g,
            chain,
        );
    }
    let body_simd = |offset: usize, cre: &mut [f64], cim: &mut [f64]| {
        let tb = tmask << 1;
        for (r, (bre, bim)) in
            cre.chunks_exact_mut(tb).zip(cim.chunks_exact_mut(tb)).enumerate()
        {
            let bstart = offset + r * tb;
            let (lre, hre) = bre.split_at_mut(tmask);
            let (lim, him) = bim.split_at_mut(tmask);
            if cmask > tmask {
                // The control bit is constant across this block.
                if bstart & cmask != 0 {
                    seg_simd(tier, chain_b, &b, lre, lim, hre, him, 0, tmask);
                } else if !identity_a {
                    seg_simd(tier, chain_a, &a, lre, lim, hre, him, 0, tmask);
                }
            } else {
                // Same orbit structure as the scalar body above.
                let mut i = cmask;
                while i < tmask {
                    seg_simd(tier, chain_b, &b, lre, lim, hre, him, i, cmask);
                    i += cmask << 1;
                }
                if !identity_a {
                    let mut i = 0;
                    while i < tmask {
                        seg_simd(tier, chain_a, &a, lre, lim, hre, him, i, cmask);
                        i += cmask << 1;
                    }
                }
            }
        }
    };

    if re.len() < PAR_MIN_LEN || qdp_par::max_threads() < 2 {
        if use_simd {
            body_simd(0, re, im);
        } else {
            body(0, re, im);
        }
    } else if use_simd {
        qdp_par::par_chunks2_mut(re, im, align, body_simd);
    } else {
        qdp_par::par_chunks2_mut(re, im, align, body);
    }
}

/// Plane twin of [`apply_diag`]: identity runs are skipped, real diagonal
/// entries scale each plane with one multiply per component — a loop the
/// vectorizer turns into two contiguous streaming multiplies.
fn apply_diag_planes(re: &mut [f64], im: &mut [f64], masks: &[usize], diag: &[C64]) {
    if diag.iter().all(|&d| d == C64::ONE) {
        return; // identity: nothing to do
    }
    let k = masks.len();
    // Infallible: diagonal kernels are only built for k ≥ 1 targets.
    #[allow(clippy::expect_used)]
    let run = *masks.iter().min().expect("diagonal kernel needs targets");

    // Per-run multiply with the entry's real/complex split — the same
    // arithmetic, element order, and identity-run skip as the generic body
    // below, shared by the single-target fast path.
    #[inline(always)]
    fn scale_run(re: &mut [f64], im: &mut [f64], d: C64) {
        if d == C64::ONE {
            return;
        }
        if d.im == 0.0 {
            let s = d.re;
            for (ar, ai) in re.iter_mut().zip(im.iter_mut()) {
                *ar *= s;
                *ai *= s;
            }
        } else {
            let (dr, di) = (d.re, d.im);
            for (ar, ai) in re.iter_mut().zip(im.iter_mut()) {
                let (r0, i0) = (*ar, *ai);
                *ar = r0 * dr - i0 * di;
                *ai = r0 * di + i0 * dr;
            }
        }
    }

    if k == 1 {
        // Single target: the plane alternates `run`-length d₀/d₁ blocks, so
        // both entries hoist out of the sweep — no per-run outcome-index
        // computation or entry reload (which dominates at small `run`).
        let (d0, d1) = (diag[0], diag[1]);
        // `run == 1` is the stride-2 `mask = 1` orbit shape: the SIMD tier
        // multiplies by an interleaved `[d0, d1, …]` coefficient vector
        // when both entries sit on the same real/complex branch and
        // neither is the identity (the scalar kernel's per-entry skip).
        // Larger runs are contiguous scales the autovectorizer handles.
        let tier = simd::active_tier();
        if run == 1 && tier != SimdTier::Scalar && simd::diag1_vectorizable(d0, d1) {
            let body = move |_: usize, cre: &mut [f64], cim: &mut [f64]| {
                simd::sweep_diag1(tier, cre, cim, d0, d1);
            };
            if re.len() < PAR_MIN_LEN || qdp_par::max_threads() < 2 {
                body(0, re, im);
            } else {
                qdp_par::par_chunks2_mut(re, im, 2, body);
            }
            return;
        }
        let body = move |_: usize, cre: &mut [f64], cim: &mut [f64]| {
            let block = run << 1;
            for (bre, bim) in cre.chunks_exact_mut(block).zip(cim.chunks_exact_mut(block)) {
                let (lre, hre) = bre.split_at_mut(run);
                let (lim, him) = bim.split_at_mut(run);
                scale_run(lre, lim, d0);
                scale_run(hre, him, d1);
            }
        };
        if re.len() < PAR_MIN_LEN || qdp_par::max_threads() < 2 {
            body(0, re, im);
        } else {
            qdp_par::par_chunks2_mut(re, im, run << 1, body);
        }
        return;
    }

    let body = |offset: usize, cre: &mut [f64], cim: &mut [f64]| {
        for (r, (bre, bim)) in cre
            .chunks_exact_mut(run)
            .zip(cim.chunks_exact_mut(run))
            .enumerate()
        {
            let start = offset + r * run;
            let mut local = 0usize;
            for (j, &mask) in masks.iter().enumerate() {
                if start & mask != 0 {
                    local |= 1 << (k - 1 - j);
                }
            }
            let d = diag[local];
            if d == C64::ONE {
                continue;
            }
            if d.im == 0.0 {
                let s = d.re;
                for (ar, ai) in bre.iter_mut().zip(bim.iter_mut()) {
                    *ar *= s;
                    *ai *= s;
                }
            } else {
                // Raw-scalar transcription of `C64::new(*ar, *ai) * d` —
                // same operations, same order; forming the `C64` aggregate
                // in the loop keeps the two streams out of vector registers.
                let (dr, di) = (d.re, d.im);
                for (ar, ai) in bre.iter_mut().zip(bim.iter_mut()) {
                    let (r0, i0) = (*ar, *ai);
                    *ar = r0 * dr - i0 * di;
                    *ai = r0 * di + i0 * dr;
                }
            }
        }
    };
    if re.len() < PAR_MIN_LEN || qdp_par::max_threads() < 2 {
        body(0, re, im);
    } else {
        qdp_par::par_chunks2_mut(re, im, run, body);
    }
}

fn apply_kq_planes(re: &mut [f64], im: &mut [f64], n: usize, m: &Matrix, targets: &[usize]) {
    let k = targets.len();
    let dim_local = 1usize << k;
    let masks: Vec<usize> = targets.iter().map(|&t| 1usize << qubit_bit(n, t)).collect();

    let mut offsets = vec![0usize; dim_local];
    for (a, off) in offsets.iter_mut().enumerate() {
        for (j, mask) in masks.iter().enumerate() {
            if a & (1 << (k - 1 - j)) != 0 {
                *off |= mask;
            }
        }
    }

    let mut bits: Vec<usize> = masks.iter().map(|m| m.trailing_zeros() as usize).collect();
    bits.sort_unstable();

    let md = m.as_slice();
    let n_bases = 1usize << (n - k);

    // Chunked-run treatment (ROADMAP item-1 follow-up): base indices below
    // bit `bits[0]` pass through `deposit_zeros` unchanged, so consecutive
    // `i` under `2^bits[0]` yield consecutive bases — each run feeds the
    // vector kernel `2^k` contiguous streams at `base + offsets[..]`.
    // `k <= 5` keeps the per-run scratch inside the kernel's stack arrays;
    // shorter runs (`bits[0] < 2`) stay on the scalar path.
    let tier = simd::active_tier();
    if tier != SimdTier::Scalar && k <= 5 && bits[0] >= 2 {
        let run_len = 1usize << bits[0];
        let mut i = 0usize;
        while i < n_bases {
            let base = deposit_zeros(i, &bits);
            simd::run_kq(tier, re, im, base, &offsets, md, run_len.min(n_bases - i));
            i += run_len;
        }
        return;
    }

    let mut scratch = vec![C64::ZERO; dim_local];
    for i in 0..n_bases {
        let base = deposit_zeros(i, &bits);
        for (slot, &off) in scratch.iter_mut().zip(offsets.iter()) {
            *slot = ld(re, im, base | off);
        }
        for (a, &off) in offsets.iter().enumerate() {
            let row = a * dim_local;
            let mut acc = C64::ZERO;
            for (b, &sb) in scratch.iter().enumerate() {
                acc = acc.mul_add(md[row + b], sb);
            }
            st(re, im, base | off, acc);
        }
    }
}

// ---------------------------------------------------------------------------
// Reference implementation
// ---------------------------------------------------------------------------

/// The original full-range-scan kernel: visits every one of the `2ⁿ` indices
/// and branch-tests for base membership, gathering through [`Matrix::get`]
/// with heap scratch.
///
/// Kept as the *slow, obviously-correct* implementation that the fast paths
/// are validated against, and as the baseline the benchmarks measure
/// speedups over. Production paths never call it directly (but see
/// [`set_reference_kernels`]).
pub fn apply_matrix_reference(amps: &mut [C64], n: usize, m: &Matrix, targets: &[usize]) {
    validate(amps, n, m, targets);
    apply_matrix_reference_unchecked(amps, n, m, targets);
}

fn apply_matrix_reference_unchecked(amps: &mut [C64], n: usize, m: &Matrix, targets: &[usize]) {
    let k = targets.len();
    let dim_local = 1usize << k;
    let masks: Vec<usize> = targets.iter().map(|&t| 1usize << qubit_bit(n, t)).collect();
    let all_mask: usize = masks.iter().sum();

    let mut offsets = vec![0usize; dim_local];
    for (a, off) in offsets.iter_mut().enumerate() {
        for (j, mask) in masks.iter().enumerate() {
            if a & (1 << (k - 1 - j)) != 0 {
                *off |= mask;
            }
        }
    }

    let mut scratch = vec![C64::ZERO; dim_local];
    let full = 1usize << n;
    let mut base = 0usize;
    while base < full {
        if base & all_mask == 0 {
            for (a, &off) in offsets.iter().enumerate() {
                scratch[a] = amps[base | off];
            }
            for a in 0..dim_local {
                let mut acc = C64::ZERO;
                for (b, &sb) in scratch.iter().enumerate() {
                    acc = acc.mul_add(m.get(a, b), sb);
                }
                amps[base | offsets[a]] = acc;
            }
        }
        base += 1;
    }
}

/// Embeds a `2ᵏ × 2ᵏ` operator on `targets` into the full `2ⁿ × 2ⁿ` space.
///
/// This is the *slow, obviously-correct* lift used by tests to validate the
/// kernels; production paths never call it.
pub fn embed(n: usize, m: &Matrix, targets: &[usize]) -> Matrix {
    let k = targets.len();
    assert!(m.rows() == 1 << k && m.cols() == 1 << k);
    let full = 1usize << n;
    let masks: Vec<usize> = targets.iter().map(|&t| 1usize << qubit_bit(n, t)).collect();
    let all_mask: usize = masks.iter().sum();

    let local_index = |full_index: usize| -> usize {
        let mut a = 0usize;
        for (j, mask) in masks.iter().enumerate() {
            if full_index & mask != 0 {
                a |= 1 << (k - 1 - j);
            }
        }
        a
    };

    let mut out = Matrix::zeros(full, full);
    for i in 0..full {
        for j in 0..full {
            if (i & !all_mask) == (j & !all_mask) {
                out.set(i, j, m.get(local_index(i), local_index(j)));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdp_linalg::CVector;

    fn rand_amps(n: usize, seed: u64) -> Vec<C64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        (0..1usize << n).map(|_| C64::new(next(), next())).collect()
    }

    #[test]
    fn single_qubit_kernel_matches_embed() {
        let h = Matrix::hadamard();
        for n in 1..=4usize {
            for t in 0..n {
                let mut amps = rand_amps(n, (n * 10 + t) as u64);
                let expected = embed(n, &h, &[t]).mul_vec(&CVector::new(amps.clone()));
                apply_matrix(&mut amps, n, &h, &[t]);
                assert!(CVector::new(amps).approx_eq(&expected, 1e-12), "n={n} t={t}");
            }
        }
    }

    #[test]
    fn two_qubit_kernel_matches_embed() {
        let cnot = Matrix::cnot();
        for n in 2..=4usize {
            for t0 in 0..n {
                for t1 in 0..n {
                    if t0 == t1 {
                        continue;
                    }
                    let mut amps = rand_amps(n, (n * 100 + t0 * 10 + t1) as u64);
                    let expected =
                        embed(n, &cnot, &[t0, t1]).mul_vec(&CVector::new(amps.clone()));
                    apply_matrix(&mut amps, n, &cnot, &[t0, t1]);
                    assert!(
                        CVector::new(amps).approx_eq(&expected, 1e-12),
                        "n={n} targets=({t0},{t1})"
                    );
                }
            }
        }
    }

    #[test]
    fn dense_two_qubit_kernel_matches_embed() {
        // A dense (non-controlled, non-diagonal) 4×4: RXX-style rotation.
        let sigma2 = Matrix::pauli_x().kron(&Matrix::pauli_x());
        let rxx = Matrix::rotation_from_involution(&sigma2, 0.83);
        for n in 2..=5usize {
            for t0 in 0..n {
                for t1 in 0..n {
                    if t0 == t1 {
                        continue;
                    }
                    let mut amps = rand_amps(n, (n * 100 + t0 * 10 + t1) as u64 ^ 0xFACE);
                    let expected =
                        embed(n, &rxx, &[t0, t1]).mul_vec(&CVector::new(amps.clone()));
                    apply_matrix(&mut amps, n, &rxx, &[t0, t1]);
                    assert!(
                        CVector::new(amps).approx_eq(&expected, 1e-12),
                        "n={n} targets=({t0},{t1})"
                    );
                }
            }
        }
    }

    #[test]
    fn diagonal_fast_path_matches_embed() {
        let rz = Matrix::rotation_from_involution(&Matrix::pauli_z(), 0.6);
        let cz = Matrix::diagonal(&[C64::ONE, C64::ONE, C64::ONE, -C64::ONE]);
        for n in 2..=4usize {
            for t in 0..n {
                let mut amps = rand_amps(n, (77 + n * 10 + t) as u64);
                let expected = embed(n, &rz, &[t]).mul_vec(&CVector::new(amps.clone()));
                apply_matrix(&mut amps, n, &rz, &[t]);
                assert!(CVector::new(amps).approx_eq(&expected, 1e-12), "rz n={n} t={t}");
            }
            let mut amps = rand_amps(n, 99 + n as u64);
            let expected = embed(n, &cz, &[0, n - 1]).mul_vec(&CVector::new(amps.clone()));
            apply_matrix(&mut amps, n, &cz, &[0, n - 1]);
            assert!(CVector::new(amps).approx_eq(&expected, 1e-12), "cz n={n}");
        }
    }

    #[test]
    fn three_qubit_kernel_matches_embed() {
        // An 8×8 operator (Toffoli-like permutation) on scattered targets.
        let mut toffoli = Matrix::identity(8);
        toffoli.set(6, 6, C64::ZERO);
        toffoli.set(7, 7, C64::ZERO);
        toffoli.set(6, 7, C64::ONE);
        toffoli.set(7, 6, C64::ONE);
        for (n, targets) in [(3usize, vec![0usize, 1, 2]), (4, vec![3, 0, 2]), (5, vec![4, 1, 3])] {
            let mut amps = rand_amps(n, 7 * n as u64);
            let expected = embed(n, &toffoli, &targets).mul_vec(&CVector::new(amps.clone()));
            apply_matrix(&mut amps, n, &toffoli, &targets);
            assert!(
                CVector::new(amps).approx_eq(&expected, 1e-12),
                "n={n} targets={targets:?}"
            );
        }
    }

    #[test]
    fn target_order_is_significant() {
        // CNOT with control q1 / target q0 differs from control q0 / target q1.
        let cnot = Matrix::cnot();
        let mut a = vec![C64::ZERO; 4];
        a[1] = C64::ONE; // |01⟩: q0=0, q1=1
        apply_matrix(&mut a, 2, &cnot, &[1, 0]); // control q1 → flips q0
        assert!(a[3].approx_eq(C64::ONE, 1e-15)); // |11⟩
    }

    #[test]
    fn left_right_mul_match_matrix_products() {
        let n = 2usize;
        let dim = 1 << n;
        let rho_data = rand_amps(2 * n, 99);
        let rho = Matrix::from_data(dim, dim, rho_data.clone());
        let u = Matrix::hadamard();
        for t in 0..n {
            let lifted = embed(n, &u, &[t]);

            let mut left = rho_data.clone();
            left_mul(&mut left, n, &u, &[t]);
            let expected = lifted.mul(&rho);
            assert!(Matrix::from_data(dim, dim, left).approx_eq(&expected, 1e-12));

            let mut right = rho_data.clone();
            right_mul(&mut right, n, &u, &[t]);
            let expected = rho.mul(&lifted);
            assert!(Matrix::from_data(dim, dim, right).approx_eq(&expected, 1e-12));
        }
    }

    #[test]
    fn right_mul_transposed_matches_right_mul() {
        let n = 3usize;
        let rho_data = rand_amps(2 * n, 1234);
        let u = Matrix::rotation_from_involution(&Matrix::pauli_y(), 1.1);
        for t in 0..n {
            let mut a = rho_data.clone();
            right_mul(&mut a, n, &u, &[t]);
            let mut b = rho_data.clone();
            right_mul_transposed(&mut b, n, &u.transpose(), &[t]);
            assert_eq!(a, b, "t={t}");
        }
    }

    #[test]
    fn fast_kernels_match_reference_bitwise() {
        let gates: Vec<(Matrix, Vec<usize>)> = vec![
            (Matrix::hadamard(), vec![2]),
            (Matrix::rotation_from_involution(&Matrix::pauli_z(), 0.3), vec![0]),
            (Matrix::cnot(), vec![1, 3]),
            (
                Matrix::rotation_from_involution(
                    &Matrix::pauli_y().kron(&Matrix::pauli_y()),
                    0.7,
                ),
                vec![3, 0],
            ),
        ];
        for (g, targets) in &gates {
            let amps = rand_amps(5, 42);
            let mut fast = amps.clone();
            apply_matrix(&mut fast, 5, g, targets);
            let mut slow = amps.clone();
            apply_matrix_reference(&mut slow, 5, g, targets);
            // Bit equality, not approximate: the fast paths are documented
            // to perform the identical floating-point operations as the
            // reference scan.
            assert_eq!(fast, slow, "{targets:?}");
        }
    }

    #[test]
    fn reference_mode_switch_routes_and_restores() {
        assert!(!reference_kernels_enabled());
        set_reference_kernels(true);
        assert!(reference_kernels_enabled());
        let mut amps = rand_amps(3, 5);
        let expected = {
            let mut e = amps.clone();
            apply_matrix_reference(&mut e, 3, &Matrix::hadamard(), &[1]);
            e
        };
        apply_matrix(&mut amps, 3, &Matrix::hadamard(), &[1]);
        set_reference_kernels(false);
        assert_eq!(amps, expected);
        assert!(!reference_kernels_enabled());
    }

    #[test]
    fn non_unitary_operators_apply_fine() {
        // Projector |0⟩⟨0| on qubit 1 of 2.
        let p0 = Matrix::basis_projector(2, 0);
        let mut amps = vec![C64::ONE.scale(0.5); 4];
        apply_matrix(&mut amps, 2, &p0, &[1]);
        // Amplitudes with q1=1 are killed.
        assert_eq!(amps[1], C64::ZERO);
        assert_eq!(amps[3], C64::ZERO);
        assert!(amps[0].approx_eq(C64::real(0.5), 1e-15));
    }

    fn split(amps: &[C64]) -> (Vec<f64>, Vec<f64>) {
        (amps.iter().map(|a| a.re).collect(), amps.iter().map(|a| a.im).collect())
    }

    fn assert_planes_eq(re: &[f64], im: &[f64], amps: &[C64], ctx: &str) {
        assert_eq!(re.len(), amps.len(), "{ctx}");
        for (i, a) in amps.iter().enumerate() {
            assert_eq!(re[i].to_bits(), a.re.to_bits(), "{ctx} re[{i}]");
            assert_eq!(im[i].to_bits(), a.im.to_bits(), "{ctx} im[{i}]");
        }
    }

    /// Every plane kernel shape (dense 1q, real 1q, diagonal, controlled,
    /// dense 2q, k = 3) against the AoS fast path, bit for bit.
    #[test]
    fn plane_kernels_match_aos_bitwise() {
        let mut toffoli = Matrix::identity(8);
        toffoli.set(6, 6, C64::ZERO);
        toffoli.set(7, 7, C64::ZERO);
        toffoli.set(6, 7, C64::ONE);
        toffoli.set(7, 6, C64::ONE);
        let gates: Vec<(Matrix, Vec<usize>)> = vec![
            (Matrix::hadamard(), vec![2]),
            (Matrix::rotation_from_involution(&Matrix::pauli_y(), 0.9), vec![4]),
            (Matrix::rotation_from_involution(&Matrix::pauli_x(), 1.2), vec![0]),
            (Matrix::rotation_from_involution(&Matrix::pauli_z(), 0.3), vec![0]),
            (Matrix::diagonal(&[C64::ONE, C64::ONE, C64::ONE, -C64::ONE]), vec![1, 4]),
            (Matrix::cnot(), vec![1, 3]),
            (Matrix::cnot(), vec![4, 0]),
            (
                Matrix::rotation_from_involution(
                    &Matrix::pauli_y().kron(&Matrix::pauli_y()),
                    0.7,
                ),
                vec![3, 0],
            ),
            (Matrix::basis_projector(2, 0), vec![2]),
            (toffoli, vec![4, 1, 3]),
        ];
        for (g, targets) in &gates {
            let amps = rand_amps(5, 42);
            let mut aos = amps.clone();
            apply_matrix(&mut aos, 5, g, targets);
            let (mut re, mut im) = split(&amps);
            apply_matrix_planes(&mut re, &mut im, 5, g, targets);
            assert_planes_eq(&re, &im, &aos, &format!("{targets:?}"));
        }
    }

    /// Same pin above the parallel threshold, exercising all three split
    /// strategies: aligned chunks (low target), four-stream zip (top bit),
    /// and the 2q chunked path.
    #[test]
    fn plane_kernels_match_aos_bitwise_above_parallel_threshold() {
        let n = 15; // 2^15 = 32768 ≥ PAR_MIN_LEN
        let gates: Vec<(Matrix, Vec<usize>)> = vec![
            (Matrix::hadamard(), vec![n - 1]), // low bit → aligned chunks
            (Matrix::hadamard(), vec![0]),     // top bit → zip halves
            (Matrix::rotation_from_involution(&Matrix::pauli_z(), 0.3), vec![2]),
            (Matrix::cnot(), vec![0, n - 1]),
            (
                Matrix::rotation_from_involution(
                    &Matrix::pauli_x().kron(&Matrix::pauli_x()),
                    0.5,
                ),
                vec![1, n - 2],
            ),
        ];
        for (g, targets) in &gates {
            let amps = rand_amps(n, 7);
            let mut aos = amps.clone();
            apply_matrix(&mut aos, n, g, targets);
            let (mut re, mut im) = split(&amps);
            apply_matrix_planes(&mut re, &mut im, n, g, targets);
            assert_planes_eq(&re, &im, &aos, &format!("{targets:?}"));
        }
    }

    #[test]
    fn plane_reference_mode_round_trips_through_aos_oracle() {
        let amps = rand_amps(4, 9);
        let expected = {
            let mut e = amps.clone();
            apply_matrix_reference(&mut e, 4, &Matrix::hadamard(), &[1]);
            e
        };
        let (mut re, mut im) = split(&amps);
        set_reference_kernels(true);
        apply_matrix_planes(&mut re, &mut im, 4, &Matrix::hadamard(), &[1]);
        set_reference_kernels(false);
        assert_planes_eq(&re, &im, &expected, "reference mode");
    }

    #[test]
    fn planes_aos_conversions_round_trip() {
        let amps = rand_amps(3, 11);
        let (re, im) = split(&amps);
        assert_eq!(planes_to_aos(&re, &im), amps);
        let mut re2 = vec![0.0; 8];
        let mut im2 = vec![0.0; 8];
        aos_to_planes(&amps, &mut re2, &mut im2);
        assert_eq!(re2, re);
        assert_eq!(im2, im);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn mismatched_plane_lengths_panic() {
        let mut re = vec![0.0; 4];
        let mut im = vec![0.0; 2];
        apply_matrix_planes(&mut re, &mut im, 2, &Matrix::hadamard(), &[0]);
    }

    #[test]
    #[should_panic(expected = "duplicate target")]
    fn duplicate_targets_panic_on_planes() {
        let mut re = vec![0.0; 4];
        let mut im = vec![0.0; 4];
        apply_matrix_planes(&mut re, &mut im, 2, &Matrix::cnot(), &[0, 0]);
    }

    #[test]
    #[should_panic(expected = "duplicate target")]
    fn duplicate_targets_panic() {
        let mut amps = vec![C64::ZERO; 4];
        apply_matrix(&mut amps, 2, &Matrix::cnot(), &[0, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_target_panics() {
        let mut amps = vec![C64::ZERO; 2];
        apply_matrix(&mut amps, 1, &Matrix::hadamard(), &[1]);
    }
}
