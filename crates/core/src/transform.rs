//! The code-transformation rules `∂/∂θj(·)` (Fig. 4 of the paper).
//!
//! Differentiation is *syntactic*: it maps a program `S(θ)` over variables
//! `v` to an **additive** program `∂/∂θj(S(θ))` over `v ∪ {A}`, where `A` is
//! a fresh one-qubit ancilla. The rules:
//!
//! ```text
//! (Trivial)    ∂(abort) = ∂(skip) = ∂(q:=|0⟩) = abort[v∪{A}]
//! (Trivial-U)  ∂(U(θ))  = abort[v∪{A}]                 if θj ∉ θ(U)
//! (1-qb)       ∂(q *= Rσ(θ))      = A,q *= R′σ(θ)
//! (2-qb)       ∂(q1,q2 *= Rσ⊗σ(θ)) = A,q1,q2 *= R′σ⊗σ(θ)
//! (Sequence)   ∂(S1;S2) = (S1; ∂S2) + (∂S1; S2)
//! (Case)       ∂(case … m→Sm end) = case … m→∂Sm end
//! (While)      via (Case) + (Sequence) on the macro unfolding (Eq. 3.1)
//! (S-C)        ∂(S1+S2) = ∂S1 + ∂S2
//! ```
//!
//! The gadget `R′σ(θ) ≡ A *= H; A,q *= C_Rσ(θ); A *= H` (Definition 6.1)
//! replaces the two-circuit phase-shift rule with a *single* circuit using
//! one control ancilla — the paper's key construction.

use qdp_lang::ast::{Angle, Gate, Stmt, Var};
use std::fmt;

/// Error raised by the code transformation.
///
/// Every parameterized gate of the language (`Rσ`, `Rσ⊗σ`, and their
/// iterated controlled forms) has a differentiation rule, so the only
/// failure mode is an ancilla-name collision.
#[derive(Clone, Debug, PartialEq)]
pub enum TransformError {
    /// The requested ancilla name collides with a program variable.
    AncillaCollision {
        /// The colliding name.
        ancilla: Var,
    },
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::AncillaCollision { ancilla } => {
                write!(f, "ancilla variable '{ancilla}' collides with a program variable")
            }
        }
    }
}

impl std::error::Error for TransformError {}

/// Chooses a fresh ancilla name `A_j` (for parameter `j`) avoiding the
/// program's variables — the `Aj,v` of Section 5.1.
pub fn fresh_ancilla(program: &Stmt, param: &str) -> Var {
    let vars = program.qvar();
    let mut candidate = format!("A_{param}");
    while vars.contains(&Var::new(candidate.as_str())) {
        candidate.push('\'');
    }
    Var::new(candidate)
}

/// Applies the Fig. 4 rules, producing the additive program
/// `∂/∂θ_param(stmt)` over `qvar(stmt) ∪ {ancilla}`.
///
/// # Errors
///
/// Returns [`TransformError`] when the ancilla collides with a program
/// variable or a controlled gate depends on `param`.
///
/// # Examples
///
/// ```
/// use qdp_ad::transform::{fresh_ancilla, transform};
/// use qdp_lang::parse_program;
///
/// let p = parse_program("q1 *= RX(t); q1 *= RY(t)")?;
/// let a = fresh_ancilla(&p, "t");
/// let d = transform(&p, "t", &a)?;
/// assert!(!d.is_normal()); // the Sequence rule introduced an additive choice
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn transform(stmt: &Stmt, param: &str, ancilla: &Var) -> Result<Stmt, TransformError> {
    if stmt.qvar().contains(ancilla) {
        return Err(TransformError::AncillaCollision {
            ancilla: ancilla.clone(),
        });
    }
    transform_inner(stmt, param, ancilla)
}

fn transform_inner(stmt: &Stmt, param: &str, ancilla: &Var) -> Result<Stmt, TransformError> {
    match stmt {
        // (Trivial): parameter-independent statements differentiate to abort.
        Stmt::Abort { .. } | Stmt::Skip { .. } | Stmt::Init { .. } => Ok(abort_ext(stmt, ancilla)),

        Stmt::Unitary { gate, qs } => match gate {
            // (Trivial-Unitary): the gate "trivially uses θj".
            _ if !gate.uses_param(param) => Ok(abort_ext(stmt, ancilla)),
            // (1-qb Rotation): R′σ(θ) gadget.
            Gate::Rot { axis, angle } => Ok(rprime(
                Gate::CRot {
                    controls: 1,
                    axis: *axis,
                    angle: angle.clone(),
                },
                ancilla,
                qs,
            )),
            // (2-qb Coupling): R′σ⊗σ(θ) gadget.
            Gate::Coupling { axis, angle } => Ok(rprime(
                Gate::CCoupling {
                    controls: 1,
                    axis: *axis,
                    angle: angle.clone(),
                },
                ancilla,
                qs,
            )),
            // Iterated rules (higher-order differentiation): the identity
            // d/dθ C_R(θ) = ½·C_R(θ+π) holds block-wise, so the Def. 6.1
            // gadget applies to the controlled gates themselves with one
            // more control. This is what footnote 7 of the paper sets up.
            Gate::CRot {
                controls,
                axis,
                angle,
            } => Ok(rprime(
                Gate::CRot {
                    controls: controls + 1,
                    axis: *axis,
                    angle: angle.clone(),
                },
                ancilla,
                qs,
            )),
            Gate::CCoupling {
                controls,
                axis,
                angle,
            } => Ok(rprime(
                Gate::CCoupling {
                    controls: controls + 1,
                    axis: *axis,
                    angle: angle.clone(),
                },
                ancilla,
                qs,
            )),
            // Fixed gates carry no angle and are caught by the guard above.
            Gate::H | Gate::X | Gate::Y | Gate::Z | Gate::Cnot => {
                unreachable!("fixed gates never use a parameter")
            }
        },

        // (Sequence): ∂(S1;S2) = (S1; ∂S2) + (∂S1; S2).
        Stmt::Seq(s1, s2) => {
            let d1 = transform_inner(s1, param, ancilla)?;
            let d2 = transform_inner(s2, param, ancilla)?;
            Ok(Stmt::Sum(
                Box::new(Stmt::Seq(s1.clone(), Box::new(d2))),
                Box::new(Stmt::Seq(Box::new(d1), s2.clone())),
            ))
        }

        // (Case): differentiate each arm under the same measurement.
        Stmt::Case { qs, arms } => Ok(Stmt::Case {
            qs: qs.clone(),
            arms: arms
                .iter()
                .map(|arm| transform_inner(arm, param, ancilla))
                .collect::<Result<_, _>>()?,
        }),

        // (While): a macro over case/seq (Eq. 3.1); transform the unfolding.
        Stmt::While { .. } => transform_inner(&stmt.unfold_while_once(), param, ancilla),

        // (S-C): ∂(S1+S2) = ∂S1 + ∂S2.
        Stmt::Sum(s1, s2) => Ok(Stmt::Sum(
            Box::new(transform_inner(s1, param, ancilla)?),
            Box::new(transform_inner(s2, param, ancilla)?),
        )),
    }
}

/// `abort[v ∪ {A}]` for the (Trivial) rules.
fn abort_ext(stmt: &Stmt, ancilla: &Var) -> Stmt {
    let mut vars = stmt.qvar();
    vars.insert(ancilla.clone());
    Stmt::abort(vars)
}

/// The gadget `R′(θ)[A, q̄] ≡ A *= H; A,q̄ *= C_R(θ); A *= H`
/// (Definition 6.1).
fn rprime(controlled: Gate, ancilla: &Var, qs: &[Var]) -> Stmt {
    let mut operands = Vec::with_capacity(qs.len() + 1);
    operands.push(ancilla.clone());
    operands.extend(qs.iter().cloned());
    Stmt::seq([
        Stmt::unitary(Gate::H, [ancilla.clone()]),
        Stmt::Unitary {
            gate: controlled,
            qs: operands,
        },
        Stmt::unitary(Gate::H, [ancilla.clone()]),
    ])
}

/// Convenience: returns the gadget statement `R′σ(θ)[A, q̄]` for tests and
/// documentation (Definition 6.1).
pub fn rprime_gadget(axis: qdp_linalg::Pauli, angle: Angle, ancilla: &Var, qs: &[Var]) -> Stmt {
    match qs.len() {
        1 => rprime(
            Gate::CRot {
                controls: 1,
                axis,
                angle,
            },
            ancilla,
            qs,
        ),
        2 => rprime(
            Gate::CCoupling {
                controls: 1,
                axis,
                angle,
            },
            ancilla,
            qs,
        ),
        n => panic!("R′ gadgets exist for 1- and 2-qubit rotations, got {n} operands"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdp_lang::parse_program;
    use qdp_linalg::Pauli;

    fn t(src: &str, param: &str) -> Stmt {
        let p = parse_program(src).unwrap();
        let a = fresh_ancilla(&p, param);
        transform(&p, param, &a).unwrap()
    }

    #[test]
    fn trivial_statements_become_abort() {
        for src in ["abort[q1]", "skip[q1]", "q1 := |0>"] {
            let d = t(src, "theta");
            let Stmt::Abort { qs } = d else { panic!("{src}") };
            assert!(qs.contains(&Var::new("A_theta")), "{src}");
            assert!(qs.contains(&Var::new("q1")), "{src}");
        }
    }

    #[test]
    fn unrelated_parameters_trivialize() {
        // RX(t1) differentiated w.r.t. t2 → abort (Trivial-Unitary).
        let d = t("q1 *= RX(t1)", "t2");
        assert!(matches!(d, Stmt::Abort { .. }));
    }

    #[test]
    fn rotation_becomes_rprime_gadget() {
        let d = t("q1 *= RY(t)", "t");
        // H[A]; CRY(t)[A,q1]; H[A]
        let Stmt::Seq(h1, rest) = d else { panic!() };
        assert!(matches!(*h1, Stmt::Unitary { gate: Gate::H, .. }));
        let Stmt::Seq(cr, h2) = *rest else { panic!() };
        let Stmt::Unitary { gate: Gate::CRot { axis, .. }, qs } = *cr else {
            panic!()
        };
        assert_eq!(axis, Pauli::Y);
        assert_eq!(qs, vec![Var::new("A_t"), Var::new("q1")]);
        assert!(matches!(*h2, Stmt::Unitary { gate: Gate::H, .. }));
    }

    #[test]
    fn coupling_becomes_controlled_coupling() {
        let d = t("q1, q2 *= RZZ(t)", "t");
        let Stmt::Seq(_, rest) = d else { panic!() };
        let Stmt::Seq(cr, _) = *rest else { panic!() };
        let Stmt::Unitary { gate: Gate::CCoupling { .. }, qs } = *cr else {
            panic!()
        };
        assert_eq!(qs.len(), 3);
        assert_eq!(qs[0], Var::new("A_t"));
    }

    #[test]
    fn sequence_rule_produces_sum_of_two() {
        let d = t("q1 *= RX(t); q1 *= RY(t)", "t");
        let Stmt::Sum(left, right) = d else { panic!() };
        // left = S1; ∂S2 — starts with the untouched RX.
        let Stmt::Seq(s1, _) = *left else { panic!() };
        assert!(matches!(
            *s1,
            Stmt::Unitary { gate: Gate::Rot { axis: Pauli::X, .. }, .. }
        ));
        // right = ∂S1; S2 — ends with the untouched RY.
        let Stmt::Seq(_, s2) = *right else { panic!() };
        assert!(matches!(
            *s2,
            Stmt::Unitary { gate: Gate::Rot { axis: Pauli::Y, .. }, .. }
        ));
    }

    #[test]
    fn case_rule_differentiates_each_arm() {
        let d = t(
            "case M[q1] = 0 -> q1 *= RX(t), 1 -> q1 *= RZ(t) end",
            "t",
        );
        let Stmt::Case { arms, .. } = d else { panic!() };
        assert_eq!(arms.len(), 2);
        for arm in &arms {
            // Each arm is an R′ gadget sequence.
            assert!(matches!(arm, Stmt::Seq(..)));
        }
    }

    #[test]
    fn while_transforms_via_unfolding() {
        let d = t("while[2] M[q1] = 1 do q1 *= RX(t) done", "t");
        // Unfolded form: case with ∂skip (abort) in arm 0.
        let Stmt::Case { arms, .. } = d else { panic!() };
        assert!(matches!(arms[0], Stmt::Abort { .. }));
        assert!(matches!(arms[1], Stmt::Sum(..)));
    }

    #[test]
    fn sum_rule_distributes() {
        let d = t("q1 *= RX(t) + q1 *= RY(t)", "t");
        let Stmt::Sum(a, b) = d else { panic!() };
        assert!(matches!(*a, Stmt::Seq(..)));
        assert!(matches!(*b, Stmt::Seq(..)));
    }

    #[test]
    fn ancilla_collision_detected() {
        let p = parse_program("A_t *= RX(t)").unwrap();
        let err = transform(&p, "t", &Var::new("A_t")).unwrap_err();
        assert!(matches!(err, TransformError::AncillaCollision { .. }));
        // fresh_ancilla avoids the collision automatically.
        let a = fresh_ancilla(&p, "t");
        assert_eq!(a, Var::new("A_t'"));
        assert!(transform(&p, "t", &a).is_ok());
    }

    #[test]
    fn controlled_gates_differentiate_with_one_more_control() {
        // The iterated rule: ∂(C_RX) uses a CC_RX gadget.
        let p = parse_program("a, q1 *= CRX(t)").unwrap();
        let anc = fresh_ancilla(&p, "t");
        let d = transform(&p, "t", &anc).unwrap();
        let Stmt::Seq(_, rest) = d else { panic!() };
        let Stmt::Seq(cr, _) = *rest else { panic!() };
        let Stmt::Unitary { gate, qs } = *cr else { panic!() };
        assert_eq!(gate.mnemonic(), "CCRX");
        assert_eq!(qs.len(), 3);
        assert_eq!(qs[0], anc, "new ancilla is the outermost control");
    }

    #[test]
    fn transform_preserves_parameters_of_other_names() {
        let d = t("q1 *= RX(s); q1 *= RY(t)", "t");
        // s still appears (in the S1;∂S2 component) — the untouched factor.
        assert!(d.parameters().contains("s"));
        assert!(d.parameters().contains("t"));
    }

    #[test]
    fn angle_offsets_survive_transformation() {
        let d = t("q1 *= RX(t + pi/2)", "t");
        let Stmt::Seq(_, rest) = d else { panic!() };
        let Stmt::Seq(cr, _) = *rest else { panic!() };
        let Stmt::Unitary { gate, .. } = *cr else { panic!() };
        let angle = gate.angle().unwrap();
        assert_eq!(angle.param.as_deref(), Some("t"));
        assert!((angle.offset - std::f64::consts::PI / 2.0).abs() < 1e-12);
    }
}
