//! Explicit `core::arch::x86_64` SIMD kernels under the kernel seam.
//!
//! PR 7 split the state into SoA re/im planes precisely so this layer could
//! exist; this module is the explicit-vector half of that bargain. It holds
//! hand-written AVX2+FMA and AVX-512F kernels for the hot dispatch classes
//! where the autovectorizer tops out (see ROADMAP item 1 follow-ups):
//!
//! * the dense-1q contiguous-run sweep (`run_*`/`sweep_1q`) — 4 (AVX2) or
//!   8 (AVX-512) amplitude pairs per iteration on the re/im planes;
//! * the `mask = 1` (last-qubit target) orbit (`mask1_*`) — stride-2 pair
//!   access defeats contiguous vector loads in every layout, so this kernel
//!   loads full vectors and deinterleaves in-register
//!   (`_mm256_unpacklo/hi_pd`, `_mm512_permutex2var_pd`), covering the
//!   dense, diagonal, and block-diagonal dispatch classes;
//! * the chunked-run dense 2q path and the k ≥ 3 fallback (`run_2q`,
//!   `run_kq`) — hoisted base enumeration with vector loads on the
//!   innermost contiguous runs;
//! * the `lanes.rs` |amp|² reduction accumulator (`accumulate_lanes`) —
//!   the four LANES partials ride one AVX2 register, preserving the
//!   index-partition combine tree bitwise.
//!
//! # The bitwise-oracle contract
//!
//! Every kernel here transcribes the scalar plane kernels' floating-point
//! operation sequence **intrinsic for intrinsic**: `_mm*_mul_pd` +
//! `_mm*_add_pd`/`_mm*_sub_pd` in the exact order and association of the
//! two-rounding [`qdp_linalg::C64::mul_add`] chain ([`complex_pair`] in
//! `kernels.rs`), leading `0.0 +` flush terms included. No FMA contraction
//! is performed (the `fma` target feature is enabled for the detection
//! contract, but no `vfmadd` intrinsic is emitted) — results agree **bit
//! for bit** with the scalar plane kernels and the AoS reference for every
//! input.
//!
//! The one deliberate exception is the **cross-structured chain**
//! (`Chain1q::Cross`): gates whose diagonal is real and whose off-diagonal
//! is imaginary (bit-pattern `+0.0` in the dead components — the RX/RY
//! shape) collapse the 28-operation generic chain to 16 operations by
//! dropping multiplications by those `+0.0` components. For **finite**
//! inputs this is bitwise-exact — every dropped term is a `± x*0.0 = ±0.0`
//! additive step that the leading `0.0 +` flush makes an identity — and the
//! differential suite pins it bitwise against the scalar kernels. For
//! non-finite inputs (`NaN`/`±inf` amplitudes) the dropped `0.0 * NaN`
//! terms change the result; poisoned planes are still caught by the health
//! monitor's reductions, which never use this chain. Vector-loop
//! remainders always use the exact generic chain.
//!
//! # Dispatch and fallback
//!
//! Everything sits behind runtime [`active_tier`] dispatch:
//! `is_x86_feature_detected!` picks the widest supported tier once
//! (`avx512f+avx2+fma` → [`SimdTier::Avx512`], `avx2+fma` →
//! [`SimdTier::Avx2`], else [`SimdTier::Scalar`]), capped by the
//! `QDP_SIMD` environment variable (`scalar`/`off`/`0`, `avx2`) or
//! [`set_tier_cap`]. On non-x86_64 targets and under Miri the intrinsics
//! are compiled out entirely and the tier is always `Scalar`; `kernels.rs`
//! keeps the scalar plane kernels verbatim as the portable fallback and as
//! the second oracle layer. Because every tier is bitwise-identical on
//! finite data, the tier is *not* part of the determinism contract — only
//! the thread count ever was, and it still isn't observable.
#![warn(clippy::undocumented_unsafe_blocks)]
#![allow(clippy::needless_range_loop)]

use qdp_linalg::C64;
use std::sync::atomic::{AtomicU8, Ordering};

// ---------------------------------------------------------------------------
// Runtime tier selection
// ---------------------------------------------------------------------------

/// Instruction-set tier a kernel dispatch may use. Ordered: wider tiers
/// compare greater, so `detected.min(cap)` is the active tier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum SimdTier {
    /// Portable scalar plane kernels (the PR-7 autovectorized paths).
    Scalar = 0,
    /// AVX2 + FMA: 4 × f64 lanes.
    Avx2 = 1,
    /// AVX-512F (+ AVX2 + FMA for the remainder kernels): 8 × f64 lanes.
    Avx512 = 2,
}

const TIER_UNINIT: u8 = u8::MAX;
/// Lazily detected hardware tier (`TIER_UNINIT` until first query).
static DETECTED: AtomicU8 = AtomicU8::new(TIER_UNINIT);
/// Lazily initialised cap (`QDP_SIMD` env var or [`set_tier_cap`]).
static CAP: AtomicU8 = AtomicU8::new(TIER_UNINIT);

#[inline]
fn tier_from_u8(v: u8) -> SimdTier {
    match v {
        0 => SimdTier::Scalar,
        1 => SimdTier::Avx2,
        _ => SimdTier::Avx512,
    }
}

#[cfg(all(target_arch = "x86_64", not(miri)))]
fn detect() -> SimdTier {
    if is_x86_feature_detected!("avx512f")
        && is_x86_feature_detected!("avx2")
        && is_x86_feature_detected!("fma")
    {
        SimdTier::Avx512
    } else if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
        SimdTier::Avx2
    } else {
        SimdTier::Scalar
    }
}

#[cfg(not(all(target_arch = "x86_64", not(miri))))]
fn detect() -> SimdTier {
    SimdTier::Scalar
}

/// The widest tier the running CPU supports (detected once, cached).
pub fn detected_tier() -> SimdTier {
    let v = DETECTED.load(Ordering::Relaxed);
    if v != TIER_UNINIT {
        return tier_from_u8(v);
    }
    let t = detect();
    DETECTED.store(t as u8, Ordering::Relaxed);
    t
}

fn cap_from_env() -> SimdTier {
    match std::env::var("QDP_SIMD").ok().as_deref() {
        Some("0") | Some("off") | Some("scalar") => SimdTier::Scalar,
        Some("avx2") => SimdTier::Avx2,
        _ => SimdTier::Avx512,
    }
}

/// The configured tier ceiling — `QDP_SIMD` on first query, then whatever
/// [`set_tier_cap`] last stored.
pub fn tier_cap() -> SimdTier {
    let v = CAP.load(Ordering::Relaxed);
    if v != TIER_UNINIT {
        return tier_from_u8(v);
    }
    let t = cap_from_env();
    CAP.store(t as u8, Ordering::Relaxed);
    t
}

/// Caps the active tier at `cap` (testing/bench hook; `Avx512` uncaps).
/// Safe to flip at any time from any thread: every tier produces identical
/// bits on finite data, so a mid-sweep change cannot be observed in
/// results, only in speed.
pub fn set_tier_cap(cap: SimdTier) {
    CAP.store(cap as u8, Ordering::Relaxed);
}

/// The tier kernel dispatch actually uses: `detected_tier().min(tier_cap())`.
pub fn active_tier() -> SimdTier {
    detected_tier().min(tier_cap())
}

// ---------------------------------------------------------------------------
// Chain classification
// ---------------------------------------------------------------------------

/// Which floating-point chain a 1q-style (2×2) gate runs under. Mirrors the
/// scalar dispatch in `apply_1q_planes` exactly so SIMD and scalar always
/// take the same arithmetic for the same gate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Chain1q {
    /// All four entries real (`im == 0.0`, sign ignored — the scalar
    /// real-path test): the 8-op real chain.
    Real,
    /// Real diagonal, imaginary off-diagonal, with the dead components
    /// bit-pattern `+0.0` (RX/RY shape): the reduced 16-op chain, bitwise
    /// equal to the generic chain on finite inputs (see module docs).
    Cross,
    /// The generic 28-op `complex_pair` chain.
    Full,
}

/// Classifies a 2×2 gate's chain. `allow_real` mirrors the caller's scalar
/// dispatch: the dense-1q path has a real fast path (checked **first**,
/// accepting `-0.0`), the block-diagonal path always runs `complex_pair`.
pub(crate) fn classify_1q(g: &[C64; 4], allow_real: bool) -> Chain1q {
    if allow_real && g[0].im == 0.0 && g[1].im == 0.0 && g[2].im == 0.0 && g[3].im == 0.0 {
        return Chain1q::Real;
    }
    // The Cross reduction drops `x * g.component` products, which is only
    // an identity when the dead component is exactly `+0.0` (a `-0.0`
    // factor flips the sign of a `+0.0` product and changes bits).
    if g[0].im.to_bits() == 0
        && g[3].im.to_bits() == 0
        && g[1].re.to_bits() == 0
        && g[2].re.to_bits() == 0
    {
        return Chain1q::Cross;
    }
    Chain1q::Full
}

/// Whether the k=1 `run == 1` diagonal sweep can use the interleaved
/// vector kernel: the scalar `scale_run` skips `C64::ONE` entries entirely
/// and branches real/complex per entry, so vectorizing requires neither
/// entry to be the identity and both to sit on the same branch.
pub(crate) fn diag1_vectorizable(d0: C64, d1: C64) -> bool {
    d0 != C64::ONE && d1 != C64::ONE && (d0.im == 0.0) == (d1.im == 0.0)
}

// ---------------------------------------------------------------------------
// x86_64 kernel backend
// ---------------------------------------------------------------------------

#[cfg(all(target_arch = "x86_64", not(miri)))]
mod x86 {
    use super::{Chain1q, SimdTier};
    use qdp_linalg::C64;

    /// In-register shuffles for the AVX2 width. `deint` splits two
    /// interleaved vectors `[e0 o0 e1 o1] [e2 o2 e3 o3]` into
    /// `(evens, odds)` — in the permuted-but-consistent unpack order
    /// `[e0 e2 e1 e3]`, which is harmless because every chain is
    /// elementwise — and `inter` is its exact inverse.
    mod shuf256 {
        use std::arch::x86_64::*;

        #[target_feature(enable = "avx2")]
        #[inline]
        pub(super) fn deint(v0: __m256d, v1: __m256d) -> (__m256d, __m256d) {
            (_mm256_unpacklo_pd(v0, v1), _mm256_unpackhi_pd(v0, v1))
        }

        #[target_feature(enable = "avx2")]
        #[inline]
        pub(super) fn inter(lo: __m256d, hi: __m256d) -> (__m256d, __m256d) {
            (_mm256_unpacklo_pd(lo, hi), _mm256_unpackhi_pd(lo, hi))
        }

        /// `[a, b, a, b]` — the interleaved two-coefficient pattern of the
        /// `run == 1` diagonal sweep.
        #[target_feature(enable = "avx2")]
        #[inline]
        pub(super) fn pair2(a: f64, b: f64) -> __m256d {
            _mm256_setr_pd(a, b, a, b)
        }
    }

    /// In-register shuffles for the AVX-512 width, via two-source lane
    /// permutes. Unlike the unpack order, `deint` here is index-exact
    /// (`[e0..e7]`) and `inter` restores the original interleaving.
    mod shuf512 {
        use std::arch::x86_64::*;

        #[target_feature(enable = "avx512f")]
        #[inline]
        pub(super) fn deint(v0: __m512d, v1: __m512d) -> (__m512d, __m512d) {
            let idx_even = _mm512_setr_epi64(0, 2, 4, 6, 8, 10, 12, 14);
            let idx_odd = _mm512_setr_epi64(1, 3, 5, 7, 9, 11, 13, 15);
            (
                _mm512_permutex2var_pd(v0, idx_even, v1),
                _mm512_permutex2var_pd(v0, idx_odd, v1),
            )
        }

        #[target_feature(enable = "avx512f")]
        #[inline]
        pub(super) fn inter(lo: __m512d, hi: __m512d) -> (__m512d, __m512d) {
            let idx_lo = _mm512_setr_epi64(0, 8, 1, 9, 2, 10, 3, 11);
            let idx_hi = _mm512_setr_epi64(4, 12, 5, 13, 6, 14, 7, 15);
            (
                _mm512_permutex2var_pd(lo, idx_lo, hi),
                _mm512_permutex2var_pd(lo, idx_hi, hi),
            )
        }

        /// `[a, b, a, b, a, b, a, b]`.
        #[target_feature(enable = "avx512f")]
        #[inline]
        pub(super) fn pair2(a: f64, b: f64) -> __m512d {
            _mm512_setr_pd(a, b, a, b, a, b, a, b)
        }
    }

    /// Scalar remainder kernels: raw-pointer loops running the **exact**
    /// scalar plane chains (`complex_pair` and the real chain), shared as
    /// the tail of every vector loop so remainders always carry the same
    /// bits as the scalar kernels — including for non-finite inputs, where
    /// the Cross vector body diverges (remainders never use the reduced
    /// chain).
    ///
    /// Every fn here has the contract: all `ptr.add(idx)` touched for
    /// `idx` in the documented range must be in-bounds of a live `f64`
    /// allocation the caller has exclusive access to. The safe wrappers at
    /// the bottom of this module establish that from `&mut [f64]` slices.
    mod tails {
        use crate::kernels::complex_pair;
        use qdp_linalg::C64;

        /// # Safety
        /// `lr/li/hr/hi + 0..len` must be in-bounds and mutually disjoint.
        pub(super) unsafe fn run_full(
            lr: *mut f64,
            li: *mut f64,
            hr: *mut f64,
            hi: *mut f64,
            len: usize,
            g: &[C64; 4],
        ) {
            let mut i = 0usize;
            while i < len {
                let (a, b, c, d) = complex_pair(
                    g[0],
                    g[1],
                    g[2],
                    g[3],
                    *lr.add(i),
                    *li.add(i),
                    *hr.add(i),
                    *hi.add(i),
                );
                *lr.add(i) = a;
                *li.add(i) = b;
                *hr.add(i) = c;
                *hi.add(i) = d;
                i += 1;
            }
        }

        /// # Safety
        /// `lr/li/hr/hi + 0..len` must be in-bounds and mutually disjoint.
        pub(super) unsafe fn run_real(
            lr: *mut f64,
            li: *mut f64,
            hr: *mut f64,
            hi: *mut f64,
            len: usize,
            g: &[C64; 4],
        ) {
            let (r00, r01, r10, r11) = (g[0].re, g[1].re, g[2].re, g[3].re);
            let mut i = 0usize;
            while i < len {
                let (a0r, a0i, a1r, a1i) = (*lr.add(i), *li.add(i), *hr.add(i), *hi.add(i));
                *lr.add(i) = r00 * a0r + r01 * a1r;
                *li.add(i) = r00 * a0i + r01 * a1i;
                *hr.add(i) = r10 * a0r + r11 * a1r;
                *hi.add(i) = r10 * a0i + r11 * a1i;
                i += 1;
            }
        }

        /// # Safety
        /// `pr/pi + 0..n` must be in-bounds, disjoint; `n` even.
        pub(super) unsafe fn mask1_full(pr: *mut f64, pi: *mut f64, n: usize, g: &[C64; 4]) {
            let mut idx = 0usize;
            while idx < n {
                let (a, b, c, d) = complex_pair(
                    g[0],
                    g[1],
                    g[2],
                    g[3],
                    *pr.add(idx),
                    *pi.add(idx),
                    *pr.add(idx + 1),
                    *pi.add(idx + 1),
                );
                *pr.add(idx) = a;
                *pi.add(idx) = b;
                *pr.add(idx + 1) = c;
                *pi.add(idx + 1) = d;
                idx += 2;
            }
        }

        /// # Safety
        /// `pr/pi + 0..n` must be in-bounds, disjoint; `n` even.
        pub(super) unsafe fn mask1_real(pr: *mut f64, pi: *mut f64, n: usize, g: &[C64; 4]) {
            let (r00, r01, r10, r11) = (g[0].re, g[1].re, g[2].re, g[3].re);
            let mut idx = 0usize;
            while idx < n {
                let (a0r, a0i) = (*pr.add(idx), *pi.add(idx));
                let (a1r, a1i) = (*pr.add(idx + 1), *pi.add(idx + 1));
                *pr.add(idx) = r00 * a0r + r01 * a1r;
                *pi.add(idx) = r00 * a0i + r01 * a1i;
                *pr.add(idx + 1) = r10 * a0r + r11 * a1r;
                *pi.add(idx + 1) = r10 * a0i + r11 * a1i;
                idx += 2;
            }
        }

        /// # Safety
        /// `pr/pi + 0..n` must be in-bounds, disjoint; `n` even.
        pub(super) unsafe fn diag1_real(pr: *mut f64, pi: *mut f64, n: usize, s0: f64, s1: f64) {
            let mut idx = 0usize;
            while idx < n {
                *pr.add(idx) *= s0;
                *pi.add(idx) *= s0;
                *pr.add(idx + 1) *= s1;
                *pi.add(idx + 1) *= s1;
                idx += 2;
            }
        }

        /// # Safety
        /// `pr/pi + 0..n` must be in-bounds, disjoint; `n` even.
        pub(super) unsafe fn diag1_complex(pr: *mut f64, pi: *mut f64, n: usize, d0: C64, d1: C64) {
            let mut idx = 0usize;
            while idx < n {
                let (r0, i0) = (*pr.add(idx), *pi.add(idx));
                *pr.add(idx) = r0 * d0.re - i0 * d0.im;
                *pi.add(idx) = r0 * d0.im + i0 * d0.re;
                let (r1, i1) = (*pr.add(idx + 1), *pi.add(idx + 1));
                *pr.add(idx + 1) = r1 * d1.re - i1 * d1.im;
                *pi.add(idx + 1) = r1 * d1.im + i1 * d1.re;
                idx += 2;
            }
        }

        /// Scalar transcription of the `C64::ZERO.mul_add(mm[row], s)`
        /// chain of `apply_2q_planes`, left-associated.
        ///
        /// # Safety
        /// `pr/pi + off[b] + 0..len` must be in-bounds for all `b`, with
        /// the four streams mutually disjoint.
        pub(super) unsafe fn run_2q(
            pr: *mut f64,
            pi: *mut f64,
            off: &[usize; 4],
            mm: &[C64; 16],
            len: usize,
        ) {
            for j in 0..len {
                let mut sr = [0.0f64; 4];
                let mut si = [0.0f64; 4];
                for b in 0..4 {
                    sr[b] = *pr.add(off[b] + j);
                    si[b] = *pi.add(off[b] + j);
                }
                for a in 0..4 {
                    let row = 4 * a;
                    let mut zr = 0.0f64;
                    let mut zi = 0.0f64;
                    for b in 0..4 {
                        let m = mm[row + b];
                        zr = (zr + m.re * sr[b]) - m.im * si[b];
                        zi = (zi + m.re * si[b]) + m.im * sr[b];
                    }
                    *pr.add(off[a] + j) = zr;
                    *pi.add(off[a] + j) = zi;
                }
            }
        }

        /// Scalar transcription of the `acc.mul_add(md[row + b], sb)`
        /// chain of `apply_kq_planes` (`dim = offsets.len() ≤ 32`).
        ///
        /// # Safety
        /// `pr/pi + offsets[b] + 0..len` must be in-bounds for all `b`,
        /// with the `dim` streams mutually disjoint.
        pub(super) unsafe fn run_kq(
            pr: *mut f64,
            pi: *mut f64,
            offsets: &[usize],
            md: &[C64],
            len: usize,
        ) {
            let dim = offsets.len();
            debug_assert!(dim <= 32 && md.len() == dim * dim);
            for j in 0..len {
                let mut sr = [0.0f64; 32];
                let mut si = [0.0f64; 32];
                for b in 0..dim {
                    sr[b] = *pr.add(offsets[b] + j);
                    si[b] = *pi.add(offsets[b] + j);
                }
                for a in 0..dim {
                    let row = a * dim;
                    let mut zr = 0.0f64;
                    let mut zi = 0.0f64;
                    for b in 0..dim {
                        let m = md[row + b];
                        zr = (zr + m.re * sr[b]) - m.im * si[b];
                        zi = (zi + m.re * si[b]) + m.im * sr[b];
                    }
                    *pr.add(offsets[a] + j) = zr;
                    *pi.add(offsets[a] + j) = zi;
                }
            }
        }
    }

    /// Generates one width's kernel module. `$feat` is the target-feature
    /// set, `$W` the f64 lane count, the intrinsic paths the width's
    /// arithmetic, `$shuf` the width's shuffle helpers, and `$tails` the
    /// module handling the `len % $W` vector-loop remainder — the scalar
    /// `tails` for AVX2, the AVX2 module itself for AVX-512, so remainders
    /// degrade one tier at a time and always end on the exact scalar chain.
    ///
    /// Every kernel is `# Safety`: caller must guarantee the pointer
    /// ranges documented on the matching `tails` fn **and** that the
    /// `$feat` target features are available (the safe wrappers below
    /// guarantee both).
    macro_rules! simd_width_kernels {
        ($modname:ident, $feat:literal, $W:literal,
         $set1:ident, $zero:ident, $load:ident, $store:ident,
         $add:ident, $sub:ident, $mul:ident,
         $shuf:ident, $tails:ident) => {
            mod $modname {
                use qdp_linalg::C64;
                use std::arch::x86_64::*;

                /// Generic 28-op `complex_pair` chain over one contiguous
                /// run of `len` orbit pairs at four disjoint streams.
                ///
                /// # Safety
                /// See module docs of the enclosing macro.
                #[target_feature(enable = $feat)]
                #[allow(clippy::too_many_arguments)]
                pub(in super::super) unsafe fn run_full(
                    lr: *mut f64,
                    li: *mut f64,
                    hr: *mut f64,
                    hi: *mut f64,
                    len: usize,
                    g: &[C64; 4],
                ) {
                    let g00r = $set1(g[0].re);
                    let g00i = $set1(g[0].im);
                    let g01r = $set1(g[1].re);
                    let g01i = $set1(g[1].im);
                    let g10r = $set1(g[2].re);
                    let g10i = $set1(g[2].im);
                    let g11r = $set1(g[3].re);
                    let g11i = $set1(g[3].im);
                    let zero = $zero();
                    let mut i = 0usize;
                    while i + $W <= len {
                        let a0r = $load(lr.add(i));
                        let a0i = $load(li.add(i));
                        let a1r = $load(hr.add(i));
                        let a1i = $load(hi.add(i));
                        let s0r = $sub($add(zero, $mul(g00r, a0r)), $mul(g00i, a0i));
                        let s0i = $add($add(zero, $mul(g00r, a0i)), $mul(g00i, a0r));
                        let lor = $sub($add(s0r, $mul(g01r, a1r)), $mul(g01i, a1i));
                        let loi = $add($add(s0i, $mul(g01r, a1i)), $mul(g01i, a1r));
                        let s1r = $sub($add(zero, $mul(g10r, a0r)), $mul(g10i, a0i));
                        let s1i = $add($add(zero, $mul(g10r, a0i)), $mul(g10i, a0r));
                        let hir = $sub($add(s1r, $mul(g11r, a1r)), $mul(g11i, a1i));
                        let hii = $add($add(s1i, $mul(g11r, a1i)), $mul(g11i, a1r));
                        $store(lr.add(i), lor);
                        $store(li.add(i), loi);
                        $store(hr.add(i), hir);
                        $store(hi.add(i), hii);
                        i += $W;
                    }
                    if i < len {
                        super::$tails::run_full(
                            lr.add(i),
                            li.add(i),
                            hr.add(i),
                            hi.add(i),
                            len - i,
                            g,
                        );
                    }
                }

                /// Reduced 16-op cross chain (real diagonal, imaginary
                /// off-diagonal, dead components `+0.0`) — bitwise equal to
                /// [`run_full`] on finite inputs; the remainder always runs
                /// the generic chain.
                ///
                /// # Safety
                /// See module docs of the enclosing macro.
                #[target_feature(enable = $feat)]
                #[allow(clippy::too_many_arguments)]
                pub(in super::super) unsafe fn run_cross(
                    lr: *mut f64,
                    li: *mut f64,
                    hr: *mut f64,
                    hi: *mut f64,
                    len: usize,
                    g: &[C64; 4],
                ) {
                    let g00r = $set1(g[0].re);
                    let g01i = $set1(g[1].im);
                    let g10i = $set1(g[2].im);
                    let g11r = $set1(g[3].re);
                    let zero = $zero();
                    let mut i = 0usize;
                    while i + $W <= len {
                        let a0r = $load(lr.add(i));
                        let a0i = $load(li.add(i));
                        let a1r = $load(hr.add(i));
                        let a1i = $load(hi.add(i));
                        let lor = $sub($add(zero, $mul(g00r, a0r)), $mul(g01i, a1i));
                        let loi = $add($add(zero, $mul(g00r, a0i)), $mul(g01i, a1r));
                        let hir = $add($sub(zero, $mul(g10i, a0i)), $mul(g11r, a1r));
                        let hii = $add($add(zero, $mul(g10i, a0r)), $mul(g11r, a1i));
                        $store(lr.add(i), lor);
                        $store(li.add(i), loi);
                        $store(hr.add(i), hir);
                        $store(hi.add(i), hii);
                        i += $W;
                    }
                    if i < len {
                        super::$tails::run_full(
                            lr.add(i),
                            li.add(i),
                            hr.add(i),
                            hi.add(i),
                            len - i,
                            g,
                        );
                    }
                }

                /// 8-op all-real chain, transcribing the scalar real fast
                /// path `r00*a0r + r01*a1r` (and friends) exactly.
                ///
                /// # Safety
                /// See module docs of the enclosing macro.
                #[target_feature(enable = $feat)]
                #[allow(clippy::too_many_arguments)]
                pub(in super::super) unsafe fn run_real(
                    lr: *mut f64,
                    li: *mut f64,
                    hr: *mut f64,
                    hi: *mut f64,
                    len: usize,
                    g: &[C64; 4],
                ) {
                    let r00 = $set1(g[0].re);
                    let r01 = $set1(g[1].re);
                    let r10 = $set1(g[2].re);
                    let r11 = $set1(g[3].re);
                    let mut i = 0usize;
                    while i + $W <= len {
                        let a0r = $load(lr.add(i));
                        let a0i = $load(li.add(i));
                        let a1r = $load(hr.add(i));
                        let a1i = $load(hi.add(i));
                        $store(lr.add(i), $add($mul(r00, a0r), $mul(r01, a1r)));
                        $store(li.add(i), $add($mul(r00, a0i), $mul(r01, a1i)));
                        $store(hr.add(i), $add($mul(r10, a0r), $mul(r11, a1r)));
                        $store(hi.add(i), $add($mul(r10, a0i), $mul(r11, a1i)));
                        i += $W;
                    }
                    if i < len {
                        super::$tails::run_real(
                            lr.add(i),
                            li.add(i),
                            hr.add(i),
                            hi.add(i),
                            len - i,
                            g,
                        );
                    }
                }

                /// `mask = 1` orbit, generic chain: loads `2·$W` stride-2
                /// pairs as full vectors, deinterleaves in-register,
                /// applies the chain, re-interleaves.
                ///
                /// # Safety
                /// See module docs of the enclosing macro; `n` even.
                #[target_feature(enable = $feat)]
                pub(in super::super) unsafe fn mask1_full(
                    pr0: *mut f64,
                    pi0: *mut f64,
                    n: usize,
                    g: &[C64; 4],
                ) {
                    let g00r = $set1(g[0].re);
                    let g00i = $set1(g[0].im);
                    let g01r = $set1(g[1].re);
                    let g01i = $set1(g[1].im);
                    let g10r = $set1(g[2].re);
                    let g10i = $set1(g[2].im);
                    let g11r = $set1(g[3].re);
                    let g11i = $set1(g[3].im);
                    let zero = $zero();
                    let mut idx = 0usize;
                    while idx + 2 * $W <= n {
                        let pr = pr0.add(idx);
                        let pi = pi0.add(idx);
                        let r0 = $load(pr);
                        let r1 = $load(pr.add($W));
                        let i0 = $load(pi);
                        let i1 = $load(pi.add($W));
                        let (a0r, a1r) = super::$shuf::deint(r0, r1);
                        let (a0i, a1i) = super::$shuf::deint(i0, i1);
                        let s0r = $sub($add(zero, $mul(g00r, a0r)), $mul(g00i, a0i));
                        let s0i = $add($add(zero, $mul(g00r, a0i)), $mul(g00i, a0r));
                        let lor = $sub($add(s0r, $mul(g01r, a1r)), $mul(g01i, a1i));
                        let loi = $add($add(s0i, $mul(g01r, a1i)), $mul(g01i, a1r));
                        let s1r = $sub($add(zero, $mul(g10r, a0r)), $mul(g10i, a0i));
                        let s1i = $add($add(zero, $mul(g10r, a0i)), $mul(g10i, a0r));
                        let hir = $sub($add(s1r, $mul(g11r, a1r)), $mul(g11i, a1i));
                        let hii = $add($add(s1i, $mul(g11r, a1i)), $mul(g11i, a1r));
                        let (o0, o1) = super::$shuf::inter(lor, hir);
                        $store(pr, o0);
                        $store(pr.add($W), o1);
                        let (q0, q1) = super::$shuf::inter(loi, hii);
                        $store(pi, q0);
                        $store(pi.add($W), q1);
                        idx += 2 * $W;
                    }
                    if idx < n {
                        super::$tails::mask1_full(pr0.add(idx), pi0.add(idx), n - idx, g);
                    }
                }

                /// `mask = 1` orbit, reduced cross chain (see [`run_cross`]).
                ///
                /// # Safety
                /// See module docs of the enclosing macro; `n` even.
                #[target_feature(enable = $feat)]
                pub(in super::super) unsafe fn mask1_cross(
                    pr0: *mut f64,
                    pi0: *mut f64,
                    n: usize,
                    g: &[C64; 4],
                ) {
                    let g00r = $set1(g[0].re);
                    let g01i = $set1(g[1].im);
                    let g10i = $set1(g[2].im);
                    let g11r = $set1(g[3].re);
                    let zero = $zero();
                    let mut idx = 0usize;
                    while idx + 2 * $W <= n {
                        let pr = pr0.add(idx);
                        let pi = pi0.add(idx);
                        let r0 = $load(pr);
                        let r1 = $load(pr.add($W));
                        let i0 = $load(pi);
                        let i1 = $load(pi.add($W));
                        let (a0r, a1r) = super::$shuf::deint(r0, r1);
                        let (a0i, a1i) = super::$shuf::deint(i0, i1);
                        let lor = $sub($add(zero, $mul(g00r, a0r)), $mul(g01i, a1i));
                        let loi = $add($add(zero, $mul(g00r, a0i)), $mul(g01i, a1r));
                        let hir = $add($sub(zero, $mul(g10i, a0i)), $mul(g11r, a1r));
                        let hii = $add($add(zero, $mul(g10i, a0r)), $mul(g11r, a1i));
                        let (o0, o1) = super::$shuf::inter(lor, hir);
                        $store(pr, o0);
                        $store(pr.add($W), o1);
                        let (q0, q1) = super::$shuf::inter(loi, hii);
                        $store(pi, q0);
                        $store(pi.add($W), q1);
                        idx += 2 * $W;
                    }
                    if idx < n {
                        super::$tails::mask1_full(pr0.add(idx), pi0.add(idx), n - idx, g);
                    }
                }

                /// `mask = 1` orbit, all-real chain (see [`run_real`]).
                ///
                /// # Safety
                /// See module docs of the enclosing macro; `n` even.
                #[target_feature(enable = $feat)]
                pub(in super::super) unsafe fn mask1_real(
                    pr0: *mut f64,
                    pi0: *mut f64,
                    n: usize,
                    g: &[C64; 4],
                ) {
                    let r00 = $set1(g[0].re);
                    let r01 = $set1(g[1].re);
                    let r10 = $set1(g[2].re);
                    let r11 = $set1(g[3].re);
                    let mut idx = 0usize;
                    while idx + 2 * $W <= n {
                        let pr = pr0.add(idx);
                        let pi = pi0.add(idx);
                        let r0 = $load(pr);
                        let r1 = $load(pr.add($W));
                        let i0 = $load(pi);
                        let i1 = $load(pi.add($W));
                        let (a0r, a1r) = super::$shuf::deint(r0, r1);
                        let (a0i, a1i) = super::$shuf::deint(i0, i1);
                        let lor = $add($mul(r00, a0r), $mul(r01, a1r));
                        let loi = $add($mul(r00, a0i), $mul(r01, a1i));
                        let hir = $add($mul(r10, a0r), $mul(r11, a1r));
                        let hii = $add($mul(r10, a0i), $mul(r11, a1i));
                        let (o0, o1) = super::$shuf::inter(lor, hir);
                        $store(pr, o0);
                        $store(pr.add($W), o1);
                        let (q0, q1) = super::$shuf::inter(loi, hii);
                        $store(pi, q0);
                        $store(pi.add($W), q1);
                        idx += 2 * $W;
                    }
                    if idx < n {
                        super::$tails::mask1_real(pr0.add(idx), pi0.add(idx), n - idx, g);
                    }
                }

                /// `run == 1` real-diagonal sweep: interleaved `[s0, s1,
                /// s0, s1, …]` coefficient vector, one multiply per plane.
                ///
                /// # Safety
                /// See module docs of the enclosing macro; `n` even.
                #[target_feature(enable = $feat)]
                pub(in super::super) unsafe fn diag1_real(
                    pr: *mut f64,
                    pi: *mut f64,
                    n: usize,
                    s0: f64,
                    s1: f64,
                ) {
                    let sv = super::$shuf::pair2(s0, s1);
                    let mut i = 0usize;
                    while i + $W <= n {
                        $store(pr.add(i), $mul($load(pr.add(i)), sv));
                        $store(pi.add(i), $mul($load(pi.add(i)), sv));
                        i += $W;
                    }
                    if i < n {
                        super::$tails::diag1_real(pr.add(i), pi.add(i), n - i, s0, s1);
                    }
                }

                /// `run == 1` complex-diagonal sweep, transcribing the
                /// scalar `r0*dr - i0*di` / `r0*di + i0*dr` pair.
                ///
                /// # Safety
                /// See module docs of the enclosing macro; `n` even.
                #[target_feature(enable = $feat)]
                pub(in super::super) unsafe fn diag1_complex(
                    pr: *mut f64,
                    pi: *mut f64,
                    n: usize,
                    d0: C64,
                    d1: C64,
                ) {
                    let drv = super::$shuf::pair2(d0.re, d1.re);
                    let div = super::$shuf::pair2(d0.im, d1.im);
                    let mut i = 0usize;
                    while i + $W <= n {
                        let r = $load(pr.add(i));
                        let im = $load(pi.add(i));
                        $store(pr.add(i), $sub($mul(r, drv), $mul(im, div)));
                        $store(pi.add(i), $add($mul(r, div), $mul(im, drv)));
                        i += $W;
                    }
                    if i < n {
                        super::$tails::diag1_complex(pr.add(i), pi.add(i), n - i, d0, d1);
                    }
                }

                /// Dense 2q innermost run: four disjoint streams at
                /// `off[b] + 0..len`, per-row left-associated
                /// `C64::ZERO.mul_add` chain, all 8 stream vectors loaded
                /// before any row stores.
                ///
                /// # Safety
                /// See module docs of the enclosing macro.
                #[target_feature(enable = $feat)]
                pub(in super::super) unsafe fn run_2q(
                    pr: *mut f64,
                    pi: *mut f64,
                    off: &[usize; 4],
                    mm: &[C64; 16],
                    len: usize,
                ) {
                    let zero = $zero();
                    let mut mr = [zero; 16];
                    let mut mi = [zero; 16];
                    for j in 0..16 {
                        mr[j] = $set1(mm[j].re);
                        mi[j] = $set1(mm[j].im);
                    }
                    let mut i = 0usize;
                    while i + $W <= len {
                        let mut sr = [zero; 4];
                        let mut si = [zero; 4];
                        for b in 0..4 {
                            sr[b] = $load(pr.add(off[b] + i));
                            si[b] = $load(pi.add(off[b] + i));
                        }
                        for a in 0..4 {
                            let row = 4 * a;
                            let mut zr = zero;
                            let mut zi = zero;
                            for b in 0..4 {
                                zr = $sub($add(zr, $mul(mr[row + b], sr[b])), $mul(mi[row + b], si[b]));
                                zi = $add($add(zi, $mul(mr[row + b], si[b])), $mul(mi[row + b], sr[b]));
                            }
                            $store(pr.add(off[a] + i), zr);
                            $store(pi.add(off[a] + i), zi);
                        }
                        i += $W;
                    }
                    if i < len {
                        super::$tails::run_2q(pr.add(i), pi.add(i), off, mm, len - i);
                    }
                }

                /// k ≥ 3 dense innermost run (`dim = offsets.len() ≤ 32`):
                /// same shape as [`run_2q`] with in-loop coefficient
                /// broadcasts (1024 pairs cannot live in registers).
                ///
                /// # Safety
                /// See module docs of the enclosing macro.
                #[target_feature(enable = $feat)]
                pub(in super::super) unsafe fn run_kq(
                    pr: *mut f64,
                    pi: *mut f64,
                    offsets: &[usize],
                    md: &[C64],
                    len: usize,
                ) {
                    let dim = offsets.len();
                    debug_assert!(dim <= 32 && md.len() == dim * dim);
                    let zero = $zero();
                    let mut i = 0usize;
                    while i + $W <= len {
                        let mut sr = [zero; 32];
                        let mut si = [zero; 32];
                        for b in 0..dim {
                            sr[b] = $load(pr.add(offsets[b] + i));
                            si[b] = $load(pi.add(offsets[b] + i));
                        }
                        for a in 0..dim {
                            let row = a * dim;
                            let mut zr = zero;
                            let mut zi = zero;
                            for b in 0..dim {
                                let mre = $set1(md[row + b].re);
                                let mim = $set1(md[row + b].im);
                                zr = $sub($add(zr, $mul(mre, sr[b])), $mul(mim, si[b]));
                                zi = $add($add(zi, $mul(mre, si[b])), $mul(mim, sr[b]));
                            }
                            $store(pr.add(offsets[a] + i), zr);
                            $store(pi.add(offsets[a] + i), zi);
                        }
                        i += $W;
                    }
                    if i < len {
                        super::$tails::run_kq(pr.add(i), pi.add(i), offsets, md, len - i);
                    }
                }
            }
        };
    }

    simd_width_kernels!(
        avx2k,
        "avx2,fma",
        4,
        _mm256_set1_pd,
        _mm256_setzero_pd,
        _mm256_loadu_pd,
        _mm256_storeu_pd,
        _mm256_add_pd,
        _mm256_sub_pd,
        _mm256_mul_pd,
        shuf256,
        tails
    );

    simd_width_kernels!(
        avx512k,
        "avx512f,avx2,fma",
        8,
        _mm512_set1_pd,
        _mm512_setzero_pd,
        _mm512_loadu_pd,
        _mm512_storeu_pd,
        _mm512_add_pd,
        _mm512_sub_pd,
        _mm512_mul_pd,
        shuf512,
        avx2k
    );

    /// AVX2 accumulator for the `lanes.rs` reduction: the four LANES
    /// partials ride one vector, each block folding `re²+im²` into its
    /// global-index lane — the exact scalar per-lane operation sequence.
    /// Deliberately AVX2-only at every tier: an 8-lane version would
    /// change the LANES=4 index partition and therefore the bits.
    ///
    /// # Safety
    /// `pr`/`pi + 0..len` must be in-bounds; `len % 4 == 0`; AVX2+FMA
    /// must be available.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn lane_acc(acc: &mut [f64; 4], pr: *const f64, pi: *const f64, len: usize) {
        use std::arch::x86_64::*;
        let mut v = _mm256_loadu_pd(acc.as_ptr());
        let mut i = 0usize;
        while i + 4 <= len {
            let r = _mm256_loadu_pd(pr.add(i));
            let im = _mm256_loadu_pd(pi.add(i));
            v = _mm256_add_pd(v, _mm256_add_pd(_mm256_mul_pd(r, r), _mm256_mul_pd(im, im)));
            i += 4;
        }
        _mm256_storeu_pd(acc.as_mut_ptr(), v);
    }

    /// Tier × chain dispatch for one contiguous dense-1q run.
    ///
    /// # Safety
    /// Pointer contracts of `tails::run_full`; `tier` must be a
    /// runtime-detected non-Scalar tier (its target features present).
    #[allow(clippy::too_many_arguments)]
    unsafe fn run_1q_raw(
        tier: SimdTier,
        lr: *mut f64,
        li: *mut f64,
        hr: *mut f64,
        hi: *mut f64,
        len: usize,
        g: &[C64; 4],
        chain: Chain1q,
    ) {
        match (tier, chain) {
            (SimdTier::Avx512, Chain1q::Full) => avx512k::run_full(lr, li, hr, hi, len, g),
            (SimdTier::Avx512, Chain1q::Cross) => avx512k::run_cross(lr, li, hr, hi, len, g),
            (SimdTier::Avx512, Chain1q::Real) => avx512k::run_real(lr, li, hr, hi, len, g),
            (SimdTier::Avx2, Chain1q::Full) => avx2k::run_full(lr, li, hr, hi, len, g),
            (SimdTier::Avx2, Chain1q::Cross) => avx2k::run_cross(lr, li, hr, hi, len, g),
            (SimdTier::Avx2, Chain1q::Real) => avx2k::run_real(lr, li, hr, hi, len, g),
            (SimdTier::Scalar, _) => unreachable!("SIMD dispatch reached with Scalar tier"),
        }
    }

    /// Tier × chain dispatch for one `mask = 1` span of `n` amplitudes.
    ///
    /// # Safety
    /// Pointer contracts of `tails::mask1_full` (`n` even); `tier` must be
    /// a runtime-detected non-Scalar tier.
    unsafe fn mask1_raw(
        tier: SimdTier,
        pr: *mut f64,
        pi: *mut f64,
        n: usize,
        g: &[C64; 4],
        chain: Chain1q,
    ) {
        match (tier, chain) {
            (SimdTier::Avx512, Chain1q::Full) => avx512k::mask1_full(pr, pi, n, g),
            (SimdTier::Avx512, Chain1q::Cross) => avx512k::mask1_cross(pr, pi, n, g),
            (SimdTier::Avx512, Chain1q::Real) => avx512k::mask1_real(pr, pi, n, g),
            (SimdTier::Avx2, Chain1q::Full) => avx2k::mask1_full(pr, pi, n, g),
            (SimdTier::Avx2, Chain1q::Cross) => avx2k::mask1_cross(pr, pi, n, g),
            (SimdTier::Avx2, Chain1q::Real) => avx2k::mask1_real(pr, pi, n, g),
            (SimdTier::Scalar, _) => unreachable!("SIMD dispatch reached with Scalar tier"),
        }
    }

    /// Serial dense-1q sweep over whole (sub-)planes: `mask = 1` goes to
    /// the deinterleave kernel, larger masks walk `2·mask` blocks and run
    /// the contiguous-run kernel on each half pair.
    pub(crate) fn sweep_1q(
        tier: SimdTier,
        re: &mut [f64],
        im: &mut [f64],
        mask: usize,
        g: &[C64; 4],
        chain: Chain1q,
    ) {
        debug_assert_eq!(re.len(), im.len(), "re/im planes must have equal lengths");
        debug_assert!(mask.is_power_of_two(), "orbit mask must be a power of two");
        debug_assert!(re.len().is_multiple_of(mask << 1), "plane length must be a multiple of 2·mask");
        debug_assert_ne!(tier, SimdTier::Scalar, "SIMD sweep called with Scalar tier");
        let n = re.len();
        let pr = re.as_mut_ptr();
        let pi = im.as_mut_ptr();
        if mask == 1 {
            // SAFETY: `pr`/`pi` cover `n` in-bounds f64s from two disjoint
            // `&mut` slices of asserted-equal length; `n` is even (multiple
            // of 2·mask = 2); `tier` comes from runtime detection, so the
            // kernel's target features are present.
            unsafe { mask1_raw(tier, pr, pi, n, g, chain) };
            return;
        }
        let align = mask << 1;
        let mut base = 0usize;
        while base < n {
            // SAFETY: `n` is a multiple of `align`, so `base + align <= n`:
            // the lo run `[base, base+mask)` and hi run `[base+mask,
            // base+2·mask)` are in-bounds and disjoint in each plane, and
            // the re/im planes are themselves disjoint `&mut` slices;
            // `tier` comes from runtime detection.
            unsafe {
                let lr = pr.add(base);
                let li = pi.add(base);
                run_1q_raw(tier, lr, li, lr.add(mask), li.add(mask), mask, g, chain);
            }
            base += align;
        }
    }

    /// One contiguous dense-1q run over four explicit disjoint streams —
    /// the top-bit `par_zip4_chunks_mut` shape and the block-diagonal
    /// sub-run shape.
    pub(crate) fn run_1q(
        tier: SimdTier,
        lre: &mut [f64],
        lim: &mut [f64],
        hre: &mut [f64],
        him: &mut [f64],
        g: &[C64; 4],
        chain: Chain1q,
    ) {
        let len = lre.len();
        debug_assert!(
            lim.len() == len && hre.len() == len && him.len() == len,
            "all four streams must have equal lengths"
        );
        debug_assert_ne!(tier, SimdTier::Scalar, "SIMD run called with Scalar tier");
        // SAFETY: four disjoint `&mut` slices of asserted-equal length
        // `len`; `tier` comes from runtime detection.
        unsafe {
            run_1q_raw(
                tier,
                lre.as_mut_ptr(),
                lim.as_mut_ptr(),
                hre.as_mut_ptr(),
                him.as_mut_ptr(),
                len,
                g,
                chain,
            )
        };
    }

    /// `run == 1` diagonal sweep: even indices scale by `d0`, odd by `d1`.
    /// Caller must have checked [`super::diag1_vectorizable`].
    pub(crate) fn sweep_diag1(tier: SimdTier, re: &mut [f64], im: &mut [f64], d0: C64, d1: C64) {
        debug_assert_eq!(re.len(), im.len(), "re/im planes must have equal lengths");
        debug_assert!(re.len().is_multiple_of(2), "diag1 sweep needs an even plane length");
        debug_assert!(super::diag1_vectorizable(d0, d1), "diag1 sweep on unvectorizable entries");
        debug_assert_ne!(tier, SimdTier::Scalar, "SIMD sweep called with Scalar tier");
        let n = re.len();
        let pr = re.as_mut_ptr();
        let pi = im.as_mut_ptr();
        // `diag1_vectorizable` guarantees both entries sit on the same
        // real/complex branch, mirroring the scalar per-entry split.
        if d0.im == 0.0 {
            // SAFETY: `pr`/`pi` cover `n` (even) in-bounds f64s from two
            // disjoint `&mut` slices; `tier` comes from runtime detection.
            unsafe {
                match tier {
                    SimdTier::Avx512 => avx512k::diag1_real(pr, pi, n, d0.re, d1.re),
                    SimdTier::Avx2 => avx2k::diag1_real(pr, pi, n, d0.re, d1.re),
                    SimdTier::Scalar => unreachable!("SIMD dispatch reached with Scalar tier"),
                }
            }
        } else {
            // SAFETY: as above.
            unsafe {
                match tier {
                    SimdTier::Avx512 => avx512k::diag1_complex(pr, pi, n, d0, d1),
                    SimdTier::Avx2 => avx2k::diag1_complex(pr, pi, n, d0, d1),
                    SimdTier::Scalar => unreachable!("SIMD dispatch reached with Scalar tier"),
                }
            }
        }
    }

    /// Block-diagonal sweep for `tmask == 1` (target on the last qubit):
    /// the plane is alternating `cmask`-length segments whose control bit
    /// is the segment parity (chunks are `2·cmask`-aligned), and each
    /// selected segment is exactly a `mask = 1` orbit span — `B` on
    /// control-set segments, `A` on control-clear ones unless `A` is the
    /// identity. Chains are classified with `allow_real = false` because
    /// the scalar block-diagonal kernel always runs `complex_pair`.
    pub(crate) fn sweep_blockdiag_t1(
        tier: SimdTier,
        re: &mut [f64],
        im: &mut [f64],
        cmask: usize,
        a: &[C64; 4],
        b: &[C64; 4],
        identity_a: bool,
    ) {
        debug_assert_eq!(re.len(), im.len(), "re/im planes must have equal lengths");
        debug_assert!(cmask >= 2 && cmask.is_power_of_two(), "tmask == 1 implies cmask >= 2");
        debug_assert!(re.len().is_multiple_of(cmask << 1), "plane length must be a multiple of 2·cmask");
        debug_assert_ne!(tier, SimdTier::Scalar, "SIMD sweep called with Scalar tier");
        let ca = super::classify_1q(a, false);
        let cb = super::classify_1q(b, false);
        let n = re.len();
        let pr = re.as_mut_ptr();
        let pi = im.as_mut_ptr();
        let mut s = 0usize;
        let mut ctrl_set = false;
        while s < n {
            if ctrl_set {
                // SAFETY: `n` is a multiple of `2·cmask`, so the segment
                // `[s, s+cmask)` is in-bounds of both (disjoint) planes and
                // `cmask` is even-length... `cmask >= 2` and a power of
                // two, so the span length is even as the kernel requires;
                // `tier` comes from runtime detection.
                unsafe { mask1_raw(tier, pr.add(s), pi.add(s), cmask, b, cb) };
            } else if !identity_a {
                // SAFETY: as above.
                unsafe { mask1_raw(tier, pr.add(s), pi.add(s), cmask, a, ca) };
            }
            s += cmask;
            ctrl_set = !ctrl_set;
        }
    }

    /// One dense-2q innermost run of `len` consecutive bases at
    /// `base + off[b]` stream offsets.
    pub(crate) fn run_2q(
        tier: SimdTier,
        re: &mut [f64],
        im: &mut [f64],
        base: usize,
        off: &[usize; 4],
        mm: &[C64; 16],
        len: usize,
    ) {
        debug_assert_eq!(re.len(), im.len(), "re/im planes must have equal lengths");
        // `off = [0, mask1, mask0, mask0|mask1]`: the OR entry is the
        // maximum, so it bounds every stream.
        debug_assert!(base + off[3] + len <= re.len(), "2q run out of bounds");
        debug_assert_ne!(tier, SimdTier::Scalar, "SIMD run called with Scalar tier");
        let pr = re.as_mut_ptr();
        let pi = im.as_mut_ptr();
        // SAFETY: every touched index is `base + off[b] + j` with `j <
        // len`, bounded by the assert above; `base` has zeros in both mask
        // bits and `len <= min(mask0, mask1)` by construction at the call
        // site, so the four streams are disjoint; planes are disjoint
        // `&mut` slices; `tier` comes from runtime detection.
        unsafe {
            match tier {
                SimdTier::Avx512 => avx512k::run_2q(pr.add(base), pi.add(base), off, mm, len),
                SimdTier::Avx2 => avx2k::run_2q(pr.add(base), pi.add(base), off, mm, len),
                SimdTier::Scalar => unreachable!("SIMD dispatch reached with Scalar tier"),
            }
        }
    }

    /// One k ≥ 3 dense innermost run of `len` consecutive bases at
    /// `base + offsets[b]` stream offsets (`offsets.len() = 2^k ≤ 32`).
    pub(crate) fn run_kq(
        tier: SimdTier,
        re: &mut [f64],
        im: &mut [f64],
        base: usize,
        offsets: &[usize],
        md: &[C64],
        len: usize,
    ) {
        let dim = offsets.len();
        debug_assert!((8..=32).contains(&dim), "run_kq handles k in 3..=5");
        debug_assert_eq!(md.len(), dim * dim, "matrix must be dim×dim");
        debug_assert_eq!(re.len(), im.len(), "re/im planes must have equal lengths");
        // The last offset has every target mask set, so it is the maximum.
        debug_assert!(base + offsets[dim - 1] + len <= re.len(), "kq run out of bounds");
        debug_assert_ne!(tier, SimdTier::Scalar, "SIMD run called with Scalar tier");
        let pr = re.as_mut_ptr();
        let pi = im.as_mut_ptr();
        // SAFETY: every touched index is `base + offsets[b] + j` with `j <
        // len`, bounded by the assert above; `base` has zeros in all k mask
        // bits and `len <= 2^bits[0]` at the call site, so the `dim`
        // streams are disjoint; planes are disjoint `&mut` slices; `tier`
        // comes from runtime detection.
        unsafe {
            match tier {
                SimdTier::Avx512 => avx512k::run_kq(pr.add(base), pi.add(base), offsets, md, len),
                SimdTier::Avx2 => avx2k::run_kq(pr.add(base), pi.add(base), offsets, md, len),
                SimdTier::Scalar => unreachable!("SIMD dispatch reached with Scalar tier"),
            }
        }
    }

    /// Folds `re[i]² + im[i]²` into `acc[i % 4]` for an aligned whole
    /// block, preserving the LANES=4 index-partition combine tree bitwise
    /// (the partials ride one AVX2 vector at every tier — see
    /// [`lane_acc`]).
    pub(crate) fn accumulate_lanes(tier: SimdTier, acc: &mut [f64; 4], re: &[f64], im: &[f64]) {
        debug_assert_eq!(re.len(), im.len(), "re/im planes must have equal lengths");
        debug_assert!(re.len().is_multiple_of(4), "lane accumulator needs a multiple-of-4 length");
        debug_assert_ne!(tier, SimdTier::Scalar, "SIMD accumulate called with Scalar tier");
        // SAFETY: equal-length slices with length a multiple of 4; any
        // non-Scalar tier implies AVX2+FMA were runtime-detected.
        unsafe { lane_acc(acc, re.as_ptr(), im.as_ptr(), re.len()) };
    }
}

#[cfg(all(target_arch = "x86_64", not(miri)))]
pub(crate) use x86::{
    accumulate_lanes, run_1q, run_2q, run_kq, sweep_1q, sweep_blockdiag_t1, sweep_diag1,
};

/// Stub backend for non-x86_64 targets and Miri: [`active_tier`] is always
/// [`SimdTier::Scalar`] there (see [`detect`]), and every kernel dispatch
/// in `kernels.rs`/`lanes.rs` guards on a non-Scalar tier before calling
/// in, so these bodies are unreachable — they exist only so the dispatch
/// sites compile unchanged.
#[cfg(not(all(target_arch = "x86_64", not(miri))))]
mod fallback {
    use super::{Chain1q, SimdTier};
    use qdp_linalg::C64;

    pub(crate) fn sweep_1q(
        _tier: SimdTier,
        _re: &mut [f64],
        _im: &mut [f64],
        _mask: usize,
        _g: &[C64; 4],
        _chain: Chain1q,
    ) {
        unreachable!("SIMD kernel called on a target with no SIMD backend");
    }

    pub(crate) fn run_1q(
        _tier: SimdTier,
        _lre: &mut [f64],
        _lim: &mut [f64],
        _hre: &mut [f64],
        _him: &mut [f64],
        _g: &[C64; 4],
        _chain: Chain1q,
    ) {
        unreachable!("SIMD kernel called on a target with no SIMD backend");
    }

    pub(crate) fn sweep_diag1(_tier: SimdTier, _re: &mut [f64], _im: &mut [f64], _d0: C64, _d1: C64) {
        unreachable!("SIMD kernel called on a target with no SIMD backend");
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn sweep_blockdiag_t1(
        _tier: SimdTier,
        _re: &mut [f64],
        _im: &mut [f64],
        _cmask: usize,
        _a: &[C64; 4],
        _b: &[C64; 4],
        _identity_a: bool,
    ) {
        unreachable!("SIMD kernel called on a target with no SIMD backend");
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_2q(
        _tier: SimdTier,
        _re: &mut [f64],
        _im: &mut [f64],
        _base: usize,
        _off: &[usize; 4],
        _mm: &[C64; 16],
        _len: usize,
    ) {
        unreachable!("SIMD kernel called on a target with no SIMD backend");
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_kq(
        _tier: SimdTier,
        _re: &mut [f64],
        _im: &mut [f64],
        _base: usize,
        _offsets: &[usize],
        _md: &[C64],
        _len: usize,
    ) {
        unreachable!("SIMD kernel called on a target with no SIMD backend");
    }

    pub(crate) fn accumulate_lanes(_tier: SimdTier, _acc: &mut [f64; 4], _re: &[f64], _im: &[f64]) {
        unreachable!("SIMD kernel called on a target with no SIMD backend");
    }
}

#[cfg(not(all(target_arch = "x86_64", not(miri))))]
pub(crate) use fallback::{
    accumulate_lanes, run_1q, run_2q, run_kq, sweep_1q, sweep_blockdiag_t1, sweep_diag1,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_ordering_supports_min_capping() {
        assert!(SimdTier::Scalar < SimdTier::Avx2);
        assert!(SimdTier::Avx2 < SimdTier::Avx512);
        assert_eq!(SimdTier::Avx512.min(SimdTier::Avx2), SimdTier::Avx2);
        assert_eq!(SimdTier::Scalar.min(SimdTier::Avx512), SimdTier::Scalar);
    }

    #[test]
    fn classify_mirrors_scalar_dispatch() {
        let c = 0.9f64;
        let s = 0.1f64;
        // RX shape: real diagonal, imaginary off-diagonal, +0.0 elsewhere.
        let rx = [C64::new(c, 0.0), C64::new(0.0, -s), C64::new(0.0, -s), C64::new(c, 0.0)];
        assert_eq!(classify_1q(&rx, true), Chain1q::Cross);
        assert_eq!(classify_1q(&rx, false), Chain1q::Cross);
        // All-real gate: Real on the dense path (checked first, like the
        // scalar dispatch), never Real on the block-diagonal path.
        let h = [C64::new(c, 0.0), C64::new(s, 0.0), C64::new(s, 0.0), C64::new(-c, 0.0)];
        assert_eq!(classify_1q(&h, true), Chain1q::Real);
        assert_eq!(classify_1q(&h, false), Chain1q::Full);
        // All-real accepts -0.0 imaginary parts, exactly like `im == 0.0`.
        let hneg =
            [C64::new(c, -0.0), C64::new(s, 0.0), C64::new(s, -0.0), C64::new(-c, 0.0)];
        assert_eq!(classify_1q(&hneg, true), Chain1q::Real);
        // ... but a -0.0 dead component defeats the Cross reduction: the
        // dropped product would carry the wrong zero sign.
        let rxneg =
            [C64::new(c, -0.0), C64::new(0.0, -s), C64::new(0.0, -s), C64::new(c, 0.0)];
        assert_eq!(classify_1q(&rxneg, false), Chain1q::Full);
        // Generic complex gate.
        let g = [C64::new(c, s), C64::new(s, c), C64::new(-s, c), C64::new(c, -s)];
        assert_eq!(classify_1q(&g, true), Chain1q::Full);
    }

    #[test]
    fn diag1_vectorizable_requires_shared_branch_and_no_identity() {
        let one = C64::ONE;
        let r = C64::new(0.5, 0.0);
        let z = C64::new(0.3, 0.4);
        assert!(diag1_vectorizable(r, C64::new(-1.0, 0.0)));
        assert!(diag1_vectorizable(z, C64::new(0.0, 1.0)));
        assert!(!diag1_vectorizable(one, z), "identity entries keep the scalar skip");
        assert!(!diag1_vectorizable(r, one));
        assert!(!diag1_vectorizable(r, z), "mixed real/complex branches stay scalar");
    }

    #[cfg(all(target_arch = "x86_64", not(miri)))]
    mod kernel_pins {
        use super::super::*;
        use crate::kernels::complex_pair;

        fn planes(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
            let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            let mut next = || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            };
            let re: Vec<f64> = (0..n).map(|_| next()).collect();
            let im: Vec<f64> = (0..n).map(|_| next()).collect();
            (re, im)
        }

        fn tiers() -> Vec<SimdTier> {
            let mut t = Vec::new();
            if detected_tier() >= SimdTier::Avx2 {
                t.push(SimdTier::Avx2);
            }
            if detected_tier() >= SimdTier::Avx512 {
                t.push(SimdTier::Avx512);
            }
            t
        }

        fn bits(v: &[f64]) -> Vec<u64> {
            v.iter().map(|x| x.to_bits()).collect()
        }

        /// The scalar dense-1q sweep: the same chain selection the SIMD
        /// dispatch uses, written as the plane kernels write it.
        fn scalar_sweep(re: &mut [f64], im: &mut [f64], mask: usize, g: &[C64; 4], real: bool) {
            let align = mask << 1;
            let mut base = 0usize;
            while base < re.len() {
                for i in base..base + mask {
                    let (a0r, a0i, a1r, a1i) = (re[i], im[i], re[i + mask], im[i + mask]);
                    let (lr, li, hr, hi) = if real {
                        (
                            g[0].re * a0r + g[1].re * a1r,
                            g[0].re * a0i + g[1].re * a1i,
                            g[2].re * a0r + g[3].re * a1r,
                            g[2].re * a0i + g[3].re * a1i,
                        )
                    } else {
                        complex_pair(g[0], g[1], g[2], g[3], a0r, a0i, a1r, a1i)
                    };
                    re[i] = lr;
                    im[i] = li;
                    re[i + mask] = hr;
                    im[i + mask] = hi;
                }
                base += align;
            }
        }

        #[test]
        fn dense_1q_sweeps_match_scalar_bitwise() {
            let c = (0.35f64).cos();
            let s = (0.35f64).sin();
            let gates: [([C64; 4], bool); 3] = [
                // Cross (RX shape).
                (
                    [C64::new(c, 0.0), C64::new(0.0, -s), C64::new(0.0, -s), C64::new(c, 0.0)],
                    false,
                ),
                // Real.
                ([C64::new(c, 0.0), C64::new(s, 0.0), C64::new(s, 0.0), C64::new(-c, 0.0)], true),
                // Full complex.
                ([C64::new(c, s), C64::new(s, -c), C64::new(-s, c), C64::new(c, -s)], false),
            ];
            for tier in tiers() {
                for (g, real) in &gates {
                    let chain = classify_1q(g, *real);
                    for mask in [1usize, 2, 4, 8, 16] {
                        // Lengths exercising both full vectors and tails.
                        for blocks in [1usize, 3, 5] {
                            let n = (mask << 1) * blocks;
                            let (re0, im0) = planes(n, (mask * 7 + blocks) as u64);
                            let mut re_s = re0.clone();
                            let mut im_s = im0.clone();
                            scalar_sweep(&mut re_s, &mut im_s, mask, g, *real);
                            let mut re_v = re0.clone();
                            let mut im_v = im0.clone();
                            sweep_1q(tier, &mut re_v, &mut im_v, mask, g, chain);
                            assert_eq!(
                                bits(&re_s),
                                bits(&re_v),
                                "re tier={tier:?} mask={mask} n={n} chain={chain:?}"
                            );
                            assert_eq!(
                                bits(&im_s),
                                bits(&im_v),
                                "im tier={tier:?} mask={mask} n={n} chain={chain:?}"
                            );
                        }
                    }
                }
            }
        }

        #[test]
        fn diag1_sweeps_match_scalar_bitwise() {
            for tier in tiers() {
                for n in [2usize, 6, 8, 20, 34] {
                    let (re0, im0) = planes(n, n as u64 + 11);
                    // Real pair.
                    let (s0, s1) = (0.8f64, -1.25f64);
                    let mut re_s = re0.clone();
                    let mut im_s = im0.clone();
                    for i in (0..n).step_by(2) {
                        re_s[i] *= s0;
                        im_s[i] *= s0;
                        re_s[i + 1] *= s1;
                        im_s[i + 1] *= s1;
                    }
                    let mut re_v = re0.clone();
                    let mut im_v = im0.clone();
                    sweep_diag1(
                        tier,
                        &mut re_v,
                        &mut im_v,
                        C64::new(s0, 0.0),
                        C64::new(s1, 0.0),
                    );
                    assert_eq!(bits(&re_s), bits(&re_v), "real re tier={tier:?} n={n}");
                    assert_eq!(bits(&im_s), bits(&im_v), "real im tier={tier:?} n={n}");
                    // Complex pair (RZ shape).
                    let d0 = C64::new(0.6, -0.8);
                    let d1 = C64::new(0.6, 0.8);
                    let mut re_s = re0.clone();
                    let mut im_s = im0.clone();
                    for i in 0..n {
                        let d = if i % 2 == 0 { d0 } else { d1 };
                        let (r0, i0) = (re_s[i], im_s[i]);
                        re_s[i] = r0 * d.re - i0 * d.im;
                        im_s[i] = r0 * d.im + i0 * d.re;
                    }
                    let mut re_v = re0.clone();
                    let mut im_v = im0.clone();
                    sweep_diag1(tier, &mut re_v, &mut im_v, d0, d1);
                    assert_eq!(bits(&re_s), bits(&re_v), "complex re tier={tier:?} n={n}");
                    assert_eq!(bits(&im_s), bits(&im_v), "complex im tier={tier:?} n={n}");
                }
            }
        }

        #[test]
        fn blockdiag_t1_matches_scalar_bitwise() {
            let c = (0.7f64).cos();
            let s = (0.7f64).sin();
            let a = [C64::new(c, s), C64::new(s, -c), C64::new(-s, c), C64::new(c, -s)];
            let b = [C64::new(c, 0.0), C64::new(0.0, -s), C64::new(0.0, -s), C64::new(c, 0.0)];
            for tier in tiers() {
                for cmask in [2usize, 4, 8, 16] {
                    for identity_a in [false, true] {
                        let n = cmask * 6;
                        let (re0, im0) = planes(n, cmask as u64 + 29);
                        let mut re_s = re0.clone();
                        let mut im_s = im0.clone();
                        for p in (0..n).step_by(2) {
                            let ctrl = p & cmask != 0;
                            if !ctrl && identity_a {
                                continue;
                            }
                            let g = if ctrl { &b } else { &a };
                            let (lr, li, hr, hi) = complex_pair(
                                g[0], g[1], g[2], g[3], re_s[p], im_s[p], re_s[p + 1],
                                im_s[p + 1],
                            );
                            re_s[p] = lr;
                            im_s[p] = li;
                            re_s[p + 1] = hr;
                            im_s[p + 1] = hi;
                        }
                        let mut re_v = re0.clone();
                        let mut im_v = im0.clone();
                        sweep_blockdiag_t1(tier, &mut re_v, &mut im_v, cmask, &a, &b, identity_a);
                        assert_eq!(
                            bits(&re_s),
                            bits(&re_v),
                            "re tier={tier:?} cmask={cmask} id_a={identity_a}"
                        );
                        assert_eq!(
                            bits(&im_s),
                            bits(&im_v),
                            "im tier={tier:?} cmask={cmask} id_a={identity_a}"
                        );
                    }
                }
            }
        }

        #[test]
        fn run_2q_matches_scalar_chain_bitwise() {
            // A 2q layout with mask1=4 (b_lo=2), mask0=16: runs of 4 bases.
            let (mask1, mask0) = (4usize, 16usize);
            let off = [0usize, mask1, mask0, mask0 | mask1];
            let (re0, im0) = planes(64, 77);
            let mm: [C64; 16] = core::array::from_fn(|j| {
                C64::new(0.1 * (j as f64) - 0.6, 0.07 * (j as f64 % 5.0) - 0.2)
            });
            for tier in tiers() {
                for len in [4usize, 3, 1] {
                    for base in [0usize, 8, 40] {
                        let mut re_s = re0.clone();
                        let mut im_s = im0.clone();
                        for j in 0..len {
                            let mut sr = [0.0f64; 4];
                            let mut si = [0.0f64; 4];
                            for bidx in 0..4 {
                                sr[bidx] = re_s[base + off[bidx] + j];
                                si[bidx] = im_s[base + off[bidx] + j];
                            }
                            for a in 0..4 {
                                let row = 4 * a;
                                let mut zr = 0.0f64;
                                let mut zi = 0.0f64;
                                for bidx in 0..4 {
                                    let m = mm[row + bidx];
                                    zr = (zr + m.re * sr[bidx]) - m.im * si[bidx];
                                    zi = (zi + m.re * si[bidx]) + m.im * sr[bidx];
                                }
                                re_s[base + off[a] + j] = zr;
                                im_s[base + off[a] + j] = zi;
                            }
                        }
                        let mut re_v = re0.clone();
                        let mut im_v = im0.clone();
                        run_2q(tier, &mut re_v, &mut im_v, base, &off, &mm, len);
                        assert_eq!(bits(&re_s), bits(&re_v), "re tier={tier:?} len={len}");
                        assert_eq!(bits(&im_s), bits(&im_v), "im tier={tier:?} len={len}");
                    }
                }
            }
        }

        #[test]
        fn run_kq_matches_scalar_chain_bitwise() {
            // k=3 with target bits {2,4,5} on an n=7 plane: runs of 4.
            let masks = [32usize, 16, 4];
            let mut offsets = [0usize; 8];
            for (a, off) in offsets.iter_mut().enumerate() {
                for (j, m) in masks.iter().enumerate() {
                    if a & (1 << (2 - j)) != 0 {
                        *off |= m;
                    }
                }
            }
            let md: Vec<C64> = (0..64)
                .map(|j| C64::new(0.05 * (j as f64) - 1.3, 0.03 * (j as f64 % 7.0) - 0.1))
                .collect();
            let (re0, im0) = planes(128, 99);
            for tier in tiers() {
                for (base, len) in [(0usize, 4usize), (8, 4), (64, 3), (72, 1)] {
                    let mut re_s = re0.clone();
                    let mut im_s = im0.clone();
                    for j in 0..len {
                        let mut sr = [0.0f64; 8];
                        let mut si = [0.0f64; 8];
                        for bidx in 0..8 {
                            sr[bidx] = re_s[base + offsets[bidx] + j];
                            si[bidx] = im_s[base + offsets[bidx] + j];
                        }
                        for a in 0..8 {
                            let row = 8 * a;
                            let mut zr = 0.0f64;
                            let mut zi = 0.0f64;
                            for bidx in 0..8 {
                                let m = md[row + bidx];
                                zr = (zr + m.re * sr[bidx]) - m.im * si[bidx];
                                zi = (zi + m.re * si[bidx]) + m.im * sr[bidx];
                            }
                            re_s[base + offsets[a] + j] = zr;
                            im_s[base + offsets[a] + j] = zi;
                        }
                    }
                    let mut re_v = re0.clone();
                    let mut im_v = im0.clone();
                    run_kq(tier, &mut re_v, &mut im_v, base, &offsets, &md, len);
                    assert_eq!(bits(&re_s), bits(&re_v), "re tier={tier:?} base={base} len={len}");
                    assert_eq!(bits(&im_s), bits(&im_v), "im tier={tier:?} base={base} len={len}");
                }
            }
        }

        #[test]
        fn lane_accumulator_matches_scalar_partials_bitwise() {
            for tier in tiers() {
                for n in [4usize, 32, 100] {
                    let (re, im) = planes(n, n as u64 + 51);
                    let mut acc_s = [0.1f64, -0.2, 0.3, 0.04];
                    for (r4, i4) in re.chunks_exact(4).zip(im.chunks_exact(4)) {
                        acc_s[0] += r4[0] * r4[0] + i4[0] * i4[0];
                        acc_s[1] += r4[1] * r4[1] + i4[1] * i4[1];
                        acc_s[2] += r4[2] * r4[2] + i4[2] * i4[2];
                        acc_s[3] += r4[3] * r4[3] + i4[3] * i4[3];
                    }
                    let mut acc_v = [0.1f64, -0.2, 0.3, 0.04];
                    let main = n & !3;
                    accumulate_lanes(tier, &mut acc_v, &re[..main], &im[..main]);
                    for j in 0..4 {
                        assert_eq!(
                            acc_s[j].to_bits(),
                            acc_v[j].to_bits(),
                            "lane {j} tier={tier:?} n={n}"
                        );
                    }
                }
            }
        }
    }
}
