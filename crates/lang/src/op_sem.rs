//! Operational semantics: execution-trace multisets.
//!
//! Fig. 1a gives small-step transitions `⟨P, ρ⟩ → ⟨P′, ρ′⟩`; Fig. 2 adds the
//! nondeterministic `(Sum Components)` rule for additive programs. The
//! denotational semantics of an *additive* program (Definition 4.1) is the
//! **multiset** of final states over all maximal traces — no summation — and
//! Proposition 3.1 says that for *normal* programs the ordinary denotation
//! is the sum of that multiset.
//!
//! [`trace_multiset`] enumerates the multiset directly by structural
//! recursion, which is exactly the set of `→*`-maximal executions.

use crate::ast::{Params, Stmt};
use crate::register::Register;
use qdp_sim::{DensityMatrix, Measurement};

/// Enumerates the multiset `{| ρ′ : ⟨stmt, ρ⟩ →* ⟨↓, ρ′⟩ |}` of final states
/// of all maximal execution traces (Definition 4.1).
///
/// Works on both normal and additive programs. Zero final states (from
/// `abort`) are included; filter them out for Proposition 4.2 comparisons.
///
/// # Examples
///
/// ```
/// use qdp_lang::{op_sem, parse_program, Register};
/// use qdp_lang::ast::Params;
/// use qdp_sim::DensityMatrix;
///
/// // An additive choice yields one trace per component.
/// let p = parse_program("skip[q1] + q1 *= X")?;
/// let reg = Register::from_program(&p);
/// let traces = op_sem::trace_multiset(&p, &reg, &Params::new(),
///     &DensityMatrix::pure_zero(1));
/// assert_eq!(traces.len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn trace_multiset(
    stmt: &Stmt,
    reg: &Register,
    params: &Params,
    rho: &DensityMatrix,
) -> Vec<DensityMatrix> {
    match stmt {
        Stmt::Abort { .. } => vec![DensityMatrix::zero_operator(rho.num_qubits())],
        Stmt::Skip { .. } => vec![rho.clone()],
        Stmt::Init { q } => {
            let mut out = rho.clone();
            out.initialize_qubit(reg.indices_of(std::slice::from_ref(q))[0]);
            vec![out]
        }
        Stmt::Unitary { gate, qs } => {
            let mut out = rho.clone();
            out.apply_unitary(&gate.matrix(params), &reg.indices_of(qs));
            vec![out]
        }
        Stmt::Seq(a, b) => trace_multiset(a, reg, params, rho)
            .iter()
            .flat_map(|mid| trace_multiset(b, reg, params, mid))
            .collect(),
        Stmt::Case { qs, arms } => {
            let meas = Measurement::computational(reg.indices_of(qs));
            arms.iter()
                .enumerate()
                .flat_map(|(m, arm)| {
                    let branch = meas.branch(rho, m);
                    trace_multiset(arm, reg, params, &branch)
                })
                .collect()
        }
        Stmt::While { .. } => {
            // Eq. 3.1: the bounded loop is a macro over case/seq.
            trace_multiset(&stmt.unfold_while_once(), reg, params, rho)
        }
        Stmt::Sum(a, b) => {
            // (Sum Components), Fig. 2: either component may run.
            let mut traces = trace_multiset(a, reg, params, rho);
            traces.extend(trace_multiset(b, reg, params, rho));
            traces
        }
    }
}

/// Sums a trace multiset — the right-hand side of Proposition 3.1,
/// `[[P(θ*)]](ρ) = Σ {| ρ′ : ⟨P, ρ⟩ →* ⟨↓, ρ′⟩ |}`.
pub fn sum_traces(traces: &[DensityMatrix], n_qubits: usize) -> DensityMatrix {
    let mut acc = DensityMatrix::zero_operator(n_qubits);
    for t in traces {
        acc.add_assign(t);
    }
    acc
}

/// Tests whether two trace multisets are equal up to reordering and an
/// entry-wise tolerance (greedy matching — adequate because traces of the
/// programs under test are well separated or identical).
pub fn multisets_approx_eq(a: &[DensityMatrix], b: &[DensityMatrix], tol: f64) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut unmatched: Vec<&DensityMatrix> = b.iter().collect();
    for x in a {
        let Some(pos) = unmatched.iter().position(|y| x.approx_eq(y, tol)) else {
            return false;
        };
        unmatched.swap_remove(pos);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::denot::denote;
    use crate::parser::parse_program;

    fn setup(src: &str, params: &[(&str, f64)]) -> (Stmt, Register, Params) {
        let p = parse_program(src).unwrap();
        let reg = Register::from_program(&p);
        let params = Params::from_pairs(params.iter().map(|&(k, v)| (k, v)));
        (p, reg, params)
    }

    #[test]
    fn normal_program_single_trace_per_branch_path() {
        let (p, reg, params) = setup(
            "q1 *= H; case M[q1] = 0 -> skip[q1], 1 -> q1 *= X end",
            &[],
        );
        let traces = trace_multiset(&p, &reg, &params, &DensityMatrix::pure_zero(1));
        assert_eq!(traces.len(), 2);
        for t in &traces {
            assert!((t.trace() - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn proposition_3_1_denotation_is_sum_of_traces() {
        let (p, reg, params) = setup(
            "q1 *= RX(a); case M[q1] = 0 -> q2 *= RY(b), 1 -> abort[q1, q2] end; \
             while[2] M[q2] = 1 do q1 *= RZ(a) done",
            &[("a", 0.3), ("b", 1.1)],
        );
        let rho = DensityMatrix::pure_zero(reg.len());
        let traces = trace_multiset(&p, &reg, &params, &rho);
        let summed = sum_traces(&traces, reg.len());
        let direct = denote(&p, &reg, &params, &rho);
        assert!(summed.approx_eq(&direct, 1e-10));
    }

    #[test]
    fn sum_doubles_traces() {
        let (p, reg, params) = setup("skip[q1] + skip[q1]", &[]);
        let rho = DensityMatrix::pure_zero(1);
        let traces = trace_multiset(&p, &reg, &params, &rho);
        assert_eq!(traces.len(), 2);
        // Multiset semantics keeps both identical copies.
        assert!(traces[0].approx_eq(&traces[1], 1e-15));
    }

    #[test]
    fn generic_case_example_4_1() {
        // Example 4.1 structure: case with a sum in arm 0.
        let (p, reg, params) = setup(
            "q1 *= H; case M[q1] = 0 -> (q1 *= RX(a) + q1 *= RY(a)), 1 -> q1 *= RZ(a) end",
            &[("a", 0.5)],
        );
        let rho = DensityMatrix::pure_zero(1);
        let traces = trace_multiset(&p, &reg, &params, &rho);
        // {| RX branch, RY branch, RZ branch |}
        assert_eq!(traces.len(), 3);
    }

    #[test]
    fn multiset_equality_is_order_insensitive() {
        let (p, reg, params) = setup("skip[q1] + q1 *= X", &[]);
        let rho = DensityMatrix::pure_zero(1);
        let mut a = trace_multiset(&p, &reg, &params, &rho);
        let b = trace_multiset(&p, &reg, &params, &rho);
        a.reverse();
        assert!(multisets_approx_eq(&a, &b, 1e-12));
        assert!(!multisets_approx_eq(&a[..1], &b, 1e-12));
    }

    #[test]
    fn while_traces_match_unfolding() {
        let (p, reg, params) = setup("while[2] M[q1] = 1 do q1 *= RY(a) done", &[("a", 0.7)]);
        let mut rho = DensityMatrix::pure_zero(1);
        rho.apply_unitary(&qdp_linalg::Matrix::hadamard(), &[0]);
        let direct = trace_multiset(&p, &reg, &params, &rho);
        let unfolded = trace_multiset(&p.unfold_while_once(), &reg, &params, &rho);
        assert!(multisets_approx_eq(&direct, &unfolded, 1e-12));
    }
}
