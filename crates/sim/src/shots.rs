//! Batched trajectory execution — **sampled and exact** sweeps over
//! [`BatchedStates`], on one branching IR.
//!
//! [`TrajProgram`] is the single lowered form every branching program runs
//! as, in both execution modes:
//!
//! * **Sampled** (Section 7's shot-noise model): [`ShotEngine::run`] /
//!   [`ShotEngine::sample_sweep`] draw one measurement outcome per row
//!   from its own [`ShotSampler`] stream and regroup rows into
//!   outcome-homogeneous sub-batches (*branch-grouped batching*), so a
//!   Chernoff budget of `O(m²/δ²)` trajectories executes as batched
//!   kernel calls instead of one state at a time.
//! * **Exact** (*branch-weighted*): [`ShotEngine::expectation_sweep`]
//!   measures all rows at once, computes per-outcome branch probabilities,
//!   and forks the block into **every** surviving outcome at once — the
//!   same regrouping machinery generalized over a weight-carrying row
//!   descriptor. Sub-batches carry accumulated branch weights
//!   (probabilities, riding inside the unnormalised amplitudes) instead of
//!   sampled draws, and leaf read-outs sum weighted expectations per
//!   original row. This is exact branch enumeration at batched-kernel
//!   speed — the executor behind `qdp_ad`'s exact batched evaluation of
//!   `case`/`init`/while-unrolled programs.
//!
//! Both modes share the straight-line machinery: gate segments stream as
//! single batched kernel calls (with per-qubit 2×2 fusion of commuting
//! single-qubit gates where the mode allows), and measurements take one
//! pass over the whole block through the selected-branch primitives of
//! [`crate::Measurement`].
//!
//! # Determinism contract
//!
//! Sampled sweeps: every row owns an independent [`ShotSampler`] stream.
//! Measurement collapse goes through the same [`collapse_with_draw`] the
//! serial sampler uses, gate streaming goes through
//! [`BatchedStates::apply_gate`] (bit-for-bit equal to per-row
//! application), and regrouping preserves row order within each outcome —
//! so a batched sweep produces **bitwise** the same outcomes and collapsed
//! states as running each row alone with the same stream, no matter how
//! rows are grouped or how many threads run the kernels.
//! `crates/core/tests/shot_engine_differential.rs` is the oracle.
//!
//! Exact sweeps are deterministic, full stop: per-row results are a pure
//! function of the program and that row's input, **bit-for-bit invariant
//! under thread count, batch decomposition, and row order** (every
//! batched kernel call and leaf read-out performs per-row-identical
//! floating-point operations, and each row's leaves accumulate in its own
//! depth-first branch order). Against the per-row branch enumerator they
//! agree to ≪ 1e-12 (fusion and leaf-order differences move rounding,
//! nothing else) — `crates/core/tests/branch_weighted_differential.rs` is
//! the oracle.

use crate::batch::BatchedStates;
use crate::measurement::Measurement;
use crate::observable::Observable;
use crate::sampling::{collapse_with_draw, ProjectiveObservable, ShotSampler};
use crate::state::StateVector;
use qdp_linalg::Matrix;

/// Rows per parallel shot tile of [`ShotEngine::estimate_expectation`].
///
/// Fixed (not derived from the thread count) so the tile partition — and
/// with it every drawn value and every rounding order — is identical under
/// any `qdp_par` configuration.
pub const SHOT_TILE: usize = 256;

/// Rows per parallel tile of the exact branch-weighted sweep
/// ([`ShotEngine::expectation_sweep`]). Smaller than [`SHOT_TILE`]
/// because exact batches are datasets (tens of rows), not shot blocks:
/// the tile must be small enough that one branching program over one
/// training batch still fans out across workers. Fixed for a predictable
/// partition; per-row bits do not depend on it.
pub const EXACT_TILE: usize = 8;

/// One operation of a sampled-trajectory program.
#[derive(Clone, Debug)]
enum TrajOp {
    /// An operator application with the matrix already built.
    Gate { matrix: Matrix, targets: Vec<usize> },
    /// `q := |0⟩`, sampled: measure `q` and flip on outcome 1.
    Init {
        meas: Measurement,
        flip: Matrix,
        target: usize,
    },
    /// A measurement branching over per-outcome arm programs.
    Case {
        meas: Measurement,
        arms: Vec<TrajProgram>,
    },
    /// Drop the trajectory.
    Abort,
}

/// A trajectory program: the sampled-execution form of a normal program,
/// with every matrix and measurement pre-built for a fixed valuation.
///
/// Built either directly through the `push_*` methods or from a lowered
/// derivative program (`qdp_ad::ResolvedProgram::to_trajectory`). The
/// sampled semantics mirror `qdp_ad::estimator::sample_trajectory` op for
/// op: `Init` measures the target and applies `X` on outcome 1, `Case`
/// draws one outcome from the Born rule and continues into that arm.
#[derive(Clone, Debug, Default)]
pub struct TrajProgram {
    ops: Vec<TrajOp>,
}

impl TrajProgram {
    /// An empty (skip) program.
    pub fn new() -> Self {
        TrajProgram::default()
    }

    /// Appends an operator application.
    pub fn push_gate(&mut self, matrix: Matrix, targets: Vec<usize>) {
        self.ops.push(TrajOp::Gate { matrix, targets });
    }

    /// Appends a `q := |0⟩` reset of qubit `target` (measure + conditional
    /// flip — the sampled form of the reset channel).
    pub fn push_init(&mut self, target: usize) {
        self.ops.push(TrajOp::Init {
            meas: Measurement::computational(vec![target]),
            flip: Matrix::pauli_x(),
            target,
        });
    }

    /// Appends a measurement case: `meas` is sampled once per trajectory
    /// and execution continues into `arms[outcome]`.
    ///
    /// # Panics
    ///
    /// Panics when the arm count does not match the outcome count.
    pub fn push_case(&mut self, meas: Measurement, arms: Vec<TrajProgram>) {
        assert_eq!(
            meas.num_outcomes(),
            arms.len(),
            "one arm per measurement outcome"
        );
        self.ops.push(TrajOp::Case { meas, arms });
    }

    /// Appends an abort: trajectories reaching it are dropped.
    pub fn push_abort(&mut self) {
        self.ops.push(TrajOp::Abort);
    }

    /// Number of top-level operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program is a bare `skip`.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// The result of one sampled trajectory (one batch row).
#[derive(Clone, Debug)]
pub struct TrajectoryRow {
    /// The final collapsed state, or `None` when the trajectory aborted.
    pub state: Option<StateVector>,
    /// Every measurement outcome drawn along the trajectory, in program
    /// order (`Init` resets included).
    pub outcomes: Vec<usize>,
}

/// A row in flight: its original batch index and outcome history.
#[derive(Clone, Debug)]
struct RowCtx {
    orig: usize,
    outcomes: Vec<usize>,
}

/// An outcome-homogeneous group of rows evolving together under the
/// **sampled** executor.
struct Group {
    states: BatchedStates,
    rows: Vec<RowCtx>,
    /// Fused-mode state: per qubit, the pending product of
    /// not-yet-applied single-qubit gates (`pending[q] = g_k · … · g_1` in
    /// program order). Always empty in bitwise (unfused) mode.
    pending: Vec<Option<Matrix>>,
}

/// Applies the pending 1q products of `targets` (ascending qubit order,
/// deterministically), as one batched kernel call each. Shared by the
/// sampled and exact executors.
fn flush_targets(states: &mut BatchedStates, pending: &mut [Option<Matrix>], targets: &[usize]) {
    let mut ts: Vec<usize> = targets.to_vec();
    ts.sort_unstable();
    for t in ts {
        if let Some(m) = pending[t].take() {
            states.apply_gate(&m, &[t]);
        }
    }
}

/// Applies every pending product (ascending qubit order).
fn flush_all(states: &mut BatchedStates, pending: &mut [Option<Matrix>]) {
    for (t, slot) in pending.iter_mut().enumerate() {
        if let Some(m) = slot.take() {
            states.apply_gate(&m, &[t]);
        }
    }
}

impl Group {
    /// See [`flush_targets`].
    fn flush(&mut self, targets: &[usize]) {
        flush_targets(&mut self.states, &mut self.pending, targets);
    }

    /// See [`flush_all`].
    fn flush_all(&mut self) {
        flush_all(&mut self.states, &mut self.pending);
    }
}

/// Branches whose accumulated weight (unnormalised squared norm) is at or
/// below this threshold are pruned by the exact branch-weighted sweep —
/// the same constant `qdp_lang::denot::run_pure_branches` and the per-row
/// branch enumerators use, so pruning decisions line up across executors.
pub const BRANCH_PRUNE: f64 = 1e-24;

/// A row in flight of the **exact** branch-weighted sweep: its original
/// batch index and the accumulated branch weight — the squared norm of its
/// unnormalised state, i.e. the probability of the measurement history
/// that produced it (times the input row's own squared norm). This is the
/// weight-carrying row descriptor the sampled executor's [`RowCtx`]
/// generalizes to: where a sampled row records drawn outcomes, a weighted
/// row records how much probability mass its branch carries.
#[derive(Clone, Debug)]
struct WeightedRow {
    orig: usize,
    weight: f64,
}

/// An outcome-homogeneous group of weighted rows evolving together under
/// the **exact** executor. Gates always fuse (the exact path has no
/// bitwise-reference mode — its oracle is the per-row branch enumerator,
/// pinned at 1e-12).
struct WeightedGroup {
    states: BatchedStates,
    rows: Vec<WeightedRow>,
    pending: Vec<Option<Matrix>>,
}

/// The batched shot-noise executor for one [`TrajProgram`].
///
/// # Examples
///
/// ```
/// use qdp_linalg::Matrix;
/// use qdp_sim::{BatchedStates, ShotEngine, ShotSampler, TrajProgram};
///
/// // H then a computational measurement: every shot collapses to a basis
/// // state recorded in its outcome history.
/// let mut p = TrajProgram::new();
/// p.push_gate(Matrix::hadamard(), vec![0]);
/// p.push_case(
///     qdp_sim::Measurement::computational(vec![0]),
///     vec![TrajProgram::new(), TrajProgram::new()],
/// );
/// let engine = ShotEngine::new(p);
/// let mut samplers: Vec<ShotSampler> =
///     (0..8).map(|s| ShotSampler::derived(1, s)).collect();
/// let rows = engine.run(BatchedStates::zero(8, 1), &mut samplers);
/// for row in &rows {
///     assert_eq!(row.outcomes.len(), 1);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct ShotEngine {
    program: TrajProgram,
}

impl ShotEngine {
    /// Wraps a trajectory program for batched execution.
    pub fn new(program: TrajProgram) -> Self {
        ShotEngine { program }
    }

    /// The wrapped program.
    pub fn program(&self) -> &TrajProgram {
        &self.program
    }

    /// Runs one sampled trajectory per row of `states`, row `r` drawing
    /// from `samplers[r]`. Returns per-row results in input row order.
    ///
    /// This is the **bitwise-reference executor**: gates are applied one
    /// by one in program order, so results equal running each row as its
    /// own batch of one and (via the shared collapse primitive) the serial
    /// per-shot loop, bit for bit — see the module docs for the contract.
    ///
    /// # Panics
    ///
    /// Panics when `samplers.len() != states.len()`.
    pub fn run(&self, states: BatchedStates, samplers: &mut [ShotSampler]) -> Vec<TrajectoryRow> {
        let total_rows = states.len();
        let (finished, aborted) = self.sweep(states, samplers, false);
        let mut out: Vec<Option<TrajectoryRow>> = (0..total_rows).map(|_| None).collect();
        for group in finished {
            let Group { states, rows, .. } = group;
            for (r, ctx) in rows.into_iter().enumerate() {
                out[ctx.orig] = Some(TrajectoryRow {
                    state: Some(states.row_state(r)),
                    outcomes: ctx.outcomes,
                });
            }
        }
        for ctx in aborted {
            out[ctx.orig] = Some(TrajectoryRow {
                state: None,
                outcomes: ctx.outcomes,
            });
        }
        out.into_iter()
            .map(|row| row.expect("every row either finishes or aborts"))
            .collect()
    }

    /// Runs one trajectory per row and samples `readout` once on each
    /// surviving final state (0.0 for aborted rows, which draw nothing —
    /// matching the serial estimator). Returns per-row samples in input
    /// row order.
    ///
    /// The per-projector expectations of each final group are computed
    /// batch-wise with the observable's index layout hoisted once, so the
    /// read-out costs one batched pass per projector instead of one
    /// eigendecomposition per shot. On top of that, straight-line gate
    /// segments **fuse** commuting single-qubit gates per qubit into one
    /// 2×2 product before streaming (exactly like the exact batched
    /// evaluator's straight-line fast path), flushed at measurements,
    /// multi-qubit gates, and the read-out. Fusion reorders rounding, so
    /// samples agree with [`run`](Self::run)-plus-serial-sampling
    /// statistically (states differ by ≪ 1e-12) rather than bit for bit;
    /// the sweep itself stays fully deterministic — identical bits for any
    /// thread count, any batch decomposition, and any row grouping.
    ///
    /// # Panics
    ///
    /// Panics when `samplers.len() != states.len()`.
    pub fn sample_sweep(
        &self,
        states: BatchedStates,
        samplers: &mut [ShotSampler],
        readout: &ProjectiveObservable,
    ) -> Vec<f64> {
        let total_rows = states.len();
        let (finished, aborted) = self.sweep(states, samplers, true);
        let mut out = vec![0.0; total_rows];
        for group in finished {
            // Diagonal read-outs take one bucketed |amp|² pass per row
            // (the same `row_probabilities` the serial sampler selects
            // from, so draws can never drift apart); general observables
            // take one batched expectation pass per projector, shared by
            // every row of the group.
            let per_projector: Vec<Vec<f64>> = if readout.is_diagonal() {
                Vec::new()
            } else {
                readout
                    .pairs()
                    .iter()
                    .map(|(_, projector)| projector.expectation_batch(&group.states))
                    .collect()
            };
            let mut probs = Vec::new();
            for (r, ctx) in group.rows.iter().enumerate() {
                // The shared selection loop of `sample_with_draw`, with
                // the probabilities read from whichever pass ran.
                let total: f64 = group.states.row(r).iter().map(|z| z.norm_sqr()).sum();
                if total <= 1e-300 {
                    continue;
                }
                let u = samplers[ctx.orig].next_uniform();
                out[ctx.orig] = if readout.row_probabilities_into(group.states.row(r), &mut probs) {
                    readout.select_with(u, total, |k| probs[k])
                } else {
                    readout.select_with(u, total, |k| per_projector[k][r])
                };
            }
        }
        drop(aborted); // aborted rows stay 0.0 and draw nothing
        out
    }

    /// Tiled parallel shot estimate of `⟨obs⟩` on the program's output from
    /// `shots` trajectories starting at `psi`: the mean of one read-out
    /// sample per shot (0 for aborted trajectories).
    ///
    /// Shots are split into fixed [`SHOT_TILE`]-row tiles fanned out across
    /// `qdp_par`; shot `s` draws from the derived stream
    /// `ShotSampler::derived(seed, s)` wherever it runs, and tile sums are
    /// reduced in tile order — the result is **bit-for-bit identical under
    /// any thread count**.
    ///
    /// # Panics
    ///
    /// Panics when `shots` is zero.
    pub fn estimate_expectation(
        &self,
        psi: &StateVector,
        obs: &Observable,
        shots: usize,
        seed: u64,
    ) -> f64 {
        self.estimate_expectation_prepared(psi, &ProjectiveObservable::new(obs), shots, seed)
    }

    /// [`estimate_expectation`](Self::estimate_expectation) with the
    /// read-out decomposition already built — what repeated-evaluation
    /// callers (a training epoch sweeping many inputs) use so the
    /// eigendecomposition happens once, not once per input.
    ///
    /// # Panics
    ///
    /// Panics when `shots` is zero.
    pub fn estimate_expectation_prepared(
        &self,
        psi: &StateVector,
        readout: &ProjectiveObservable,
        shots: usize,
        seed: u64,
    ) -> f64 {
        assert!(shots > 0, "need at least one shot");
        let tiles: Vec<(usize, usize)> = (0..shots)
            .step_by(SHOT_TILE)
            .map(|start| (start, SHOT_TILE.min(shots - start)))
            .collect();
        let sums = qdp_par::par_map(&tiles, |&(start, rows)| {
            let batch = BatchedStates::repeat(psi, rows);
            let mut samplers: Vec<ShotSampler> = (0..rows)
                .map(|r| ShotSampler::derived(seed, (start + r) as u64))
                .collect();
            self.sample_sweep(batch, &mut samplers, readout)
                .into_iter()
                .sum::<f64>()
        });
        sums.into_iter().sum::<f64>() / shots as f64
    }

    /// **Branch-weighted exact execution**: the exact expectation
    /// `Σ_branches ⟨ψb|O|ψb⟩` of the program's output for every row of the
    /// batch, in row order.
    ///
    /// Where [`run`](Self::run) samples one outcome per row, this sweep
    /// measures all rows at once, computes per-outcome branch
    /// probabilities (the selected-branch primitives of [`Measurement`] —
    /// one bucketed `|amp|²` pass for computational measurements), and
    /// forks the block into **every** surviving outcome: each sub-group
    /// carries its rows' accumulated branch weights in their unnormalised
    /// amplitudes and keeps streaming batched kernel calls. At the leaves,
    /// one batched read-out pass per group accumulates
    /// `out[r] += ⟨ψleaf|O|ψleaf⟩` — exactly the quantity per-row branch
    /// enumeration computes, evaluated block-wise.
    ///
    /// Straight-line segments fuse commuting single-qubit gates per qubit
    /// into one 2×2 product (like the exact batched evaluator's
    /// straight-line fast path), flushed at measurements, multi-qubit
    /// gates, and leaves. Per-row results are **bit-for-bit invariant
    /// under thread count, batch decomposition, and row order**, and agree
    /// with the per-row enumerator to ≪ 1e-12 (fusion and leaf-summation
    /// order move rounding only). Aborted branches contribute 0; branches
    /// at weight ≤ [`BRANCH_PRUNE`] are dropped, matching the per-row
    /// enumerators.
    ///
    /// Batches beyond [`EXACT_TILE`] rows split into fixed-size row tiles
    /// fanned out across `qdp_par`, so a single branching program over a
    /// large batch still scales with threads. Tiling is harmless to the
    /// contract precisely *because* of the decomposition invariance above:
    /// every row's bits are the same in any tile.
    pub fn expectation_sweep(&self, states: BatchedStates, obs: &Observable) -> Vec<f64> {
        let total_rows = states.len();
        if total_rows == 0 {
            return Vec::new();
        }
        if total_rows <= EXACT_TILE || qdp_par::max_threads() < 2 {
            return self.expectation_sweep_tile(states, obs);
        }
        let dim = states.dim();
        let n = states.num_qubits();
        let tiles: Vec<(usize, usize)> = (0..total_rows)
            .step_by(EXACT_TILE)
            .map(|start| (start, EXACT_TILE.min(total_rows - start)))
            .collect();
        let per_tile = qdp_par::par_map(&tiles, |&(start, rows)| {
            let block = BatchedStates::from_raw(
                rows,
                n,
                states.amplitudes()[start * dim..(start + rows) * dim].to_vec(),
            );
            self.expectation_sweep_tile(block, obs)
        });
        per_tile.concat()
    }

    /// One tile of [`expectation_sweep`](Self::expectation_sweep): the
    /// serial branch-weighted sweep over a whole block.
    fn expectation_sweep_tile(&self, states: BatchedStates, obs: &Observable) -> Vec<f64> {
        let mut out = vec![0.0; states.len()];
        let group = weighted_root(states);
        exec_weighted(&self.program.ops, Vec::new(), group, &mut |group: WeightedGroup| {
            let values = obs.expectation_batch(&group.states);
            for (ctx, v) in group.rows.iter().zip(values) {
                out[ctx.orig] += v;
            }
        });
        out
    }

    /// The surviving leaf weights of every row of an exact sweep, in that
    /// row's depth-first branch order — the diagnostic view of
    /// [`expectation_sweep`](Self::expectation_sweep) the property suites
    /// pin: for an abort-free program on normalised inputs each row's
    /// weights sum to 1 (up to the [`BRANCH_PRUNE`] threshold), because
    /// its branch tree is trace-preserving.
    pub fn leaf_weights(&self, states: BatchedStates) -> Vec<Vec<f64>> {
        let total_rows = states.len();
        let mut out: Vec<Vec<f64>> = vec![Vec::new(); total_rows];
        if total_rows == 0 {
            return out;
        }
        let group = weighted_root(states);
        exec_weighted(&self.program.ops, Vec::new(), group, &mut |group: WeightedGroup| {
            for ctx in &group.rows {
                out[ctx.orig].push(ctx.weight);
            }
        });
        out
    }

    /// Executes the program over the whole batch, branch-grouping on every
    /// measurement; returns the surviving outcome-homogeneous groups and
    /// the aborted rows. With `fuse`, straight-line segments accumulate
    /// per-qubit 1q products instead of applying each gate immediately.
    fn sweep(
        &self,
        states: BatchedStates,
        samplers: &mut [ShotSampler],
        fuse: bool,
    ) -> (Vec<Group>, Vec<RowCtx>) {
        assert_eq!(
            states.len(),
            samplers.len(),
            "one sampler stream per batch row"
        );
        let group = Group {
            rows: (0..states.len())
                .map(|orig| RowCtx {
                    orig,
                    outcomes: Vec::new(),
                })
                .collect(),
            pending: vec![None; states.num_qubits()],
            states,
        };
        let mut finished = Vec::new();
        let mut aborted = Vec::new();
        if group.rows.is_empty() {
            return (finished, aborted);
        }
        exec(
            &self.program.ops,
            Vec::new(),
            group,
            samplers,
            fuse,
            &mut finished,
            &mut aborted,
        );
        (finished, aborted)
    }
}

/// Executes `ops` on `group`, with `cont` the stack of suspended op slices
/// to resume (innermost last) once `ops` is exhausted — the continuation a
/// `case` arm returns into.
fn exec<'p>(
    ops: &'p [TrajOp],
    cont: Vec<&'p [TrajOp]>,
    mut group: Group,
    samplers: &mut [ShotSampler],
    fuse: bool,
    finished: &mut Vec<Group>,
    aborted: &mut Vec<RowCtx>,
) {
    for (i, op) in ops.iter().enumerate() {
        match op {
            TrajOp::Gate { matrix, targets } => {
                if !fuse {
                    // Bitwise mode: one batched kernel call streams the
                    // operator over every row, in program order.
                    group.states.apply_gate(matrix, targets);
                } else if let [t] = targets[..] {
                    group.pending[t] = Some(match group.pending[t].take() {
                        None => matrix.clone(),
                        Some(prev) => matrix.mul(&prev),
                    });
                } else {
                    // A multi-qubit gate orders against the pending
                    // rotations of its own targets only.
                    group.flush(targets);
                    group.states.apply_gate(matrix, targets);
                }
            }
            TrajOp::Abort => {
                // Dropped rows never need their pending products.
                aborted.append(&mut group.rows);
                return;
            }
            TrajOp::Init { meas, flip, target } => {
                group.flush_all();
                let rest = &ops[i + 1..];
                for (outcome, mut sub) in measure_group(group, meas, samplers) {
                    if outcome == 1 {
                        sub.states.apply_gate(flip, &[*target]);
                    }
                    exec(rest, cont.clone(), sub, samplers, fuse, finished, aborted);
                }
                return;
            }
            TrajOp::Case { meas, arms } => {
                group.flush_all();
                let rest = &ops[i + 1..];
                for (outcome, sub) in measure_group(group, meas, samplers) {
                    let mut arm_cont = cont.clone();
                    arm_cont.push(rest);
                    exec(&arms[outcome].ops, arm_cont, sub, samplers, fuse, finished, aborted);
                }
                return;
            }
        }
    }
    let mut cont = cont;
    match cont.pop() {
        // Pending products flow into the continuation: there is no
        // measurement between an arm's trailing gates and the join.
        Some(next) => exec(next, cont, group, samplers, fuse, finished, aborted),
        None => {
            group.flush_all();
            finished.push(group);
        }
    }
}

/// Measures every row of `group` at once (each row drawing from its own
/// stream, collapsing through the serial-identical [`collapse_with_draw`])
/// and regroups the rows into outcome-homogeneous sub-batches.
///
/// Sub-batches are returned in ascending outcome order; rows keep their
/// relative order inside each sub-batch, so the regrouping is a pure
/// deterministic function of the drawn outcomes.
fn measure_group(
    group: Group,
    meas: &Measurement,
    samplers: &mut [ShotSampler],
) -> Vec<(usize, Group)> {
    debug_assert!(
        group.pending.iter().all(Option::is_none),
        "pending products must be flushed before measuring"
    );
    let Group { states, rows, pending } = group;
    let mut buckets: Vec<(Vec<RowCtx>, Vec<StateVector>)> = (0..meas.num_outcomes())
        .map(|_| (Vec::new(), Vec::new()))
        .collect();
    for (r, mut ctx) in rows.into_iter().enumerate() {
        let psi = states.row_state(r);
        let u = samplers[ctx.orig].next_uniform();
        let (outcome, collapsed) = collapse_with_draw(u, &psi, meas);
        ctx.outcomes.push(outcome);
        buckets[outcome].0.push(ctx);
        buckets[outcome].1.push(collapsed);
    }
    buckets
        .into_iter()
        .enumerate()
        .filter(|(_, (rows, _))| !rows.is_empty())
        .map(|(outcome, (rows, collapsed))| {
            (
                outcome,
                Group {
                    states: BatchedStates::from_states(&collapsed),
                    rows,
                    pending: pending.clone(),
                },
            )
        })
        .collect()
}

/// The root group of an exact sweep: every input row with its own squared
/// norm as the initial weight (1 for normalised inputs).
fn weighted_root(states: BatchedStates) -> WeightedGroup {
    let rows = (0..states.len())
        .map(|orig| WeightedRow {
            orig,
            weight: states.row(orig).iter().map(|z| z.norm_sqr()).sum(),
        })
        .collect();
    WeightedGroup {
        pending: vec![None; states.num_qubits()],
        rows,
        states,
    }
}

/// Executes `ops` on `group` **exactly**, with `cont` the stack of
/// suspended op slices to resume (innermost last) once `ops` is exhausted.
/// At every measurement the group forks into outcome-homogeneous
/// sub-groups via [`branch_groups`]; `leaf` is called once per surviving
/// leaf group (pending products flushed).
fn exec_weighted<'p>(
    ops: &'p [TrajOp],
    cont: Vec<&'p [TrajOp]>,
    mut group: WeightedGroup,
    leaf: &mut dyn FnMut(WeightedGroup),
) {
    for (i, op) in ops.iter().enumerate() {
        match op {
            TrajOp::Gate { matrix, targets } => {
                if let [t] = targets[..] {
                    group.pending[t] = Some(match group.pending[t].take() {
                        None => matrix.clone(),
                        Some(prev) => matrix.mul(&prev),
                    });
                } else {
                    // A multi-qubit gate orders against the pending
                    // rotations of its own targets only.
                    flush_targets(&mut group.states, &mut group.pending, targets);
                    group.states.apply_gate(matrix, targets);
                }
            }
            TrajOp::Abort => return, // aborted branches contribute nothing
            TrajOp::Init { meas, flip, target } => {
                flush_all(&mut group.states, &mut group.pending);
                let rest = &ops[i + 1..];
                for (outcome, mut sub) in branch_groups(group, meas) {
                    if outcome == 1 {
                        sub.states.apply_gate(flip, &[*target]);
                    }
                    exec_weighted(rest, cont.clone(), sub, leaf);
                }
                return;
            }
            TrajOp::Case { meas, arms } => {
                flush_all(&mut group.states, &mut group.pending);
                let rest = &ops[i + 1..];
                for (outcome, sub) in branch_groups(group, meas) {
                    let mut arm_cont = cont.clone();
                    arm_cont.push(rest);
                    exec_weighted(&arms[outcome].ops, arm_cont, sub, leaf);
                }
                return;
            }
        }
    }
    let mut cont = cont;
    match cont.pop() {
        // Pending products flow into the continuation: there is no
        // measurement between an arm's trailing gates and the join.
        Some(next) => exec_weighted(next, cont, group, leaf),
        None => {
            flush_all(&mut group.states, &mut group.pending);
            leaf(group);
        }
    }
}

/// Forks a weighted group at a measurement: every row's branch
/// probabilities are computed **first**
/// ([`Measurement::branch_probabilities_pure`] — one bucketed `|amp|²`
/// pass for computational measurements), then only the branches above the
/// pruning threshold are materialised ([`Measurement::collapse_pure`],
/// kept **unnormalised** so the branch probability rides inside the
/// amplitudes, as exact branch enumeration requires), and the surviving
/// rows regroup into outcome-homogeneous sub-groups.
///
/// Sub-groups are returned in ascending outcome order and rows keep their
/// relative order inside each one — for a single row this is exactly the
/// depth-first branch order of the per-row enumerators, so leaf
/// accumulation per row follows the same order batched as alone.
fn branch_groups(group: WeightedGroup, meas: &Measurement) -> Vec<(usize, WeightedGroup)> {
    debug_assert!(
        group.pending.iter().all(Option::is_none),
        "pending products must be flushed before measuring"
    );
    let WeightedGroup { states, rows, pending } = group;
    let n = states.num_qubits();
    // Collapsed rows are written straight onto each outcome's amplitude
    // block (`collapse_amps_into`) — no per-row state round trips.
    let mut buckets: Vec<(Vec<WeightedRow>, Vec<qdp_linalg::C64>)> = (0..meas.num_outcomes())
        .map(|_| (Vec::new(), Vec::new()))
        .collect();
    let mut probs = Vec::new();
    for (r, ctx) in rows.into_iter().enumerate() {
        let amps = states.row(r);
        meas.branch_probabilities_into(n, amps, &mut probs);
        for (outcome, &weight) in probs.iter().enumerate() {
            if weight > BRANCH_PRUNE {
                buckets[outcome].0.push(WeightedRow {
                    orig: ctx.orig,
                    weight,
                });
                meas.collapse_amps_into(n, amps, outcome, &mut buckets[outcome].1);
            }
        }
    }
    buckets
        .into_iter()
        .enumerate()
        .filter(|(_, (rows, _))| !rows.is_empty())
        .map(|(outcome, (rows, block))| {
            let states = BatchedStates::from_raw(rows.len(), n, block);
            (
                outcome,
                WeightedGroup {
                    states,
                    rows,
                    pending: pending.clone(),
                },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observable::Observable;

    fn rotation_y(theta: f64) -> Matrix {
        Matrix::rotation_from_involution(&Matrix::pauli_y(), theta)
    }

    #[test]
    fn straight_line_batch_matches_per_row_gates() {
        let mut p = TrajProgram::new();
        p.push_gate(Matrix::hadamard(), vec![0]);
        p.push_gate(Matrix::cnot(), vec![0, 1]);
        p.push_gate(rotation_y(0.7), vec![1]);
        let engine = ShotEngine::new(p);
        let inputs: Vec<StateVector> = (0..5).map(|k| StateVector::basis_state(2, k % 4)).collect();
        let mut samplers: Vec<ShotSampler> = (0..5).map(|s| ShotSampler::derived(3, s)).collect();
        let rows = engine.run(BatchedStates::from_states(&inputs), &mut samplers);
        for (input, row) in inputs.iter().zip(&rows) {
            let mut expected = input.clone();
            expected.apply_gate(&Matrix::hadamard(), &[0]);
            expected.apply_gate(&Matrix::cnot(), &[0, 1]);
            expected.apply_gate(&rotation_y(0.7), &[1]);
            assert!(row.outcomes.is_empty());
            assert_eq!(
                row.state.as_ref().unwrap().amplitudes(),
                expected.amplitudes()
            );
        }
    }

    #[test]
    fn init_resets_every_row_to_zero() {
        let mut p = TrajProgram::new();
        p.push_gate(Matrix::hadamard(), vec![0]);
        p.push_init(0);
        let engine = ShotEngine::new(p);
        let mut samplers: Vec<ShotSampler> = (0..32).map(|s| ShotSampler::derived(7, s)).collect();
        let rows = engine.run(BatchedStates::zero(32, 1), &mut samplers);
        let mut seen = [false, false];
        for row in &rows {
            assert_eq!(row.outcomes.len(), 1);
            seen[row.outcomes[0]] = true;
            let state = row.state.as_ref().unwrap();
            assert_eq!(state.classical_bit(0), Some(false));
        }
        // Both measurement outcomes occur across 32 shots of |+⟩.
        assert!(seen[0] && seen[1], "outcomes {seen:?}");
    }

    #[test]
    fn abort_rows_are_reported_as_none() {
        let mut killed = TrajProgram::new();
        killed.push_abort();
        let mut p = TrajProgram::new();
        p.push_gate(Matrix::hadamard(), vec![0]);
        p.push_case(
            Measurement::computational(vec![0]),
            vec![TrajProgram::new(), killed],
        );
        let engine = ShotEngine::new(p);
        let mut samplers: Vec<ShotSampler> = (0..64).map(|s| ShotSampler::derived(11, s)).collect();
        let rows = engine.run(BatchedStates::zero(64, 1), &mut samplers);
        let mut aborted = 0usize;
        for row in &rows {
            match row.outcomes[0] {
                0 => assert!(row.state.is_some()),
                _ => {
                    assert!(row.state.is_none());
                    aborted += 1;
                }
            }
        }
        assert!(aborted > 0, "no trajectory took the aborting arm");
    }

    #[test]
    fn sample_sweep_matches_run_plus_serial_sampling() {
        // One engine call with a read-out must equal running trajectories
        // first and sampling each surviving state with the continued
        // per-row stream. (Every straight-line segment here is a single
        // gate, so sweep fusion is trivially the identity and the
        // agreement is bitwise.)
        let mut arm1 = TrajProgram::new();
        arm1.push_gate(rotation_y(1.1), vec![1]);
        let mut p = TrajProgram::new();
        p.push_gate(Matrix::hadamard(), vec![0]);
        p.push_case(
            Measurement::computational(vec![0]),
            vec![TrajProgram::new(), arm1],
        );
        let engine = ShotEngine::new(p);
        let obs = Observable::pauli_z(2, 1);
        let readout = ProjectiveObservable::new(&obs);
        let shots = 40;

        let batch = BatchedStates::zero(shots, 2);
        let mut samplers: Vec<ShotSampler> =
            (0..shots).map(|s| ShotSampler::derived(5, s as u64)).collect();
        let samples = engine.sample_sweep(batch, &mut samplers, &readout);

        let batch = BatchedStates::zero(shots, 2);
        let mut samplers: Vec<ShotSampler> =
            (0..shots).map(|s| ShotSampler::derived(5, s as u64)).collect();
        let rows = engine.run(batch, &mut samplers);
        for (row, (sampler, sample)) in rows.iter().zip(samplers.iter_mut().zip(&samples)) {
            let expected = match &row.state {
                None => 0.0,
                Some(psi) => sampler.sample_observable(psi, &obs),
            };
            assert_eq!(expected.to_bits(), sample.to_bits());
        }
    }

    #[test]
    fn estimate_expectation_converges_and_is_deterministic() {
        let mut p = TrajProgram::new();
        p.push_gate(rotation_y(0.8), vec![0]);
        let engine = ShotEngine::new(p);
        let obs = Observable::pauli_z(1, 0);
        let psi = StateVector::zero_state(1);
        let est = engine.estimate_expectation(&psi, &obs, 40_000, 2024);
        assert!((est - 0.8f64.cos()).abs() < 0.02, "estimate {est}");
        let again = engine.estimate_expectation(&psi, &obs, 40_000, 2024);
        assert_eq!(est.to_bits(), again.to_bits());
    }

    #[test]
    fn empty_batch_is_harmless() {
        let engine = ShotEngine::new(TrajProgram::new());
        let rows = engine.run(BatchedStates::from_states(&[]), &mut []);
        assert!(rows.is_empty());
        assert!(engine
            .expectation_sweep(BatchedStates::from_states(&[]), &Observable::pauli_z(1, 0))
            .is_empty());
    }

    /// The per-row exact branch enumerator — the oracle of the weighted
    /// sweep, mirroring `qdp_ad::ResolvedProgram::run_from` on the
    /// trajectory IR (Init enumerated as measure + flip).
    fn enumerate_branches(ops: &[TrajOp], mut psi: StateVector, out: &mut Vec<StateVector>) {
        for (i, op) in ops.iter().enumerate() {
            match op {
                TrajOp::Gate { matrix, targets } => psi.apply_gate(matrix, targets),
                TrajOp::Abort => return,
                TrajOp::Init { meas, flip, target } => {
                    for b in meas.branches_pure(&psi) {
                        if b.probability > BRANCH_PRUNE {
                            let mut state = b.state;
                            if b.outcome == 1 {
                                state.apply_gate(flip, &[*target]);
                            }
                            enumerate_branches(&ops[i + 1..], state, out);
                        }
                    }
                    return;
                }
                TrajOp::Case { meas, arms } => {
                    for b in meas.branches_pure(&psi) {
                        if b.probability > BRANCH_PRUNE {
                            let mut mids = Vec::new();
                            enumerate_branches(&arms[b.outcome].ops, b.state, &mut mids);
                            for mid in mids {
                                enumerate_branches(&ops[i + 1..], mid, out);
                            }
                        }
                    }
                    return;
                }
            }
        }
        out.push(psi);
    }

    fn branching_program() -> TrajProgram {
        // H; case M[0] = 0 -> RY(1.1)[1], 1 -> (RY(0.4)[0]; init 1) end; CNOT
        let mut arm0 = TrajProgram::new();
        arm0.push_gate(rotation_y(1.1), vec![1]);
        let mut arm1 = TrajProgram::new();
        arm1.push_gate(rotation_y(0.4), vec![0]);
        arm1.push_init(1);
        let mut p = TrajProgram::new();
        p.push_gate(Matrix::hadamard(), vec![0]);
        p.push_case(Measurement::computational(vec![0]), vec![arm0, arm1]);
        p.push_gate(Matrix::cnot(), vec![0, 1]);
        p
    }

    #[test]
    fn expectation_sweep_matches_per_row_enumeration() {
        let engine = ShotEngine::new(branching_program());
        let obs = Observable::pauli_z(2, 1);
        let inputs: Vec<StateVector> = (0..5)
            .map(|k| {
                let mut s = StateVector::basis_state(2, k % 4);
                s.apply_gate(&rotation_y(0.3 + 0.2 * k as f64), &[0]);
                s
            })
            .collect();
        let swept = engine.expectation_sweep(BatchedStates::from_states(&inputs), &obs);
        for (r, psi) in inputs.iter().enumerate() {
            let mut leaves = Vec::new();
            enumerate_branches(&engine.program().ops, psi.clone(), &mut leaves);
            let expected: f64 = leaves.iter().map(|b| obs.expectation_pure(b)).sum();
            assert!(
                (swept[r] - expected).abs() < 1e-12,
                "row {r}: swept {} vs enumerated {expected}",
                swept[r]
            );
        }
    }

    #[test]
    fn expectation_sweep_rows_are_invariant_under_batch_composition() {
        // Per-row results must carry identical bits whether the row runs
        // alone or inside any batch, in any order.
        let engine = ShotEngine::new(branching_program());
        let obs = Observable::pauli_z(2, 1);
        let inputs: Vec<StateVector> = (0..6)
            .map(|k| {
                let mut s = StateVector::basis_state(2, k % 4);
                s.apply_gate(&rotation_y(0.9 - 0.1 * k as f64), &[1]);
                s
            })
            .collect();
        let together = engine.expectation_sweep(BatchedStates::from_states(&inputs), &obs);
        for (r, psi) in inputs.iter().enumerate() {
            let alone =
                engine.expectation_sweep(BatchedStates::from_states(std::slice::from_ref(psi)), &obs)[0];
            assert_eq!(together[r].to_bits(), alone.to_bits(), "row {r}");
        }
        let reversed: Vec<StateVector> = inputs.iter().rev().cloned().collect();
        let backwards = engine.expectation_sweep(BatchedStates::from_states(&reversed), &obs);
        for (r, v) in together.iter().enumerate() {
            assert_eq!(
                v.to_bits(),
                backwards[inputs.len() - 1 - r].to_bits(),
                "row {r} under reversal"
            );
        }
    }

    #[test]
    fn leaf_weights_sum_to_one_for_abort_free_programs() {
        let engine = ShotEngine::new(branching_program());
        let inputs: Vec<StateVector> = (0..4).map(|k| StateVector::basis_state(2, k)).collect();
        let weights = engine.leaf_weights(BatchedStates::from_states(&inputs));
        for (r, row) in weights.iter().enumerate() {
            let total: f64 = row.iter().sum();
            assert!(
                (total - 1.0).abs() < 1e-9,
                "row {r}: leaf weights {row:?} sum to {total}"
            );
            assert!(row.iter().all(|&w| w > 0.0), "row {r}: {row:?}");
        }
    }

    #[test]
    fn aborted_branches_contribute_nothing() {
        // H; case M[0] = 0 -> skip, 1 -> abort end: only the |0⟩ branch
        // (weight 1/2) reads out.
        let mut killed = TrajProgram::new();
        killed.push_abort();
        let mut p = TrajProgram::new();
        p.push_gate(Matrix::hadamard(), vec![0]);
        p.push_case(
            Measurement::computational(vec![0]),
            vec![TrajProgram::new(), killed],
        );
        let engine = ShotEngine::new(p);
        let obs = Observable::projector_zero(1, 0);
        let swept = engine.expectation_sweep(BatchedStates::zero(3, 1), &obs);
        for (r, v) in swept.iter().enumerate() {
            assert!((v - 0.5).abs() < 1e-12, "row {r}: {v}");
        }
        let weights = engine.leaf_weights(BatchedStates::zero(2, 1));
        for row in &weights {
            assert_eq!(row.len(), 1, "only the surviving branch leaves a leaf");
            assert!((row[0] - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "one sampler stream per batch row")]
    fn mismatched_sampler_count_panics() {
        let engine = ShotEngine::new(TrajProgram::new());
        let mut samplers = vec![ShotSampler::seeded(1)];
        let _ = engine.run(BatchedStates::zero(2, 1), &mut samplers);
    }
}
