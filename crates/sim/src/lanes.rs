//! Fixed-width lane-split reductions over split-plane amplitude data.
//!
//! Every `|amp|²` reduction in the simulator — state norms, batched row
//! norms, measurement probability buckets — runs through this module so the
//! floating-point summation order is defined in exactly one place.
//!
//! # The re-pinned determinism contract (PR 7)
//!
//! A reduction over amplitudes `0..len` maintains [`LANES`] independent
//! partial sums; amplitude `i` contributes `re[i]² + im[i]²` (the exact
//! [`qdp_linalg::C64::norm_sqr`] expression) to partial `i % LANES`, in
//! ascending `i` order, and the partials are combined by the fixed tree
//! `(p0 + p1) + (p2 + p3)`. The lane of an amplitude is a function of its
//! **global index alone** — never of a chunk offset, thread id, or bucket —
//! so:
//!
//! * results are bit-identical under any thread count (parallel callers
//!   reduce serially; only gate kernels parallelise, elementwise),
//! * a bucketed sweep that partitions indices over outcome buckets produces
//!   for each bucket exactly the bits a post-collapse norm of that bucket's
//!   members produces, because the non-members contribute exact `+0.0`
//!   terms that are additive identities on the non-negative partials, and
//! * the independent partials break the loop-carried dependency of a naive
//!   serial sum, which is what lets the autovectorizer keep [`LANES`]
//!   accumulators in one vector register.
//!
//! The pre-PR-7 contract summed serially in index order; the absolute
//! values differ from that order by ordinary rounding (≤ a few ulps on
//! normalised states), and every oracle that pinned the old order has been
//! re-pinned against this one (see `crates/sim/tests/layout_differential.rs`).

/// Number of independent partial sums in every lane-split reduction.
pub(crate) const LANES: usize = 4;

/// Minimum aligned-run length worth handing to the explicit vector
/// accumulator ([`crate::simd::accumulate_lanes`]). The bits are identical
/// either way — this only decides who runs. `#[target_feature]` kernels
/// cannot inline into their callers, so short runs (the block-measurement
/// sweeps fold mask-length runs of 32–128 amplitudes) pay a call + dispatch
/// per run that outweighs the vector win; they stay on the inlined scalar
/// block loop, which the autovectorizer already packs.
const SIMD_MIN_LEN: usize = 256;

/// The fixed combine tree over the four partials.
#[inline(always)]
pub(crate) fn combine(acc: [f64; LANES]) -> f64 {
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// Lane-split `Σᵢ re[i]² + im[i]²` over whole planes.
///
/// # Panics
///
/// Debug-asserts equal plane lengths.
pub(crate) fn sum_norm_sqr(re: &[f64], im: &[f64]) -> f64 {
    debug_assert_eq!(re.len(), im.len(), "re/im planes must have equal lengths");
    combine(lane_partials(re, im, 0))
}

/// The raw partials of a lane-split norm reduction, with amplitude `i`
/// assigned to lane `(start + i) % LANES` — `start` is the slice's global
/// offset, so sub-slice reductions can keep the whole-array lane labels.
#[inline]
pub(crate) fn lane_partials(re: &[f64], im: &[f64], start: usize) -> [f64; LANES] {
    debug_assert_eq!(re.len(), im.len(), "re/im planes must have equal lengths");
    let mut acc = [0.0f64; LANES];
    let n = re.len();
    if start.is_multiple_of(LANES) {
        // Aligned fast path: lane j of a 4-wide block is j, every block.
        // `chunks_exact` hands the loop panic-free fixed-size blocks —
        // indexed `re[i + 3]` accesses carry bounds checks that force the
        // codegen scalar and spill the partials every element.
        let main = n & !(LANES - 1);
        // Length gate first: short runs skip the tier dispatch entirely
        // (its atomic loads are per-call overhead on the run-folding paths).
        let tier = if main >= SIMD_MIN_LEN {
            crate::simd::active_tier()
        } else {
            crate::simd::SimdTier::Scalar
        };
        if tier != crate::simd::SimdTier::Scalar {
            // The explicit 4-lane vector accumulator carries the exact
            // per-lane fold bits, so the re-pinned contract is unchanged.
            crate::simd::accumulate_lanes(tier, &mut acc, &re[..main], &im[..main]);
        } else {
            for (r4, i4) in re[..main].chunks_exact(LANES).zip(im[..main].chunks_exact(LANES)) {
                acc[0] += r4[0] * r4[0] + i4[0] * i4[0];
                acc[1] += r4[1] * r4[1] + i4[1] * i4[1];
                acc[2] += r4[2] * r4[2] + i4[2] * i4[2];
                acc[3] += r4[3] * r4[3] + i4[3] * i4[3];
            }
        }
        for j in main..n {
            acc[j % LANES] += re[j] * re[j] + im[j] * im[j];
        }
    } else {
        for j in 0..n {
            acc[(start + j) % LANES] += re[j] * re[j] + im[j] * im[j];
        }
    }
    acc
}

/// Adds the lane-split norm contributions of the run `[start, start+len)`
/// of the planes into `acc`, lanes labelled by global index. Bucketed
/// probability sweeps call this once per constant-outcome run; summing a
/// bucket's runs in ascending order reproduces, bit for bit, what
/// [`sum_norm_sqr`] would produce over the bucket's members alone padded
/// with `+0.0` non-members — the block-vs-collapsed-norm pin relies on it.
///
/// Each element is folded into its lane's running partial **one at a
/// time** (never via a run-local subtotal): the zero-padded sweep is a
/// strictly sequential per-lane fold, and `x + 0.0 == x` is only an exact
/// identity element-by-element — a run-local subtotal would regroup the
/// additions and change the bits for runs longer than [`LANES`].
#[inline]
pub(crate) fn add_run(acc: &mut [f64; LANES], re: &[f64], im: &[f64], start: usize, len: usize) {
    debug_assert!(start + len <= re.len() && start + len <= im.len(), "run out of bounds");
    let end = start + len;
    if start.is_multiple_of(LANES) {
        // Aligned fast path: one element per lane per 4-wide block, folded
        // straight into the caller's partials through panic-free
        // `chunks_exact` blocks (see [`lane_partials`]).
        let main = start + (len & !(LANES - 1));
        // Length gate first, as in [`lane_partials`]: the bucketed sweeps
        // fold thousands of short runs, so the dispatch must cost nothing
        // there.
        let tier = if main - start >= SIMD_MIN_LEN {
            crate::simd::active_tier()
        } else {
            crate::simd::SimdTier::Scalar
        };
        if tier != crate::simd::SimdTier::Scalar {
            // Same vector accumulator as [`lane_partials`]: identical
            // per-lane fold, folded into the caller's running partials.
            crate::simd::accumulate_lanes(tier, acc, &re[start..main], &im[start..main]);
        } else {
            for (r4, i4) in
                re[start..main].chunks_exact(LANES).zip(im[start..main].chunks_exact(LANES))
            {
                acc[0] += r4[0] * r4[0] + i4[0] * i4[0];
                acc[1] += r4[1] * r4[1] + i4[1] * i4[1];
                acc[2] += r4[2] * r4[2] + i4[2] * i4[2];
                acc[3] += r4[3] * r4[3] + i4[3] * i4[3];
            }
        }
        for j in main..end {
            acc[j % LANES] += re[j] * re[j] + im[j] * im[j];
        }
    } else {
        for j in start..end {
            acc[j % LANES] += re[j] * re[j] + im[j] * im[j];
        }
    }
}

/// Lane-split `Σᵢ |amps[i]|²` over an interleaved `C64` slice — the same
/// contract as [`sum_norm_sqr`] ([`qdp_linalg::C64::norm_sqr`] **is**
/// `re² + im²`), kept for the retained AoS oracle paths so their sums
/// carry the identical bits as the split-plane engine.
pub(crate) fn sum_norm_sqr_aos(amps: &[qdp_linalg::C64]) -> f64 {
    let mut acc = [0.0f64; LANES];
    for (i, a) in amps.iter().enumerate() {
        acc[i % LANES] += a.norm_sqr();
    }
    combine(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planes(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let re: Vec<f64> = (0..n).map(|_| next()).collect();
        let im: Vec<f64> = (0..n).map(|_| next()).collect();
        (re, im)
    }

    /// The contract, written out naively: ascending index, lane = i % 4,
    /// fixed combine.
    fn contract_sum(re: &[f64], im: &[f64]) -> f64 {
        let mut acc = [0.0f64; LANES];
        for i in 0..re.len() {
            acc[i % LANES] += re[i] * re[i] + im[i] * im[i];
        }
        combine(acc)
    }

    #[test]
    fn sum_matches_contract_at_all_lengths() {
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 31, 32, 33, 1024, 1027] {
            let (re, im) = planes(n, n as u64 + 3);
            assert_eq!(
                sum_norm_sqr(&re, &im).to_bits(),
                contract_sum(&re, &im).to_bits(),
                "n={n}"
            );
        }
    }

    #[test]
    fn run_accumulation_matches_zero_padded_whole_sweep() {
        // A bucket holding runs [0,4) and [8,12) of a 16-amp array must sum
        // to the same bits as a whole-array sweep where the other runs are
        // +0.0 — the bucket/collapse bitwise pin.
        let (re, im) = planes(16, 42);
        let mut acc = [0.0f64; LANES];
        add_run(&mut acc, &re, &im, 0, 4);
        add_run(&mut acc, &re, &im, 8, 4);
        let bucket = combine(acc);

        let mut padded_re = vec![0.0f64; 16];
        let mut padded_im = vec![0.0f64; 16];
        padded_re[0..4].copy_from_slice(&re[0..4]);
        padded_im[0..4].copy_from_slice(&im[0..4]);
        padded_re[8..12].copy_from_slice(&re[8..12]);
        padded_im[8..12].copy_from_slice(&im[8..12]);
        assert_eq!(bucket.to_bits(), sum_norm_sqr(&padded_re, &padded_im).to_bits());
    }

    #[test]
    fn unaligned_runs_keep_global_lane_labels() {
        // Runs of length 2 starting at odd-multiple-of-2 offsets: lanes must
        // still be labelled by global index, so interleaved buckets exactly
        // partition the whole-array partials.
        let (re, im) = planes(32, 7);
        let mut even = [0.0f64; LANES];
        let mut odd = [0.0f64; LANES];
        for start in (0..32).step_by(4) {
            add_run(&mut even, &re, &im, start, 2);
            add_run(&mut odd, &re, &im, start + 2, 2);
        }
        let mut both = [0.0f64; LANES];
        for j in 0..LANES {
            both[j] = even[j] + odd[j];
        }
        // Each lane's contributions arrive in ascending order within each
        // bucket, so the partition identity holds lane by lane only when
        // addition grouping matches; check the weaker but sufficient
        // property the engine relies on: each bucket equals its own
        // zero-padded whole-array sweep.
        let mut padded_re = vec![0.0f64; 32];
        let mut padded_im = vec![0.0f64; 32];
        for start in (0..32).step_by(4) {
            padded_re[start..start + 2].copy_from_slice(&re[start..start + 2]);
            padded_im[start..start + 2].copy_from_slice(&im[start..start + 2]);
        }
        assert_eq!(
            combine(even).to_bits(),
            sum_norm_sqr(&padded_re, &padded_im).to_bits()
        );
        let _ = both;
    }

    #[test]
    fn long_runs_match_zero_padded_whole_sweep() {
        // Runs longer than LANES put several elements in the same lane per
        // run; the fold must stay strictly sequential per lane (no run-local
        // subtotals) to match the zero-padded sweep bit for bit. This is the
        // k=1 measurement shape with mask 8 on a 32-amp row.
        let (re, im) = planes(32, 99);
        let mut acc = [0.0f64; LANES];
        add_run(&mut acc, &re, &im, 0, 8);
        add_run(&mut acc, &re, &im, 16, 8);
        let bucket = combine(acc);

        let mut padded_re = vec![0.0f64; 32];
        let mut padded_im = vec![0.0f64; 32];
        padded_re[0..8].copy_from_slice(&re[0..8]);
        padded_im[0..8].copy_from_slice(&im[0..8]);
        padded_re[16..24].copy_from_slice(&re[16..24]);
        padded_im[16..24].copy_from_slice(&im[16..24]);
        assert_eq!(bucket.to_bits(), sum_norm_sqr(&padded_re, &padded_im).to_bits());
    }

    #[test]
    fn aos_sum_matches_plane_sum_bitwise() {
        let (re, im) = planes(33, 5);
        let amps: Vec<qdp_linalg::C64> = re
            .iter()
            .zip(&im)
            .map(|(&r, &i)| qdp_linalg::C64::new(r, i))
            .collect();
        assert_eq!(
            sum_norm_sqr_aos(&amps).to_bits(),
            sum_norm_sqr(&re, &im).to_bits()
        );
    }

    #[test]
    fn empty_planes_sum_to_positive_zero() {
        assert_eq!(sum_norm_sqr(&[], &[]).to_bits(), 0.0f64.to_bits());
    }
}
