//! Batched trajectory execution — **sampled and exact** sweeps over
//! [`BatchedStates`], on one branching IR.
//!
//! [`TrajProgram`] is the single lowered form every branching program runs
//! as, in both execution modes:
//!
//! * **Sampled** (Section 7's shot-noise model): [`ShotEngine::run`] /
//!   [`ShotEngine::sample_sweep`] draw one measurement outcome per row
//!   from its own [`ShotSampler`] stream and regroup rows into
//!   outcome-homogeneous sub-batches (*branch-grouped batching*), so a
//!   Chernoff budget of `O(m²/δ²)` trajectories executes as batched
//!   kernel calls instead of one state at a time.
//! * **Exact** (*branch-weighted*): [`ShotEngine::expectation_sweep`]
//!   measures all rows at once, computes per-outcome branch probabilities,
//!   and forks the block into **every** surviving outcome at once — the
//!   same regrouping machinery generalized over a weight-carrying row
//!   descriptor. Sub-batches carry accumulated branch weights
//!   (probabilities, riding inside the unnormalised amplitudes) instead of
//!   sampled draws, and leaf read-outs sum weighted expectations per
//!   original row. This is exact branch enumeration at batched-kernel
//!   speed — the executor behind `qdp_ad`'s exact batched evaluation of
//!   `case`/`init`/while-unrolled programs.
//!
//! Both modes share the straight-line machinery: gate segments stream as
//! single batched kernel calls (with per-qubit 2×2 fusion of commuting
//! single-qubit gates where the mode allows), and measurements are
//! **block-level**: one bucketed probability sweep over the whole group's
//! contiguous amplitude block
//! ([`Measurement::branch_probabilities_block`]), one strided collapse
//! pass per surviving outcome ([`Measurement::collapse_block_into`]), and
//! a pooled [`RegroupScratch`] arena recycling every buffer a fork needs —
//! so a measurement performs no per-row kernel calls and, once the pools
//! are warm, no allocations at all.
//!
//! # Determinism contract
//!
//! Sampled sweeps: every row owns an independent [`ShotSampler`] stream.
//! Measurement collapse goes through the same [`collapse_with_draw`] the
//! serial sampler uses, gate streaming goes through
//! [`BatchedStates::apply_gate`] (bit-for-bit equal to per-row
//! application), and regrouping preserves row order within each outcome —
//! so a batched sweep produces **bitwise** the same outcomes and collapsed
//! states as running each row alone with the same stream, no matter how
//! rows are grouped or how many threads run the kernels.
//! `crates/core/tests/shot_engine_differential.rs` is the oracle.
//!
//! Exact sweeps are deterministic, full stop: per-row results are a pure
//! function of the program and that row's input, **bit-for-bit invariant
//! under thread count, batch decomposition, and row order** (every
//! batched kernel call and leaf read-out performs per-row-identical
//! floating-point operations, and each row's leaves accumulate in its own
//! depth-first branch order). Against the per-row branch enumerator they
//! agree to ≪ 1e-12 (fusion and leaf-order differences move rounding,
//! nothing else) — `crates/core/tests/branch_weighted_differential.rs` is
//! the oracle.

use crate::batch::BatchedStates;
use crate::error::{HealthConfig, HealthPolicy, QdpError};
use crate::measurement::Measurement;
use crate::observable::Observable;
use crate::sampling::{collapse_with_draw, ProjectiveObservable, ShotSampler};
use crate::state::StateVector;
use qdp_linalg::{C64, Matrix};

/// Rows per parallel shot tile of [`ShotEngine::estimate_expectation`].
///
/// Fixed (not derived from the thread count) so the tile partition — and
/// with it every drawn value and every rounding order — is identical under
/// any `qdp_par` configuration.
pub const SHOT_TILE: usize = 256;

/// Rows per parallel tile of the exact branch-weighted sweep
/// ([`ShotEngine::expectation_sweep`]). Smaller than [`SHOT_TILE`]
/// because exact batches are datasets (tens of rows), not shot blocks:
/// the tile must be small enough that one branching program over one
/// training batch still fans out across workers. Fixed for a predictable
/// partition; per-row bits do not depend on it.
pub const EXACT_TILE: usize = 8;

/// One operation of a sampled-trajectory program.
#[derive(Clone, Debug)]
enum TrajOp {
    /// An operator application with the matrix already built.
    Gate { matrix: Matrix, targets: Vec<usize> },
    /// `q := |0⟩`, sampled: measure `q` and flip on outcome 1.
    Init {
        meas: Measurement,
        flip: Matrix,
        target: usize,
    },
    /// A measurement branching over per-outcome arm programs.
    Case {
        meas: Measurement,
        arms: Vec<TrajProgram>,
    },
    /// Drop the trajectory.
    Abort,
}

/// A trajectory program: the sampled-execution form of a normal program,
/// with every matrix and measurement pre-built for a fixed valuation.
///
/// Built either directly through the `push_*` methods or from a lowered
/// derivative program (`qdp_ad::ResolvedProgram::to_trajectory`). The
/// sampled semantics mirror `qdp_ad::estimator::sample_trajectory` op for
/// op: `Init` measures the target and applies `X` on outcome 1, `Case`
/// draws one outcome from the Born rule and continues into that arm.
#[derive(Clone, Debug, Default)]
pub struct TrajProgram {
    ops: Vec<TrajOp>,
}

impl TrajProgram {
    /// An empty (skip) program.
    pub fn new() -> Self {
        TrajProgram::default()
    }

    /// Appends an operator application.
    pub fn push_gate(&mut self, matrix: Matrix, targets: Vec<usize>) {
        self.ops.push(TrajOp::Gate { matrix, targets });
    }

    /// Appends a `q := |0⟩` reset of qubit `target` (measure + conditional
    /// flip — the sampled form of the reset channel).
    pub fn push_init(&mut self, target: usize) {
        self.ops.push(TrajOp::Init {
            meas: Measurement::computational(vec![target]),
            flip: Matrix::pauli_x(),
            target,
        });
    }

    /// Appends a measurement case: `meas` is sampled once per trajectory
    /// and execution continues into `arms[outcome]`.
    ///
    /// # Panics
    ///
    /// Panics when the arm count does not match the outcome count.
    pub fn push_case(&mut self, meas: Measurement, arms: Vec<TrajProgram>) {
        assert_eq!(
            meas.num_outcomes(),
            arms.len(),
            "one arm per measurement outcome"
        );
        self.ops.push(TrajOp::Case { meas, arms });
    }

    /// Appends an abort: trajectories reaching it are dropped.
    pub fn push_abort(&mut self) {
        self.ops.push(TrajOp::Abort);
    }

    /// Mutable access to the matrix of one `Gate` op, addressed by a path
    /// that alternates op index and `Case`-arm index from the root:
    /// `[i]` is `ops[i]`, `[i, a, j]` is op `j` inside arm `a` of the
    /// `Case` at `ops[i]`, and so on. This is the slot-patching seam of the
    /// compile-once pipeline: a cached trajectory skeleton re-substitutes
    /// only its parameterized matrices per valuation instead of rebuilding
    /// the whole program.
    ///
    /// # Panics
    ///
    /// Panics when the path runs off the program or does not end on a
    /// `Gate` op.
    pub fn gate_matrix_mut(&mut self, path: &[usize]) -> &mut Matrix {
        let (&op_idx, rest) = path
            .split_first()
            .unwrap_or_else(|| panic!("gate path must not be empty"));
        let op = self
            .ops
            .get_mut(op_idx)
            .unwrap_or_else(|| panic!("gate path op index {op_idx} out of range"));
        match (op, rest) {
            (TrajOp::Gate { matrix, .. }, []) => matrix,
            (TrajOp::Case { arms, .. }, [arm_idx, deeper @ ..]) => {
                let arm = arms
                    .get_mut(*arm_idx)
                    .unwrap_or_else(|| panic!("gate path arm index {arm_idx} out of range"));
                arm.gate_matrix_mut(deeper)
            }
            _ => panic!("gate path does not address a Gate op"),
        }
    }

    /// Number of top-level operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program is a bare `skip`.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// The result of one sampled trajectory (one batch row).
#[derive(Clone, Debug)]
pub struct TrajectoryRow {
    /// The final collapsed state, or `None` when the trajectory aborted.
    pub state: Option<StateVector>,
    /// Every measurement outcome drawn along the trajectory, in program
    /// order (`Init` resets included).
    pub outcomes: Vec<usize>,
}

/// A row in flight: its original batch index and outcome history.
#[derive(Clone, Debug, Default)]
struct RowCtx {
    orig: usize,
    outcomes: Vec<usize>,
}

/// An outcome-homogeneous group of rows evolving together under the
/// **sampled** executor.
struct Group {
    states: BatchedStates,
    rows: Vec<RowCtx>,
    /// Fused-mode state: per qubit, the pending product of
    /// not-yet-applied single-qubit gates (`pending[q] = g_k · … · g_1` in
    /// program order), held as a stack 2×2 so fusing a gate never touches
    /// the heap. Always empty in bitwise (unfused) mode.
    pending: Vec<Option<[C64; 4]>>,
}

/// The 2×2 operator as a stack array — how the fusion path reads a 1q gate
/// matrix without cloning it.
#[inline]
fn mat2(m: &Matrix) -> [C64; 4] {
    let s = m.as_slice();
    debug_assert_eq!(s.len(), 4, "1q gates are 2x2");
    [s[0], s[1], s[2], s[3]]
}

/// The 2×2 product `a · b` on stack arrays, replicating
/// [`Matrix::mul`]'s accumulation order (including its zero-entry skip)
/// exactly — fused products carry the identical bits the heap path
/// produced, with zero allocation.
#[inline]
fn mul2(a: &[C64; 4], b: &[C64; 4]) -> [C64; 4] {
    let mut out = [C64::ZERO; 4];
    for i in 0..2 {
        for k in 0..2 {
            let aik = a[i * 2 + k];
            if aik == C64::ZERO {
                continue;
            }
            let ro = i * 2;
            let rb = k * 2;
            out[ro] = out[ro].mul_add(aik, b[rb]);
            out[ro + 1] = out[ro + 1].mul_add(aik, b[rb + 1]);
        }
    }
    out
}

/// Applies the pending 1q products of `targets` (ascending qubit order,
/// deterministically), as one batched kernel call each, through the
/// sweep's reusable 2×2 `gate` scratch (no per-flush heap traffic).
/// Shared by the sampled and exact executors.
fn flush_targets(
    states: &mut BatchedStates,
    pending: &mut [Option<[C64; 4]>],
    targets: &[usize],
    gate: &mut Matrix,
) {
    // Multi-qubit gates in the pipeline have two targets; sort on the
    // stack and only spill for exotic hand-built operators.
    let mut small = [0usize; 2];
    let mut spilled: Vec<usize>;
    let ts: &[usize] = if targets.len() <= 2 {
        small[..targets.len()].copy_from_slice(targets);
        small[..targets.len()].sort_unstable();
        &small[..targets.len()]
    } else {
        spilled = targets.to_vec();
        spilled.sort_unstable();
        &spilled
    };
    for &t in ts {
        if let Some(m) = pending[t].take() {
            gate.as_mut_slice().copy_from_slice(&m);
            states.apply_gate(gate, &[t]);
        }
    }
}

/// Applies every pending product (ascending qubit order).
fn flush_all(states: &mut BatchedStates, pending: &mut [Option<[C64; 4]>], gate: &mut Matrix) {
    for (t, slot) in pending.iter_mut().enumerate() {
        if let Some(m) = slot.take() {
            gate.as_mut_slice().copy_from_slice(&m);
            states.apply_gate(gate, &[t]);
        }
    }
}

/// Branches whose accumulated weight (unnormalised squared norm) is at or
/// below this threshold are pruned by the exact branch-weighted sweep —
/// the same constant `qdp_lang::denot::run_pure_branches` and the per-row
/// branch enumerators use, so pruning decisions line up across executors.
pub const BRANCH_PRUNE: f64 = 1e-24;

/// A row in flight of the **exact** branch-weighted sweep: its original
/// batch index and the accumulated branch weight — the squared norm of its
/// unnormalised state, i.e. the probability of the measurement history
/// that produced it (times the input row's own squared norm). This is the
/// weight-carrying row descriptor the sampled executor's [`RowCtx`]
/// generalizes to: where a sampled row records drawn outcomes, a weighted
/// row records how much probability mass its branch carries.
#[derive(Clone, Debug)]
struct WeightedRow {
    orig: usize,
    weight: f64,
}

/// An outcome-homogeneous group of weighted rows evolving together under
/// the **exact** executor. Gates always fuse (the exact path has no
/// bitwise-reference mode — its oracle is the per-row branch enumerator,
/// pinned at 1e-12).
struct WeightedGroup {
    states: BatchedStates,
    rows: Vec<WeightedRow>,
    pending: Vec<Option<[C64; 4]>>,
}

/// Reusable scratch of the block-level regrouping machinery: the
/// probability table, per-row records, and pooled buffers every fork
/// needs. One arena lives per thread ([`SCRATCH`]), shared by every sweep
/// that runs on it, so once the first forks warm the pools a measurement
/// performs **zero per-row and zero per-fork allocations** — buffers flow
/// from spent parent groups back into new child groups, double-buffered:
/// a parent's amplitude block is the read side of the collapse passes
/// while its children's blocks are the write side, and it returns to the
/// pool the moment the children exist. Scratch contents never influence
/// results, so the reuse is invisible to the determinism contract.
#[derive(Default)]
struct RegroupScratch {
    /// Total capacity (in amplitudes) currently held by `blocks`.
    pooled_amps: usize,
    /// `rows × outcomes` branch-probability table of the current fork (or
    /// `rows × pairs` read-out table of the current leaf group).
    probs: Vec<f64>,
    /// Per-row squared norms of the current fork or read-out group.
    totals: Vec<f64>,
    /// Per-row draw records of the current fork (sampled mode).
    draws: Vec<Draw>,
    /// Parent-block indices of the rows surviving into the outcome under
    /// construction.
    selected: Vec<usize>,
    /// Outcome indices ordered by weight (mass-budget pruning).
    order: Vec<usize>,
    /// `rows × outcomes` keep flags of the current fork (exact mode).
    keep: Vec<bool>,
    /// Pooled amplitude-plane pairs (`re`, `im`).
    blocks: Vec<(Vec<f64>, Vec<f64>)>,
    /// Pooled pending-product tables.
    pendings: Vec<Vec<Option<[C64; 4]>>>,
    /// Pooled weighted row lists (exact mode).
    weighted_rows: Vec<Vec<WeightedRow>>,
    /// Pooled sampled row lists.
    sampled_rows: Vec<Vec<RowCtx>>,
    /// Pooled fork child lists (exact mode).
    weighted_forks: Vec<Vec<(usize, WeightedGroup)>>,
    /// Pooled fork child lists (sampled mode).
    sampled_forks: Vec<Vec<(usize, Group)>>,
}

/// Upper bound on every [`RegroupScratch`] pool: enough that real branch
/// trees never miss (a fork holds a handful of buffers per outcome times
/// the tree depth), while buffers donated by callers — every sweep's root
/// block ends up offered to the arena — cannot accumulate without bound
/// across the thread's lifetime.
const SCRATCH_POOL_CAP: usize = 64;

/// Upper bound on the **amplitudes retained** by a thread's pooled blocks
/// (`4 Mi` amplitudes = two 32 MiB planes): large-register sweeps still
/// recycle a few big blocks through their own forks, but a long-lived
/// thread cannot stay pinned at the footprint of the largest sweep it ever
/// ran.
const SCRATCH_POOL_AMPS: usize = 1 << 22;

/// Pushes onto a pool unless it is at [`SCRATCH_POOL_CAP`] (the buffer is
/// dropped instead).
fn pool_give<T>(pool: &mut Vec<T>, item: T) {
    if pool.len() < SCRATCH_POOL_CAP {
        pool.push(item);
    }
}

impl RegroupScratch {
    fn take_block(&mut self) -> (Vec<f64>, Vec<f64>) {
        let (re, im) = self.blocks.pop().unwrap_or_default();
        self.pooled_amps -= re.capacity().max(im.capacity());
        (re, im)
    }

    fn give_block(&mut self, (mut re, mut im): (Vec<f64>, Vec<f64>)) {
        let amps = re.capacity().max(im.capacity());
        if self.blocks.len() >= SCRATCH_POOL_CAP || self.pooled_amps + amps > SCRATCH_POOL_AMPS {
            return;
        }
        re.clear();
        im.clear();
        self.pooled_amps += amps;
        self.blocks.push((re, im));
    }

    fn take_pending(&mut self, n_qubits: usize) -> Vec<Option<[C64; 4]>> {
        let mut pending = self.pendings.pop().unwrap_or_default();
        pending.clear();
        pending.resize(n_qubits, None);
        pending
    }

    /// Reclaims a spent **exact** group's buffers into the pools.
    fn reclaim_weighted(&mut self, group: WeightedGroup) {
        let WeightedGroup { states, mut rows, pending } = group;
        self.give_block(states.into_raw());
        rows.clear();
        pool_give(&mut self.weighted_rows, rows);
        pool_give(&mut self.pendings, pending);
    }

    /// Reclaims a spent **sampled** group's buffers into the pools (its
    /// row contexts must already have moved on — to sub-groups or the
    /// aborted list).
    fn reclaim_sampled(&mut self, group: Group) {
        let Group { states, mut rows, pending } = group;
        debug_assert!(rows.is_empty(), "row contexts outlive their group");
        self.give_block(states.into_raw());
        rows.clear();
        pool_give(&mut self.sampled_rows, rows);
        pool_give(&mut self.pendings, pending);
    }
}

thread_local! {
    /// The per-thread regroup arena. The serial paths (and every sweep on
    /// a 1-thread configuration) keep their pools warm across calls; a
    /// fresh `qdp_par` scoped worker starts cold and warms within its
    /// first fork.
    static SCRATCH: std::cell::RefCell<RegroupScratch> =
        std::cell::RefCell::new(RegroupScratch::default());
}

/// One row's Born-rule record at a sampled fork — everything the in-place
/// rescale of its collapsed row needs, mirroring [`collapse_with_draw`].
#[derive(Clone, Copy, Debug)]
struct Draw {
    /// The drawn outcome.
    outcome: usize,
    /// The drawn branch's probability.
    p: f64,
    /// The row's pre-measurement squared norm.
    total: f64,
    /// Whether the floating-point-slack fallback selected the branch
    /// (which skips the `(total/p).sqrt()` blow-up, like the serial path).
    slack: bool,
}

/// The Born-rule selection walk of [`collapse_with_draw`] on a
/// pre-computed probability row — identical arithmetic to the serial path
/// (including the slack fallback to the last branch with support), so
/// batched draws match it bit for bit.
///
/// # Panics
///
/// Panics when no branch has support.
fn select_branch(u: f64, total: f64, probs: &[f64]) -> Draw {
    let mut r: f64 = u * total;
    for (outcome, &p) in probs.iter().enumerate() {
        r -= p;
        if r <= 0.0 {
            return Draw { outcome, p, total, slack: false };
        }
    }
    // Infallible: the walk only falls through when `total > 0`, so at
    // least one branch probability is positive.
    #[allow(clippy::expect_used)]
    let outcome = (0..probs.len())
        .rev()
        .find(|&m| probs[m] > 0.0)
        .expect("no branch has support");
    Draw {
        outcome,
        p: probs[outcome],
        total,
        slack: true,
    }
}

/// Replays, in place on one freshly collapsed destination row, the
/// rescaling [`collapse_with_draw`] applies to the selected branch: the
/// `(total/p).sqrt()` blow-up (skipped on the slack path, and — like the
/// serial path — skipped entirely together with the renormalisation when
/// the drawn probability is zero), then the renormalisation to the parent
/// norm. The identical complex scalar multiplies over the identical full
/// row ([`StateVector::scale`], transcribed onto the planes) and the
/// identical lane-split norm fold ([`StateVector::norm_sqr`]), so the row
/// carries the serial path's bits.
fn rescale_collapsed(re: &mut [f64], im: &mut [f64], d: Draw) {
    if !d.slack {
        if d.p <= 0.0 {
            return;
        }
        scale_planes(re, im, C64::real((d.total / d.p).sqrt().min(1e150)));
    }
    let norm = crate::lanes::sum_norm_sqr(re, im).sqrt();
    if norm > 0.0 {
        scale_planes(re, im, C64::real(d.total.sqrt() / norm));
    }
}

/// [`StateVector::scale`] transcribed onto borrowed planes: the full
/// complex multiply per amplitude — not a componentwise shortcut, whose
/// signed zeros would differ from the serial path's.
fn scale_planes(re: &mut [f64], im: &mut [f64], s: C64) {
    for (ar, ai) in re.iter_mut().zip(im.iter_mut()) {
        let z = C64::new(*ar, *ai) * s;
        *ar = z.re;
        *ai = z.im;
    }
}

/// The batched shot-noise executor for one [`TrajProgram`].
///
/// # Examples
///
/// ```
/// use qdp_linalg::Matrix;
/// use qdp_sim::{BatchedStates, ShotEngine, ShotSampler, TrajProgram};
///
/// // H then a computational measurement: every shot collapses to a basis
/// // state recorded in its outcome history.
/// let mut p = TrajProgram::new();
/// p.push_gate(Matrix::hadamard(), vec![0]);
/// p.push_case(
///     qdp_sim::Measurement::computational(vec![0]),
///     vec![TrajProgram::new(), TrajProgram::new()],
/// );
/// let engine = ShotEngine::new(p);
/// let mut samplers: Vec<ShotSampler> =
///     (0..8).map(|s| ShotSampler::derived(1, s)).collect();
/// let rows = engine.run(BatchedStates::zero(8, 1), &mut samplers);
/// for row in &rows {
///     assert_eq!(row.outcomes.len(), 1);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct ShotEngine {
    program: TrajProgram,
    /// Droppable probability mass per row of the exact sweep, as a
    /// fraction of the row's initial mass — see
    /// [`with_mass_budget`](Self::with_mass_budget). 0 (the default)
    /// prunes only below [`BRANCH_PRUNE`], preserving today's bits.
    mass_budget: f64,
    /// Numerical-health monitoring at measurement boundaries — see
    /// [`with_health`](Self::with_health). `None` (the default) performs
    /// no checks and preserves the unmonitored engine bit for bit.
    health: Option<HealthConfig>,
}

/// Bounded retry budget for panicked worker tiles on the fallible fan-out
/// paths: a tile is re-run up to this many extra times (deterministically
/// — tiles are pure functions of their input) before its failure surfaces
/// as [`QdpError::WorkerPanic`].
const TILE_RETRIES: usize = 2;

impl ShotEngine {
    /// Wraps a trajectory program for batched execution.
    pub fn new(program: TrajProgram) -> Self {
        ShotEngine {
            program,
            mass_budget: 0.0,
            health: None,
        }
    }

    /// Enables numerical-health monitoring: at every measurement boundary
    /// the per-row norm / branch-probability sweeps the engine already
    /// performs are additionally checked for NaN/Inf and for norm drift
    /// beyond `cfg.drift_tol`, and failing rows are handled per
    /// `cfg.policy` (see [`HealthPolicy`]). The checks piggyback on
    /// existing block passes — no extra sweeps over the amplitudes.
    ///
    /// Only the fallible entry points (`try_run`, `try_sample_sweep`,
    /// `try_expectation_sweep`, `try_estimate_expectation_prepared`) can
    /// report a [`QdpError`]; the infallible ones panic with the same
    /// message. Unmonitored engines (the default) skip every check and
    /// stay bit-identical to the pre-monitoring engine.
    pub fn with_health(mut self, cfg: HealthConfig) -> Self {
        self.health = Some(cfg);
        self
    }

    /// The engine's health configuration, when monitoring is enabled.
    pub fn health(&self) -> Option<HealthConfig> {
        self.health
    }

    /// Gives the **exact** sweep a weighted-leaf pruning budget: each
    /// row may drop measurement branches totalling at most
    /// `epsilon × (that row's initial squared norm)` of probability mass
    /// over its whole branch tree — i.e. the cumulative kept leaf weight
    /// stays ≥ `1 − ε` on normalised inputs. At every fork the
    /// lowest-weight surviving branches are dropped first (greedily, in
    /// the sweep's deterministic depth-first order), which prunes whole
    /// subtrees and trades a **bounded** read-out error — at most `ε` for
    /// observables with `‖O‖ ≤ 1`, since
    /// `|Σ_dropped ⟨ψb|O|ψb⟩| ≤ Σ_dropped ‖ψb‖²` — for large speedups on
    /// deep while-unrollings.
    ///
    /// Pruning decisions are a pure per-row function of the program and
    /// that row's input, so the exact sweep's thread-count / batch-composition /
    /// row-order invariance is untouched. The default `ε = 0` drops
    /// nothing beyond [`BRANCH_PRUNE`] and preserves the unpruned sweep
    /// bit for bit. Sampled sweeps never prune (every shot follows one
    /// drawn branch).
    ///
    /// # Panics
    ///
    /// Panics when `epsilon` is not in `[0, 1)` (including NaN). Use
    /// [`try_with_mass_budget`](Self::try_with_mass_budget) for a typed
    /// error instead.
    pub fn with_mass_budget(self, epsilon: f64) -> Self {
        match self.try_with_mass_budget(epsilon) {
            Ok(engine) => engine,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`with_mass_budget`](Self::with_mass_budget) with typed validation:
    /// rejects ε outside `[0, 1)` — NaN included, since `(0.0..1.0)`
    /// contains no NaN — as [`QdpError::InvalidMassBudget`] instead of
    /// panicking.
    pub fn try_with_mass_budget(mut self, epsilon: f64) -> Result<Self, QdpError> {
        if !(0.0..1.0).contains(&epsilon) {
            return Err(QdpError::InvalidMassBudget { epsilon });
        }
        self.mass_budget = epsilon;
        Ok(self)
    }

    /// The wrapped program.
    pub fn program(&self) -> &TrajProgram {
        &self.program
    }

    /// Runs one sampled trajectory per row of `states`, row `r` drawing
    /// from `samplers[r]`. Returns per-row results in input row order.
    ///
    /// This is the **bitwise-reference executor**: gates are applied one
    /// by one in program order, so results equal running each row as its
    /// own batch of one and (via the shared collapse primitive) the serial
    /// per-shot loop, bit for bit — see the module docs for the contract.
    ///
    /// # Panics
    ///
    /// Panics when `samplers.len() != states.len()`, or (with health
    /// monitoring enabled) with a [`QdpError`] message when a check fails
    /// unrecoverably — use [`try_run`](Self::try_run) for the typed form.
    pub fn run(&self, states: BatchedStates, samplers: &mut [ShotSampler]) -> Vec<TrajectoryRow> {
        match self.try_run(states, samplers) {
            Ok(rows) => rows,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`run`](Self::run) with typed errors: health-check failures under
    /// [`HealthPolicy::FailFast`] (or unrepairable NaN/Inf under
    /// [`HealthPolicy::Renormalize`]) return a [`QdpError`] instead of
    /// panicking. Under [`HealthPolicy::DegradeToOracle`] the affected
    /// rows are re-run serially from their original inputs and streams on
    /// the per-row reference path ([`collapse_with_draw`]) — bit-identical
    /// to this unfused executor's own contract — while healthy rows keep
    /// their batched bits.
    ///
    /// # Panics
    ///
    /// Panics when `samplers.len() != states.len()`.
    pub fn try_run(
        &self,
        states: BatchedStates,
        samplers: &mut [ShotSampler],
    ) -> Result<Vec<TrajectoryRow>, QdpError> {
        let total_rows = states.len();
        let snapshot = self.degrade_snapshot(&states, samplers);
        let (finished, aborted, defects) = self.try_sweep(states, samplers, false)?;
        let mut out: Vec<Option<TrajectoryRow>> = (0..total_rows).map(|_| None).collect();
        for group in finished {
            let Group { states, rows, .. } = group;
            for (r, ctx) in rows.into_iter().enumerate() {
                out[ctx.orig] = Some(TrajectoryRow {
                    state: Some(states.row_state(r)),
                    outcomes: ctx.outcomes,
                });
            }
        }
        for ctx in aborted {
            out[ctx.orig] = Some(TrajectoryRow {
                state: None,
                outcomes: ctx.outcomes,
            });
        }
        if let Some((inputs, streams)) = snapshot {
            let mut streams = streams;
            for orig in dedup_defects(defects) {
                out[orig] = Some(self.replay_row(&inputs[orig], &mut streams[orig]));
            }
        }
        Ok(out
            .into_iter()
            .enumerate()
            .map(|(r, row)| match row {
                Some(row) => row,
                // Unreachable by construction: every row finishes, aborts,
                // or is replaced by its oracle replay.
                None => panic!("row {r} neither finished nor aborted"),
            })
            .collect())
    }

    /// The per-row input/stream snapshots `DegradeToOracle` recovery
    /// replays from — taken only when that policy is active, so the other
    /// configurations pay nothing.
    fn degrade_snapshot(
        &self,
        states: &BatchedStates,
        samplers: &[ShotSampler],
    ) -> Option<(Vec<StateVector>, Vec<ShotSampler>)> {
        match self.health {
            Some(HealthConfig { policy: HealthPolicy::DegradeToOracle, .. }) => Some((
                (0..states.len()).map(|r| states.row_state(r)).collect(),
                samplers.to_vec(),
            )),
            _ => None,
        }
    }

    /// Serial reference replay of one row: gates in program order on a
    /// single [`StateVector`], every measurement through the shared
    /// [`collapse_with_draw`] primitive — the retained per-row path the
    /// batched sampled executor is pinned against bit for bit.
    fn replay_row(&self, input: &StateVector, sampler: &mut ShotSampler) -> TrajectoryRow {
        let mut psi = input.clone();
        let mut outcomes = Vec::new();
        let mut ops: &[TrajOp] = &self.program.ops;
        let mut cont: Vec<&[TrajOp]> = Vec::new();
        let mut i = 0;
        loop {
            if i == ops.len() {
                match cont.pop() {
                    Some(next) => {
                        ops = next;
                        i = 0;
                    }
                    None => return TrajectoryRow { state: Some(psi), outcomes },
                }
                continue;
            }
            match &ops[i] {
                TrajOp::Gate { matrix, targets } => {
                    psi.apply_gate(matrix, targets);
                    i += 1;
                }
                TrajOp::Abort => return TrajectoryRow { state: None, outcomes },
                TrajOp::Init { meas, flip, target } => {
                    let (outcome, collapsed) =
                        collapse_with_draw(sampler.next_uniform(), &psi, meas);
                    psi = collapsed;
                    outcomes.push(outcome);
                    if outcome == 1 {
                        psi.apply_gate(flip, &[*target]);
                    }
                    i += 1;
                }
                TrajOp::Case { meas, arms } => {
                    let (outcome, collapsed) =
                        collapse_with_draw(sampler.next_uniform(), &psi, meas);
                    psi = collapsed;
                    outcomes.push(outcome);
                    cont.push(&ops[i + 1..]);
                    ops = &arms[outcome].ops;
                    i = 0;
                }
            }
        }
    }

    /// Runs one trajectory per row and samples `readout` once on each
    /// surviving final state (0.0 for aborted rows, which draw nothing —
    /// matching the serial estimator). Returns per-row samples in input
    /// row order.
    ///
    /// The read-out of each final group is **block-level**: one
    /// `rows × pairs` probability table per group
    /// ([`ProjectiveObservable::pair_probabilities_batch`] — a single
    /// bucketed `|amp|²` sweep over the group's contiguous block for
    /// diagonal observables, one batched expectation pass per projector
    /// otherwise) plus one norm pass, so leaf read-out is one sweep per
    /// group instead of one per row. The probabilities are bit-identical
    /// to the per-row passes the serial sampler selects from, so draws can
    /// never drift apart. On top of that, straight-line gate segments
    /// **fuse** commuting single-qubit gates per qubit into one 2×2
    /// product before streaming (exactly like the exact batched
    /// evaluator's straight-line fast path), flushed at measurements,
    /// multi-qubit gates, and the read-out. Fusion reorders rounding, so
    /// samples agree with [`run`](Self::run)-plus-serial-sampling
    /// statistically (states differ by ≪ 1e-12) rather than bit for bit;
    /// the sweep itself stays fully deterministic — identical bits for any
    /// thread count, any batch decomposition, and any row grouping.
    ///
    /// # Panics
    ///
    /// Panics when `samplers.len() != states.len()`, or (with health
    /// monitoring enabled) with a [`QdpError`] message — use
    /// [`try_sample_sweep`](Self::try_sample_sweep) for the typed form.
    pub fn sample_sweep(
        &self,
        states: BatchedStates,
        samplers: &mut [ShotSampler],
        readout: &ProjectiveObservable,
    ) -> Vec<f64> {
        match self.try_sample_sweep(states, samplers, readout) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`sample_sweep`](Self::sample_sweep) with typed errors — the
    /// health-policy semantics of [`try_run`](Self::try_run), with
    /// [`HealthPolicy::DegradeToOracle`] rows re-run serially from their
    /// original inputs and streams ([`collapse_with_draw`] plus the shared
    /// per-row read-out selection), unaffected rows keeping their batched
    /// bits.
    ///
    /// # Panics
    ///
    /// Panics when `samplers.len() != states.len()`.
    pub fn try_sample_sweep(
        &self,
        states: BatchedStates,
        samplers: &mut [ShotSampler],
        readout: &ProjectiveObservable,
    ) -> Result<Vec<f64>, QdpError> {
        let total_rows = states.len();
        let snapshot = self.degrade_snapshot(&states, samplers);
        let (finished, aborted, defects) = self.try_sweep(states, samplers, true)?;
        let mut out = vec![0.0; total_rows];
        let pairs = readout.pairs().len();
        let mut table = Vec::new();
        let mut totals = Vec::new();
        for group in finished {
            readout.pair_probabilities_batch(&group.states, &mut table);
            group.states.row_norms_sqr_into(&mut totals);
            for (r, ctx) in group.rows.iter().enumerate() {
                // The shared selection loop of `sample_with_draw`, with
                // the probabilities read off the group's table.
                let total = totals[r];
                if total <= 1e-300 {
                    continue;
                }
                let u = samplers[ctx.orig].next_uniform();
                out[ctx.orig] = readout.select_with(u, total, |k| table[r * pairs + k]);
            }
        }
        drop(aborted); // aborted rows stay 0.0 and draw nothing
        if let Some((inputs, streams)) = snapshot {
            let mut streams = streams;
            for orig in dedup_defects(defects) {
                let row = self.replay_row(&inputs[orig], &mut streams[orig]);
                out[orig] = match row.state {
                    None => 0.0, // aborted rows draw nothing
                    Some(psi) => {
                        let total = psi.norm_sqr();
                        if total <= 1e-300 {
                            0.0
                        } else {
                            let u = streams[orig].next_uniform();
                            let (re, im) = psi.planes();
                            readout.sample_with_draw_planes(u, total, re, im)
                        }
                    }
                };
            }
        }
        Ok(out)
    }

    /// Tiled parallel shot estimate of `⟨obs⟩` on the program's output from
    /// `shots` trajectories starting at `psi`: the mean of one read-out
    /// sample per shot (0 for aborted trajectories).
    ///
    /// Shots are split into fixed [`SHOT_TILE`]-row tiles fanned out across
    /// `qdp_par`; shot `s` draws from the derived stream
    /// `ShotSampler::derived(seed, s)` wherever it runs, and tile sums are
    /// reduced in tile order — the result is **bit-for-bit identical under
    /// any thread count**.
    ///
    /// # Panics
    ///
    /// Panics when `shots` is zero.
    pub fn estimate_expectation(
        &self,
        psi: &StateVector,
        obs: &Observable,
        shots: usize,
        seed: u64,
    ) -> f64 {
        self.estimate_expectation_prepared(psi, &ProjectiveObservable::new(obs), shots, seed)
    }

    /// [`estimate_expectation`](Self::estimate_expectation) with the
    /// read-out decomposition already built — what repeated-evaluation
    /// callers (a training epoch sweeping many inputs) use so the
    /// eigendecomposition happens once, not once per input.
    ///
    /// # Panics
    ///
    /// Panics when `shots` is zero, or with a [`QdpError`] message when a
    /// tile fails beyond the retry budget or a health check fails
    /// unrecoverably — use
    /// [`try_estimate_expectation_prepared`](Self::try_estimate_expectation_prepared)
    /// for the typed form.
    pub fn estimate_expectation_prepared(
        &self,
        psi: &StateVector,
        readout: &ProjectiveObservable,
        shots: usize,
        seed: u64,
    ) -> f64 {
        match self.try_estimate_expectation_prepared(psi, readout, shots, seed) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`estimate_expectation_prepared`](Self::estimate_expectation_prepared)
    /// with fault tolerance: each shot tile runs panic-isolated, a
    /// panicked tile is retried up to 2 extra times (bit-identically —
    /// tiles are pure functions of `(psi, seed, tile range)`), and
    /// exhausted retries or health-check failures surface as a typed
    /// [`QdpError`] instead of aborting the process.
    ///
    /// # Panics
    ///
    /// Panics when `shots` is zero.
    pub fn try_estimate_expectation_prepared(
        &self,
        psi: &StateVector,
        readout: &ProjectiveObservable,
        shots: usize,
        seed: u64,
    ) -> Result<f64, QdpError> {
        assert!(shots > 0, "need at least one shot");
        let tiles: Vec<(usize, usize)> = (0..shots)
            .step_by(SHOT_TILE)
            .map(|start| (start, SHOT_TILE.min(shots - start)))
            .collect();
        let sums = qdp_par::try_par_map_retry(
            &tiles,
            |&(start, rows)| {
                crate::fault::tile_checkpoint(start / SHOT_TILE);
                let batch = BatchedStates::repeat(psi, rows);
                let mut samplers: Vec<ShotSampler> = (0..rows)
                    .map(|r| ShotSampler::derived(seed, (start + r) as u64))
                    .collect();
                self.try_sample_sweep(batch, &mut samplers, readout)
                    .map(|values| values.into_iter().sum::<f64>())
            },
            TILE_RETRIES,
        )
        .map_err(QdpError::from)?;
        let mut acc = 0.0;
        for sum in sums {
            acc += sum?;
        }
        Ok(acc / shots as f64)
    }

    /// **Branch-weighted exact execution**: the exact expectation
    /// `Σ_branches ⟨ψb|O|ψb⟩` of the program's output for every row of the
    /// batch, in row order.
    ///
    /// Where [`run`](Self::run) samples one outcome per row, this sweep
    /// measures all rows at once, computes per-outcome branch
    /// probabilities (the selected-branch primitives of [`Measurement`] —
    /// one bucketed `|amp|²` pass for computational measurements), and
    /// forks the block into **every** surviving outcome: each sub-group
    /// carries its rows' accumulated branch weights in their unnormalised
    /// amplitudes and keeps streaming batched kernel calls. At the leaves,
    /// one batched read-out pass per group accumulates
    /// `out[r] += ⟨ψleaf|O|ψleaf⟩` — exactly the quantity per-row branch
    /// enumeration computes, evaluated block-wise.
    ///
    /// Straight-line segments fuse commuting single-qubit gates per qubit
    /// into one 2×2 product (like the exact batched evaluator's
    /// straight-line fast path), flushed at measurements, multi-qubit
    /// gates, and leaves. Per-row results are **bit-for-bit invariant
    /// under thread count, batch decomposition, and row order**, and agree
    /// with the per-row enumerator to ≪ 1e-12 (fusion and leaf-summation
    /// order move rounding only). Aborted branches contribute 0; branches
    /// at weight ≤ [`BRANCH_PRUNE`] are dropped, matching the per-row
    /// enumerators.
    ///
    /// Batches beyond [`EXACT_TILE`] rows split into fixed-size row tiles
    /// fanned out across `qdp_par`, so a single branching program over a
    /// large batch still scales with threads. Tiling is harmless to the
    /// contract precisely *because* of the decomposition invariance above:
    /// every row's bits are the same in any tile.
    pub fn expectation_sweep(&self, states: BatchedStates, obs: &Observable) -> Vec<f64> {
        match self.try_expectation_sweep(states, obs) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`expectation_sweep`](Self::expectation_sweep) with fault
    /// tolerance: row tiles run panic-isolated with up to 2 bit-identical
    /// retries each, health checks at every fork compare each row's
    /// branch-probability mass against its carried weight (trace
    /// preservation), and failures surface as typed [`QdpError`]s. Under
    /// [`HealthPolicy::DegradeToOracle`] affected rows are re-run from
    /// their tile inputs on the retained per-row branch enumerator
    /// ([`Measurement::branches_pure`], agreeing with the sweep to
    /// ≪ 1e-12); healthy rows keep their batched bits.
    pub fn try_expectation_sweep(
        &self,
        states: BatchedStates,
        obs: &Observable,
    ) -> Result<Vec<f64>, QdpError> {
        let total_rows = states.len();
        if total_rows == 0 {
            return Ok(Vec::new());
        }
        if total_rows <= EXACT_TILE || qdp_par::max_threads() < 2 {
            return self.expectation_sweep_tile(states, obs);
        }
        let dim = states.dim();
        let n = states.num_qubits();
        let tiles: Vec<(usize, usize)> = (0..total_rows)
            .step_by(EXACT_TILE)
            .map(|start| (start, EXACT_TILE.min(total_rows - start)))
            .collect();
        let per_tile = qdp_par::try_par_map_retry(
            &tiles,
            |&(start, rows)| {
                crate::fault::tile_checkpoint(start / EXACT_TILE);
                let (re, im) = states.planes();
                let block = BatchedStates::from_raw(
                    rows,
                    n,
                    re[start * dim..(start + rows) * dim].to_vec(),
                    im[start * dim..(start + rows) * dim].to_vec(),
                );
                self.expectation_sweep_tile(block, obs)
            },
            TILE_RETRIES,
        )
        .map_err(QdpError::from)?;
        let mut out = Vec::with_capacity(total_rows);
        for tile in per_tile {
            out.extend(tile?);
        }
        Ok(out)
    }

    /// One tile of [`expectation_sweep`](Self::expectation_sweep): the
    /// serial branch-weighted sweep over a whole block, with
    /// `DegradeToOracle` recovery handled tile-locally (row indices are
    /// tile-local, so a degraded row's oracle re-run needs only this
    /// tile's inputs).
    fn expectation_sweep_tile(
        &self,
        states: BatchedStates,
        obs: &Observable,
    ) -> Result<Vec<f64>, QdpError> {
        let inputs: Option<Vec<StateVector>> = match self.health {
            Some(HealthConfig { policy: HealthPolicy::DegradeToOracle, .. }) => {
                Some((0..states.len()).map(|r| states.row_state(r)).collect())
            }
            _ => None,
        };
        let mut out = vec![0.0; states.len()];
        let mut values = Vec::new();
        let defects = SCRATCH.with(|cell| {
            let scratch = &mut cell.borrow_mut();
            let group = weighted_root(states, scratch);
            let mut sweep = ExactSweep {
                budgets: self.budgets_for(&group),
                scratch,
                flush_gate: Matrix::zeros(2, 2),
                health: self.health,
                defects: Vec::new(),
            };
            sweep.exec(&self.program.ops, Vec::new(), group, &mut |group: &WeightedGroup| {
                obs.expectation_batch_into(&group.states, &mut values);
                for (ctx, v) in group.rows.iter().zip(&values) {
                    out[ctx.orig] += v;
                }
            })?;
            Ok::<Vec<usize>, QdpError>(sweep.defects)
        })?;
        if let Some(inputs) = inputs {
            for orig in dedup_defects(defects) {
                // Overwrite, not accumulate: partial leaf sums from
                // branches that completed before the fault are discarded.
                out[orig] = self.exact_reference_row(inputs[orig].clone(), obs);
            }
        }
        Ok(out)
    }

    /// The retained per-row exact reference: depth-first branch
    /// enumeration of the trajectory program on one state, unnormalised
    /// branches carried whole, leaves summed as `Σ_b ⟨ψb|O|ψb⟩`. This is
    /// the path [`HealthPolicy::DegradeToOracle`] re-runs defected rows
    /// on; it agrees with the branch-weighted sweep to ≪ 1e-12 (fusion
    /// and leaf-order rounding only).
    fn exact_reference_row(&self, psi: StateVector, obs: &Observable) -> f64 {
        let mut acc = 0.0;
        self.exact_reference_from(&self.program.ops, Vec::new(), psi, obs, &mut acc);
        acc
    }

    fn exact_reference_from<'p>(
        &'p self,
        ops: &'p [TrajOp],
        cont: Vec<&'p [TrajOp]>,
        mut psi: StateVector,
        obs: &Observable,
        acc: &mut f64,
    ) {
        for (i, op) in ops.iter().enumerate() {
            match op {
                TrajOp::Gate { matrix, targets } => psi.apply_gate(matrix, targets),
                TrajOp::Abort => return,
                TrajOp::Init { meas, flip, target } => {
                    let rest = &ops[i + 1..];
                    for b in meas.branches_pure(&psi) {
                        if b.probability <= BRANCH_PRUNE {
                            continue;
                        }
                        let mut sub = b.state;
                        if b.outcome == 1 {
                            sub.apply_gate(flip, &[*target]);
                        }
                        self.exact_reference_from(rest, cont.clone(), sub, obs, acc);
                    }
                    return;
                }
                TrajOp::Case { meas, arms } => {
                    let rest = &ops[i + 1..];
                    for b in meas.branches_pure(&psi) {
                        if b.probability <= BRANCH_PRUNE {
                            continue;
                        }
                        let mut arm_cont = cont.clone();
                        arm_cont.push(rest);
                        self.exact_reference_from(&arms[b.outcome].ops, arm_cont, b.state, obs, acc);
                    }
                    return;
                }
            }
        }
        let mut cont = cont;
        match cont.pop() {
            Some(next) => self.exact_reference_from(next, cont, psi, obs, acc),
            None => *acc += obs.expectation_pure(&psi),
        }
    }

    /// The surviving leaf weights of every row of an exact sweep, in that
    /// row's depth-first branch order — the diagnostic view of
    /// [`expectation_sweep`](Self::expectation_sweep) the property suites
    /// pin: for an abort-free program on normalised inputs each row's
    /// weights sum to 1 (up to the [`BRANCH_PRUNE`] threshold — and up to
    /// the engine's [mass budget](Self::with_mass_budget), which drops at
    /// most `ε` of each row's mass), because its branch tree is
    /// trace-preserving.
    pub fn leaf_weights(&self, states: BatchedStates) -> Vec<Vec<f64>> {
        let total_rows = states.len();
        let mut out: Vec<Vec<f64>> = vec![Vec::new(); total_rows];
        if total_rows == 0 {
            return out;
        }
        SCRATCH.with(|cell| {
            let scratch = &mut cell.borrow_mut();
            let group = weighted_root(states, scratch);
            let mut sweep = ExactSweep {
                budgets: self.budgets_for(&group),
                scratch,
                flush_gate: Matrix::zeros(2, 2),
                // Diagnostic view: never health-monitored.
                health: None,
                defects: Vec::new(),
            };
            sweep
                .exec(&self.program.ops, Vec::new(), group, &mut |group: &WeightedGroup| {
                    for ctx in &group.rows {
                        out[ctx.orig].push(ctx.weight);
                    }
                })
                .unwrap_or_else(|e| panic!("{e}"));
        });
        out
    }

    /// Each root row's droppable-mass budget: `ε ×` its initial mass.
    fn budgets_for(&self, root: &WeightedGroup) -> Vec<f64> {
        root.rows
            .iter()
            .map(|ctx| self.mass_budget * ctx.weight)
            .collect()
    }

    /// Executes the program over the whole batch, branch-grouping on every
    /// measurement; returns the surviving outcome-homogeneous groups, the
    /// aborted rows, and the original indices of rows degraded to the
    /// oracle (non-empty only under [`HealthPolicy::DegradeToOracle`]).
    /// With `fuse`, straight-line segments accumulate per-qubit 1q
    /// products instead of applying each gate immediately.
    ///
    /// When the engine is health-monitored, each row's expected squared
    /// norm is read off one extra root pass and checked (piggybacked on
    /// the norms sweep every measurement already performs) at each
    /// boundary; unmonitored engines skip all of it and keep today's bits.
    fn try_sweep(
        &self,
        states: BatchedStates,
        samplers: &mut [ShotSampler],
        fuse: bool,
    ) -> Result<SweepOutput, QdpError> {
        assert_eq!(
            states.len(),
            samplers.len(),
            "one sampler stream per batch row"
        );
        let expected = match self.health {
            Some(_) => {
                let mut norms = Vec::new();
                states.row_norms_sqr_into(&mut norms);
                norms
            }
            None => Vec::new(),
        };
        let group = Group {
            rows: (0..states.len())
                .map(|orig| RowCtx {
                    orig,
                    outcomes: Vec::new(),
                })
                .collect(),
            pending: vec![None; states.num_qubits()],
            states,
        };
        if group.rows.is_empty() {
            return Ok((Vec::new(), Vec::new(), Vec::new()));
        }
        SCRATCH.with(|cell| {
            let scratch = &mut cell.borrow_mut();
            let mut sweep = SampledSweep {
                samplers,
                fuse,
                scratch,
                flush_gate: Matrix::zeros(2, 2),
                finished: Vec::new(),
                aborted: Vec::new(),
                health: self.health,
                expected,
                defects: Vec::new(),
            };
            sweep.exec(&self.program.ops, Vec::new(), group)?;
            Ok((sweep.finished, sweep.aborted, sweep.defects))
        })
    }
}

/// Outcome of a sampled sweep: finished leaf groups, aborted row
/// contexts, and the original indices of health-defected rows.
type SweepOutput = (Vec<Group>, Vec<RowCtx>, Vec<usize>);

/// Sorts and deduplicates the degraded-row index list (a row can fail
/// checks at more than one boundary before its placeholder stabilises).
fn dedup_defects(mut defects: Vec<usize>) -> Vec<usize> {
    defects.sort_unstable();
    defects.dedup();
    defects
}

/// The state of one **sampled** sweep: the per-row streams, the fusion
/// mode, the regroup scratch arena, and the accumulating leaf/abort lists.
struct SampledSweep<'s> {
    samplers: &'s mut [ShotSampler],
    fuse: bool,
    scratch: &'s mut RegroupScratch,
    /// Reusable 2×2 the pending products flush through.
    flush_gate: Matrix,
    finished: Vec<Group>,
    aborted: Vec<RowCtx>,
    /// Health monitoring config (`None` = no checks, today's bits).
    health: Option<HealthConfig>,
    /// Expected squared norm per **original** row index (root norms —
    /// collapse renormalises to the parent norm and gates are unitary, so
    /// a healthy row carries its root norm at every boundary). Empty when
    /// unmonitored.
    expected: Vec<f64>,
    /// Original indices of rows degraded to the oracle.
    defects: Vec<usize>,
}

impl SampledSweep<'_> {
    /// Executes `ops` on `group`, with `cont` the stack of suspended op
    /// slices to resume (innermost last) once `ops` is exhausted — the
    /// continuation a `case` arm returns into.
    fn exec<'p>(
        &mut self,
        ops: &'p [TrajOp],
        cont: Vec<&'p [TrajOp]>,
        mut group: Group,
    ) -> Result<(), QdpError> {
        for (i, op) in ops.iter().enumerate() {
            match op {
                TrajOp::Gate { matrix, targets } => {
                    if !self.fuse {
                        // Bitwise mode: one batched kernel call streams the
                        // operator over every row, in program order.
                        group.states.apply_gate(matrix, targets);
                    } else if let [t] = targets[..] {
                        group.pending[t] = Some(match group.pending[t].take() {
                            None => mat2(matrix),
                            Some(prev) => mul2(&mat2(matrix), &prev),
                        });
                    } else {
                        // A multi-qubit gate orders against the pending
                        // rotations of its own targets only.
                        flush_targets(
                            &mut group.states,
                            &mut group.pending,
                            targets,
                            &mut self.flush_gate,
                        );
                        group.states.apply_gate(matrix, targets);
                    }
                }
                TrajOp::Abort => {
                    // Dropped rows never need their pending products.
                    self.aborted.append(&mut group.rows);
                    self.scratch.reclaim_sampled(group);
                    return Ok(());
                }
                TrajOp::Init { meas, flip, target } => {
                    flush_all(&mut group.states, &mut group.pending, &mut self.flush_gate);
                    let rest = &ops[i + 1..];
                    let mut forks = self.scratch.sampled_forks.pop().unwrap_or_default();
                    self.measure_group(group, meas, &mut forks)?;
                    for (outcome, mut sub) in forks.drain(..) {
                        if outcome == 1 {
                            sub.states.apply_gate(flip, &[*target]);
                        }
                        self.exec(rest, cont.clone(), sub)?;
                    }
                    pool_give(&mut self.scratch.sampled_forks, forks);
                    return Ok(());
                }
                TrajOp::Case { meas, arms } => {
                    flush_all(&mut group.states, &mut group.pending, &mut self.flush_gate);
                    let rest = &ops[i + 1..];
                    let mut forks = self.scratch.sampled_forks.pop().unwrap_or_default();
                    self.measure_group(group, meas, &mut forks)?;
                    for (outcome, sub) in forks.drain(..) {
                        let mut arm_cont = cont.clone();
                        arm_cont.push(rest);
                        self.exec(&arms[outcome].ops, arm_cont, sub)?;
                    }
                    pool_give(&mut self.scratch.sampled_forks, forks);
                    return Ok(());
                }
            }
        }
        let mut cont = cont;
        match cont.pop() {
            // Pending products flow into the continuation: there is no
            // measurement between an arm's trailing gates and the join.
            Some(next) => self.exec(next, cont, group),
            None => {
                flush_all(&mut group.states, &mut group.pending, &mut self.flush_gate);
                self.finished.push(group);
                Ok(())
            }
        }
    }

    /// Measures every row of `group` at once and regroups the rows into
    /// outcome-homogeneous sub-batches, appended to `forks` in ascending
    /// outcome order (rows keep their relative order inside each one, so
    /// the regrouping is a pure deterministic function of the drawn
    /// outcomes).
    ///
    /// **Block-level**: the pre-measurement norms and the full
    /// `rows × outcomes` probability table come from one sweep each over
    /// the group's contiguous amplitude block
    /// ([`Measurement::branch_probabilities_block`]); each row then draws
    /// from its own stream through [`select_branch`]; and each outcome's
    /// sub-batch is materialised by one strided
    /// [`Measurement::collapse_block_into`] pass with the serial rescaling
    /// replayed in place on the destination rows ([`rescale_collapsed`]).
    /// Drawn outcomes and collapsed amplitudes are **bit for bit** the
    /// per-row [`collapse_with_draw`] results — the differential suites
    /// pin this — and the scratch arena makes the whole fork
    /// allocation-free once its pools are warm.
    ///
    /// # Panics
    ///
    /// Panics when a row has (numerically) zero norm.
    fn measure_group(
        &mut self,
        group: Group,
        meas: &Measurement,
        forks: &mut Vec<(usize, Group)>,
    ) -> Result<(), QdpError> {
        debug_assert!(
            group.pending.iter().all(Option::is_none),
            "pending products must be flushed before measuring"
        );
        let Group { mut states, mut rows, pending } = group;
        let n = states.num_qubits();
        let dim = states.dim();
        states.row_norms_sqr_into(&mut self.scratch.totals);
        // Health checks piggyback on the norms pass the measurement just
        // performed — before the zero-norm assert (NaN fails `> 1e-300`
        // too) and before the probability table is built, so repairs and
        // placeholder rows feed consistent probabilities downstream.
        if let Some(cfg) = self.health {
            for (r, ctx) in rows.iter().enumerate() {
                let total = self.scratch.totals[r];
                let expected = self.expected[ctx.orig];
                let non_finite = !total.is_finite() || !expected.is_finite();
                let drifted = !non_finite
                    && (total - expected).abs()
                        > cfg.drift_tol * expected.abs().max(f64::MIN_POSITIVE);
                if !non_finite && !drifted {
                    continue;
                }
                match cfg.policy {
                    HealthPolicy::FailFast => {
                        return Err(if non_finite {
                            QdpError::NonFinite { row: ctx.orig, context: "row norms" }
                        } else {
                            QdpError::NormDrift {
                                row: ctx.orig,
                                expected,
                                actual: total,
                                tolerance: cfg.drift_tol,
                            }
                        });
                    }
                    HealthPolicy::Renormalize => {
                        // Finite drift is repairable by rescaling; NaN/Inf
                        // amplitudes are not — no scale factor undoes them.
                        if non_finite || total <= 1e-300 {
                            return Err(QdpError::NonFinite { row: ctx.orig, context: "row norms" });
                        }
                        let s = C64::real((expected / total).sqrt());
                        let (row_re, row_im) = states.row_planes_mut(r);
                        scale_planes(row_re, row_im, s);
                        self.scratch.totals[r] = expected;
                    }
                    HealthPolicy::DegradeToOracle => {
                        // Replace the row with a well-formed placeholder so
                        // the batched sweep stays defined; its output is
                        // discarded and recomputed on the reference path.
                        // Per-row sampler independence and the row-order
                        // invariance contract keep healthy rows' bits
                        // untouched by the substitution.
                        self.defects.push(ctx.orig);
                        let norm = if expected.is_finite() && expected > 1e-300 {
                            expected
                        } else {
                            1.0
                        };
                        let (row_re, row_im) = states.row_planes_mut(r);
                        row_re.fill(0.0);
                        row_im.fill(0.0);
                        row_re[0] = norm.sqrt();
                        self.scratch.totals[r] = norm;
                    }
                }
            }
        }
        {
            let (re, im) = states.planes();
            meas.branch_probabilities_block(n, re, im, &mut self.scratch.probs);
        }
        let outcomes = meas.num_outcomes();
        self.scratch.draws.clear();
        for (r, ctx) in rows.iter_mut().enumerate() {
            let total = self.scratch.totals[r];
            assert!(total > 1e-300, "cannot measure a zero-norm state");
            let u = self.samplers[ctx.orig].next_uniform();
            let d = select_branch(u, total, &self.scratch.probs[r * outcomes..(r + 1) * outcomes]);
            ctx.outcomes.push(d.outcome);
            self.scratch.draws.push(d);
        }
        let mut selected = std::mem::take(&mut self.scratch.selected);
        for m in 0..outcomes {
            selected.clear();
            let mut sub_rows = self.scratch.sampled_rows.pop().unwrap_or_default();
            for (r, d) in self.scratch.draws.iter().enumerate() {
                if d.outcome == m {
                    selected.push(r);
                    sub_rows.push(std::mem::take(&mut rows[r]));
                }
            }
            if selected.is_empty() {
                pool_give(&mut self.scratch.sampled_rows, sub_rows);
                continue;
            }
            let (mut dst_re, mut dst_im) = self.scratch.take_block();
            {
                let (re, im) = states.planes();
                meas.collapse_block_into(n, re, im, &selected, m, &mut dst_re, &mut dst_im);
            }
            for (j, &r) in selected.iter().enumerate() {
                rescale_collapsed(
                    &mut dst_re[j * dim..(j + 1) * dim],
                    &mut dst_im[j * dim..(j + 1) * dim],
                    self.scratch.draws[r],
                );
            }
            let pending = self.scratch.take_pending(n);
            forks.push((
                m,
                Group {
                    states: BatchedStates::from_raw(selected.len(), n, dst_re, dst_im),
                    rows: sub_rows,
                    pending,
                },
            ));
        }
        self.scratch.selected = selected;
        rows.clear();
        self.scratch.reclaim_sampled(Group { states, rows, pending });
        Ok(())
    }
}

/// The root group of an exact sweep: every input row with its own squared
/// norm as the initial weight (1 for normalised inputs), read off one
/// block pass, with the row list and pending table drawn from the arena.
fn weighted_root(states: BatchedStates, scratch: &mut RegroupScratch) -> WeightedGroup {
    states.row_norms_sqr_into(&mut scratch.totals);
    let mut rows = scratch.weighted_rows.pop().unwrap_or_default();
    rows.extend(
        scratch
            .totals
            .iter()
            .enumerate()
            .map(|(orig, &weight)| WeightedRow { orig, weight }),
    );
    WeightedGroup {
        pending: scratch.take_pending(states.num_qubits()),
        rows,
        states,
    }
}

/// The state of one **exact** branch-weighted sweep: the per-row
/// droppable-mass budgets and the regroup scratch arena.
struct ExactSweep<'a> {
    /// Remaining droppable probability mass per original (tile-local) row
    /// — `ε ×` the row's initial mass, shared by every fork of that row's
    /// branch tree in the sweep's deterministic depth-first order (see
    /// [`ShotEngine::with_mass_budget`]). All zero by default.
    budgets: Vec<f64>,
    scratch: &'a mut RegroupScratch,
    /// Reusable 2×2 the pending products flush through.
    flush_gate: Matrix,
    /// Health monitoring config (`None` = no checks, today's bits).
    health: Option<HealthConfig>,
    /// Original (tile-local) indices of rows degraded to the oracle.
    defects: Vec<usize>,
}

impl ExactSweep<'_> {
    /// Executes `ops` on `group` **exactly**, with `cont` the stack of
    /// suspended op slices to resume (innermost last) once `ops` is
    /// exhausted. At every measurement the group forks into
    /// outcome-homogeneous sub-groups via
    /// [`branch_groups`](Self::branch_groups); `leaf` is called once per
    /// surviving leaf group (pending products flushed), whose buffers are
    /// then reclaimed into the arena.
    fn exec<'p>(
        &mut self,
        ops: &'p [TrajOp],
        cont: Vec<&'p [TrajOp]>,
        mut group: WeightedGroup,
        leaf: &mut dyn FnMut(&WeightedGroup),
    ) -> Result<(), QdpError> {
        for (i, op) in ops.iter().enumerate() {
            match op {
                TrajOp::Gate { matrix, targets } => {
                    if let [t] = targets[..] {
                        group.pending[t] = Some(match group.pending[t].take() {
                            None => mat2(matrix),
                            Some(prev) => mul2(&mat2(matrix), &prev),
                        });
                    } else {
                        // A multi-qubit gate orders against the pending
                        // rotations of its own targets only.
                        flush_targets(
                            &mut group.states,
                            &mut group.pending,
                            targets,
                            &mut self.flush_gate,
                        );
                        group.states.apply_gate(matrix, targets);
                    }
                }
                TrajOp::Abort => {
                    // Aborted branches contribute nothing.
                    self.scratch.reclaim_weighted(group);
                    return Ok(());
                }
                TrajOp::Init { meas, flip, target } => {
                    flush_all(&mut group.states, &mut group.pending, &mut self.flush_gate);
                    let rest = &ops[i + 1..];
                    let mut forks = self.scratch.weighted_forks.pop().unwrap_or_default();
                    self.branch_groups(group, meas, &mut forks)?;
                    for (outcome, mut sub) in forks.drain(..) {
                        if outcome == 1 {
                            sub.states.apply_gate(flip, &[*target]);
                        }
                        self.exec(rest, cont.clone(), sub, leaf)?;
                    }
                    pool_give(&mut self.scratch.weighted_forks, forks);
                    return Ok(());
                }
                TrajOp::Case { meas, arms } => {
                    flush_all(&mut group.states, &mut group.pending, &mut self.flush_gate);
                    let rest = &ops[i + 1..];
                    let mut forks = self.scratch.weighted_forks.pop().unwrap_or_default();
                    self.branch_groups(group, meas, &mut forks)?;
                    for (outcome, sub) in forks.drain(..) {
                        let mut arm_cont = cont.clone();
                        arm_cont.push(rest);
                        self.exec(&arms[outcome].ops, arm_cont, sub, leaf)?;
                    }
                    pool_give(&mut self.scratch.weighted_forks, forks);
                    return Ok(());
                }
            }
        }
        let mut cont = cont;
        match cont.pop() {
            // Pending products flow into the continuation: there is no
            // measurement between an arm's trailing gates and the join.
            Some(next) => self.exec(next, cont, group, leaf),
            None => {
                flush_all(&mut group.states, &mut group.pending, &mut self.flush_gate);
                leaf(&group);
                self.scratch.reclaim_weighted(group);
                Ok(())
            }
        }
    }

    /// Forks a weighted group at a measurement, appending the surviving
    /// outcome-homogeneous sub-groups to `forks` in ascending outcome
    /// order (rows keep their relative order inside each one — for a
    /// single row this is exactly the depth-first branch order of the
    /// per-row enumerators, so leaf accumulation per row follows the same
    /// order batched as alone).
    ///
    /// **Block-level**: every row's branch probabilities come from **one**
    /// bucketed `|amp|²` sweep over the group's contiguous amplitude block
    /// ([`Measurement::branch_probabilities_block`]), and each surviving
    /// outcome's sub-batch is materialised by one strided
    /// [`Measurement::collapse_block_into`] pass — kept **unnormalised**
    /// so the branch probability rides inside the amplitudes, as exact
    /// branch enumeration requires. No per-row kernel calls; the scratch
    /// arena makes the fork allocation-free once warm.
    ///
    /// Branches at weight ≤ [`BRANCH_PRUNE`] are dropped as always; on top
    /// of that, a row with remaining [mass budget](ShotEngine::with_mass_budget)
    /// greedily drops its lowest-weight surviving branches while their
    /// cumulative mass still fits the budget.
    fn branch_groups(
        &mut self,
        group: WeightedGroup,
        meas: &Measurement,
        forks: &mut Vec<(usize, WeightedGroup)>,
    ) -> Result<(), QdpError> {
        debug_assert!(
            group.pending.iter().all(Option::is_none),
            "pending products must be flushed before measuring"
        );
        let WeightedGroup { mut states, mut rows, pending } = group;
        let n = states.num_qubits();
        {
            let (re, im) = states.planes();
            meas.branch_probabilities_block(n, re, im, &mut self.scratch.probs);
        }
        let outcomes = meas.num_outcomes();
        // Health checks piggyback on the probability pass: measurements
        // are trace-complete (`Σm M†mMm = I`), so each row's probability
        // mass must equal its carried branch weight up to drift tolerance.
        if let Some(cfg) = self.health {
            for (r, ctx) in rows.iter().enumerate() {
                let range = r * outcomes..(r + 1) * outcomes;
                let total: f64 = self.scratch.probs[range.clone()].iter().sum();
                let expected = ctx.weight;
                let orig = ctx.orig;
                let non_finite = !total.is_finite() || !expected.is_finite();
                let drifted = !non_finite
                    && (total - expected).abs()
                        > cfg.drift_tol * expected.abs().max(f64::MIN_POSITIVE);
                if !non_finite && !drifted {
                    continue;
                }
                match cfg.policy {
                    HealthPolicy::FailFast => {
                        return Err(if non_finite {
                            QdpError::NonFinite { row: orig, context: "branch probabilities" }
                        } else {
                            QdpError::NormDrift {
                                row: orig,
                                expected,
                                actual: total,
                                tolerance: cfg.drift_tol,
                            }
                        });
                    }
                    HealthPolicy::Renormalize => {
                        if non_finite || total <= 1e-300 {
                            return Err(QdpError::NonFinite {
                                row: orig,
                                context: "branch probabilities",
                            });
                        }
                        // Rescale the row's amplitudes and its probability
                        // entries together, so child weights stay
                        // consistent with the repaired amplitudes.
                        let ratio = expected / total;
                        let s = C64::real(ratio.sqrt());
                        let (row_re, row_im) = states.row_planes_mut(r);
                        scale_planes(row_re, row_im, s);
                        for p in &mut self.scratch.probs[range] {
                            *p *= ratio;
                        }
                    }
                    HealthPolicy::DegradeToOracle => {
                        // Zeroing the row's probability entries drops it
                        // from every outcome (nothing clears BRANCH_PRUNE),
                        // excising its subtree from the batched sweep; the
                        // tile re-runs it on the per-row enumerator.
                        self.defects.push(orig);
                        for p in &mut self.scratch.probs[range] {
                            *p = 0.0;
                        }
                    }
                }
            }
        }
        self.scratch.keep.clear();
        self.scratch.keep.resize(rows.len() * outcomes, false);
        for (r, ctx) in rows.iter().enumerate() {
            let probs = &self.scratch.probs[r * outcomes..(r + 1) * outcomes];
            let keep = &mut self.scratch.keep[r * outcomes..(r + 1) * outcomes];
            for (m, &w) in probs.iter().enumerate() {
                keep[m] = w > BRANCH_PRUNE;
            }
            let budget = self.budgets[ctx.orig];
            if budget > 0.0 {
                // Mass-budget pruning: drop the lowest-weight surviving
                // branches (ties by outcome index — fully deterministic)
                // while their cumulative mass fits the row's remaining
                // budget, and charge the budget for what was dropped.
                let order = &mut self.scratch.order;
                order.clear();
                order.extend((0..outcomes).filter(|&m| keep[m]));
                order.sort_by(|&a, &b| probs[a].total_cmp(&probs[b]).then(a.cmp(&b)));
                let mut remaining = budget;
                for &m in order.iter() {
                    if probs[m] > remaining {
                        break;
                    }
                    remaining -= probs[m];
                    keep[m] = false;
                }
                self.budgets[ctx.orig] = remaining;
            }
        }
        let mut selected = std::mem::take(&mut self.scratch.selected);
        for m in 0..outcomes {
            selected.clear();
            let mut sub_rows = self.scratch.weighted_rows.pop().unwrap_or_default();
            for (r, ctx) in rows.iter().enumerate() {
                if self.scratch.keep[r * outcomes + m] {
                    selected.push(r);
                    sub_rows.push(WeightedRow {
                        orig: ctx.orig,
                        weight: self.scratch.probs[r * outcomes + m],
                    });
                }
            }
            if selected.is_empty() {
                pool_give(&mut self.scratch.weighted_rows, sub_rows);
                continue;
            }
            let (mut dst_re, mut dst_im) = self.scratch.take_block();
            {
                let (re, im) = states.planes();
                meas.collapse_block_into(n, re, im, &selected, m, &mut dst_re, &mut dst_im);
            }
            let pending = self.scratch.take_pending(n);
            forks.push((
                m,
                WeightedGroup {
                    states: BatchedStates::from_raw(selected.len(), n, dst_re, dst_im),
                    rows: sub_rows,
                    pending,
                },
            ));
        }
        self.scratch.selected = selected;
        rows.clear();
        self.scratch.reclaim_weighted(WeightedGroup { states, rows, pending });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observable::Observable;

    fn rotation_y(theta: f64) -> Matrix {
        Matrix::rotation_from_involution(&Matrix::pauli_y(), theta)
    }

    #[test]
    fn straight_line_batch_matches_per_row_gates() {
        let mut p = TrajProgram::new();
        p.push_gate(Matrix::hadamard(), vec![0]);
        p.push_gate(Matrix::cnot(), vec![0, 1]);
        p.push_gate(rotation_y(0.7), vec![1]);
        let engine = ShotEngine::new(p);
        let inputs: Vec<StateVector> = (0..5).map(|k| StateVector::basis_state(2, k % 4)).collect();
        let mut samplers: Vec<ShotSampler> = (0..5).map(|s| ShotSampler::derived(3, s)).collect();
        let rows = engine.run(BatchedStates::from_states(&inputs), &mut samplers);
        for (input, row) in inputs.iter().zip(&rows) {
            let mut expected = input.clone();
            expected.apply_gate(&Matrix::hadamard(), &[0]);
            expected.apply_gate(&Matrix::cnot(), &[0, 1]);
            expected.apply_gate(&rotation_y(0.7), &[1]);
            assert!(row.outcomes.is_empty());
            assert_eq!(
                row.state.as_ref().unwrap().amplitudes(),
                expected.amplitudes()
            );
        }
    }

    #[test]
    fn init_resets_every_row_to_zero() {
        let mut p = TrajProgram::new();
        p.push_gate(Matrix::hadamard(), vec![0]);
        p.push_init(0);
        let engine = ShotEngine::new(p);
        let mut samplers: Vec<ShotSampler> = (0..32).map(|s| ShotSampler::derived(7, s)).collect();
        let rows = engine.run(BatchedStates::zero(32, 1), &mut samplers);
        let mut seen = [false, false];
        for row in &rows {
            assert_eq!(row.outcomes.len(), 1);
            seen[row.outcomes[0]] = true;
            let state = row.state.as_ref().unwrap();
            assert_eq!(state.classical_bit(0), Some(false));
        }
        // Both measurement outcomes occur across 32 shots of |+⟩.
        assert!(seen[0] && seen[1], "outcomes {seen:?}");
    }

    #[test]
    fn abort_rows_are_reported_as_none() {
        let mut killed = TrajProgram::new();
        killed.push_abort();
        let mut p = TrajProgram::new();
        p.push_gate(Matrix::hadamard(), vec![0]);
        p.push_case(
            Measurement::computational(vec![0]),
            vec![TrajProgram::new(), killed],
        );
        let engine = ShotEngine::new(p);
        let mut samplers: Vec<ShotSampler> = (0..64).map(|s| ShotSampler::derived(11, s)).collect();
        let rows = engine.run(BatchedStates::zero(64, 1), &mut samplers);
        let mut aborted = 0usize;
        for row in &rows {
            match row.outcomes[0] {
                0 => assert!(row.state.is_some()),
                _ => {
                    assert!(row.state.is_none());
                    aborted += 1;
                }
            }
        }
        assert!(aborted > 0, "no trajectory took the aborting arm");
    }

    #[test]
    fn sample_sweep_matches_run_plus_serial_sampling() {
        // One engine call with a read-out must equal running trajectories
        // first and sampling each surviving state with the continued
        // per-row stream. (Every straight-line segment here is a single
        // gate, so sweep fusion is trivially the identity and the
        // agreement is bitwise.)
        let mut arm1 = TrajProgram::new();
        arm1.push_gate(rotation_y(1.1), vec![1]);
        let mut p = TrajProgram::new();
        p.push_gate(Matrix::hadamard(), vec![0]);
        p.push_case(
            Measurement::computational(vec![0]),
            vec![TrajProgram::new(), arm1],
        );
        let engine = ShotEngine::new(p);
        let obs = Observable::pauli_z(2, 1);
        let readout = ProjectiveObservable::new(&obs);
        let shots = 40;

        let batch = BatchedStates::zero(shots, 2);
        let mut samplers: Vec<ShotSampler> =
            (0..shots).map(|s| ShotSampler::derived(5, s as u64)).collect();
        let samples = engine.sample_sweep(batch, &mut samplers, &readout);

        let batch = BatchedStates::zero(shots, 2);
        let mut samplers: Vec<ShotSampler> =
            (0..shots).map(|s| ShotSampler::derived(5, s as u64)).collect();
        let rows = engine.run(batch, &mut samplers);
        for (row, (sampler, sample)) in rows.iter().zip(samplers.iter_mut().zip(&samples)) {
            let expected = match &row.state {
                None => 0.0,
                Some(psi) => sampler.sample_observable(psi, &obs),
            };
            assert_eq!(expected.to_bits(), sample.to_bits());
        }
    }

    #[test]
    fn estimate_expectation_converges_and_is_deterministic() {
        let mut p = TrajProgram::new();
        p.push_gate(rotation_y(0.8), vec![0]);
        let engine = ShotEngine::new(p);
        let obs = Observable::pauli_z(1, 0);
        let psi = StateVector::zero_state(1);
        let est = engine.estimate_expectation(&psi, &obs, 40_000, 2024);
        assert!((est - 0.8f64.cos()).abs() < 0.02, "estimate {est}");
        let again = engine.estimate_expectation(&psi, &obs, 40_000, 2024);
        assert_eq!(est.to_bits(), again.to_bits());
    }

    #[test]
    fn empty_batch_is_harmless() {
        let engine = ShotEngine::new(TrajProgram::new());
        let rows = engine.run(BatchedStates::from_states(&[]), &mut []);
        assert!(rows.is_empty());
        assert!(engine
            .expectation_sweep(BatchedStates::from_states(&[]), &Observable::pauli_z(1, 0))
            .is_empty());
    }

    /// The per-row exact branch enumerator — the oracle of the weighted
    /// sweep, mirroring `qdp_ad::ResolvedProgram::run_from` on the
    /// trajectory IR (Init enumerated as measure + flip).
    fn enumerate_branches(ops: &[TrajOp], mut psi: StateVector, out: &mut Vec<StateVector>) {
        for (i, op) in ops.iter().enumerate() {
            match op {
                TrajOp::Gate { matrix, targets } => psi.apply_gate(matrix, targets),
                TrajOp::Abort => return,
                TrajOp::Init { meas, flip, target } => {
                    for b in meas.branches_pure(&psi) {
                        if b.probability > BRANCH_PRUNE {
                            let mut state = b.state;
                            if b.outcome == 1 {
                                state.apply_gate(flip, &[*target]);
                            }
                            enumerate_branches(&ops[i + 1..], state, out);
                        }
                    }
                    return;
                }
                TrajOp::Case { meas, arms } => {
                    for b in meas.branches_pure(&psi) {
                        if b.probability > BRANCH_PRUNE {
                            let mut mids = Vec::new();
                            enumerate_branches(&arms[b.outcome].ops, b.state, &mut mids);
                            for mid in mids {
                                enumerate_branches(&ops[i + 1..], mid, out);
                            }
                        }
                    }
                    return;
                }
            }
        }
        out.push(psi);
    }

    fn branching_program() -> TrajProgram {
        // H; case M[0] = 0 -> RY(1.1)[1], 1 -> (RY(0.4)[0]; init 1) end; CNOT
        let mut arm0 = TrajProgram::new();
        arm0.push_gate(rotation_y(1.1), vec![1]);
        let mut arm1 = TrajProgram::new();
        arm1.push_gate(rotation_y(0.4), vec![0]);
        arm1.push_init(1);
        let mut p = TrajProgram::new();
        p.push_gate(Matrix::hadamard(), vec![0]);
        p.push_case(Measurement::computational(vec![0]), vec![arm0, arm1]);
        p.push_gate(Matrix::cnot(), vec![0, 1]);
        p
    }

    #[test]
    fn expectation_sweep_matches_per_row_enumeration() {
        let engine = ShotEngine::new(branching_program());
        let obs = Observable::pauli_z(2, 1);
        let inputs: Vec<StateVector> = (0..5)
            .map(|k| {
                let mut s = StateVector::basis_state(2, k % 4);
                s.apply_gate(&rotation_y(0.3 + 0.2 * k as f64), &[0]);
                s
            })
            .collect();
        let swept = engine.expectation_sweep(BatchedStates::from_states(&inputs), &obs);
        for (r, psi) in inputs.iter().enumerate() {
            let mut leaves = Vec::new();
            enumerate_branches(&engine.program().ops, psi.clone(), &mut leaves);
            let expected: f64 = leaves.iter().map(|b| obs.expectation_pure(b)).sum();
            assert!(
                (swept[r] - expected).abs() < 1e-12,
                "row {r}: swept {} vs enumerated {expected}",
                swept[r]
            );
        }
    }

    #[test]
    fn expectation_sweep_rows_are_invariant_under_batch_composition() {
        // Per-row results must carry identical bits whether the row runs
        // alone or inside any batch, in any order.
        let engine = ShotEngine::new(branching_program());
        let obs = Observable::pauli_z(2, 1);
        let inputs: Vec<StateVector> = (0..6)
            .map(|k| {
                let mut s = StateVector::basis_state(2, k % 4);
                s.apply_gate(&rotation_y(0.9 - 0.1 * k as f64), &[1]);
                s
            })
            .collect();
        let together = engine.expectation_sweep(BatchedStates::from_states(&inputs), &obs);
        for (r, psi) in inputs.iter().enumerate() {
            let alone =
                engine.expectation_sweep(BatchedStates::from_states(std::slice::from_ref(psi)), &obs)[0];
            assert_eq!(together[r].to_bits(), alone.to_bits(), "row {r}");
        }
        let reversed: Vec<StateVector> = inputs.iter().rev().cloned().collect();
        let backwards = engine.expectation_sweep(BatchedStates::from_states(&reversed), &obs);
        for (r, v) in together.iter().enumerate() {
            assert_eq!(
                v.to_bits(),
                backwards[inputs.len() - 1 - r].to_bits(),
                "row {r} under reversal"
            );
        }
    }

    #[test]
    fn leaf_weights_sum_to_one_for_abort_free_programs() {
        let engine = ShotEngine::new(branching_program());
        let inputs: Vec<StateVector> = (0..4).map(|k| StateVector::basis_state(2, k)).collect();
        let weights = engine.leaf_weights(BatchedStates::from_states(&inputs));
        for (r, row) in weights.iter().enumerate() {
            let total: f64 = row.iter().sum();
            assert!(
                (total - 1.0).abs() < 1e-9,
                "row {r}: leaf weights {row:?} sum to {total}"
            );
            assert!(row.iter().all(|&w| w > 0.0), "row {r}: {row:?}");
        }
    }

    #[test]
    fn aborted_branches_contribute_nothing() {
        // H; case M[0] = 0 -> skip, 1 -> abort end: only the |0⟩ branch
        // (weight 1/2) reads out.
        let mut killed = TrajProgram::new();
        killed.push_abort();
        let mut p = TrajProgram::new();
        p.push_gate(Matrix::hadamard(), vec![0]);
        p.push_case(
            Measurement::computational(vec![0]),
            vec![TrajProgram::new(), killed],
        );
        let engine = ShotEngine::new(p);
        let obs = Observable::projector_zero(1, 0);
        let swept = engine.expectation_sweep(BatchedStates::zero(3, 1), &obs);
        for (r, v) in swept.iter().enumerate() {
            assert!((v - 0.5).abs() < 1e-12, "row {r}: {v}");
        }
        let weights = engine.leaf_weights(BatchedStates::zero(2, 1));
        for row in &weights {
            assert_eq!(row.len(), 1, "only the surviving branch leaves a leaf");
            assert!((row[0] - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_mass_budget_preserves_unpruned_bits() {
        let plain = ShotEngine::new(branching_program());
        let pruned = ShotEngine::new(branching_program()).with_mass_budget(0.0);
        let obs = Observable::pauli_z(2, 1);
        let inputs: Vec<StateVector> = (0..5)
            .map(|k| {
                let mut s = StateVector::basis_state(2, k % 4);
                s.apply_gate(&rotation_y(0.2 + 0.3 * k as f64), &[1]);
                s
            })
            .collect();
        let batch = BatchedStates::from_states(&inputs);
        let a = plain.expectation_sweep(batch.clone(), &obs);
        let b = pruned.expectation_sweep(batch, &obs);
        for (r, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "row {r}");
        }
    }

    #[test]
    fn mass_budget_error_is_bounded_by_epsilon() {
        // ‖Z‖ = 1, so the pruned sweep may deviate from the unpruned
        // oracle by at most the dropped probability mass — ε per row.
        let oracle = ShotEngine::new(branching_program());
        let obs = Observable::pauli_z(2, 1);
        let inputs: Vec<StateVector> = (0..6)
            .map(|k| {
                let mut s = StateVector::basis_state(2, k % 4);
                s.apply_gate(&rotation_y(0.15 + 0.23 * k as f64), &[0]);
                s
            })
            .collect();
        let exact = oracle.expectation_sweep(BatchedStates::from_states(&inputs), &obs);
        for epsilon in [0.01, 0.1, 0.3] {
            let engine = ShotEngine::new(branching_program()).with_mass_budget(epsilon);
            let pruned = engine.expectation_sweep(BatchedStates::from_states(&inputs), &obs);
            for (r, (p, e)) in pruned.iter().zip(&exact).enumerate() {
                assert!(
                    (p - e).abs() <= epsilon + 1e-12,
                    "ε = {epsilon} row {r}: pruned {p} vs exact {e}"
                );
            }
            // Kept leaf mass per row stays ≥ 1 − ε.
            let weights = engine.leaf_weights(BatchedStates::from_states(&inputs));
            for (r, row) in weights.iter().enumerate() {
                let total: f64 = row.iter().sum();
                assert!(
                    total >= 1.0 - epsilon - 1e-12,
                    "ε = {epsilon} row {r}: kept mass {total}"
                );
            }
            // Pruning decisions are per-row: batch composition invariance
            // survives a non-zero budget.
            for (r, psi) in inputs.iter().enumerate() {
                let alone = engine
                    .expectation_sweep(BatchedStates::from_states(std::slice::from_ref(psi)), &obs)[0];
                assert_eq!(pruned[r].to_bits(), alone.to_bits(), "ε = {epsilon} row {r}");
            }
        }
    }

    #[test]
    fn mass_budget_drops_low_weight_branches() {
        // RY(0.2) puts ~1% of the mass on |1⟩; a 5% budget prunes that
        // branch (and everything under it), halving the leaf count.
        let mut p = TrajProgram::new();
        p.push_gate(rotation_y(0.2), vec![0]);
        p.push_case(
            Measurement::computational(vec![0]),
            vec![TrajProgram::new(), TrajProgram::new()],
        );
        let unpruned = ShotEngine::new(p.clone()).leaf_weights(BatchedStates::zero(1, 1));
        assert_eq!(unpruned[0].len(), 2);
        let pruned = ShotEngine::new(p)
            .with_mass_budget(0.05)
            .leaf_weights(BatchedStates::zero(1, 1));
        assert_eq!(pruned[0].len(), 1, "low-weight branch survives: {:?}", pruned[0]);
        assert!(pruned[0][0] >= 0.95);
    }

    #[test]
    #[should_panic(expected = "mass budget must be in [0, 1)")]
    fn mass_budget_rejects_out_of_range_epsilon() {
        let _ = ShotEngine::new(TrajProgram::new()).with_mass_budget(1.0);
    }

    #[test]
    #[should_panic(expected = "one sampler stream per batch row")]
    fn mismatched_sampler_count_panics() {
        let engine = ShotEngine::new(TrajProgram::new());
        let mut samplers = vec![ShotSampler::seeded(1)];
        let _ = engine.run(BatchedStates::zero(2, 1), &mut samplers);
    }
}
