//! Higher-order derivatives of quantum programs — the extension the paper's
//! footnote 7 sets up: the first differentiation's ancilla joins the
//! register, a fresh ancilla is added, and the observable gains another
//! `Z` factor. The iterated controlled rotations (`CC_Rσ`, `CCC_Rσ`, …)
//! satisfy the same `d/dθ U(θ) = ½·U(θ+π)` identity as `Rσ`, so the
//! Definition 6.1 gadget construction applies at every order.
//!
//! Run with: `cargo run --release --example higher_order`

use qdpl::ad::exec::{hessian, second_derivative};
use qdpl::ad::differentiate;
use qdpl::lang::ast::Params;
use qdpl::lang::parse_program;
use qdpl::sim::{DensityMatrix, Observable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // f(t) = ⟨Z⟩ after RY(t)|0⟩ = cos t, so every derivative is known.
    let p = parse_program("q1 *= RY(t)")?;
    let obs = Observable::pauli_z(1, 0);
    let rho = DensityMatrix::pure_zero(1);
    let theta: f64 = 0.9;
    let params = Params::from_pairs([("t", theta)]);

    let d1 = differentiate(&p, "t")?.derivative(&params, &obs, &rho);
    let d2 = second_derivative(&p, "t", "t", &params, &obs, &rho)?;
    println!("f(t) = cos t at t = {theta}");
    println!("  f'(t):  computed {d1:+.9}, exact {:+.9}", -theta.sin());
    println!("  f''(t): computed {d2:+.9}, exact {:+.9}", -theta.cos());
    assert!((d1 + theta.sin()).abs() < 1e-9);
    assert!((d2 + theta.cos()).abs() < 1e-9);

    // A Hessian across parameters, including through measurement control.
    let p = parse_program(
        "q1 *= RX(a); case M[q1] = 0 -> q2 *= RY(b), 1 -> q2 *= RZ(a) end",
    )?;
    let obs = Observable::pauli_z(2, 1);
    let rho = DensityMatrix::pure_zero(2);
    let params = Params::from_pairs([("a", 0.6), ("b", -0.4)]);
    println!("\nHessian of a measurement-controlled program:");
    let h = hessian(&p, &params, &obs, &rho)?;
    for ((r, c), v) in &h {
        println!("  ∂²/∂{r}∂{c} = {v:+.9}");
    }
    let ab = h[&("a".into(), "b".into())];
    let ba = h[&("b".into(), "a".into())];
    assert!((ab - ba).abs() < 1e-9, "mixed partials must agree");
    println!("mixed-partial symmetry: |∂ab − ∂ba| = {:.2e}", (ab - ba).abs());

    // Peek at the machinery: the second-derivative programs use doubly
    // controlled rotations.
    let d1 = differentiate(&p, "a")?;
    let inner = qdpl::ad::exec::differentiate_in(&d1.compiled()[0], "a", d1.ext_register())?;
    let mut mnemonics = std::collections::BTreeSet::new();
    for prog in inner.compiled() {
        prog.visit(&mut |s| {
            if let qdpl::lang::Stmt::Unitary { gate, .. } = s {
                mnemonics.insert(gate.mnemonic());
            }
        });
    }
    println!("\ngates appearing in a second-derivative program: {mnemonics:?}");
    assert!(mnemonics.iter().any(|m| m.starts_with("CC")));
    Ok(())
}
