//! Many-body Hamiltonians and ansatz circuits for VQE-style experiments.
//!
//! The paper's VQE benchmark (Section 8.2, after Peruzzo et al.) minimises
//! the energy `⟨H⟩` of a quantum-chemistry or spin Hamiltonian over a
//! parameterized circuit. This module supplies the canonical NISQ test
//! case — the transverse-field Ising chain — plus a hardware-efficient
//! ansatz expressed in the paper's `q-while` language, so the paper's
//! differentiation scheme drives a *real* VQE optimisation end to end
//! (see `examples/vqe_ising.rs`).

use qdp_lang::ast::{Stmt, Var};
use qdp_linalg::{Pauli, PauliString};
use qdp_sim::Observable;

/// The transverse-field Ising Hamiltonian on an open chain:
///
/// `H = −J·Σᵢ Zᵢ Zᵢ₊₁ − h·Σᵢ Xᵢ`.
///
/// # Panics
///
/// Panics for fewer than 2 sites.
pub fn transverse_field_ising(n_sites: usize, coupling_j: f64, field_h: f64) -> Observable {
    assert!(n_sites >= 2, "an Ising chain needs at least two sites");
    let mut terms = Vec::new();
    for i in 0..n_sites - 1 {
        let mut factors = vec![Pauli::I; n_sites];
        factors[i] = Pauli::Z;
        factors[i + 1] = Pauli::Z;
        terms.push((-coupling_j, PauliString::new(factors)));
    }
    for i in 0..n_sites {
        terms.push((-field_h, PauliString::single(n_sites, i, Pauli::X)));
    }
    Observable::from_pauli_sum(&terms).expect("all terms span the full chain")
}

/// The Heisenberg XXZ chain `H = Σᵢ (XᵢXᵢ₊₁ + YᵢYᵢ₊₁ + Δ·ZᵢZᵢ₊₁)`.
///
/// # Panics
///
/// Panics for fewer than 2 sites.
pub fn heisenberg_xxz(n_sites: usize, delta: f64) -> Observable {
    assert!(n_sites >= 2, "a Heisenberg chain needs at least two sites");
    let mut terms = Vec::new();
    for i in 0..n_sites - 1 {
        for (axis, weight) in [(Pauli::X, 1.0), (Pauli::Y, 1.0), (Pauli::Z, delta)] {
            let mut factors = vec![Pauli::I; n_sites];
            factors[i] = axis;
            factors[i + 1] = axis;
            terms.push((weight, PauliString::new(factors)));
        }
    }
    Observable::from_pauli_sum(&terms).expect("all terms span the full chain")
}

/// A hardware-efficient VQE ansatz in the `q-while` language: `layers`
/// repetitions of per-qubit `RY`/`RZ` rotations followed by a CNOT chain,
/// with a final rotation layer. Every gate carries a distinct parameter
/// `v{index}`, so each has `|#∂| = 1`.
///
/// # Panics
///
/// Panics for zero qubits or zero layers.
pub fn hardware_efficient_ansatz(n_qubits: usize, layers: usize) -> Stmt {
    assert!(n_qubits >= 1 && layers >= 1, "ansatz needs qubits and layers");
    let q = |i: usize| Var::new(format!("q{}", i + 1));
    let mut next = 0usize;
    let mut fresh = || {
        let name = format!("v{next}");
        next += 1;
        name
    };
    let mut stmts = Vec::new();
    for _ in 0..layers {
        for i in 0..n_qubits {
            stmts.push(Stmt::rot(Pauli::Y, fresh(), q(i)));
            stmts.push(Stmt::rot(Pauli::Z, fresh(), q(i)));
        }
        for i in 0..n_qubits.saturating_sub(1) {
            stmts.push(Stmt::unitary(qdp_lang::Gate::Cnot, [q(i), q(i + 1)]));
        }
    }
    for i in 0..n_qubits {
        stmts.push(Stmt::rot(Pauli::Y, fresh(), q(i)));
    }
    Stmt::seq(stmts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdp_ad::GradientEngine;
    use qdp_lang::ast::Params;
    use qdp_lang::wf;
    use qdp_sim::StateVector;

    #[test]
    fn ising_is_hermitian_with_known_small_spectrum() {
        // Two sites, J=1, h=0: H = −Z⊗Z with eigenvalues {−1, −1, 1, 1}.
        let h = transverse_field_ising(2, 1.0, 0.0);
        assert!((h.min_eigenvalue() + 1.0).abs() < 1e-10);
        // Pure field (J=0, h=1): ground energy −n·h = −2.
        let h = transverse_field_ising(2, 0.0, 1.0);
        assert!((h.min_eigenvalue() + 2.0).abs() < 1e-9);
    }

    #[test]
    fn ising_ground_energy_matches_exact_diagonalization_structure() {
        // J=h=1 on 3 sites: check against independently computed value
        // E0 = -2·sqrt(1+1+... ) — here simply verify monotonicity in h and
        // the classical limits.
        let e_classical = transverse_field_ising(3, 1.0, 0.0).min_eigenvalue();
        assert!((e_classical + 2.0).abs() < 1e-9, "two ZZ bonds at J=1");
        let e_field = transverse_field_ising(3, 0.0, 1.0).min_eigenvalue();
        assert!((e_field + 3.0).abs() < 1e-9, "three X terms at h=1");
        let e_mixed = transverse_field_ising(3, 1.0, 1.0).min_eigenvalue();
        assert!(e_mixed < e_classical && e_mixed < e_field);
    }

    #[test]
    fn heisenberg_two_site_ground_state_is_singlet() {
        // XX+YY+ZZ on two sites has ground energy −3 (singlet).
        let h = heisenberg_xxz(2, 1.0);
        assert!((h.min_eigenvalue() + 3.0).abs() < 1e-9);
    }

    #[test]
    fn ansatz_is_well_formed_and_fully_parameterized() {
        let a = hardware_efficient_ansatz(3, 2);
        wf::check(&a).unwrap();
        // 2 layers × 3 qubits × 2 rotations + 3 final = 15 parameters.
        assert_eq!(a.parameters().len(), 15);
        assert_eq!(a.qvar().len(), 3);
    }

    #[test]
    fn ansatz_energy_gradient_matches_finite_difference() {
        let ansatz = hardware_efficient_ansatz(2, 1);
        let h = transverse_field_ising(2, 1.0, 0.5);
        let engine = GradientEngine::new(&ansatz).unwrap();
        let params = Params::from_pairs(
            ansatz
                .parameters()
                .into_iter()
                .enumerate()
                .map(|(i, name)| (name, 0.3 + 0.41 * i as f64)),
        );
        let psi = StateVector::zero_state(2);
        let grad = engine.gradient_pure(&params, &h, &psi);
        let reg = qdp_lang::Register::from_program(&ansatz);
        for (name, value) in &grad {
            let numeric = qdp_ad::semantics::numeric_derivative(
                &ansatz,
                &reg,
                &params,
                name,
                &h,
                &qdp_sim::DensityMatrix::from_pure(&psi),
                1e-5,
            );
            assert!((value - numeric).abs() < 1e-7, "∂E/∂{name}");
        }
    }

    #[test]
    fn ansatz_can_reach_the_classical_ising_ground_state() {
        // With J=1, h=0 the ground states are |00⟩/|11⟩; RY(0)=identity
        // already gives ⟨H⟩ = −1 = E0 from |00⟩.
        let h = transverse_field_ising(2, 1.0, 0.0);
        let ansatz = hardware_efficient_ansatz(2, 1);
        let engine = GradientEngine::new(&ansatz).unwrap();
        let zeros = Params::from_pairs(
            ansatz.parameters().into_iter().map(|name| (name, 0.0)),
        );
        let e = engine.value_pure(&zeros, &h, &StateVector::zero_state(2));
        assert!((e - h.min_eigenvalue()).abs() < 1e-9);
    }
}
