//! The end-to-end differentiation pipeline (Section 7, “Execution”).
//!
//! For a program `P(θ)` and one parameter `θj`:
//!
//! 1. apply the code transformation to get the additive `∂/∂θj(P(θ))`
//!    ([`crate::transform`]),
//! 2. compile it into the multiset `{|P′i(θ)|}` of normal, non-aborting
//!    programs ([`qdp_lang::compile`]) — both steps happen at *compile time*,
//! 3. at run time, evaluate `Σi tr((ZA⊗O)·[[P′i]](|0⟩A⟨0| ⊗ ρ))` (Eq. 7.1).
//!
//! [`Differentiated`] packages steps 1–2; [`GradientEngine`] caches one
//! `Differentiated` per parameter and evaluates whole gradients.

use crate::cache::{CompiledSkeleton, ProgramCache};
use crate::lowered::LoweredSet;
use crate::semantics::observable_semantics;
use crate::transform::{fresh_ancilla, transform, TransformError};
use qdp_lang::ast::{Params, Stmt, Var};
use qdp_lang::{compile, denot, Register};
use qdp_sim::{BatchedStates, DensityMatrix, Observable, StateVector};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Bounded retry budget for panicked worker tiles in this module's
/// parallel fan-outs. Every fanned-out closure here is pure per call, so
/// a retry is bit-identical to a first-try success.
const TILE_RETRIES: usize = 2;

/// Extracts the human-readable message from a panic payload (the two
/// payload shapes `panic!` produces, with a fallback for exotic ones).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Runs a batched evaluation whose only failure mode is a panic (e.g.
/// worker-panic exhaustion deep inside `expectation_batch` re-panics with
/// the typed message) and converts the unwind into a typed error — the
/// fallible `try_*` twins of entry points that cannot thread a `Result`
/// through their fan-out are built on this.
fn contain<R>(f: impl FnOnce() -> R) -> Result<R, qdp_sim::QdpError> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).map_err(|payload| {
        qdp_sim::QdpError::ServicePanic { message: panic_message(payload.as_ref()) }
    })
}

/// The compile-time artifact of differentiating one program with respect to
/// one parameter.
///
/// # Examples
///
/// ```
/// use qdp_ad::differentiate;
/// use qdp_lang::ast::Params;
/// use qdp_lang::parse_program;
/// use qdp_sim::{DensityMatrix, Observable};
///
/// let p = parse_program("q1 *= RY(t)")?;
/// let diff = differentiate(&p, "t")?;
/// let obs = Observable::pauli_z(1, 0);
/// let rho = DensityMatrix::pure_zero(1);
/// let params = Params::from_pairs([("t", 0.5)]);
/// // d/dθ cos θ = −sin θ.
/// let d = diff.derivative(&params, &obs, &rho);
/// assert!((d + 0.5f64.sin()).abs() < 1e-10);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct Differentiated {
    param: String,
    ancilla: Var,
    additive: Stmt,
    compiled: Vec<Stmt>,
    base_register: Register,
    ext_register: Register,
}

/// Differentiates `program` with respect to `param`: transformation plus
/// compilation (the paper's compile-time phase).
///
/// # Errors
///
/// Returns [`TransformError`] on an ancilla-name collision (never happens
/// with the automatically chosen ancilla).
pub fn differentiate(program: &Stmt, param: &str) -> Result<Differentiated, TransformError> {
    differentiate_in(program, param, &Register::from_program(program))
}

/// Like [`differentiate`], but over a caller-supplied base register (which
/// must contain every program variable). This is what higher-order
/// differentiation uses: the base register of the second pass is the
/// ancilla-extended register of the first, so observables keep lining up.
///
/// # Errors
///
/// Returns [`TransformError`] on an ancilla-name collision.
///
/// # Panics
///
/// Panics when the program uses a variable outside `base_register`.
pub fn differentiate_in(
    program: &Stmt,
    param: &str,
    base_register: &Register,
) -> Result<Differentiated, TransformError> {
    for v in program.qvar() {
        assert!(
            base_register.contains(&v),
            "program variable '{v}' missing from the supplied register"
        );
    }
    let mut ancilla = fresh_ancilla(program, param);
    while base_register.contains(&ancilla) {
        ancilla = Var::new(format!("{}'", ancilla.name()));
    }
    let additive = transform(program, param, &ancilla)?;
    let compiled: Vec<Stmt> = compile::compile(&additive)
        .into_iter()
        .filter(|p| !p.essentially_aborts())
        .collect();
    let ext_register = base_register.with_ancilla_front(ancilla.clone());
    Ok(Differentiated {
        param: param.to_string(),
        ancilla,
        additive,
        compiled,
        base_register: base_register.clone(),
        ext_register,
    })
}

/// The second-order derivative
/// `∂²/∂θp2 ∂θp1 · tr(O·[[P(θ*)]]ρ)`, computed by differentiating each
/// compiled first-derivative program again (the nesting of the paper's
/// footnote 7: the old ancilla joins the register, a fresh one is added,
/// and the observable picks up another `Z` factor).
///
/// # Errors
///
/// Returns [`TransformError`] on ancilla collisions.
pub fn second_derivative(
    program: &Stmt,
    param1: &str,
    param2: &str,
    params: &Params,
    obs: &Observable,
    rho: &DensityMatrix,
) -> Result<f64, TransformError> {
    let first = differentiate(program, param1)?;
    let obs_ext = obs.with_ancilla_z();
    let rho_ext = rho.prepend_zero_ancilla();
    // Each first-derivative program is differentiated and evaluated
    // independently; summation stays in multiset order for determinism.
    let partials = qdp_par::par_map(first.compiled(), |inner| {
        let second = differentiate_in(inner, param2, first.ext_register())?;
        Ok(second.derivative(params, &obs_ext, &rho_ext))
    });
    let mut total = 0.0;
    for partial in partials {
        total += partial?;
    }
    Ok(total)
}

/// The full Hessian over a set of parameters, keyed by `(row, column)`.
/// Symmetric up to numerical error; both triangles are computed
/// independently, which doubles as a smoothness check.
///
/// # Errors
///
/// Returns [`TransformError`] on ancilla collisions.
pub fn hessian(
    program: &Stmt,
    params: &Params,
    obs: &Observable,
    rho: &DensityMatrix,
) -> Result<BTreeMap<(String, String), f64>, TransformError> {
    let names: Vec<String> = program.parameters().into_iter().collect();
    let mut out = BTreeMap::new();
    for p1 in &names {
        for p2 in &names {
            let value = second_derivative(program, p1, p2, params, obs, rho)?;
            out.insert((p1.clone(), p2.clone()), value);
        }
    }
    Ok(out)
}

impl Differentiated {
    /// The differentiated parameter name.
    pub fn param(&self) -> &str {
        &self.param
    }

    /// The ancilla variable `A` introduced by the transformation.
    pub fn ancilla(&self) -> &Var {
        &self.ancilla
    }

    /// The additive program `∂/∂θj(P(θ))` before compilation.
    pub fn additive(&self) -> &Stmt {
        &self.additive
    }

    /// The compiled multiset of non-aborting normal programs — its length is
    /// `|#∂/∂θj(P(θ))|` (Definition 4.3), the number of initial-state copies
    /// per evaluation (Section 7).
    pub fn compiled(&self) -> &[Stmt] {
        &self.compiled
    }

    /// The register of the original program.
    pub fn base_register(&self) -> &Register {
        &self.base_register
    }

    /// The extended register (`ancilla` at qubit 0).
    pub fn ext_register(&self) -> &Register {
        &self.ext_register
    }

    /// Evaluates the derivative
    /// `Σi tr((ZA⊗O) · [[P′i(θ*)]]((|0⟩A⟨0|) ⊗ ρ))` (Eq. 7.1) exactly.
    ///
    /// By Theorem 6.2 this equals `∂/∂θj tr(O · [[P(θ*)]]ρ)` for **every**
    /// observable `O` and input `ρ` — the strongest differential-semantics
    /// guarantee (Definition 5.3).
    ///
    /// The compiled programs `{P′i}` are independent simulations; they are
    /// evaluated in parallel and summed in multiset order, so the result is
    /// identical (bit-for-bit) no matter how many threads run. The ancilla
    /// extension of `O` and `ρ` is built once and shared across the multiset
    /// instead of once per program.
    pub fn derivative(&self, params: &Params, obs: &Observable, rho: &DensityMatrix) -> f64 {
        assert_eq!(
            self.ext_register.len(),
            rho.num_qubits() + 1,
            "extended register must have exactly one more qubit than the input state"
        );
        let ext_obs = obs.with_ancilla_z();
        let ext_rho = rho.prepend_zero_ancilla();
        self.derivative_prepared(params, &ext_obs, &ext_rho)
    }

    /// [`derivative`](Self::derivative) with the ancilla extension already
    /// applied — what [`GradientEngine::gradient`] calls so the
    /// `O(4^(n+1))` extended buffers are built once per gradient instead of
    /// once per parameter.
    pub(crate) fn derivative_prepared(
        &self,
        params: &Params,
        ext_obs: &Observable,
        ext_rho: &DensityMatrix,
    ) -> f64 {
        // Pure per program, so a panicked worker tile retries
        // bit-identically before the failure is surfaced.
        qdp_par::try_par_map_retry(
            &self.compiled,
            |p| observable_semantics(p, &self.ext_register, params, ext_obs, ext_rho),
            TILE_RETRIES,
        )
        .unwrap_or_else(|e| panic!("{}", qdp_sim::QdpError::from(e)))
        .into_iter()
        .sum()
    }

    /// Pure-input fast path of [`derivative`](Self::derivative): evaluates
    /// the *lowered* multiset (resolved indices, interned parameter slots)
    /// in parallel. Agrees with the dense path to numerical precision and
    /// with the AST interpreter bit-for-bit.
    pub fn derivative_pure(&self, params: &Params, obs: &Observable, psi: &StateVector) -> f64 {
        let ext_obs = obs.with_ancilla_z();
        let ext_psi = StateVector::zero_state(1).tensor(psi);
        let skeleton = self.skeleton();
        let values = skeleton.lowered().slot_values(params);
        self.derivative_pure_prepared(skeleton.lowered(), &values, &ext_obs, &ext_psi)
    }

    /// [`derivative_pure`](Self::derivative_pure) with the ancilla extension,
    /// slot values, and interned lowering already resolved — what
    /// [`GradientEngine`] calls so the shared setup (including the one cache
    /// lookup per parameter) happens once per gradient, not once per
    /// parameter per evaluation step.
    pub(crate) fn derivative_pure_prepared(
        &self,
        lowered: &LoweredSet,
        values: &[f64],
        ext_obs: &Observable,
        ext_psi: &StateVector,
    ) -> f64 {
        qdp_par::try_par_map_retry(
            lowered.programs(),
            |p| p.expectation_pure(values, ext_psi, ext_obs),
            TILE_RETRIES,
        )
        .unwrap_or_else(|e| panic!("{}", qdp_sim::QdpError::from(e)))
        .into_iter()
        .sum()
    }

    /// Batched pure-input evaluation of [`derivative_pure`](Self::derivative_pure):
    /// one derivative value per batch row, computed in a single pass over
    /// the lowered multiset. The ancilla extension of the batch and the
    /// observable are built once; parameter slots are resolved once; the
    /// `batch × programs` tiles are split across `qdp_par` workers. Each
    /// entry agrees with `derivative_pure` on that row to numerical
    /// precision (≪ 1e-12 — the straight-line fast path fuses commuting
    /// rotations, which reorders rounding), and the batch result itself is
    /// bit-for-bit deterministic under any thread count.
    pub fn derivative_pure_batch(
        &self,
        params: &Params,
        obs: &Observable,
        states: &BatchedStates,
    ) -> Vec<f64> {
        let ext_obs = obs.with_ancilla_z();
        let ext_states = states.prepend_zero_ancilla();
        let skeleton = self.skeleton();
        let values = skeleton.lowered().slot_values(params);
        skeleton
            .lowered()
            .expectation_batch(&values, &ext_states, &ext_obs)
    }

    /// The compiled skeleton (lowered multiset with resolved qubit indices,
    /// interned parameter slots, pre-built measurements and constant
    /// matrices, plus patchable trajectory templates), interned through the
    /// process-wide [`ProgramCache`]: the first `Differentiated` of a given
    /// (multiset, register) pair anywhere in the process compiles it, every
    /// later one — including clones and re-differentiations of the same
    /// program — shares that one skeleton. Public so batch evaluators and
    /// future backends can drive [`LoweredSet::expectation_batch`] directly.
    pub fn skeleton(&self) -> Arc<CompiledSkeleton> {
        ProgramCache::global().intern(&self.compiled, &self.ext_register)
    }
}

/// Gradient evaluation over all parameters of a program, with the per-
/// parameter transformations cached.
#[derive(Clone, Debug)]
pub struct GradientEngine {
    program: Stmt,
    register: Register,
    diffs: BTreeMap<String, Differentiated>,
    /// Per parameter, the remap from its `Differentiated`'s interned slots
    /// into the engine's canonical parameter order (`diffs` key order) —
    /// resolves every string lookup once. Built lazily on the first pure
    /// gradient so density-path-only engines never pay for lowering. This
    /// is cheap derived indexing, not a compilation: the lowerings it
    /// indexes into live in the process-wide [`ProgramCache`].
    slot_remaps: std::sync::OnceLock<BTreeMap<String, Vec<usize>>>,
}

impl GradientEngine {
    /// Differentiates `program` with respect to every parameter it uses.
    ///
    /// # Errors
    ///
    /// Returns the first [`TransformError`] encountered.
    pub fn new(program: &Stmt) -> Result<Self, TransformError> {
        let register = Register::from_program(program);
        let mut diffs = BTreeMap::new();
        for param in program.parameters() {
            diffs.insert(param.clone(), differentiate(program, &param)?);
        }
        Ok(GradientEngine {
            program: program.clone(),
            register,
            diffs,
            slot_remaps: std::sync::OnceLock::new(),
        })
    }

    /// The forward program as an interned one-element skeleton — the fast
    /// path of batched forward evaluation and the shift-rule gradient.
    /// Compiled once per process via the shared [`ProgramCache`].
    pub fn forward_skeleton(&self) -> Arc<CompiledSkeleton> {
        ProgramCache::global().intern(std::slice::from_ref(&self.program), &self.register)
    }

    /// The per-parameter slot remaps, built (against the interned
    /// lowerings they index into) on first use.
    fn slot_remaps(&self) -> &BTreeMap<String, Vec<usize>> {
        self.slot_remaps.get_or_init(|| {
            let canonical: Vec<&String> = self.diffs.keys().collect();
            self.diffs
                .iter()
                .map(|(name, diff)| {
                    let remap = diff
                        .skeleton()
                        .lowered()
                        .param_names()
                        .iter()
                        .map(|p| {
                            // Infallible: every gadget parameter is a
                            // parameter of the program it was derived from.
                            #[allow(clippy::expect_used)]
                            canonical
                                .iter()
                                .position(|c| *c == p)
                                .expect("gadget parameters are program parameters")
                        })
                        .collect();
                    (name.clone(), remap)
                })
                .collect()
        })
    }

    /// The program under differentiation.
    pub fn program(&self) -> &Stmt {
        &self.program
    }

    /// The program's register.
    pub fn register(&self) -> &Register {
        &self.register
    }

    /// Parameter names in lexicographic order.
    pub fn parameters(&self) -> impl Iterator<Item = &str> {
        self.diffs.keys().map(String::as_str)
    }

    /// The cached differentiation artifact for one parameter.
    pub fn differentiated(&self, param: &str) -> Option<&Differentiated> {
        self.diffs.get(param)
    }

    /// Forward value `tr(O · [[P(θ*)]]ρ)`.
    pub fn value(&self, params: &Params, obs: &Observable, rho: &DensityMatrix) -> f64 {
        observable_semantics(&self.program, &self.register, params, obs, rho)
    }

    /// Forward value on a pure input.
    pub fn value_pure(&self, params: &Params, obs: &Observable, psi: &StateVector) -> f64 {
        denot::expectation_pure(&self.program, &self.register, params, psi, obs)
    }

    /// The full gradient, keyed by parameter name.
    ///
    /// The per-parameter evaluations are independent and run in parallel;
    /// each entry's value is computed exactly as by
    /// [`Differentiated::derivative`], so the map is deterministic under any
    /// thread count.
    pub fn gradient(
        &self,
        params: &Params,
        obs: &Observable,
        rho: &DensityMatrix,
    ) -> BTreeMap<String, f64> {
        // The ancilla extension is identical for every parameter: build the
        // O(4^(n+1)) extended buffers once and share them.
        let ext_obs = obs.with_ancilla_z();
        let ext_rho = rho.prepend_zero_ancilla();
        let entries: Vec<(&String, &Differentiated)> = self.diffs.iter().collect();
        qdp_par::par_map(&entries, |(name, diff)| {
            (
                (*name).clone(),
                diff.derivative_prepared(params, &ext_obs, &ext_rho),
            )
        })
        .into_iter()
        .collect()
    }

    /// The full gradient on a pure input (fast path): the ancilla-extended
    /// observable/state and the parameter valuation are resolved **once**
    /// and shared across all per-parameter evaluations (which then run in
    /// parallel with zero string lookups).
    pub fn gradient_pure(
        &self,
        params: &Params,
        obs: &Observable,
        psi: &StateVector,
    ) -> BTreeMap<String, f64> {
        let ext_obs = obs.with_ancilla_z();
        let ext_psi = StateVector::zero_state(1).tensor(psi);
        let canonical: Vec<f64> = self
            .diffs
            .keys()
            .map(|name| {
                params
                    .get(name)
                    .unwrap_or_else(|| panic!("parameter '{name}' has no value"))
            })
            .collect();
        let slot_remaps = self.slot_remaps();
        // Intern serially before the fan-out: the cache lookups (hash +
        // bucket scan under one lock) stay off the worker threads.
        let entries: Vec<(&String, &Differentiated, Arc<CompiledSkeleton>)> = self
            .diffs
            .iter()
            .map(|(name, diff)| (name, diff, diff.skeleton()))
            .collect();
        qdp_par::par_map(&entries, |(name, diff, skeleton)| {
            let remap = &slot_remaps[*name];
            let values: Vec<f64> = remap.iter().map(|&i| canonical[i]).collect();
            (
                (*name).clone(),
                diff.derivative_pure_prepared(skeleton.lowered(), &values, &ext_obs, &ext_psi),
            )
        })
        .into_iter()
        .collect()
    }

    /// Total number of circuit programs per full gradient evaluation —
    /// `Σj |#∂/∂θj(P)|`, the paper's resource-count headline (Section 7).
    pub fn total_programs(&self) -> usize {
        self.diffs.values().map(|d| d.compiled().len()).sum()
    }

    /// Shot-based estimate of the forward value `⟨O⟩` — what a hardware
    /// run would report: `shots` sampled trajectories of the program from
    /// `psi`, one projective read-out each, averaged.
    ///
    /// Runs on the lowered forward program through the batched
    /// [`qdp_sim::ShotEngine`] (tiled across `qdp_par`, shot `s` on the
    /// derived stream `(seed, s)`), so the estimate is bit-for-bit
    /// deterministic for a fixed seed under any thread count.
    ///
    /// # Panics
    ///
    /// Panics when `shots` is zero or a used parameter has no value.
    pub fn value_pure_shots(
        &self,
        params: &Params,
        obs: &Observable,
        psi: &StateVector,
        shots: usize,
        seed: u64,
    ) -> f64 {
        self.value_pure_shots_batch(params, obs, std::slice::from_ref(psi), shots, &[seed])
            .remove(0)
    }

    /// [`value_pure_shots`](Self::value_pure_shots) for many inputs at
    /// once: the forward program is resolved and the read-out decomposed
    /// **once**, then the inputs fan out across `qdp_par` workers (row `r`
    /// on stream `row_seeds[r]`, order-preserving — deterministic under
    /// any thread count). Entry `r` is bit-identical to the single-input
    /// call with the same seed.
    ///
    /// # Panics
    ///
    /// Panics when `inputs` and `row_seeds` disagree in length, `shots` is
    /// zero, or a used parameter has no value.
    pub fn value_pure_shots_batch(
        &self,
        params: &Params,
        obs: &Observable,
        inputs: &[StateVector],
        shots: usize,
        row_seeds: &[u64],
    ) -> Vec<f64> {
        self.try_value_pure_shots_batch(params, obs, inputs, shots, row_seeds)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible twin of
    /// [`value_pure_shots_batch`](Self::value_pure_shots_batch):
    /// worker-panic exhaustion surfaces as a typed
    /// [`qdp_sim::QdpError::WorkerPanic`] instead of a panic, so callers
    /// holding coalesced requests (the gradient service) can fail them
    /// individually.
    ///
    /// # Errors
    ///
    /// Returns [`qdp_sim::QdpError::WorkerPanic`] when a row's tile
    /// panicked and the bounded bit-identical retries did not heal it.
    ///
    /// # Panics
    ///
    /// Panics on malformed requests (length mismatch, missing parameter) —
    /// programmer errors the service validates on the caller's thread.
    pub fn try_value_pure_shots_batch(
        &self,
        params: &Params,
        obs: &Observable,
        inputs: &[StateVector],
        shots: usize,
        row_seeds: &[u64],
    ) -> Result<Vec<f64>, qdp_sim::QdpError> {
        assert_eq!(
            inputs.len(),
            row_seeds.len(),
            "one seed stream per input row"
        );
        let fwd = self.forward_skeleton();
        let values = fwd.lowered().slot_values(params);
        // The patched skeleton carries the identical bits a fresh
        // resolve-and-convert would: shot streams stay bit-stable across
        // cold and warm cache states.
        let engine = qdp_sim::ShotEngine::new(fwd.trajectory_at(0, &values));
        let readout = qdp_sim::ProjectiveObservable::new(obs);
        let rows: Vec<(usize, u64)> = row_seeds.iter().copied().enumerate().collect();
        // Each row is pure (fresh derived streams per call), so a panicked
        // worker tile retries bit-identically before failing.
        qdp_par::try_par_map_retry(
            &rows,
            |&(r, seed)| engine.estimate_expectation_prepared(&inputs[r], &readout, shots, seed),
            TILE_RETRIES,
        )
        .map_err(qdp_sim::QdpError::from)
    }

    /// Shot-based estimate of the full gradient on a pure input: each
    /// parameter's derivative is estimated by
    /// [`crate::estimator::estimate_derivative_batched`] with
    /// `shots_per_param` trajectories on its own derived seed stream
    /// (`qdp_sim::derive_seed(seed, j)` for the `j`-th parameter in
    /// lexicographic order).
    ///
    /// For the Chernoff guarantee of Section 7, pass
    /// `shots_per_param = chernoff_shots(mj, δ)` per parameter; a fixed
    /// budget trades accuracy uniformly. Deterministic for a fixed seed
    /// under any thread count.
    ///
    /// # Panics
    ///
    /// Panics when `shots_per_param` is zero or a used parameter has no
    /// value.
    pub fn gradient_pure_shots(
        &self,
        params: &Params,
        obs: &Observable,
        psi: &StateVector,
        shots_per_param: usize,
        seed: u64,
    ) -> BTreeMap<String, f64> {
        self.gradient_pure_shots_batch(params, obs, std::slice::from_ref(psi), shots_per_param, &[seed])
            .remove(0)
    }

    /// [`gradient_pure_shots`](Self::gradient_pure_shots) for many inputs
    /// at once: every parameter's
    /// [`crate::estimator::PreparedDerivativeEstimator`] (resolved
    /// programs, decomposed read-out) is built **once** and shared by all
    /// rows, which fan out across `qdp_par` workers — row `r` estimates
    /// parameter `j` on the derived stream `(row_seeds[r], j)`, exactly as
    /// the single-input call does, so entry `r` is bit-identical to it.
    ///
    /// # Panics
    ///
    /// Panics when `inputs` and `row_seeds` disagree in length,
    /// `shots_per_param` is zero, or a used parameter has no value.
    pub fn gradient_pure_shots_batch(
        &self,
        params: &Params,
        obs: &Observable,
        inputs: &[StateVector],
        shots_per_param: usize,
        row_seeds: &[u64],
    ) -> Vec<BTreeMap<String, f64>> {
        self.try_gradient_pure_shots_batch(params, obs, inputs, shots_per_param, row_seeds)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible twin of
    /// [`gradient_pure_shots_batch`](Self::gradient_pure_shots_batch) —
    /// same contract as
    /// [`try_value_pure_shots_batch`](Self::try_value_pure_shots_batch).
    ///
    /// # Errors
    ///
    /// Returns [`qdp_sim::QdpError::WorkerPanic`] when a row's tile
    /// panicked and the bounded bit-identical retries did not heal it.
    ///
    /// # Panics
    ///
    /// Panics on malformed requests (length mismatch, missing parameter).
    pub fn try_gradient_pure_shots_batch(
        &self,
        params: &Params,
        obs: &Observable,
        inputs: &[StateVector],
        shots_per_param: usize,
        row_seeds: &[u64],
    ) -> Result<Vec<BTreeMap<String, f64>>, qdp_sim::QdpError> {
        assert_eq!(
            inputs.len(),
            row_seeds.len(),
            "one seed stream per input row"
        );
        let prepared: Vec<(&String, crate::estimator::PreparedDerivativeEstimator)> = self
            .diffs
            .iter()
            .map(|(name, diff)| {
                (
                    name,
                    crate::estimator::PreparedDerivativeEstimator::new(diff, params, obs),
                )
            })
            .collect();
        let rows: Vec<(usize, u64)> = row_seeds.iter().copied().enumerate().collect();
        qdp_par::try_par_map_retry(
            &rows,
            |&(r, seed)| {
                prepared
                    .iter()
                    .enumerate()
                    .map(|(j, (name, estimator))| {
                        let stream = qdp_sim::derive_seed(seed, j as u64);
                        ((*name).clone(), estimator.estimate(&inputs[r], shots_per_param, stream))
                    })
                    .collect()
            },
            TILE_RETRIES,
        )
        .map_err(qdp_sim::QdpError::from)
    }

    /// Forward values `tr(O·[[P(θ*)]]|ψr⟩⟨ψr|)` for every row of a batch.
    ///
    /// Runs on the **lowered** forward program (resolved indices, interned
    /// slots, gate matrices built once per batch) instead of the AST
    /// interpreter [`value_pure`](Self::value_pure) uses — this is where
    /// most of the batched training speedup comes from. Agrees with
    /// `value_pure` to numerical precision on every row.
    pub fn value_pure_batch(
        &self,
        params: &Params,
        obs: &Observable,
        states: &BatchedStates,
    ) -> Vec<f64> {
        let fwd = self.forward_skeleton();
        let values = fwd.lowered().slot_values(params);
        fwd.lowered().expectation_batch(&values, states, obs)
    }

    /// Fallible twin of [`value_pure_batch`](Self::value_pure_batch): the
    /// sweep's failure panics (worker-panic exhaustion deep inside
    /// `expectation_batch`) are contained into a typed
    /// [`qdp_sim::QdpError::ServicePanic`] carrying the panic message.
    /// A successful call returns the identical bits.
    ///
    /// # Errors
    ///
    /// Returns [`qdp_sim::QdpError::ServicePanic`] when the sweep
    /// panicked.
    pub fn try_value_pure_batch(
        &self,
        params: &Params,
        obs: &Observable,
        states: &BatchedStates,
    ) -> Result<Vec<f64>, qdp_sim::QdpError> {
        contain(|| self.value_pure_batch(params, obs, states))
    }

    /// The full gradient for **every** row of a batch, keyed by parameter
    /// name, in one pass over all `parameters × programs × rows` tiles.
    ///
    /// Shared setup (ancilla-extended observable and batch, canonical
    /// valuation, slot remaps) happens once; per-parameter batch
    /// evaluations then run in parallel, each splitting its own
    /// `batch × programs` grid across `qdp_par` workers. Every entry
    /// agrees with [`gradient_pure`](Self::gradient_pure) on that row to
    /// numerical precision (≪ 1e-12; straight-line fusion reorders
    /// rounding), and the batch result is bit-for-bit deterministic under
    /// any thread count — `crates/core/tests/batch_equivalence.rs` is the
    /// randomized oracle for both properties.
    pub fn gradient_pure_batch(
        &self,
        params: &Params,
        obs: &Observable,
        states: &BatchedStates,
    ) -> Vec<BTreeMap<String, f64>> {
        let ext_obs = obs.with_ancilla_z();
        let ext_states = states.prepend_zero_ancilla();
        let canonical: Vec<f64> = self
            .diffs
            .keys()
            .map(|name| {
                params
                    .get(name)
                    .unwrap_or_else(|| panic!("parameter '{name}' has no value"))
            })
            .collect();
        let slot_remaps = self.slot_remaps();
        let entries: Vec<(&String, Arc<CompiledSkeleton>)> = self
            .diffs
            .iter()
            .map(|(name, diff)| (name, diff.skeleton()))
            .collect();
        let per_param: Vec<Vec<f64>> = qdp_par::par_map(&entries, |(name, skeleton)| {
            let remap = &slot_remaps[*name];
            let values: Vec<f64> = remap.iter().map(|&i| canonical[i]).collect();
            skeleton
                .lowered()
                .expectation_batch(&values, &ext_states, &ext_obs)
        });
        (0..states.len())
            .map(|r| {
                entries
                    .iter()
                    .zip(&per_param)
                    .map(|((name, _), derivs)| ((*name).clone(), derivs[r]))
                    .collect()
            })
            .collect()
    }

    /// Fallible twin of [`gradient_pure_batch`](Self::gradient_pure_batch)
    /// — same containment contract as
    /// [`try_value_pure_batch`](Self::try_value_pure_batch).
    ///
    /// # Errors
    ///
    /// Returns [`qdp_sim::QdpError::ServicePanic`] when the sweep
    /// panicked.
    pub fn try_gradient_pure_batch(
        &self,
        params: &Params,
        obs: &Observable,
        states: &BatchedStates,
    ) -> Result<Vec<BTreeMap<String, f64>>, qdp_sim::QdpError> {
        contain(|| self.gradient_pure_batch(params, obs, states))
    }

    /// Whether the phase-shift rule applies: every parameter occurs exactly
    /// once along any execution path ([`crate::resource::occurrence_count`]
    /// counts `while` bodies `bound` times and takes the per-path maximum
    /// over `case` arms). Each parameterized gate is `exp(−iθG/2)·C` with
    /// `G² = I`, so each surviving branch's read-out — and hence the
    /// multiset expectation — is `a + b·cos θ + c·sin θ` in a
    /// once-occurring θ, which the `±π/2` shift rule differentiates
    /// exactly.
    pub fn shift_rule_eligible(&self) -> bool {
        self.diffs
            .keys()
            .all(|p| crate::resource::occurrence_count(&self.program, p) == 1)
    }

    /// The full gradient on a pure input via the `±π/2` shift rule — the
    /// compile-once fast path for shift-eligible programs (see
    /// [`shift_rule_eligible`](Self::shift_rule_eligible)).
    ///
    /// Where the gadget path compiles one multiset per parameter (36
    /// lowered multisets for a 36-parameter circuit), this path evaluates
    /// the **single** interned forward skeleton at `2P` shifted valuations:
    /// `∂f/∂θj = (f(θj + π/2) − f(θj − π/2)) / 2`. One program skeleton is
    /// lowered per process, total, and only slot `j` changes between
    /// evaluations. Agrees with [`gradient_pure`](Self::gradient_pure) to
    /// numerical precision and with the interpreter-level shift rule
    /// bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics when the program is not shift-eligible or a used parameter
    /// has no value.
    pub fn gradient_pure_shift(
        &self,
        params: &Params,
        obs: &Observable,
        psi: &StateVector,
    ) -> BTreeMap<String, f64> {
        self.gradient_pure_shift_batch(params, obs, &BatchedStates::gather(&[psi]))
            .remove(0)
    }

    /// [`gradient_pure_shift`](Self::gradient_pure_shift) for every row of
    /// a batch: the `2P` shifted valuations fan out across `qdp_par`
    /// workers, each evaluating the shared forward skeleton over the whole
    /// batch, and per-row central differences are assembled in canonical
    /// parameter order — bit-for-bit deterministic under any thread count.
    ///
    /// # Panics
    ///
    /// Panics when the program is not shift-eligible, a used parameter has
    /// no value, or the batch register does not match the program's.
    pub fn gradient_pure_shift_batch(
        &self,
        params: &Params,
        obs: &Observable,
        states: &BatchedStates,
    ) -> Vec<BTreeMap<String, f64>> {
        self.try_gradient_pure_shift_batch(params, obs, states)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible twin of
    /// [`gradient_pure_shift_batch`](Self::gradient_pure_shift_batch):
    /// worker-panic exhaustion in the shifted-valuation fan-out surfaces
    /// as a typed [`qdp_sim::QdpError::WorkerPanic`].
    ///
    /// # Errors
    ///
    /// Returns [`qdp_sim::QdpError::WorkerPanic`] when a valuation's tile
    /// panicked and the bounded bit-identical retries did not heal it.
    ///
    /// # Panics
    ///
    /// Panics when the program is not shift-eligible or a used parameter
    /// has no value — programmer errors validated before enqueueing.
    pub fn try_gradient_pure_shift_batch(
        &self,
        params: &Params,
        obs: &Observable,
        states: &BatchedStates,
    ) -> Result<Vec<BTreeMap<String, f64>>, qdp_sim::QdpError> {
        assert!(
            self.shift_rule_eligible(),
            "shift-rule gradient requires every parameter to occur exactly once \
             per execution path; use gradient_pure_batch for general programs"
        );
        let fwd = self.forward_skeleton();
        let lowered = fwd.lowered();
        let base = lowered.slot_values(params);
        let names: Vec<&String> = self.diffs.keys().collect();
        // Two shifted valuations per parameter, in canonical order. Slots
        // are looked up once; the jobs share the base valuation.
        let jobs: Vec<(usize, f64)> = names
            .iter()
            .flat_map(|name| {
                // Infallible: the forward lowering interns every parameter
                // the program uses.
                #[allow(clippy::expect_used)]
                let slot = lowered
                    .param_names()
                    .iter()
                    .position(|p| p == *name)
                    .expect("engine parameters are forward-program parameters");
                let half = std::f64::consts::FRAC_PI_2;
                [(slot, half), (slot, -half)]
            })
            .collect();
        // Pure per valuation, so a panicked worker tile retries
        // bit-identically before the failure is surfaced. Inner batch
        // evaluations degrade to sequential under the global token budget.
        let evals: Vec<Vec<f64>> = qdp_par::try_par_map_retry(
            &jobs,
            |&(slot, shift)| {
                let mut values = base.clone();
                values[slot] += shift;
                lowered.expectation_batch(&values, states, obs)
            },
            TILE_RETRIES,
        )
        .map_err(qdp_sim::QdpError::from)?;
        Ok((0..states.len())
            .map(|r| {
                names
                    .iter()
                    .enumerate()
                    .map(|(j, name)| {
                        ((*name).clone(), (evals[2 * j][r] - evals[2 * j + 1][r]) / 2.0)
                    })
                    .collect()
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::numeric_derivative;
    use qdp_lang::parse_program;

    fn check_against_finite_difference(src: &str, values: &[(&str, f64)], obs: &Observable) {
        let p = parse_program(src).unwrap();
        let reg = Register::from_program(&p);
        let params = Params::from_pairs(values.iter().map(|&(k, v)| (k, v)));
        let rho = DensityMatrix::pure_zero(reg.len());
        for (name, _) in values {
            let diff = differentiate(&p, name).unwrap();
            let analytic = diff.derivative(&params, obs, &rho);
            let numeric = numeric_derivative(&p, &reg, &params, name, obs, &rho, 1e-5);
            assert!(
                (analytic - numeric).abs() < 1e-7,
                "{src} ∂/∂{name}: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn single_rotation_derivative() {
        check_against_finite_difference(
            "q1 *= RY(t)",
            &[("t", 0.8)],
            &Observable::pauli_z(1, 0),
        );
    }

    #[test]
    fn all_axes_and_offsets() {
        for src in [
            "q1 *= RX(t)",
            "q1 *= RZ(t + pi/2)",
            "q1 *= H; q1 *= RZ(t)",
        ] {
            check_against_finite_difference(src, &[("t", 1.3)], &Observable::pauli_z(1, 0));
        }
    }

    #[test]
    fn sequence_derivative_via_product_rule() {
        check_against_finite_difference(
            "q1 *= RX(t); q1 *= RY(t)",
            &[("t", 0.4)],
            &Observable::pauli_z(1, 0),
        );
    }

    #[test]
    fn coupling_gate_derivative() {
        check_against_finite_difference(
            "q1 *= H; q1, q2 *= RXX(t)",
            &[("t", 0.9)],
            &Observable::pauli_z(2, 1),
        );
    }

    #[test]
    fn case_statement_derivative() {
        check_against_finite_difference(
            "q1 *= RX(t); case M[q1] = 0 -> q2 *= RY(t), 1 -> q2 *= RZ(t); q2 *= RX(t) end",
            &[("t", 0.65)],
            &Observable::pauli_z(2, 1),
        );
    }

    #[test]
    fn bounded_while_derivative() {
        check_against_finite_difference(
            "q1 *= RY(t); while[2] M[q1] = 1 do q1 *= RY(t) done",
            &[("t", 1.1)],
            &Observable::pauli_z(1, 0),
        );
    }

    #[test]
    fn multi_parameter_gradient_matches_finite_differences() {
        let src = "q1 *= RX(a); q2 *= RY(b); q1, q2 *= RZZ(c); q1 *= RY(a)";
        let p = parse_program(src).unwrap();
        let reg = Register::from_program(&p);
        let engine = GradientEngine::new(&p).unwrap();
        let params = Params::from_pairs([("a", 0.3), ("b", -0.7), ("c", 1.9)]);
        let obs = Observable::pauli_z(2, 0);
        let rho = DensityMatrix::pure_zero(2);
        let grad = engine.gradient(&params, &obs, &rho);
        assert_eq!(grad.len(), 3);
        for (name, value) in &grad {
            let numeric = numeric_derivative(&p, &reg, &params, name, &obs, &rho, 1e-5);
            assert!((value - numeric).abs() < 1e-7, "∂/∂{name}");
        }
    }

    #[test]
    fn gradient_pure_matches_dense() {
        let p = parse_program(
            "q1 *= RX(a); case M[q1] = 0 -> q2 *= RY(b), 1 -> q2 *= RZ(a) end",
        )
        .unwrap();
        let engine = GradientEngine::new(&p).unwrap();
        let params = Params::from_pairs([("a", 0.5), ("b", 1.4)]);
        let obs = Observable::projector_one(2, 1);
        let psi = StateVector::zero_state(2);
        let rho = DensityMatrix::from_pure(&psi);
        let dense = engine.gradient(&params, &obs, &rho);
        let pure = engine.gradient_pure(&params, &obs, &psi);
        for (name, v) in &dense {
            assert!((v - pure[name]).abs() < 1e-10, "∂/∂{name}");
        }
        // Forward values agree too.
        assert!((engine.value(&params, &obs, &rho) - engine.value_pure(&params, &obs, &psi))
            .abs()
            < 1e-10);
    }

    #[test]
    fn derivative_works_for_any_observable_and_state() {
        // Definition 5.3's strong quantifier order: one transformed program
        // serves every (O, ρ) pair.
        let p = parse_program("q1 *= RX(t); q1 *= RY(t)").unwrap();
        let reg = Register::from_program(&p);
        let diff = differentiate(&p, "t").unwrap();
        let params = Params::from_pairs([("t", 0.35)]);
        let observables = [
            Observable::pauli_z(1, 0),
            Observable::projector_one(1, 0),
            Observable::new(1, vec![0], qdp_linalg::Matrix::pauli_x()),
        ];
        let mut plus = StateVector::zero_state(1);
        plus.apply_gate(&qdp_linalg::Matrix::hadamard(), &[0]);
        let states = [
            DensityMatrix::pure_zero(1),
            DensityMatrix::from_pure(&plus),
            DensityMatrix::maximally_mixed(1),
        ];
        for obs in &observables {
            for rho in &states {
                let analytic = diff.derivative(&params, obs, rho);
                let numeric = numeric_derivative(&p, &reg, &params, "t", obs, rho, 1e-5);
                assert!((analytic - numeric).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn batched_engine_apis_match_per_row_paths() {
        let p = parse_program(
            "q1 *= RX(a); case M[q1] = 0 -> q2 *= RY(b), 1 -> q2 *= RZ(a) end",
        )
        .unwrap();
        let engine = GradientEngine::new(&p).unwrap();
        let params = Params::from_pairs([("a", 0.5), ("b", 1.4)]);
        let obs = Observable::projector_one(2, 1);
        let rows: Vec<StateVector> = (0..4).map(|k| StateVector::basis_state(2, k)).collect();
        let batch = BatchedStates::from_states(&rows);

        let values = engine.value_pure_batch(&params, &obs, &batch);
        let grads = engine.gradient_pure_batch(&params, &obs, &batch);
        assert_eq!(values.len(), 4);
        assert_eq!(grads.len(), 4);
        for (r, psi) in rows.iter().enumerate() {
            assert!(
                (values[r] - engine.value_pure(&params, &obs, psi)).abs() < 1e-12,
                "row {r} forward"
            );
            let serial = engine.gradient_pure(&params, &obs, psi);
            assert_eq!(grads[r].len(), serial.len());
            for (name, v) in &serial {
                // 1e-12 tolerance, not bit equality: the batched
                // straight-line path fuses commuting rotations, which
                // reorders rounding.
                assert!(
                    (grads[r][name] - v).abs() < 1e-12,
                    "row {r} ∂/∂{name}: batched {} vs serial {v}",
                    grads[r][name]
                );
            }
        }
    }

    #[test]
    fn batched_derivative_matches_per_row_derivative() {
        // Three adjacent rotations on one qubit force genuine 2×2 fusion
        // products in the batched path, so agreement is numerical (1e-12),
        // not bitwise.
        let p = parse_program("q1 *= RX(t); q1 *= RY(u); q1 *= RZ(t)").unwrap();
        let diff = differentiate(&p, "t").unwrap();
        let params = Params::from_pairs([("t", 0.35), ("u", 1.21)]);
        let obs = Observable::pauli_z(1, 0);
        let rows = vec![StateVector::zero_state(1), StateVector::basis_state(1, 1)];
        let batch = BatchedStates::from_states(&rows);
        let batched = diff.derivative_pure_batch(&params, &obs, &batch);
        for (r, psi) in rows.iter().enumerate() {
            let serial = diff.derivative_pure(&params, &obs, psi);
            assert!(
                (batched[r] - serial).abs() < 1e-12,
                "row {r}: batched {} vs serial {serial}",
                batched[r]
            );
        }
    }

    #[test]
    fn shot_based_value_and_gradient_track_exact_ones() {
        let p = parse_program(
            "q1 *= RX(a); case M[q1] = 0 -> q2 *= RY(b), 1 -> q2 *= RZ(a) end",
        )
        .unwrap();
        let engine = GradientEngine::new(&p).unwrap();
        let params = Params::from_pairs([("a", 0.5), ("b", 1.4)]);
        let obs = Observable::pauli_z(2, 1);
        let psi = StateVector::zero_state(2);

        let value = engine.value_pure_shots(&params, &obs, &psi, 40_000, 3);
        assert!(
            (value - engine.value_pure(&params, &obs, &psi)).abs() < 0.02,
            "shot value {value}"
        );

        let grad = engine.gradient_pure_shots(&params, &obs, &psi, 60_000, 9);
        let exact = engine.gradient_pure(&params, &obs, &psi);
        assert_eq!(grad.len(), exact.len());
        for (name, v) in &exact {
            assert!(
                (grad[name] - v).abs() < 0.06,
                "∂/∂{name}: shots {} vs exact {v}",
                grad[name]
            );
        }

        // Fixed seed ⇒ bitwise reproducible.
        let again = engine.gradient_pure_shots(&params, &obs, &psi, 60_000, 9);
        for (name, v) in &grad {
            assert_eq!(v.to_bits(), again[name].to_bits(), "∂/∂{name}");
        }
    }

    #[test]
    fn unparameterized_program_has_empty_gradient() {
        let p = parse_program("q1 *= H; q1 *= X").unwrap();
        let engine = GradientEngine::new(&p).unwrap();
        assert_eq!(engine.parameters().count(), 0);
        assert_eq!(engine.total_programs(), 0);
    }

    #[test]
    fn compiled_count_matches_occurrences_for_straightline() {
        // t occurs 3 times in a straight-line program → exactly 3 programs.
        let p = parse_program("q1 *= RX(t); q1 *= RY(t); q1 *= RZ(t)").unwrap();
        let diff = differentiate(&p, "t").unwrap();
        assert_eq!(diff.compiled().len(), 3);
    }

    #[test]
    fn second_derivative_of_single_rotation() {
        // ⟨Z⟩ = cos t ⇒ second derivative is −cos t.
        let p = parse_program("q1 *= RY(t)").unwrap();
        let obs = Observable::pauli_z(1, 0);
        let rho = DensityMatrix::pure_zero(1);
        for theta in [0.0, 0.5, 1.9] {
            let params = Params::from_pairs([("t", theta)]);
            let d2 = second_derivative(&p, "t", "t", &params, &obs, &rho).unwrap();
            assert!(
                (d2 + theta.cos()).abs() < 1e-9,
                "θ={theta}: {d2} vs {}",
                -theta.cos()
            );
        }
    }

    #[test]
    fn second_derivative_matches_finite_difference_of_first() {
        let p = parse_program(
            "q1 *= RX(a); case M[q1] = 0 -> q2 *= RY(b), 1 -> q2 *= RZ(a) end",
        )
        .unwrap();
        let obs = Observable::pauli_z(2, 1);
        let rho = DensityMatrix::pure_zero(2);
        let base = Params::from_pairs([("a", 0.7), ("b", -0.3)]);
        for (p1, p2) in [("a", "a"), ("a", "b"), ("b", "a"), ("b", "b")] {
            let analytic = second_derivative(&p, p1, p2, &base, &obs, &rho).unwrap();
            // Finite difference of the (exact) first derivative in p1.
            let h = 1e-5;
            let first = differentiate(&p, p1).unwrap();
            let eval = |x: f64| {
                let mut shifted = base.clone();
                shifted.set(p2, x);
                first.derivative(&shifted, &obs, &rho)
            };
            let x0 = base.get(p2).unwrap();
            let numeric = (eval(x0 + h) - eval(x0 - h)) / (2.0 * h);
            assert!(
                (analytic - numeric).abs() < 1e-6,
                "∂²/∂{p2}∂{p1}: {analytic} vs {numeric}"
            );
        }
    }

    #[test]
    fn hessian_is_symmetric() {
        let p = parse_program("q1 *= RX(a); q1 *= RY(b); q1 *= RZ(a)").unwrap();
        let params = Params::from_pairs([("a", 0.4), ("b", 1.2)]);
        let obs = Observable::pauli_z(1, 0);
        let rho = DensityMatrix::pure_zero(1);
        let h = hessian(&p, &params, &obs, &rho).unwrap();
        assert_eq!(h.len(), 4);
        let ab = h[&("a".to_string(), "b".to_string())];
        let ba = h[&("b".to_string(), "a".to_string())];
        assert!((ab - ba).abs() < 1e-9, "mixed partials {ab} vs {ba}");
    }

    #[test]
    fn third_derivative_via_manual_nesting() {
        // sanity-check that the iterated controlled gates keep working one
        // level deeper: f = cos t ⇒ f''' = sin t.
        let p = parse_program("q1 *= RY(t)").unwrap();
        let theta = 0.8;
        let params = Params::from_pairs([("t", theta)]);
        let obs = Observable::pauli_z(1, 0);
        let rho = DensityMatrix::pure_zero(1);

        let d1 = differentiate(&p, "t").unwrap();
        let mut third = 0.0;
        for p1 in d1.compiled() {
            let d2 = differentiate_in(p1, "t", d1.ext_register()).unwrap();
            let obs1 = obs.with_ancilla_z();
            let rho1 = rho.prepend_zero_ancilla();
            for p2 in d2.compiled() {
                let d3 = differentiate_in(p2, "t", d2.ext_register()).unwrap();
                third += d3.derivative(&params, &obs1.with_ancilla_z(), &rho1.prepend_zero_ancilla());
            }
        }
        assert!((third - theta.sin()).abs() < 1e-9, "{third} vs {}", theta.sin());
    }
}
