//! # qdp-lang
//!
//! The parameterized quantum bounded `while`-language of *On the Principles
//! of Differentiable Quantum Programming Languages* (PLDI 2020), together
//! with its additive extension, semantics, and compilation:
//!
//! * [`ast`] — syntax of `q-while(T)` and `add-q-while(T)` programs
//!   (Sections 3.1, 4.1),
//! * [`parser`] / [`lexer`] / [`pretty`] — a concrete syntax that
//!   round-trips, so the paper's `#lines` metric is measurable,
//! * [`wf`] — well-formedness checking,
//! * [`denot`] — denotational semantics `[[P]]ρ` (Fig. 1b) plus a branching
//!   pure-state engine,
//! * [`op_sem`] — operational-trace multisets (Fig. 1a, Fig. 2,
//!   Definition 4.1),
//! * [`compile`] — the compilation rules with fill-and-break (Fig. 3) and
//!   the non-aborting count `|#P|` (Definition 4.3),
//! * [`register`] — variable-to-qubit mapping.
//!
//! # Examples
//!
//! ```
//! use qdp_lang::{compile, parse_program};
//!
//! // Example 4.1 of the paper: an additive choice inside a case arm
//! // compiles to two normal programs via fill-and-break.
//! let p = parse_program(
//!     "case M[q1] = 0 -> (q1 *= RX(a) + q1 *= RY(a)), 1 -> q1 *= RZ(a) end",
//! )?;
//! assert_eq!(compile::compile(&p).len(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod ast;
pub mod compile;
pub mod denot;
pub mod intern;
pub mod lexer;
pub mod metrics;
pub mod noise;
pub mod op_sem;
pub mod opt;
pub mod parser;
pub mod pretty;
pub mod register;
pub mod superop;
pub mod wf;

pub use ast::{Angle, Gate, Params, Stmt, Var};
pub use intern::{multiset_fingerprint, program_fingerprint, StructuralHasher};
pub use parser::parse_program;
pub use register::Register;
