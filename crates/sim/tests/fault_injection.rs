//! Fault-injection property suite for the fault-tolerant execution layer.
//!
//! Drives the deterministic harness in `qdp_sim::fault` against every
//! health policy and both parallel fan-out shapes, and pins the two core
//! contracts:
//!
//! * **Detection & recovery** — an injected NaN/Inf/drifted row is caught
//!   at the next measurement boundary under every policy; recovery
//!   matches the clean-run oracle to 1e-12 (bitwise on the unaffected
//!   rows and on retry paths), and a panicked worker tile is retried or
//!   surfaced as a typed [`QdpError`] instead of aborting the process.
//! * **Healthy-run bitwise identity** — with no fault armed, monitored
//!   engines (any policy) produce bit-for-bit the results of the
//!   unmonitored engine, under forced 1, 2, and 8 threads.
//!
//! Every test takes the file-wide lock: fault plans and the thread-count
//! override are process-global.

use qdp_linalg::Matrix;
use qdp_sim::fault::{fired_count, inject, FaultKind, FaultSite};
use qdp_sim::{
    BatchedStates, HealthConfig, HealthPolicy, Measurement, Observable, ProjectiveObservable,
    QdpError, ShotEngine, ShotSampler, StateVector, TrajProgram, SHOT_TILE,
};
use std::sync::{Mutex, MutexGuard};

/// Serializes the whole file: faults and `set_max_threads` are global.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` with panic output suppressed (injected tile panics are
/// expected and would otherwise spam the test log).
fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(hook);
    out
}

/// A 2-qubit branching program: H(q0); case M[q0] {0 → X(q1), 1 → H(q1)};
/// H(q0) — exercises gates before and after a measurement boundary in
/// both sweep modes.
fn branching_program() -> TrajProgram {
    let mut arm0 = TrajProgram::new();
    arm0.push_gate(Matrix::pauli_x(), vec![1]);
    let mut arm1 = TrajProgram::new();
    arm1.push_gate(Matrix::hadamard(), vec![1]);
    let mut p = TrajProgram::new();
    p.push_gate(Matrix::hadamard(), vec![0]);
    p.push_case(Measurement::computational(vec![0]), vec![arm0, arm1]);
    p.push_gate(Matrix::hadamard(), vec![0]);
    p
}

fn engine() -> ShotEngine {
    ShotEngine::new(branching_program())
}

fn with_policy(policy: HealthPolicy) -> ShotEngine {
    engine().with_health(HealthConfig::with_policy(policy))
}

/// Distinct normalised input rows.
fn inputs(rows: usize) -> Vec<StateVector> {
    (0..rows)
        .map(|r| {
            let mut psi = StateVector::basis_state(2, r % 4);
            psi.apply_gate(&Matrix::hadamard(), &[r % 2]);
            psi
        })
        .collect()
}

fn batch(rows: usize) -> BatchedStates {
    BatchedStates::from_states(&inputs(rows))
}

fn samplers(rows: usize, seed: u64) -> Vec<ShotSampler> {
    (0..rows).map(|r| ShotSampler::derived(seed, r as u64)).collect()
}

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: row {i}: {x} vs {y}");
    }
}

const POLICIES: [HealthPolicy; 3] = [
    HealthPolicy::FailFast,
    HealthPolicy::Renormalize,
    HealthPolicy::DegradeToOracle,
];

#[test]
fn healthy_runs_are_bitwise_identical_under_monitoring_and_threads() {
    let _l = lock();
    const ROWS: usize = 20;
    let obs = Observable::pauli_z(2, 1);
    let readout = ProjectiveObservable::new(&obs);

    // Unmonitored single-thread baselines.
    qdp_par::set_max_threads(1);
    let base_exact = engine().expectation_sweep(batch(ROWS), &obs);
    let mut s = samplers(ROWS, 99);
    let base_sampled = engine().sample_sweep(batch(ROWS), &mut s, &readout);
    let base_estimate =
        engine().estimate_expectation_prepared(&inputs(1)[0], &readout, 3 * SHOT_TILE, 5);

    for threads in [1usize, 2, 8] {
        qdp_par::set_max_threads(threads);
        let engines = std::iter::once(engine()).chain(POLICIES.iter().map(|&p| with_policy(p)));
        for (k, e) in engines.enumerate() {
            let what = format!("threads {threads}, engine {k}");
            assert_bits_eq(
                &e.expectation_sweep(batch(ROWS), &obs),
                &base_exact,
                &format!("exact sweep ({what})"),
            );
            let mut s = samplers(ROWS, 99);
            assert_bits_eq(
                &e.sample_sweep(batch(ROWS), &mut s, &readout),
                &base_sampled,
                &format!("sampled sweep ({what})"),
            );
            let est = e.estimate_expectation_prepared(&inputs(1)[0], &readout, 3 * SHOT_TILE, 5);
            assert_eq!(est.to_bits(), base_estimate.to_bits(), "estimate ({what})");
        }
    }
    qdp_par::set_max_threads(0);
    assert_eq!(fired_count(), 0, "no fault was armed");
}

#[test]
fn injected_non_finite_amplitudes_fail_fast_with_typed_errors() {
    let _l = lock();
    qdp_par::set_max_threads(1);
    // NaN and Inf are unrepairable: FailFast and Renormalize must both
    // reject the poisoned row with a typed NonFinite naming it.
    for policy in [HealthPolicy::FailFast, HealthPolicy::Renormalize] {
        for kind in [FaultKind::Nan, FaultKind::Inf] {
            let guard = inject(FaultSite::Kernel { call: 0, row: 2, kind });
            let mut s = samplers(6, 7);
            let err = with_policy(policy)
                .try_run(batch(6), &mut s)
                .expect_err("poisoned row must be detected");
            assert!(
                matches!(err, QdpError::NonFinite { row: 2, .. }),
                "{policy:?}/{kind:?}: unexpected error {err:?}"
            );
            assert_eq!(fired_count(), 1, "{policy:?}/{kind:?}: fault did not fire");
            drop(guard);

            // Same detection on the exact branch-weighted sweep.
            let guard = inject(FaultSite::Kernel { call: 0, row: 2, kind });
            let err = with_policy(policy)
                .try_expectation_sweep(batch(6), &Observable::pauli_z(2, 1))
                .expect_err("poisoned row must be detected");
            assert!(
                matches!(err, QdpError::NonFinite { row: 2, .. }),
                "exact {policy:?}/{kind:?}: unexpected error {err:?}"
            );
            drop(guard);
        }
    }
    qdp_par::set_max_threads(0);
}

#[test]
fn injected_norm_drift_is_detected_and_renormalized() {
    let _l = lock();
    qdp_par::set_max_threads(1);
    let obs = Observable::pauli_z(2, 1);
    let drift = FaultKind::Scale(1.001);

    // FailFast: typed NormDrift naming the row and the observed norm.
    let guard = inject(FaultSite::Kernel { call: 0, row: 2, kind: drift });
    let mut s = samplers(6, 7);
    let err = with_policy(HealthPolicy::FailFast)
        .try_run(batch(6), &mut s)
        .expect_err("drifted row must be detected");
    match err {
        QdpError::NormDrift { row, expected, actual, .. } => {
            assert_eq!(row, 2);
            assert!(
                (actual / expected - 1.001f64.powi(2)).abs() < 1e-9,
                "observed drift {actual} vs expected norm {expected}"
            );
        }
        other => panic!("unexpected error {other:?}"),
    }
    drop(guard);

    // Renormalize: the run completes and every row matches the clean-run
    // oracle to 1e-12 (the repaired row picks up one rescale of rounding).
    let clean = engine().expectation_sweep(batch(6), &obs);
    let guard = inject(FaultSite::Kernel { call: 0, row: 2, kind: drift });
    let repaired = with_policy(HealthPolicy::Renormalize)
        .try_expectation_sweep(batch(6), &obs)
        .expect("renormalize must repair finite drift");
    assert_eq!(fired_count(), 1);
    drop(guard);
    for (r, (a, b)) in repaired.iter().zip(&clean).enumerate() {
        assert!((a - b).abs() < 1e-12, "row {r}: repaired {a} vs clean {b}");
        if r != 2 {
            assert_eq!(a.to_bits(), b.to_bits(), "healthy row {r} must keep its bits");
        }
    }
    qdp_par::set_max_threads(0);
}

#[test]
fn degrade_to_oracle_recovers_poisoned_rows_and_preserves_healthy_bits() {
    let _l = lock();
    qdp_par::set_max_threads(1);
    let obs = Observable::pauli_z(2, 1);
    let readout = ProjectiveObservable::new(&obs);

    // Sampled trajectories: the defected row is replayed serially from
    // its original input and stream.
    let mut s = samplers(6, 7);
    let clean_rows = engine().run(batch(6), &mut s);
    let guard = inject(FaultSite::Kernel { call: 0, row: 2, kind: FaultKind::Nan });
    let mut s = samplers(6, 7);
    let recovered = with_policy(HealthPolicy::DegradeToOracle)
        .try_run(batch(6), &mut s)
        .expect("degraded run must complete");
    assert_eq!(fired_count(), 1);
    drop(guard);
    for (r, (got, want)) in recovered.iter().zip(&clean_rows).enumerate() {
        assert_eq!(got.outcomes, want.outcomes, "row {r}: outcomes diverged");
        let (got, want) = (got.state.as_ref().unwrap(), want.state.as_ref().unwrap());
        let (got, want) = (got.amplitudes(), want.amplitudes());
        for (i, (a, b)) in got.iter().zip(&want).enumerate() {
            let d = (*a - *b).norm_sqr().sqrt();
            assert!(d < 1e-12, "row {r} amp {i}: {a:?} vs {b:?}");
            if r != 2 {
                assert_eq!(a, b, "healthy row {r} must keep its bits");
            }
        }
    }

    // Sampled read-out sweep.
    let mut s = samplers(6, 7);
    let clean = engine().sample_sweep(batch(6), &mut s, &readout);
    let guard = inject(FaultSite::Kernel { call: 0, row: 2, kind: FaultKind::Inf });
    let mut s = samplers(6, 7);
    let recovered = with_policy(HealthPolicy::DegradeToOracle)
        .try_sample_sweep(batch(6), &mut s, &readout)
        .expect("degraded sweep must complete");
    drop(guard);
    for (r, (a, b)) in recovered.iter().zip(&clean).enumerate() {
        assert!((a - b).abs() < 1e-12, "sampled row {r}: {a} vs {b}");
        if r != 2 {
            assert_eq!(a.to_bits(), b.to_bits(), "healthy sampled row {r}");
        }
    }

    // Exact branch-weighted sweep: the defected row re-runs on the
    // per-row branch enumerator.
    let clean = engine().expectation_sweep(batch(6), &obs);
    let guard = inject(FaultSite::Kernel { call: 0, row: 2, kind: FaultKind::Nan });
    let recovered = with_policy(HealthPolicy::DegradeToOracle)
        .try_expectation_sweep(batch(6), &obs)
        .expect("degraded exact sweep must complete");
    drop(guard);
    for (r, (a, b)) in recovered.iter().zip(&clean).enumerate() {
        assert!((a - b).abs() < 1e-12, "exact row {r}: {a} vs {b}");
        if r != 2 {
            assert_eq!(a.to_bits(), b.to_bits(), "healthy exact row {r}");
        }
    }
    qdp_par::set_max_threads(0);
}

#[test]
fn panicked_tiles_are_retried_bit_identically_or_surface_typed_errors() {
    let _l = lock();
    let obs = Observable::pauli_z(2, 1);
    let readout = ProjectiveObservable::new(&obs);
    let psi = &inputs(1)[0];
    let shots = 3 * SHOT_TILE;

    for threads in [1usize, 2, 8] {
        qdp_par::set_max_threads(threads);
        let clean = engine().estimate_expectation_prepared(psi, &readout, shots, 5);

        with_quiet_panics(|| {
            // Two panics fit the retry budget: the run heals and the
            // result is bit-identical (tiles are pure).
            let guard = inject(FaultSite::Tile { index: 1, panics: 2 });
            let healed = engine()
                .try_estimate_expectation_prepared(psi, &readout, shots, 5)
                .expect("retries must heal a transient tile fault");
            assert_eq!(healed.to_bits(), clean.to_bits(), "threads {threads}");
            assert_eq!(fired_count(), 2, "threads {threads}: fault fired on retry");
            drop(guard);

            // Three panics exhaust initial + 2 retries: typed error, no
            // process abort.
            let guard = inject(FaultSite::Tile { index: 1, panics: 3 });
            let err = engine()
                .try_estimate_expectation_prepared(psi, &readout, shots, 5)
                .expect_err("exhausted retries must surface");
            match err {
                QdpError::WorkerPanic { tile, message } => {
                    assert_eq!(tile, 1);
                    assert!(message.contains("injected fault"), "{message}");
                }
                other => panic!("unexpected error {other:?}"),
            }
            assert_eq!(fired_count(), 3);
            drop(guard);
        });
    }

    // Exact row-tile fan-out (needs >1 thread to tile).
    qdp_par::set_max_threads(8);
    let clean = engine().expectation_sweep(batch(20), &obs);
    with_quiet_panics(|| {
        let guard = inject(FaultSite::Tile { index: 2, panics: 1 });
        let healed = engine()
            .try_expectation_sweep(batch(20), &obs)
            .expect("retry must heal the exact tile");
        assert_bits_eq(&healed, &clean, "exact sweep after tile retry");
        assert_eq!(fired_count(), 1);
        drop(guard);
    });
    qdp_par::set_max_threads(0);
}

#[test]
fn engine_configuration_is_validated_with_typed_errors() {
    let _l = lock();
    for bad in [-0.1, 1.0, 1.5, f64::NAN, f64::INFINITY] {
        match engine().try_with_mass_budget(bad) {
            Err(QdpError::InvalidMassBudget { epsilon }) => {
                assert_eq!(epsilon.to_bits(), bad.to_bits());
            }
            other => panic!("ε = {bad}: expected InvalidMassBudget, got {other:?}"),
        }
    }
    assert!(engine().try_with_mass_budget(0.0).is_ok());
    assert!(engine().try_with_mass_budget(0.999).is_ok());

    for bad in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        match qdp_sim::try_chernoff_shots(3, bad) {
            Err(QdpError::InvalidPrecision { what, .. }) => assert_eq!(what, "precision"),
            other => panic!("δ = {bad}: expected InvalidPrecision, got {other:?}"),
        }
    }
    assert_eq!(qdp_sim::try_chernoff_shots(2, 0.5), Ok(16));
}
