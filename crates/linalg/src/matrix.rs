//! Dense complex matrices.
//!
//! Row-major storage; dimensions are explicit. The operation set is the one
//! quantum semantics needs: multiplication, adjoint, Kronecker products,
//! traces, and structural predicates (unitary / Hermitian / positive
//! semidefinite).

use crate::complex::C64;
use crate::vector::CVector;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A dense, row-major complex matrix.
///
/// # Examples
///
/// ```
/// use qdp_linalg::Matrix;
///
/// let x = Matrix::pauli_x();
/// let z = Matrix::pauli_z();
/// // XZ = -ZX (anticommutation)
/// let xz = x.mul(&z);
/// let zx = z.mul(&x);
/// assert!(xz.approx_eq(&zx.scale(qdp_linalg::C64::real(-1.0)), 1e-12));
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<C64>,
}

impl Matrix {
    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_data(rows: usize, cols: usize, data: Vec<C64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from nested rows of real numbers.
    pub fn from_real_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows in matrix literal");
            data.extend(row.iter().map(|&x| C64::real(x)));
        }
        Matrix { rows: r, cols: c, data }
    }

    /// Creates a matrix from nested rows of complex numbers.
    pub fn from_rows(rows: &[Vec<C64>]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows in matrix literal");
            data.extend_from_slice(row);
        }
        Matrix { rows: r, cols: c, data }
    }

    /// Creates the `n×n` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![C64::ZERO; rows * cols],
        }
    }

    /// Creates the `n×n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, C64::ONE);
        }
        m
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn diagonal(diag: &[C64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m.set(i, i, d);
        }
        m
    }

    /// Outer product `|v⟩⟨w|`.
    pub fn outer(v: &CVector, w: &CVector) -> Self {
        let mut m = Matrix::zeros(v.len(), w.len());
        for i in 0..v.len() {
            for j in 0..w.len() {
                m.set(i, j, v[i] * w[j].conj());
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Entry at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> C64 {
        assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        self.data[i * self.cols + j]
    }

    /// Sets the entry at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: C64) {
        assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        self.data[i * self.cols + j] = value;
    }

    /// Adds `value` to the entry at `(i, j)`.
    #[inline]
    pub fn add_to(&mut self, i: usize, j: usize, value: C64) {
        self.data[i * self.cols + j] += value;
    }

    /// Entry at `(i, j)` without bounds checking.
    ///
    /// # Safety
    ///
    /// The caller must guarantee `i < self.rows()` and `j < self.cols()`;
    /// otherwise this reads out of bounds (undefined behaviour).
    #[inline]
    pub unsafe fn get_unchecked(&self, i: usize, j: usize) -> C64 {
        debug_assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        // SAFETY: the contract above bounds i*cols+j by rows*cols = data.len().
        unsafe { *self.data.get_unchecked(i * self.cols + j) }
    }

    /// Sets the entry at `(i, j)` without bounds checking.
    ///
    /// # Safety
    ///
    /// The caller must guarantee `i < self.rows()` and `j < self.cols()`;
    /// otherwise this writes out of bounds (undefined behaviour).
    #[inline]
    pub unsafe fn set_unchecked(&mut self, i: usize, j: usize, value: C64) {
        debug_assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        // SAFETY: the contract above bounds i*cols+j by rows*cols = data.len().
        unsafe {
            *self.data.get_unchecked_mut(i * self.cols + j) = value;
        }
    }

    /// Borrows the row-major entries.
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// Mutably borrows the row-major entries.
    pub fn as_mut_slice(&mut self) -> &mut [C64] {
        &mut self.data
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics when the inner dimensions disagree.
    pub fn mul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matrix product dimension mismatch: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == C64::ZERO {
                    continue;
                }
                let row_out = i * rhs.cols;
                let row_rhs = k * rhs.cols;
                for j in 0..rhs.cols {
                    out.data[row_out + j] = out.data[row_out + j].mul_add(a, rhs.data[row_rhs + j]);
                }
            }
        }
        out
    }

    /// Matrix-vector product `self · v`.
    ///
    /// # Panics
    ///
    /// Panics when dimensions disagree.
    pub fn mul_vec(&self, v: &CVector) -> CVector {
        assert_eq!(self.cols, v.len(), "matrix-vector dimension mismatch");
        let mut out = CVector::zeros(self.rows);
        for i in 0..self.rows {
            let mut acc = C64::ZERO;
            let row = i * self.cols;
            for j in 0..self.cols {
                acc = acc.mul_add(self.data[row + j], v[j]);
            }
            out[i] = acc;
        }
        out
    }

    /// Conjugate transpose (Hermitian adjoint) `A†`.
    pub fn dagger(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                // SAFETY: i < rows and j < cols bound both accesses; the
                // output is cols x rows, so (j, i) is in bounds.
                unsafe { out.set_unchecked(j, i, self.get_unchecked(i, j).conj()) };
            }
        }
        out
    }

    /// Transpose without conjugation.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                // SAFETY: i < rows and j < cols bound both accesses; the
                // output is cols x rows, so (j, i) is in bounds.
                unsafe { out.set_unchecked(j, i, self.get_unchecked(i, j)) };
            }
        }
        out
    }

    /// Entry-wise conjugate.
    pub fn conj(&self) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Scales every entry by `s`.
    pub fn scale(&self, s: C64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&z| z * s).collect(),
        }
    }

    /// Kronecker product `self ⊗ rhs`.
    pub fn kron(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows * rhs.rows, self.cols * rhs.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self.get(i, j);
                if a == C64::ZERO {
                    continue;
                }
                for k in 0..rhs.rows {
                    for l in 0..rhs.cols {
                        out.set(i * rhs.rows + k, j * rhs.cols + l, a * rhs.get(k, l));
                    }
                }
            }
        }
        out
    }

    /// Trace `tr(A)`.
    ///
    /// # Panics
    ///
    /// Panics when the matrix is not square.
    pub fn trace(&self) -> C64 {
        assert!(self.is_square(), "trace of a non-square matrix");
        (0..self.rows).map(|i| self.get(i, i)).sum()
    }

    /// `tr(self · rhs)` computed without forming the product.
    ///
    /// # Panics
    ///
    /// Panics when dimensions are incompatible.
    pub fn trace_mul(&self, rhs: &Matrix) -> C64 {
        assert_eq!(self.cols, rhs.rows, "trace_mul inner dimension mismatch");
        assert_eq!(self.rows, rhs.cols, "trace_mul outer dimension mismatch");
        let mut acc = C64::ZERO;
        for i in 0..self.rows {
            for k in 0..self.cols {
                acc = acc.mul_add(self.get(i, k), rhs.get(k, i));
            }
        }
        acc
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data
            .iter()
            .map(|z| z.norm_sqr())
            .sum::<f64>()
            .sqrt()
    }

    /// Approximate entry-wise equality within absolute tolerance `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Returns `true` when `A†A ≈ I` within tolerance `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        self.is_square() && self.dagger().mul(self).approx_eq(&Matrix::identity(self.rows), tol)
    }

    /// Returns `true` when `A ≈ A†` within tolerance `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in i..self.cols {
                if !self.get(i, j).approx_eq(self.get(j, i).conj(), tol) {
                    return false;
                }
            }
        }
        true
    }

    /// Returns `true` when the matrix is Hermitian positive semidefinite
    /// within tolerance `tol` (checked via the eigenvalues of the
    /// Hermitian part).
    pub fn is_psd(&self, tol: f64) -> bool {
        if !self.is_hermitian(tol) {
            return false;
        }
        crate::eigen::HermitianEigen::decompose(self)
            .eigenvalues
            .iter()
            .all(|&l| l >= -tol)
    }

    // ----- quantum-relevant constant matrices -------------------------------

    /// The 2×2 Hadamard gate.
    pub fn hadamard() -> Matrix {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        Matrix::from_real_rows(&[&[s, s], &[s, -s]])
    }

    /// The Pauli `X` gate.
    pub fn pauli_x() -> Matrix {
        Matrix::from_real_rows(&[&[0.0, 1.0], &[1.0, 0.0]])
    }

    /// The Pauli `Y` gate.
    pub fn pauli_y() -> Matrix {
        Matrix::from_rows(&[
            vec![C64::ZERO, -C64::I],
            vec![C64::I, C64::ZERO],
        ])
    }

    /// The Pauli `Z` gate.
    pub fn pauli_z() -> Matrix {
        Matrix::from_real_rows(&[&[1.0, 0.0], &[0.0, -1.0]])
    }

    /// The 4×4 CNOT gate (control on the first qubit).
    pub fn cnot() -> Matrix {
        Matrix::from_real_rows(&[
            &[1.0, 0.0, 0.0, 0.0],
            &[0.0, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0, 1.0],
            &[0.0, 0.0, 1.0, 0.0],
        ])
    }

    /// The projector `|k⟩⟨k|` of dimension `n`.
    pub fn basis_projector(n: usize, k: usize) -> Matrix {
        let e = CVector::basis(n, k);
        Matrix::outer(&e, &e)
    }

    /// Single-qubit rotation `Rσ(θ) = exp(-iθσ/2) = cos(θ/2)·I − i·sin(θ/2)·σ`
    /// about the given Pauli matrix `sigma` (which must be an involution,
    /// `σ² = I`, as all Pauli strings are).
    ///
    /// Single-qubit rotation about the X axis, built in closed form (no
    /// intermediate Pauli matrix) — the gate-construction hot path of the
    /// execution engines.
    pub fn rotation_x(theta: f64) -> Matrix {
        let c = C64::real((theta / 2.0).cos());
        let s = C64::imag(-(theta / 2.0).sin());
        Matrix::from_data(2, 2, vec![c, s, s, c])
    }

    /// Single-qubit rotation about the Y axis in closed form (real-valued).
    pub fn rotation_y(theta: f64) -> Matrix {
        let c = C64::real((theta / 2.0).cos());
        let s = C64::real((theta / 2.0).sin());
        Matrix::from_data(2, 2, vec![c, -s, s, c])
    }

    /// Single-qubit rotation about the Z axis in closed form (diagonal).
    pub fn rotation_z(theta: f64) -> Matrix {
        let c = (theta / 2.0).cos();
        let s = (theta / 2.0).sin();
        Matrix::from_data(
            2,
            2,
            vec![C64::new(c, -s), C64::ZERO, C64::ZERO, C64::new(c, s)],
        )
    }

    /// Two-qubit coupling rotation `exp(-iθ(σ⊗σ)/2)` in closed form: `cos`
    /// on the diagonal and the `σ⊗σ` pattern scaled by `-i·sin` elsewhere.
    ///
    /// # Panics
    ///
    /// Panics for [`crate::Pauli::I`] (not a coupling axis).
    pub fn coupling_rotation(axis: crate::Pauli, theta: f64) -> Matrix {
        let c = C64::real((theta / 2.0).cos());
        let s = C64::imag(-(theta / 2.0).sin());
        let z = C64::ZERO;
        let data = match axis {
            // σx⊗σx: ones on the anti-diagonal.
            crate::Pauli::X => vec![c, z, z, s, z, c, s, z, z, s, c, z, s, z, z, c],
            // σy⊗σy: anti-diagonal −1, 1, 1, −1.
            crate::Pauli::Y => vec![c, z, z, -s, z, c, s, z, z, s, c, z, -s, z, z, c],
            // σz⊗σz: diagonal 1, −1, −1, 1.
            crate::Pauli::Z => {
                vec![c + s, z, z, z, z, c - s, z, z, z, z, c - s, z, z, z, z, c + s]
            }
            crate::Pauli::I => panic!("identity is not a coupling axis"),
        };
        Matrix::from_data(4, 4, data)
    }

    /// Built in a single pass over `sigma` (one allocation) — this runs once
    /// per gate application in the simulator's execution engines.
    pub fn rotation_from_involution(sigma: &Matrix, theta: f64) -> Matrix {
        assert!(sigma.is_square(), "rotation generator must be square");
        let n = sigma.rows;
        let c = C64::real((theta / 2.0).cos());
        let s = -C64::I * (theta / 2.0).sin();
        let data = sigma
            .data
            .iter()
            .enumerate()
            .map(|(idx, &z)| {
                let scaled = z * s;
                if idx % (n + 1) == 0 {
                    scaled + c
                } else {
                    scaled
                }
            })
            .collect();
        Matrix {
            rows: n,
            cols: n,
            data,
        }
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{}\t", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "matrix addition row mismatch");
        assert_eq!(self.cols, rhs.cols, "matrix addition column mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a + *b)
                .collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "matrix subtraction row mismatch");
        assert_eq!(self.cols, rhs.cols, "matrix subtraction column mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a - *b)
                .collect(),
        }
    }
}

impl Neg for &Matrix {
    type Output = Matrix;
    fn neg(self) -> Matrix {
        self.scale(-C64::ONE)
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        Matrix::mul(self, rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_multiplicative_unit() {
        let a = Matrix::from_real_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let id = Matrix::identity(2);
        assert!(a.mul(&id).approx_eq(&a, 1e-15));
        assert!(id.mul(&a).approx_eq(&a, 1e-15));
    }

    #[test]
    fn pauli_gates_are_unitary_hermitian_involutions() {
        for m in [Matrix::pauli_x(), Matrix::pauli_y(), Matrix::pauli_z(), Matrix::hadamard()] {
            assert!(m.is_unitary(1e-12));
            assert!(m.is_hermitian(1e-12));
            assert!(m.mul(&m).approx_eq(&Matrix::identity(2), 1e-12));
        }
    }

    #[test]
    fn pauli_algebra_xy_equals_iz() {
        let xy = Matrix::pauli_x().mul(&Matrix::pauli_y());
        let iz = Matrix::pauli_z().scale(C64::I);
        assert!(xy.approx_eq(&iz, 1e-15));
    }

    #[test]
    fn dagger_reverses_products() {
        let a = Matrix::from_rows(&[
            vec![C64::new(1.0, 1.0), C64::new(0.0, 2.0)],
            vec![C64::new(-1.0, 0.5), C64::new(2.0, -2.0)],
        ]);
        let b = Matrix::hadamard();
        let lhs = a.mul(&b).dagger();
        let rhs = b.dagger().mul(&a.dagger());
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn kron_of_identities_is_identity() {
        let k = Matrix::identity(2).kron(&Matrix::identity(3));
        assert!(k.approx_eq(&Matrix::identity(6), 1e-15));
    }

    #[test]
    fn kron_mixed_product_property() {
        // (A⊗B)(C⊗D) = (AC)⊗(BD)
        let a = Matrix::hadamard();
        let b = Matrix::pauli_x();
        let c = Matrix::pauli_z();
        let d = Matrix::pauli_y();
        let lhs = a.kron(&b).mul(&c.kron(&d));
        let rhs = a.mul(&c).kron(&b.mul(&d));
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn trace_and_trace_mul_agree() {
        let a = Matrix::from_real_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_real_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert!(a
            .trace_mul(&b)
            .approx_eq(a.mul(&b).trace(), 1e-14));
        assert_eq!(a.trace(), C64::real(5.0));
    }

    #[test]
    fn cnot_flips_target_when_control_set() {
        let cnot = Matrix::cnot();
        assert!(cnot.is_unitary(1e-14));
        let v10 = CVector::basis(4, 2); // |10⟩
        let v11 = CVector::basis(4, 3); // |11⟩
        assert!(cnot.mul_vec(&v10).approx_eq(&v11, 1e-15));
        assert!(cnot.mul_vec(&v11).approx_eq(&v10, 1e-15));
    }

    #[test]
    fn rotation_is_unitary_and_periodic() {
        for theta in [0.0, 0.7, std::f64::consts::PI, 4.2] {
            let r = Matrix::rotation_from_involution(&Matrix::pauli_y(), theta);
            assert!(r.is_unitary(1e-12));
        }
        // Rσ(0) = I, Rσ(2π) = -I
        let r0 = Matrix::rotation_from_involution(&Matrix::pauli_x(), 0.0);
        assert!(r0.approx_eq(&Matrix::identity(2), 1e-12));
        let r2pi = Matrix::rotation_from_involution(&Matrix::pauli_x(), 2.0 * std::f64::consts::PI);
        assert!(r2pi.approx_eq(&Matrix::identity(2).scale(-C64::ONE), 1e-12));
    }

    #[test]
    fn rotation_derivative_is_half_shifted_rotation() {
        // d/dθ Rσ(θ) = ½ Rσ(θ+π)  (Lemma D.1)
        let theta = 0.9;
        let h = 1e-6;
        let sigma = Matrix::pauli_z();
        let plus = Matrix::rotation_from_involution(&sigma, theta + h);
        let minus = Matrix::rotation_from_involution(&sigma, theta - h);
        let fd = (&plus - &minus).scale(C64::real(0.5 / h));
        let analytic = Matrix::rotation_from_involution(&sigma, theta + std::f64::consts::PI)
            .scale(C64::real(0.5));
        assert!(fd.approx_eq(&analytic, 1e-8));
    }

    #[test]
    fn outer_product_projector() {
        let p0 = Matrix::basis_projector(2, 0);
        assert!(p0.mul(&p0).approx_eq(&p0, 1e-15));
        assert!(p0.is_hermitian(1e-15));
        assert_eq!(p0.trace(), C64::ONE);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_product_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.mul(&b);
    }
}
