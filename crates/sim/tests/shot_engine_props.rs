//! Property tests of branch-grouped batching: regrouping rows into
//! outcome-homogeneous sub-batches is an *optimisation*, never a semantic
//! change. Every row of a batched [`ShotEngine`] sweep must carry the same
//! outcome history and the same final amplitudes (to 1e-12; they are in
//! fact produced by identical kernel arithmetic) as the per-row fallback —
//! the same engine run on a batch of one with the same stream.
//!
//! Programs are generated randomly over gates, resets, nested `case`s and
//! aborts, so the regrouping recursion is exercised at every depth.

use qdp_linalg::{C64, Matrix};
use qdp_sim::{
    BatchedStates, Measurement, ProjectiveObservable, Observable, ShotEngine, ShotSampler,
    StateVector, TrajProgram,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random single-qubit unitary drawn from rotations and fixed gates.
fn random_1q_gate(rng: &mut StdRng) -> Matrix {
    match rng.gen_range(0..5usize) {
        0 => Matrix::hadamard(),
        1 => Matrix::pauli_x(),
        2 => Matrix::rotation_from_involution(&Matrix::pauli_x(), rng.gen::<f64>() * 6.0),
        3 => Matrix::rotation_from_involution(&Matrix::pauli_y(), rng.gen::<f64>() * 6.0),
        _ => Matrix::rotation_from_involution(&Matrix::pauli_z(), rng.gen::<f64>() * 6.0),
    }
}

/// A random trajectory program over `n` qubits with branching depth
/// `depth`: gates, resets, and (for positive depth) measurement cases with
/// randomly generated arms, one of which may abort.
fn random_program(rng: &mut StdRng, n: usize, len: usize, depth: usize) -> TrajProgram {
    let mut p = TrajProgram::new();
    for _ in 0..len {
        let q = rng.gen_range(0..n);
        match rng.gen_range(0..8usize) {
            0..=3 => p.push_gate(random_1q_gate(rng), vec![q]),
            4 if n >= 2 => {
                let mut q2 = rng.gen_range(0..n);
                while q2 == q {
                    q2 = rng.gen_range(0..n);
                }
                p.push_gate(Matrix::cnot(), vec![q, q2]);
            }
            4 => p.push_gate(random_1q_gate(rng), vec![q]),
            5 => p.push_init(q),
            _ if depth > 0 => {
                let mut arms: Vec<TrajProgram> = (0..2)
                    .map(|_| random_program(rng, n, len / 2 + 1, depth - 1))
                    .collect();
                if rng.gen_range(0..6usize) == 0 {
                    arms[1].push_abort();
                }
                p.push_case(Measurement::computational(vec![q]), arms);
            }
            _ => p.push_gate(random_1q_gate(rng), vec![q]),
        }
    }
    p
}

/// A random normalised pure state on `n` qubits.
fn random_state(rng: &mut StdRng, n: usize) -> StateVector {
    let dim = 1usize << n;
    let mut amps: Vec<C64> = (0..dim)
        .map(|_| C64::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
        .collect();
    let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
    for a in &mut amps {
        *a *= C64::real(1.0 / norm);
    }
    StateVector::from_amplitudes(n, amps)
}

#[test]
fn regrouped_rows_match_per_row_fallback() {
    let mut rng = StdRng::seed_from_u64(0x9e0b);
    for trial in 0..20 {
        let n = 1 + trial % 4;
        let program = random_program(&mut rng, n, 5 + trial % 6, 2);
        let engine = ShotEngine::new(program);
        let batch_size = [1usize, 2, 7, 16, 33][trial % 5];
        let inputs: Vec<StateVector> = (0..batch_size).map(|_| random_state(&mut rng, n)).collect();
        let seed = 0xF00 + trial as u64;

        let mut samplers: Vec<ShotSampler> = (0..batch_size)
            .map(|r| ShotSampler::derived(seed, r as u64))
            .collect();
        let grouped = engine.run(BatchedStates::from_states(&inputs), &mut samplers);

        for (r, input) in inputs.iter().enumerate() {
            // Per-row fallback: the same row alone, same stream — no
            // regrouping can ever happen in a batch of one.
            let mut solo_sampler = vec![ShotSampler::derived(seed, r as u64)];
            let solo = engine
                .run(BatchedStates::from_states(std::slice::from_ref(input)), &mut solo_sampler)
                .remove(0);

            assert_eq!(
                solo.outcomes, grouped[r].outcomes,
                "trial {trial}: outcome history of row {r} changed under regrouping"
            );
            match (&solo.state, &grouped[r].state) {
                (None, None) => {}
                (Some(s), Some(g)) => {
                    for (k, (a, b)) in s.amplitudes().iter().zip(g.amplitudes()).enumerate() {
                        assert!(
                            (a.re - b.re).abs() <= 1e-12 && (a.im - b.im).abs() <= 1e-12,
                            "trial {trial} row {r} amp {k}: solo {a:?} vs grouped {b:?}"
                        );
                    }
                }
                _ => panic!("trial {trial} row {r}: abort status changed under regrouping"),
            }
        }
    }
}

#[test]
fn regrouped_readout_samples_match_per_row_fallback() {
    // The full estimator path: trajectories plus one projective read-out
    // per surviving row, batched vs per-row, bit for bit.
    let mut rng = StdRng::seed_from_u64(0x51de);
    for trial in 0..10 {
        let n = 1 + trial % 3;
        let program = random_program(&mut rng, n, 6, 2);
        let engine = ShotEngine::new(program);
        let obs = Observable::pauli_z(n, rng.gen_range(0..n));
        let readout = ProjectiveObservable::new(&obs);
        let batch_size = 19;
        let inputs: Vec<StateVector> = (0..batch_size).map(|_| random_state(&mut rng, n)).collect();
        let seed = 0xABC + trial as u64;

        let mut samplers: Vec<ShotSampler> = (0..batch_size)
            .map(|r| ShotSampler::derived(seed, r as u64))
            .collect();
        let grouped = engine.sample_sweep(BatchedStates::from_states(&inputs), &mut samplers, &readout);

        for (r, input) in inputs.iter().enumerate() {
            let mut solo_sampler = vec![ShotSampler::derived(seed, r as u64)];
            let solo = engine.sample_sweep(
                BatchedStates::from_states(std::slice::from_ref(input)),
                &mut solo_sampler,
                &readout,
            )[0];
            assert_eq!(
                solo.to_bits(),
                grouped[r].to_bits(),
                "trial {trial} row {r}: read-out sample changed under regrouping"
            );
        }
    }
}

#[test]
fn regrouping_is_insensitive_to_row_order() {
    // Permuting the input rows (with their streams) permutes the results —
    // each row's trajectory depends only on its own state and stream.
    let mut rng = StdRng::seed_from_u64(0x707);
    let n = 3;
    let program = random_program(&mut rng, n, 8, 2);
    let engine = ShotEngine::new(program);
    let batch_size = 11;
    let inputs: Vec<StateVector> = (0..batch_size).map(|_| random_state(&mut rng, n)).collect();

    let mut samplers: Vec<ShotSampler> = (0..batch_size)
        .map(|r| ShotSampler::derived(1, r as u64))
        .collect();
    let forward = engine.run(BatchedStates::from_states(&inputs), &mut samplers);

    let rev_inputs: Vec<StateVector> = inputs.iter().rev().cloned().collect();
    let mut rev_samplers: Vec<ShotSampler> = (0..batch_size)
        .rev()
        .map(|r| ShotSampler::derived(1, r as u64))
        .collect();
    let reversed = engine.run(BatchedStates::from_states(&rev_inputs), &mut rev_samplers);

    for r in 0..batch_size {
        let a = &forward[r];
        let b = &reversed[batch_size - 1 - r];
        assert_eq!(a.outcomes, b.outcomes, "row {r}");
        match (&a.state, &b.state) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                for (p, q) in x.amplitudes().iter().zip(y.amplitudes()) {
                    assert_eq!(p.re.to_bits(), q.re.to_bits());
                    assert_eq!(p.im.to_bits(), q.im.to_bits());
                }
            }
            _ => panic!("row {r} abort status diverged under permutation"),
        }
    }
}
