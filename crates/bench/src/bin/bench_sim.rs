//! Emits `BENCH_sim.json` — the simulator's performance trajectory record.
//!
//! Measures the two headline numbers of the fast-path kernel work against
//! the retained reference implementation:
//!
//! 1. single-qubit gate application to a 10-qubit `DensityMatrix`
//!    (kernel-level, fast vs reference), and
//! 2. the end-to-end `gradient.rs` workload — a full 24-parameter gradient
//!    of the paper's `P1` circuit — fast kernels vs reference kernels.
//!
//! Run with `scripts/bench_sim.sh` or
//! `cargo run --release -p qdp-bench --bin bench_sim [output-path]`.

use qdp_ad::GradientEngine;
use qdp_lang::ast::Params;
use qdp_linalg::{C64, Matrix};
use qdp_sim::kernels::{apply_matrix, apply_matrix_reference, set_reference_kernels};
use qdp_sim::{DensityMatrix, StateVector};
use qdp_vqc::circuits::p1;
use qdp_vqc::task;
use std::time::Instant;

/// Median-of-runs wall time in nanoseconds for `f`, self-calibrating the
/// iteration count so each sample takes ≥ ~20ms.
fn time_ns(mut f: impl FnMut()) -> f64 {
    // Calibrate.
    let mut iters = 1u64;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let dt = t0.elapsed();
        if dt.as_millis() >= 20 || iters >= 1 << 24 {
            break;
        }
        iters *= 2;
    }
    // Sample.
    let mut samples: Vec<f64> = (0..5)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_sim.json".to_string());

    // --- 1. Kernel-level: H on one qubit of a 10-qubit density matrix. ----
    let n = 10usize;
    let mut rho = DensityMatrix::pure_zero(n);
    for q in 0..n {
        rho.apply_unitary(&Matrix::hadamard(), &[q]);
    }
    let amps: Vec<C64> = rho.as_slice().to_vec();
    let h = Matrix::hadamard();

    let mut buf = amps.clone();
    let gate_fast_ns = time_ns(|| apply_matrix(&mut buf, 2 * n, &h, &[4]));
    let mut buf = amps.clone();
    let gate_ref_ns = time_ns(|| apply_matrix_reference(&mut buf, 2 * n, &h, &[4]));

    // --- 2. End-to-end: full P1 gradient (the gradient.rs workload). ------
    let program = p1();
    let engine = GradientEngine::new(&program).expect("P1 differentiable");
    let params = Params::from_pairs(
        program
            .parameters()
            .into_iter()
            .enumerate()
            .map(|(i, name)| (name, 0.2 + 0.31 * i as f64)),
    );
    let obs = task::readout_observable();
    let psi = StateVector::from_bits(&[true, false, true, false]);

    let grad_fast_ns = time_ns(|| {
        std::hint::black_box(engine.gradient_pure(&params, &obs, &psi));
    });
    set_reference_kernels(true);
    let grad_ref_ns = time_ns(|| {
        std::hint::black_box(engine.gradient_pure(&params, &obs, &psi));
    });
    set_reference_kernels(false);

    let gate_speedup = gate_ref_ns / gate_fast_ns;
    let grad_speedup = grad_ref_ns / grad_fast_ns;

    let json = format!(
        "{{\n  \"bench\": \"sim\",\n  \"threads\": {},\n  \"gate_apply_10q_density\": {{\n    \"gate\": \"H on row qubit 4\",\n    \"fast_ns\": {gate_fast_ns:.1},\n    \"reference_ns\": {gate_ref_ns:.1},\n    \"speedup\": {gate_speedup:.2}\n  }},\n  \"gradient_p1_24_params\": {{\n    \"workload\": \"GradientEngine::gradient_pure on P1\",\n    \"fast_ns\": {grad_fast_ns:.1},\n    \"reference_ns\": {grad_ref_ns:.1},\n    \"speedup\": {grad_speedup:.2}\n  }}\n}}\n",
        qdp_par::max_threads(),
    );
    std::fs::write(&out_path, &json).expect("write benchmark record");
    print!("{json}");
    eprintln!("wrote {out_path}");

    // Guard against catastrophic regressions only: shared CI runners are
    // noisy and the medians come from five samples, so leave headroom
    // before failing the job.
    assert!(
        gate_speedup >= 0.8 && grad_speedup >= 0.8,
        "fast paths regressed well below the reference implementation \
         (gate {gate_speedup:.2}x, gradient {grad_speedup:.2}x)"
    );
}
