//! The trainer on service-shared compilation (PR 8): a
//! [`qdp_vqc::train::Trainer`] built via [`Trainer::with_engine`] on the
//! engine a [`qdp_ad::GradientService`] hands out must train bit-for-bit
//! identically to a standalone trainer that compiled the program itself —
//! and the two must actually share one engine (no second differentiation
//! or lowering of the program).

use qdp_ad::GradientService;
use qdp_vqc::circuits::p1;
use qdp_vqc::loss::SquaredLoss;
use qdp_vqc::optim::GradientDescent;
use qdp_vqc::task;
use qdp_vqc::train::{Dataset, ShotNoise, Trainer};

fn data() -> Dataset {
    task::dataset()
        .into_iter()
        .map(|s| (s.input_state(), s.target()))
        .collect()
}

#[test]
fn trainer_on_a_service_engine_matches_a_standalone_trainer_bitwise() {
    let service = GradientService::new();
    let handle = service.register(&p1()).unwrap();
    let shared = service.engine(&handle);

    let mut on_service = Trainer::with_engine(shared.clone(), task::readout_observable(), data());
    let mut standalone = Trainer::new(&p1(), task::readout_observable(), data()).unwrap();
    assert!(
        std::ptr::eq(on_service.engine(), &*shared),
        "with_engine must adopt the service's engine, not rebuild one"
    );

    for trainer in [&mut on_service, &mut standalone] {
        trainer.init_params_seeded(21);
        trainer.train(3, &SquaredLoss, &mut GradientDescent::new(0.25));
    }
    for (name, v) in on_service.params() {
        assert_eq!(
            v.to_bits(),
            standalone.params()[name].to_bits(),
            "{name} diverged between service-shared and standalone training"
        );
    }
    assert_eq!(on_service.accuracy(), standalone.accuracy());
}

#[test]
fn shot_noise_training_on_a_service_engine_is_bitwise_reproducible() {
    // The sharper contract: shot-noise mode threads derived seed streams
    // through the shared engine's batched estimators, so even sampled
    // training must not care which path compiled the program.
    let noise = ShotNoise {
        value_shots: 32,
        gradient_shots: 32,
        seed: 77,
    };
    let service = GradientService::new();
    let handle = service.register(&p1()).unwrap();

    let run = |mut trainer: Trainer| {
        trainer.init_params_seeded(4);
        trainer.set_shot_noise(Some(noise));
        trainer.train(2, &SquaredLoss, &mut GradientDescent::new(0.2));
        trainer.params().clone()
    };
    let a = run(Trainer::with_engine(
        service.engine(&handle),
        task::readout_observable(),
        data(),
    ));
    let b = run(Trainer::new(&p1(), task::readout_observable(), data()).unwrap());
    for (name, v) in &a {
        assert_eq!(v.to_bits(), b[name].to_bits(), "{name}");
    }
}

#[test]
fn service_requests_and_trainer_share_one_tenant_engine() {
    // Registering the trainer's program twice (trainer wiring + a direct
    // client) must not create a second tenant, and service gradients on
    // the shared tenant agree with the engine the trainer uses.
    let service = GradientService::new();
    let h1 = service.register(&p1()).unwrap();
    let h2 = service.register(&p1()).unwrap();
    assert_eq!(service.tenant_count(), 1);

    let trainer = Trainer::with_engine(service.engine(&h1), task::readout_observable(), data());
    let params = qdp_lang::ast::Params::from_pairs(
        trainer.params().iter().map(|(k, &v)| (k.clone(), v + 0.3)),
    );
    let obs = task::readout_observable();
    let psi = data()[0].0.clone();

    let via_service = service.gradient(&h2, &params, &obs, &psi);
    let via_engine = trainer.engine().gradient_pure_batch(
        &params,
        &obs,
        &qdp_sim::BatchedStates::from_states(std::slice::from_ref(&psi)),
    );
    for (name, v) in &via_service {
        assert_eq!(v.to_bits(), via_engine[0][name].to_bits(), "∂/∂{name}");
    }
}
