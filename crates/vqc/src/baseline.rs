//! The phase-shift-rule baseline (Schuld et al. 2019 — the rule PennyLane
//! implements).
//!
//! For a Pauli rotation `R(θ) = exp(-iθσ/2)` the read-out satisfies
//! `∂f/∂θ = ½·[f(θ+π/2) − f(θ−π/2)]`, evaluated with **two** circuit runs
//! per parameter occurrence. The rule is defined for quantum *circuits*
//! only: like PennyLane's quantum-node design, it cannot differentiate
//! through measurement-based control flow (`case`, `while`), which is
//! exactly the limitation the paper's scheme removes (Section 8.1).

use qdp_lang::ast::{Params, Stmt};
use qdp_lang::{denot, Register};
use qdp_sim::{Observable, StateVector};
use std::collections::BTreeMap;
use std::f64::consts::FRAC_PI_2;
use std::fmt;

/// Error constructing the baseline differentiator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BaselineError {
    /// The program contains a construct outside the circuit fragment.
    ControlFlowUnsupported {
        /// The offending construct (`case`, `while`, `+`).
        construct: &'static str,
    },
    /// The circuit contains a gate the phase-shift rule does not cover.
    GateUnsupported {
        /// Mnemonic of the offending gate.
        gate: String,
    },
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::ControlFlowUnsupported { construct } => write!(
                f,
                "the phase-shift rule handles circuits only; '{construct}' requires \
                 the code-transformation scheme"
            ),
            BaselineError::GateUnsupported { gate } => write!(
                f,
                "the phase-shift rule is established for Rσ/Rσ⊗σ gates only, found {gate}"
            ),
        }
    }
}

impl std::error::Error for BaselineError {}

/// Phase-shift-rule differentiator for circuit-only programs.
///
/// # Examples
///
/// ```
/// use qdp_vqc::baseline::PhaseShift;
/// use qdp_lang::parse_program;
///
/// // Measurement control flow is rejected — PennyLane's limitation.
/// let controlled = parse_program(
///     "case M[q1] = 0 -> skip[q1], 1 -> q1 *= RX(t) end",
/// )?;
/// assert!(PhaseShift::new(&controlled).is_err());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct PhaseShift {
    program: Stmt,
    register: Register,
    params: Vec<String>,
}

impl PhaseShift {
    /// Validates that the program is a circuit (unitaries, initialisations,
    /// skips in sequence) and builds the differentiator.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::ControlFlowUnsupported`] on `case`, `while`,
    /// or additive choice.
    pub fn new(program: &Stmt) -> Result<Self, BaselineError> {
        check_circuit(program)?;
        Ok(PhaseShift {
            register: Register::from_program(program),
            params: program.parameters().into_iter().collect(),
            program: program.clone(),
        })
    }

    /// Parameter names of the circuit.
    pub fn parameters(&self) -> &[String] {
        &self.params
    }

    /// Forward value `⟨O⟩` on a pure input.
    pub fn value(&self, params: &Params, obs: &Observable, psi: &StateVector) -> f64 {
        denot::expectation_pure(&self.program, &self.register, params, psi, obs)
    }

    /// Derivative with respect to `param` by the phase-shift rule, summing
    /// `½[f(+π/2) − f(−π/2)]` over every occurrence of the parameter
    /// (two circuit evaluations per occurrence).
    pub fn derivative(
        &self,
        params: &Params,
        param: &str,
        obs: &Observable,
        psi: &StateVector,
    ) -> f64 {
        let occurrences = count_occurrences(&self.program, param);
        let mut total = 0.0;
        for occ in 0..occurrences {
            let plus = shift_occurrence(&self.program, param, occ, FRAC_PI_2);
            let minus = shift_occurrence(&self.program, param, occ, -FRAC_PI_2);
            let f_plus = denot::expectation_pure(&plus, &self.register, params, psi, obs);
            let f_minus = denot::expectation_pure(&minus, &self.register, params, psi, obs);
            total += 0.5 * (f_plus - f_minus);
        }
        total
    }

    /// The full gradient; costs two circuit evaluations per parameter
    /// occurrence (versus one per occurrence for the paper's gadget).
    pub fn gradient(
        &self,
        params: &Params,
        obs: &Observable,
        psi: &StateVector,
    ) -> BTreeMap<String, f64> {
        self.params
            .iter()
            .map(|name| (name.clone(), self.derivative(params, name, obs, psi)))
            .collect()
    }

    /// Number of circuit evaluations one full gradient costs with this
    /// rule: `2 × Σj OCj`.
    pub fn circuit_evaluations_per_gradient(&self) -> usize {
        self.params
            .iter()
            .map(|p| 2 * count_occurrences(&self.program, p))
            .sum()
    }
}

fn check_circuit(stmt: &Stmt) -> Result<(), BaselineError> {
    match stmt {
        Stmt::Unitary { gate, .. } => match gate {
            qdp_lang::Gate::CRot { .. } | qdp_lang::Gate::CCoupling { .. } => {
                Err(BaselineError::GateUnsupported {
                    gate: gate.mnemonic(),
                })
            }
            _ => Ok(()),
        },
        Stmt::Abort { .. } | Stmt::Skip { .. } | Stmt::Init { .. } => Ok(()),
        Stmt::Seq(a, b) => {
            check_circuit(a)?;
            check_circuit(b)
        }
        Stmt::Case { .. } => Err(BaselineError::ControlFlowUnsupported { construct: "case" }),
        Stmt::While { .. } => Err(BaselineError::ControlFlowUnsupported { construct: "while" }),
        Stmt::Sum(..) => Err(BaselineError::ControlFlowUnsupported { construct: "+" }),
    }
}

fn count_occurrences(stmt: &Stmt, param: &str) -> usize {
    let mut count = 0;
    stmt.visit(&mut |s| {
        if let Stmt::Unitary { gate, .. } = s {
            if gate.uses_param(param) {
                count += 1;
            }
        }
    });
    count
}

/// Returns a copy of the circuit with the `occurrence`-th use of `param`
/// shifted by `delta`.
fn shift_occurrence(stmt: &Stmt, param: &str, occurrence: usize, delta: f64) -> Stmt {
    let mut seen = 0usize;
    shift_rec(stmt, param, occurrence, delta, &mut seen)
}

fn shift_rec(stmt: &Stmt, param: &str, target: usize, delta: f64, seen: &mut usize) -> Stmt {
    match stmt {
        Stmt::Unitary { gate, qs } if gate.uses_param(param) => {
            let idx = *seen;
            *seen += 1;
            if idx == target {
                let shifted = shift_gate(gate, delta);
                Stmt::Unitary {
                    gate: shifted,
                    qs: qs.clone(),
                }
            } else {
                stmt.clone()
            }
        }
        Stmt::Seq(a, b) => Stmt::Seq(
            Box::new(shift_rec(a, param, target, delta, seen)),
            Box::new(shift_rec(b, param, target, delta, seen)),
        ),
        other => other.clone(),
    }
}

fn shift_gate(gate: &qdp_lang::Gate, delta: f64) -> qdp_lang::Gate {
    use qdp_lang::Gate;
    match gate {
        Gate::Rot { axis, angle } => Gate::Rot {
            axis: *axis,
            angle: angle.shifted(delta),
        },
        Gate::Coupling { axis, angle } => Gate::Coupling {
            axis: *axis,
            angle: angle.shifted(delta),
        },
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuits::{p1, p2};
    use qdp_ad::GradientEngine;
    use qdp_lang::parse_program;

    #[test]
    fn rejects_all_control_flow() {
        for (src, construct) in [
            ("case M[q1] = 0 -> skip[q1], 1 -> skip[q1] end", "case"),
            ("while[2] M[q1] = 1 do skip[q1] done", "while"),
            ("skip[q1] + skip[q1]", "+"),
        ] {
            let p = parse_program(src).unwrap();
            let err = PhaseShift::new(&p).unwrap_err();
            assert_eq!(err, BaselineError::ControlFlowUnsupported { construct });
        }
    }

    #[test]
    fn rejects_p2_but_accepts_p1() {
        assert!(PhaseShift::new(&p1()).is_ok());
        assert!(PhaseShift::new(&p2()).is_err());
    }

    #[test]
    fn matches_analytic_derivative_on_single_rotation() {
        let p = parse_program("q1 *= RY(t)").unwrap();
        let ps = PhaseShift::new(&p).unwrap();
        let obs = Observable::pauli_z(1, 0);
        let psi = StateVector::zero_state(1);
        for theta in [0.0, 0.5, 1.7] {
            let params = Params::from_pairs([("t", theta)]);
            let d = ps.derivative(&params, "t", &obs, &psi);
            assert!((d + theta.sin()).abs() < 1e-10, "θ={theta}");
        }
    }

    #[test]
    fn agrees_with_code_transformation_on_p1() {
        // On the circuit-only P1 both differentiation schemes must agree.
        let program = p1();
        let ps = PhaseShift::new(&program).unwrap();
        let engine = GradientEngine::new(&program).unwrap();
        let params = Params::from_pairs(
            program
                .parameters()
                .into_iter()
                .enumerate()
                .map(|(i, name)| (name, 0.1 + 0.37 * i as f64)),
        );
        let obs = crate::task::readout_observable();
        let psi = StateVector::from_bits(&[true, false, false, true]);
        let baseline = ps.gradient(&params, &obs, &psi);
        let transformed = engine.gradient_pure(&params, &obs, &psi);
        for (name, value) in &baseline {
            assert!(
                (value - transformed[name]).abs() < 1e-9,
                "∂/∂{name}: baseline {value} vs transform {}",
                transformed[name]
            );
        }
    }

    #[test]
    fn handles_shared_parameters_by_summing_occurrences() {
        let p = parse_program("q1 *= RX(t); q1 *= RY(t)").unwrap();
        let ps = PhaseShift::new(&p).unwrap();
        let engine = GradientEngine::new(&p).unwrap();
        let params = Params::from_pairs([("t", 0.8)]);
        let obs = Observable::pauli_z(1, 0);
        let psi = StateVector::zero_state(1);
        let lhs = ps.derivative(&params, "t", &obs, &psi);
        let rhs = engine.gradient_pure(&params, &obs, &psi)["t"];
        assert!((lhs - rhs).abs() < 1e-10);
    }

    #[test]
    fn counts_two_evaluations_per_occurrence() {
        let p = parse_program("q1 *= RX(t); q1 *= RY(t); q1 *= RZ(s)").unwrap();
        let ps = PhaseShift::new(&p).unwrap();
        assert_eq!(ps.circuit_evaluations_per_gradient(), 2 * 3);
    }
}
