//! `qdpc` — the differentiable-quantum-program compiler driver.
//!
//! A command-line front end over the reproduction, in the spirit of the
//! paper's OCaml artifact:
//!
//! ```text
//! qdpc parse     <file>              parse, check well-formedness, pretty-print
//! qdpc simplify  <file>              run the semantics-preserving optimiser
//! qdpc analyze   <file>              static metrics + per-parameter resources
//! qdpc run       <file> [k=v …]      evaluate on |0…0⟩, print read-outs
//! qdpc transform <file> <param>      print the additive ∂/∂θ(P) program
//! qdpc compile   <file> <param>      print the compiled derivative multiset
//! qdpc check     <file> <param>      build & verify the Fig. 5 derivation
//! ```
//!
//! `<file>` may be `-` for standard input.

use qdp_ad::{analyze, check, derive, differentiate, fresh_ancilla, transform};
use qdp_lang::ast::Params;
use qdp_lang::{denot, metrics, opt, parse_program, pretty, wf, Register};
use qdp_sim::{DensityMatrix, Observable};
use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("qdpc: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let (command, rest) = args.split_first().ok_or_else(usage)?;
    match command.as_str() {
        "parse" => {
            let program = load(rest.first().ok_or_else(usage)?)?;
            println!("{}", pretty::to_source(&program));
            Ok(())
        }
        "simplify" => {
            let program = load(rest.first().ok_or_else(usage)?)?;
            let simplified = opt::simplify(&program);
            eprintln!(
                "// {} → {} gates",
                program.gate_count(),
                simplified.gate_count()
            );
            println!("{}", pretty::to_source(&simplified));
            Ok(())
        }
        "run" => {
            let (file, assignments) = rest.split_first().ok_or_else(usage)?;
            let program = load(file)?;
            let mut params = Params::new();
            for assignment in assignments {
                let (name, value) = assignment
                    .split_once('=')
                    .ok_or_else(|| format!("expected name=value, got '{assignment}'"))?;
                let value: f64 = value
                    .parse()
                    .map_err(|e| format!("bad value in '{assignment}': {e}"))?;
                params.set(name, value);
            }
            for name in program.parameters() {
                if params.get(&name).is_none() {
                    return Err(format!("parameter '{name}' needs a value (pass {name}=<v>)"));
                }
            }
            let reg = Register::from_program(&program);
            let rho = DensityMatrix::pure_zero(reg.len());
            let out = denot::denote(&program, &reg, &params, &rho);
            println!("input: |0…0⟩ on register {reg}");
            println!("output trace (termination probability): {:.6}", out.trace());
            for (i, var) in reg.vars().iter().enumerate() {
                let z = Observable::pauli_z(reg.len(), i).expectation(&out);
                let p1 = Observable::projector_one(reg.len(), i).expectation(&out);
                println!("  {var}: ⟨Z⟩ = {z:+.6}, P(1) = {p1:.6}");
            }
            Ok(())
        }
        "analyze" => {
            let program = load(rest.first().ok_or_else(usage)?)?;
            let m = metrics::measure(&program);
            println!("qubits:          {}", m.qubits);
            println!("gates:           {}", m.gates);
            println!("depth:           {}", m.depth);
            println!("lines:           {}", m.lines);
            println!("statements:      {}", m.statements);
            println!("control nesting: {}", m.control_nesting);
            let reports = analyze(&program).map_err(|e| e.to_string())?;
            if reports.is_empty() {
                println!("parameters:      none");
            } else {
                println!("parameters:");
                for r in reports {
                    println!(
                        "  {:<12} OC = {:<4} |#∂| = {:<4} Prop. 7.2 {}",
                        r.param,
                        r.occurrence_count,
                        r.derivative_programs,
                        if r.satisfies_bound() { "ok" } else { "VIOLATED" }
                    );
                }
            }
            Ok(())
        }
        "transform" => {
            let (file, param) = two(rest)?;
            let program = load(&file)?;
            let ancilla = fresh_ancilla(&program, &param);
            let additive =
                transform(&program, &param, &ancilla).map_err(|e| e.to_string())?;
            println!("// ∂/∂{param}, ancilla {ancilla}");
            println!("{}", pretty::to_source(&additive));
            Ok(())
        }
        "compile" => {
            let (file, param) = two(rest)?;
            let program = load(&file)?;
            let diff = differentiate(&program, &param).map_err(|e| e.to_string())?;
            println!(
                "// {} non-aborting derivative program(s) for ∂/∂{param}",
                diff.compiled().len()
            );
            for (i, p) in diff.compiled().iter().enumerate() {
                println!("// --- program {i} ---");
                println!("{}", pretty::to_source(p));
            }
            Ok(())
        }
        "check" => {
            let (file, param) = two(rest)?;
            let program = load(&file)?;
            let ancilla = fresh_ancilla(&program, &param);
            let derivation =
                derive(&program, &param, &ancilla).map_err(|e| e.to_string())?;
            check(&derivation, &param, &ancilla).map_err(|e| e.to_string())?;
            println!(
                "derivation of ∂/∂{param}(P) | P checks: {} rule applications, height {}",
                derivation.size(),
                derivation.height()
            );
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: qdpc <parse|simplify|run|analyze|transform|compile|check> <file|-> [param]".to_string()
}

fn two(rest: &[String]) -> Result<(String, String), String> {
    match rest {
        [file, param] => Ok((file.clone(), param.clone())),
        _ => Err(usage()),
    }
}

fn load(path: &str) -> Result<qdp_lang::Stmt, String> {
    let source = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("reading stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?
    };
    let program = parse_program(&source).map_err(|e| e.to_string())?;
    wf::check(&program).map_err(|e| e.to_string())?;
    Ok(program)
}
