//! Offline stand-in for the subset of the `criterion` benchmarking API used
//! by `crates/bench`.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched. This shim keeps the bench sources unchanged and
//! measures with plain wall-clock timing: each benchmark warms up for
//! `warm_up_time`, then runs batches for at least `measurement_time`, and
//! reports mean / best ns-per-iteration on stdout.
//!
//! Extras over a plain stopwatch:
//!
//! * `QDP_BENCH_FAST=1` shrinks warm-up and measurement windows (CI smoke),
//! * `QDP_BENCH_JSON=<path>` appends one JSON line per benchmark
//!   (`{"name":…,"mean_ns":…,"best_ns":…,"iters":…}`) for trend tracking.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup (API compatibility; the shim times the
/// routine exclusive of setup in every mode).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

/// `QDP_BENCH_FAST` is enabled when set to anything but `"0"`.
fn fast_mode() -> bool {
    std::env::var("QDP_BENCH_FAST").is_ok_and(|v| v != "0")
}

impl Default for Criterion {
    fn default() -> Self {
        let fast = fast_mode();
        Criterion {
            sample_size: 10,
            warm_up: if fast { Duration::from_millis(30) } else { Duration::from_millis(300) },
            measurement: if fast { Duration::from_millis(150) } else { Duration::from_secs(2) },
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            warm_up: self.warm_up,
            measurement: self.measurement,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(name, self.warm_up, self.measurement, f);
        self
    }
}

/// A group of related benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples (accepted for API compatibility).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration (ignored in fast mode).
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        if !fast_mode() {
            self.warm_up = d;
        }
        self
    }

    /// Sets the measurement duration (ignored in fast mode).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        if !fast_mode() {
            self.measurement = d;
        }
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_benchmark(&full, self.warm_up, self.measurement, f);
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` does the actual timing.
pub struct Bencher {
    mode: Mode,
    /// Accumulated (total_time, iters) samples.
    samples: Vec<(Duration, u64)>,
    budget: Duration,
}

enum Mode {
    WarmUp,
    Measure,
}

impl Bencher {
    /// Times `routine` over enough iterations to fill the current window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let mut iters: u64 = 0;
        let mut batch: u64 = 1;
        while start.elapsed() < self.budget {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            iters += batch;
            if matches!(self.mode, Mode::Measure) {
                self.samples.push((dt, batch));
            }
            // Grow batches until one batch takes ~1ms, bounding timer overhead.
            if dt < Duration::from_millis(1) && batch < 1 << 20 {
                batch *= 2;
            }
        }
        let _ = iters;
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let start = Instant::now();
        while start.elapsed() < self.budget {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            let dt = t0.elapsed();
            if matches!(self.mode, Mode::Measure) {
                self.samples.push((dt, 1));
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, warm_up: Duration, measurement: Duration, mut f: F) {
    let mut warm = Bencher {
        mode: Mode::WarmUp,
        samples: Vec::new(),
        budget: warm_up,
    };
    f(&mut warm);

    let mut bench = Bencher {
        mode: Mode::Measure,
        samples: Vec::new(),
        budget: measurement,
    };
    f(&mut bench);

    let total_iters: u64 = bench.samples.iter().map(|&(_, n)| n).sum();
    if total_iters == 0 {
        println!("{name:<55} no samples");
        return;
    }
    let total_time: Duration = bench.samples.iter().map(|&(t, _)| t).sum();
    let mean_ns = total_time.as_nanos() as f64 / total_iters as f64;
    let best_ns = bench
        .samples
        .iter()
        .map(|&(t, n)| t.as_nanos() as f64 / n as f64)
        .fold(f64::INFINITY, f64::min);
    println!("{name:<55} mean {:>12.1} ns/iter   best {:>12.1} ns/iter   ({} iters)", mean_ns, best_ns, total_iters);

    if let Ok(path) = std::env::var("QDP_BENCH_JSON") {
        use std::io::Write;
        if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
            let _ = writeln!(
                file,
                "{{\"name\":\"{}\",\"mean_ns\":{:.1},\"best_ns\":{:.1},\"iters\":{}}}",
                name.replace('"', "'"),
                mean_ns,
                best_ns,
                total_iters
            );
        }
    }
}

/// Declares a group of benchmark functions (mirrors `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point (mirrors `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Once;

    /// `setenv` racing `getenv` across test threads is UB on glibc — set the
    /// variable exactly once, before any reader runs.
    fn enable_fast_mode() {
        static SET: Once = Once::new();
        SET.call_once(|| std::env::set_var("QDP_BENCH_FAST", "1"));
    }

    #[test]
    fn bench_function_runs_and_reports() {
        enable_fast_mode();
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("shim_smoke", |b| b.iter(|| ran = ran.wrapping_add(1)));
        assert!(ran > 0);
    }

    #[test]
    fn group_api_chains() {
        enable_fast_mode();
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        g.bench_function("inner", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }

    #[test]
    fn iter_batched_consumes_fresh_inputs() {
        enable_fast_mode();
        let mut c = Criterion::default();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
