//! Double-precision complex numbers.
//!
//! The approved dependency set for this reproduction does not include
//! `num-complex`, so the workspace carries its own minimal-but-complete
//! implementation. Only `f64` precision is provided; quantum simulation in
//! this project never needs anything else.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use qdp_linalg::C64;
///
/// let i = C64::I;
/// assert_eq!(i * i, C64::new(-1.0, 0.0));
/// assert_eq!(C64::new(3.0, 4.0).abs(), 5.0);
/// ```
#[derive(Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// Creates a purely imaginary complex number.
    #[inline]
    pub const fn imag(im: f64) -> Self {
        C64 { re: 0.0, im }
    }

    /// Creates `exp(i·phi)` — a unit-modulus complex number with phase `phi`.
    ///
    /// # Examples
    ///
    /// ```
    /// use qdp_linalg::C64;
    /// let z = C64::cis(std::f64::consts::PI);
    /// assert!((z - C64::new(-1.0, 0.0)).abs() < 1e-15);
    /// ```
    #[inline]
    pub fn cis(phi: f64) -> Self {
        C64 {
            re: phi.cos(),
            im: phi.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        C64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns a non-finite number when `self` is zero, mirroring `f64`
    /// division semantics.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        C64 {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        C64 {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// Complex exponential `exp(z)`.
    #[inline]
    pub fn exp(self) -> Self {
        C64::cis(self.im).scale(self.re.exp())
    }

    /// Principal square root.
    pub fn sqrt(self) -> Self {
        let r = self.abs();
        let theta = self.arg();
        C64::cis(theta / 2.0).scale(r.sqrt())
    }

    /// Returns `true` when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Approximate equality within absolute tolerance `tol` (per component
    /// distance measured as modulus of the difference).
    #[inline]
    pub fn approx_eq(self, other: C64, tol: f64) -> bool {
        (self - other).abs() <= tol
    }

    /// Fused multiply-add: `self + a * b`, written to make the hot kernels in
    /// the simulator read naturally.
    #[inline]
    pub fn mul_add(self, a: C64, b: C64) -> Self {
        C64 {
            re: self.re + a.re * b.re - a.im * b.im,
            im: self.im + a.re * b.im + a.im * b.re,
        }
    }
}

impl fmt::Debug for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im == 0.0 {
            write!(f, "{}", self.re)
        } else if self.re == 0.0 {
            write!(f, "{}i", self.im)
        } else if self.im < 0.0 {
            write!(f, "{}{}i", self.re, self.im)
        } else {
            write!(f, "{}+{}i", self.re, self.im)
        }
    }
}

impl From<f64> for C64 {
    fn from(re: f64) -> Self {
        C64::real(re)
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: C64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: f64) -> C64 {
        self.scale(rhs)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        rhs.scale(self)
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w computed as z * w^-1
    fn div(self, rhs: C64) -> C64 {
        self * rhs.recip()
    }
}

impl DivAssign for C64 {
    #[inline]
    fn div_assign(&mut self, rhs: C64) {
        *self = *self / rhs;
    }
}

impl Div<f64> for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: f64) -> C64 {
        C64::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, Add::add)
    }
}

impl<'a> Sum<&'a C64> for C64 {
    fn sum<I: Iterator<Item = &'a C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |acc, z| acc + *z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn constants_behave() {
        assert_eq!(C64::ZERO + C64::ONE, C64::ONE);
        assert_eq!(C64::I * C64::I, -C64::ONE);
        assert_eq!(C64::ONE.conj(), C64::ONE);
        assert_eq!(C64::I.conj(), -C64::I);
    }

    #[test]
    fn arithmetic_identities() {
        let z = C64::new(2.5, -1.5);
        let w = C64::new(-0.5, 3.0);
        assert!((z + w - w).approx_eq(z, 1e-15));
        assert!((z * w / w).approx_eq(z, 1e-12));
        assert!((z * z.recip()).approx_eq(C64::ONE, 1e-12));
        assert_eq!(-(-z), z);
    }

    #[test]
    fn modulus_and_phase() {
        let z = C64::new(3.0, 4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert!((C64::I.arg() - FRAC_PI_2).abs() < 1e-15);
    }

    #[test]
    fn cis_and_exp_agree() {
        for k in 0..8 {
            let phi = k as f64 * PI / 4.0;
            assert!(C64::cis(phi).approx_eq(C64::imag(phi).exp(), 1e-14));
        }
    }

    #[test]
    fn sqrt_squares_back() {
        let zs = [
            C64::new(1.0, 1.0),
            C64::new(-2.0, 0.5),
            C64::new(0.0, -3.0),
            C64::new(4.0, 0.0),
        ];
        for z in zs {
            let r = z.sqrt();
            assert!((r * r).approx_eq(z, 1e-12), "sqrt({z})² = {} ≠ {z}", r * r);
        }
    }

    #[test]
    fn mul_add_matches_expanded_form() {
        let acc = C64::new(0.25, -0.75);
        let a = C64::new(1.5, 2.0);
        let b = C64::new(-0.5, 0.25);
        assert!(acc.mul_add(a, b).approx_eq(acc + a * b, 1e-15));
    }

    #[test]
    fn sum_over_iterator() {
        let zs = vec![C64::ONE, C64::I, C64::new(1.0, 1.0)];
        let s: C64 = zs.iter().sum();
        assert_eq!(s, C64::new(2.0, 2.0));
        let s2: C64 = zs.into_iter().sum();
        assert_eq!(s2, C64::new(2.0, 2.0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(C64::real(2.0).to_string(), "2");
        assert_eq!(C64::imag(-1.0).to_string(), "-1i");
        assert_eq!(C64::new(1.0, 1.0).to_string(), "1+1i");
        assert_eq!(C64::new(1.0, -1.0).to_string(), "1-1i");
    }

    #[test]
    fn scale_and_div_by_real() {
        let z = C64::new(2.0, -4.0);
        assert_eq!(z.scale(0.5), C64::new(1.0, -2.0));
        assert_eq!(z / 2.0, C64::new(1.0, -2.0));
        assert_eq!(2.0 * z, C64::new(4.0, -8.0));
    }
}
