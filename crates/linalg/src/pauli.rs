//! The Pauli group: single-qubit Paulis and Pauli strings.
//!
//! The paper's parameterized gates are rotations `Rσ(θ) = exp(-iθσ/2)` where
//! `σ` ranges over Pauli matrices and two-qubit couplings `σ⊗σ`
//! (Section 3.1). Pauli strings also serve as cheap, bounded observables
//! satisfying `-I ⊑ O ⊑ I` (Eq. 5.2).

use crate::complex::C64;
use crate::matrix::Matrix;
use std::fmt;
use std::str::FromStr;

/// A single-qubit Pauli operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Pauli {
    /// The identity.
    I,
    /// Bit flip.
    X,
    /// Bit-and-phase flip.
    Y,
    /// Phase flip.
    Z,
}

impl Pauli {
    /// The 2×2 matrix of this Pauli operator.
    pub fn matrix(self) -> Matrix {
        match self {
            Pauli::I => Matrix::identity(2),
            Pauli::X => Matrix::pauli_x(),
            Pauli::Y => Matrix::pauli_y(),
            Pauli::Z => Matrix::pauli_z(),
        }
    }

    /// All non-identity Paulis, the rotation axes used by the paper's gates.
    pub const AXES: [Pauli; 3] = [Pauli::X, Pauli::Y, Pauli::Z];

    /// Product of two Paulis as `(phase, pauli)` with `a · b = phase · pauli`.
    ///
    /// # Examples
    ///
    /// ```
    /// use qdp_linalg::{C64, Pauli};
    /// let (phase, p) = Pauli::X.mul(Pauli::Y);
    /// assert_eq!(p, Pauli::Z);
    /// assert_eq!(phase, C64::I);
    /// ```
    #[allow(clippy::should_implement_trait)] // returns (phase, pauli), not Self
    pub fn mul(self, other: Pauli) -> (C64, Pauli) {
        use Pauli::*;
        match (self, other) {
            (I, p) | (p, I) => (C64::ONE, p),
            (X, X) | (Y, Y) | (Z, Z) => (C64::ONE, I),
            (X, Y) => (C64::I, Z),
            (Y, X) => (-C64::I, Z),
            (Y, Z) => (C64::I, X),
            (Z, Y) => (-C64::I, X),
            (Z, X) => (C64::I, Y),
            (X, Z) => (-C64::I, Y),
        }
    }

    /// Returns `true` when the two Paulis commute.
    pub fn commutes_with(self, other: Pauli) -> bool {
        self == Pauli::I || other == Pauli::I || self == other
    }
}

impl fmt::Display for Pauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Pauli::I => 'I',
            Pauli::X => 'X',
            Pauli::Y => 'Y',
            Pauli::Z => 'Z',
        };
        write!(f, "{c}")
    }
}

/// Error returned when parsing a Pauli string fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsePauliError {
    offending: char,
}

impl fmt::Display for ParsePauliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid Pauli character '{}', expected one of I, X, Y, Z",
            self.offending
        )
    }
}

impl std::error::Error for ParsePauliError {}

/// A tensor product of single-qubit Paulis, e.g. `Z ⊗ I ⊗ X`.
///
/// # Examples
///
/// ```
/// use qdp_linalg::PauliString;
///
/// let zz: PauliString = "ZZ".parse()?;
/// let m = zz.matrix();
/// assert!(m.is_hermitian(1e-12));
/// assert!(m.is_unitary(1e-12));
/// # Ok::<(), qdp_linalg::pauli::ParsePauliError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PauliString {
    factors: Vec<Pauli>,
}

impl PauliString {
    /// Creates a Pauli string from its factors (most-significant qubit
    /// first, matching the Kronecker-product order used throughout the
    /// workspace).
    pub fn new(factors: Vec<Pauli>) -> Self {
        PauliString { factors }
    }

    /// The all-identity string on `n` qubits.
    pub fn identity(n: usize) -> Self {
        PauliString {
            factors: vec![Pauli::I; n],
        }
    }

    /// A string that is `p` on qubit `k` and identity elsewhere.
    ///
    /// # Panics
    ///
    /// Panics if `k >= n`.
    pub fn single(n: usize, k: usize, p: Pauli) -> Self {
        assert!(k < n, "qubit index {k} out of range for {n} qubits");
        let mut factors = vec![Pauli::I; n];
        factors[k] = p;
        PauliString { factors }
    }

    /// Number of qubits the string acts on.
    pub fn num_qubits(&self) -> usize {
        self.factors.len()
    }

    /// Borrows the factors.
    pub fn factors(&self) -> &[Pauli] {
        &self.factors
    }

    /// Number of non-identity factors.
    pub fn weight(&self) -> usize {
        self.factors.iter().filter(|&&p| p != Pauli::I).count()
    }

    /// The full `2ⁿ × 2ⁿ` matrix (Kronecker product of the factors).
    pub fn matrix(&self) -> Matrix {
        let mut m = Matrix::identity(1);
        for p in &self.factors {
            m = m.kron(&p.matrix());
        }
        m
    }

    /// Product of two strings as `(phase, string)`.
    ///
    /// # Panics
    ///
    /// Panics when the strings act on different numbers of qubits.
    pub fn mul(&self, other: &PauliString) -> (C64, PauliString) {
        assert_eq!(
            self.num_qubits(),
            other.num_qubits(),
            "Pauli string length mismatch"
        );
        let mut phase = C64::ONE;
        let factors = self
            .factors
            .iter()
            .zip(&other.factors)
            .map(|(&a, &b)| {
                let (ph, p) = a.mul(b);
                phase *= ph;
                p
            })
            .collect();
        (phase, PauliString { factors })
    }

    /// Returns `true` when the strings commute (even number of
    /// anticommuting positions).
    pub fn commutes_with(&self, other: &PauliString) -> bool {
        let anti = self
            .factors
            .iter()
            .zip(&other.factors)
            .filter(|(a, b)| !a.commutes_with(**b))
            .count();
        anti % 2 == 0
    }
}

impl FromStr for PauliString {
    type Err = ParsePauliError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        s.chars()
            .map(|c| match c {
                'I' | 'i' => Ok(Pauli::I),
                'X' | 'x' => Ok(Pauli::X),
                'Y' | 'y' => Ok(Pauli::Y),
                'Z' | 'z' => Ok(Pauli::Z),
                offending => Err(ParsePauliError { offending }),
            })
            .collect::<Result<Vec<_>, _>>()
            .map(PauliString::new)
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in &self.factors {
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_pauli_products_match_matrices() {
        for a in [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z] {
            for b in [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z] {
                let (phase, p) = a.mul(b);
                let lhs = a.matrix().mul(&b.matrix());
                let rhs = p.matrix().scale(phase);
                assert!(lhs.approx_eq(&rhs, 1e-14), "{a}·{b} mismatch");
            }
        }
    }

    #[test]
    fn string_products_match_matrices() {
        let a: PauliString = "XYZ".parse().unwrap();
        let b: PauliString = "ZZX".parse().unwrap();
        let (phase, p) = a.mul(&b);
        let lhs = a.matrix().mul(&b.matrix());
        let rhs = p.matrix().scale(phase);
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn commutation_matches_matrix_commutator() {
        let pairs = [("XX", "ZZ", true), ("XI", "ZI", false), ("XZ", "ZX", true)];
        for (sa, sb, expected) in pairs {
            let a: PauliString = sa.parse().unwrap();
            let b: PauliString = sb.parse().unwrap();
            assert_eq!(a.commutes_with(&b), expected, "{sa} vs {sb}");
            let ab = a.matrix().mul(&b.matrix());
            let ba = b.matrix().mul(&a.matrix());
            assert_eq!(ab.approx_eq(&ba, 1e-12), expected);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        let err = "XQZ".parse::<PauliString>().unwrap_err();
        assert_eq!(err.to_string(), "invalid Pauli character 'Q', expected one of I, X, Y, Z");
    }

    #[test]
    fn display_round_trips() {
        let s = "IXYZ";
        let p: PauliString = s.parse().unwrap();
        assert_eq!(p.to_string(), s);
    }

    #[test]
    fn weight_counts_non_identity() {
        let p: PauliString = "IXIZ".parse().unwrap();
        assert_eq!(p.weight(), 2);
        assert_eq!(PauliString::identity(5).weight(), 0);
        assert_eq!(PauliString::single(4, 2, Pauli::Y).weight(), 1);
    }

    #[test]
    fn matrix_dimension_is_exponential() {
        let p = PauliString::identity(3);
        assert_eq!(p.matrix().rows(), 8);
    }
}
