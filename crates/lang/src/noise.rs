//! Noisy denotational semantics — a NISQ-flavoured evaluation mode.
//!
//! The paper motivates VQCs by their feasibility on noisy
//! intermediate-scale quantum machines (Section 1). This module interprets
//! programs under a simple local noise model: a single-qubit channel
//! applied to every operand after each unitary (and optionally after each
//! initialisation). It is an *evaluation* feature of the simulator
//! substrate — the differentiation scheme itself is defined on the ideal
//! semantics.

use crate::ast::{Params, Stmt};
use crate::register::Register;
use qdp_sim::{DensityMatrix, KrausChannel, Measurement};

/// A single-qubit noise channel family parameterized by strength.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum QubitNoise {
    /// Depolarising noise with probability `p`.
    Depolarizing(f64),
    /// Bit flip with probability `p`.
    BitFlip(f64),
    /// Phase flip with probability `p`.
    PhaseFlip(f64),
    /// Amplitude damping with decay `γ`.
    AmplitudeDamping(f64),
}

impl QubitNoise {
    /// The channel instance acting on qubit `q`.
    pub fn channel(self, q: usize) -> KrausChannel {
        match self {
            QubitNoise::Depolarizing(p) => KrausChannel::depolarizing(q, p),
            QubitNoise::BitFlip(p) => KrausChannel::bit_flip(q, p),
            QubitNoise::PhaseFlip(p) => KrausChannel::phase_flip(q, p),
            QubitNoise::AmplitudeDamping(g) => KrausChannel::amplitude_damping(q, g),
        }
    }
}

/// Where noise strikes during evaluation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct NoiseModel {
    /// Channel applied to every operand qubit after each unitary.
    pub after_gate: Option<QubitNoise>,
    /// Channel applied to a qubit after its initialisation.
    pub after_init: Option<QubitNoise>,
}

impl NoiseModel {
    /// The noiseless model.
    pub fn ideal() -> Self {
        NoiseModel::default()
    }

    /// Uniform depolarising noise of strength `p` after every gate.
    pub fn depolarizing(p: f64) -> Self {
        NoiseModel {
            after_gate: Some(QubitNoise::Depolarizing(p)),
            after_init: None,
        }
    }
}

/// Evaluates `[[stmt]]ρ` under a noise model. With [`NoiseModel::ideal`]
/// this coincides with [`crate::denot::denote`].
///
/// # Panics
///
/// Panics on additive programs, like the ideal evaluator.
pub fn denote_noisy(
    stmt: &Stmt,
    reg: &Register,
    params: &Params,
    rho: &DensityMatrix,
    model: &NoiseModel,
) -> DensityMatrix {
    match stmt {
        Stmt::Abort { .. } => DensityMatrix::zero_operator(rho.num_qubits()),
        Stmt::Skip { .. } => rho.clone(),
        Stmt::Init { q } => {
            let idx = reg.indices_of(std::slice::from_ref(q))[0];
            let mut out = rho.clone();
            out.initialize_qubit(idx);
            if let Some(noise) = model.after_init {
                out = noise.channel(idx).apply(&out);
            }
            out
        }
        Stmt::Unitary { gate, qs } => {
            let targets = reg.indices_of(qs);
            let mut out = rho.clone();
            out.apply_unitary(&gate.matrix(params), &targets);
            if let Some(noise) = model.after_gate {
                for &t in &targets {
                    out = noise.channel(t).apply(&out);
                }
            }
            out
        }
        Stmt::Seq(a, b) => {
            let mid = denote_noisy(a, reg, params, rho, model);
            denote_noisy(b, reg, params, &mid, model)
        }
        Stmt::Case { qs, arms } => {
            let meas = Measurement::computational(reg.indices_of(qs));
            let mut acc = DensityMatrix::zero_operator(rho.num_qubits());
            for (m, arm) in arms.iter().enumerate() {
                let branch = meas.branch(rho, m);
                if branch.trace() > 1e-30 {
                    acc.add_assign(&denote_noisy(arm, reg, params, &branch, model));
                }
            }
            acc
        }
        Stmt::While { .. } => {
            denote_noisy(&stmt.unfold_while_once(), reg, params, rho, model)
        }
        Stmt::Sum(..) => panic!("denote_noisy is defined on normal programs"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::denot::denote;
    use crate::parser::parse_program;
    use qdp_sim::Observable;

    fn setup(src: &str, params: &[(&str, f64)]) -> (Stmt, Register, Params) {
        let p = parse_program(src).unwrap();
        let reg = Register::from_program(&p);
        let params = Params::from_pairs(params.iter().map(|&(k, v)| (k, v)));
        (p, reg, params)
    }

    #[test]
    fn ideal_model_matches_ideal_semantics() {
        let (p, reg, params) = setup(
            "q1 *= RX(a); case M[q1] = 0 -> q2 *= RY(a), 1 -> q2 := |0> end; \
             while[2] M[q2] = 1 do q1 *= RZ(a) done",
            &[("a", 0.8)],
        );
        let rho = DensityMatrix::pure_zero(2);
        let noisy = denote_noisy(&p, &reg, &params, &rho, &NoiseModel::ideal());
        let ideal = denote(&p, &reg, &params, &rho);
        assert!(noisy.approx_eq(&ideal, 1e-12));
    }

    #[test]
    fn depolarizing_noise_reduces_purity() {
        let (p, reg, params) = setup("q1 *= RY(a); q1 *= RZ(a)", &[("a", 0.9)]);
        let rho = DensityMatrix::pure_zero(1);
        let ideal = denote(&p, &reg, &params, &rho);
        let noisy = denote_noisy(
            &p,
            &reg,
            &params,
            &rho,
            &NoiseModel::depolarizing(0.1),
        );
        assert!((ideal.purity() - 1.0).abs() < 1e-10);
        assert!(noisy.purity() < 0.95);
        assert!((noisy.trace() - 1.0).abs() < 1e-10, "noise is trace-preserving");
    }

    #[test]
    fn noise_shrinks_observable_contrast() {
        // ⟨Z⟩ after RY(θ) decays towards 0 under depolarising noise.
        let (p, reg, params) = setup("q1 *= RY(a)", &[("a", 0.5)]);
        let rho = DensityMatrix::pure_zero(1);
        let obs = Observable::pauli_z(1, 0);
        let ideal = obs.expectation(&denote(&p, &reg, &params, &rho));
        let noisy = obs.expectation(&denote_noisy(
            &p,
            &reg,
            &params,
            &rho,
            &NoiseModel::depolarizing(0.2),
        ));
        assert!(noisy.abs() < ideal.abs());
        assert!((noisy - (1.0 - 0.2) * ideal).abs() < 1e-10, "exact contraction factor");
    }

    #[test]
    fn amplitude_damping_biases_towards_zero_state() {
        let (p, reg, params) = setup("q1 *= X", &[]);
        let rho = DensityMatrix::pure_zero(1);
        let model = NoiseModel {
            after_gate: Some(QubitNoise::AmplitudeDamping(0.3)),
            after_init: None,
        };
        let out = denote_noisy(&p, &reg, &params, &rho, &model);
        assert!((out.get(0, 0).re - 0.3).abs() < 1e-12);
        assert!((out.get(1, 1).re - 0.7).abs() < 1e-12);
    }

    #[test]
    fn init_noise_applies_only_to_initialisation() {
        let (p, reg, params) = setup("q1 *= X; q1 := |0>", &[]);
        let rho = DensityMatrix::pure_zero(1);
        let model = NoiseModel {
            after_gate: None,
            after_init: Some(QubitNoise::BitFlip(0.25)),
        };
        let out = denote_noisy(&p, &reg, &params, &rho, &model);
        assert!((out.get(1, 1).re - 0.25).abs() < 1e-12);
    }

    #[test]
    fn noisy_branches_remain_a_valid_state() {
        let (p, reg, params) = setup(
            "q1 *= H; case M[q1] = 0 -> q1 *= RX(a), 1 -> q1 *= RY(a) end",
            &[("a", 1.3)],
        );
        let rho = DensityMatrix::pure_zero(1);
        let out = denote_noisy(
            &p,
            &reg,
            &params,
            &rho,
            &NoiseModel::depolarizing(0.15),
        );
        assert!(out.is_valid(1e-8));
        assert!((out.trace() - 1.0).abs() < 1e-10);
    }
}
