//! Mapping between quantum variables and simulator qubit indices.

use crate::ast::{Stmt, Var};
use std::collections::BTreeMap;
use std::fmt;

/// An ordered register assigning each [`Var`] a qubit index.
///
/// The paper's Hilbert space `Hv = ⊗_{q∈v} Hq` is an unordered tensor
/// product; simulation needs a concrete order. [`Register::from_program`]
/// uses the order of first appearance, which matches the intuitive reading
/// of the benchmark programs.
///
/// # Examples
///
/// ```
/// use qdp_lang::{parse_program, Register};
///
/// let p = parse_program("q2 *= RX(t); q1 *= RY(t)")?;
/// let reg = Register::from_program(&p);
/// assert_eq!(reg.index_of(&"q2".into()), Some(0));
/// assert_eq!(reg.index_of(&"q1".into()), Some(1));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Register {
    vars: Vec<Var>,
    index: BTreeMap<Var, usize>,
}

impl Register {
    /// Creates a register from an ordered list of distinct variables.
    ///
    /// # Panics
    ///
    /// Panics on duplicate variables.
    pub fn from_vars<I>(vars: I) -> Self
    where
        I: IntoIterator<Item = Var>,
    {
        let vars: Vec<Var> = vars.into_iter().collect();
        let mut index = BTreeMap::new();
        for (i, v) in vars.iter().enumerate() {
            let prev = index.insert(v.clone(), i);
            assert!(prev.is_none(), "duplicate variable '{v}' in register");
        }
        Register { vars, index }
    }

    /// Creates a register from a program's variables in order of first
    /// appearance.
    pub fn from_program(stmt: &Stmt) -> Self {
        let mut vars: Vec<Var> = Vec::new();
        stmt.visit(&mut |s| {
            let qs: Vec<Var> = match s {
                Stmt::Abort { qs } | Stmt::Skip { qs } | Stmt::Unitary { qs, .. } => qs.clone(),
                Stmt::Init { q } => vec![q.clone()],
                Stmt::Case { qs, .. } => qs.clone(),
                Stmt::While { q, .. } => vec![q.clone()],
                _ => vec![],
            };
            for q in qs {
                if !vars.contains(&q) {
                    vars.push(q);
                }
            }
        });
        Register::from_vars(vars)
    }

    /// Number of qubits.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Returns `true` when the register is empty.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// The index of a variable, if present.
    pub fn index_of(&self, v: &Var) -> Option<usize> {
        self.index.get(v).copied()
    }

    /// The indices of an operand list, in operand order.
    ///
    /// # Panics
    ///
    /// Panics when a variable is not in the register.
    pub fn indices_of(&self, qs: &[Var]) -> Vec<usize> {
        qs.iter()
            .map(|q| {
                self.index_of(q)
                    .unwrap_or_else(|| panic!("variable '{q}' not in register"))
            })
            .collect()
    }

    /// Variables in index order.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// Returns `true` when the register contains `v`.
    pub fn contains(&self, v: &Var) -> bool {
        self.index.contains_key(v)
    }

    /// A new register with `ancilla` prepended as qubit 0 (all existing
    /// indices shift up by one) — matching
    /// [`qdp_sim::DensityMatrix::prepend_zero_ancilla`].
    ///
    /// # Panics
    ///
    /// Panics when the ancilla name collides with an existing variable.
    pub fn with_ancilla_front(&self, ancilla: Var) -> Register {
        assert!(
            !self.contains(&ancilla),
            "ancilla '{ancilla}' collides with an existing variable"
        );
        let mut vars = Vec::with_capacity(self.len() + 1);
        vars.push(ancilla);
        vars.extend(self.vars.iter().cloned());
        Register::from_vars(vars)
    }
}

impl fmt::Display for Register {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.vars.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdp_linalg::Pauli;

    #[test]
    fn from_program_uses_first_appearance_order() {
        let p = Stmt::seq([
            Stmt::rot(Pauli::X, "t", "b"),
            Stmt::coupling(Pauli::Z, "t", "a", "c"),
            Stmt::rot(Pauli::Y, "t", "a"),
        ]);
        let reg = Register::from_program(&p);
        assert_eq!(reg.vars(), &[Var::new("b"), Var::new("a"), Var::new("c")]);
        assert_eq!(reg.indices_of(&[Var::new("a"), Var::new("c")]), vec![1, 2]);
    }

    #[test]
    fn ancilla_prepends_and_shifts() {
        let reg = Register::from_vars([Var::new("q1"), Var::new("q2")]);
        let ext = reg.with_ancilla_front(Var::new("A"));
        assert_eq!(ext.index_of(&Var::new("A")), Some(0));
        assert_eq!(ext.index_of(&Var::new("q1")), Some(1));
        assert_eq!(ext.index_of(&Var::new("q2")), Some(2));
    }

    #[test]
    #[should_panic(expected = "collides")]
    fn ancilla_collision_panics() {
        let reg = Register::from_vars([Var::new("A")]);
        let _ = reg.with_ancilla_front(Var::new("A"));
    }

    #[test]
    #[should_panic(expected = "not in register")]
    fn missing_variable_panics() {
        let reg = Register::from_vars([Var::new("q1")]);
        let _ = reg.indices_of(&[Var::new("nope")]);
    }

    #[test]
    fn display_lists_variables() {
        let reg = Register::from_vars([Var::new("x"), Var::new("y")]);
        assert_eq!(reg.to_string(), "[x, y]");
    }
}
