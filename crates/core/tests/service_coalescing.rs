//! Coalescing-correctness suite of the [`qdp_ad::GradientService`] (PR 8).
//!
//! The service's determinism contract: a client's result is **bit-identical
//! to running its request solo**, no matter which other clients it
//! coalesced with, under any thread count. Here `N` concurrent clients with
//! **distinct seeds** (shot kinds) or distinct inputs (exact kinds) submit
//! against one tenant with `with_admission(N)` — guaranteeing all `N`
//! share exactly **one** batched sweep — and every result is compared
//! bitwise against the direct solo engine call, under a forced
//! 1-/2-/8-thread matrix.
//!
//! `set_max_threads` needs a quiesced process, so the thread-matrix tests
//! in this binary serialize on one mutex (the same idiom as
//! `qdp-sim/tests/layout_differential.rs`).

use qdp_ad::GradientService;
use qdp_lang::ast::Params;
use qdp_lang::parse_program;
use qdp_sim::{BatchedStates, Observable, StateVector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Serializes the thread-override tests in this binary.
static THREAD_OVERRIDE: Mutex<()> = Mutex::new(());

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    THREAD_OVERRIDE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

const SRC: &str = "q1 *= RX(sa); q2 *= RY(sb); q1, q2 *= RZZ(sc)";

fn fixed_params() -> Params {
    Params::from_pairs([("sa", 0.3), ("sb", -0.7), ("sc", 1.9)])
}

/// A random normalised pure state on `n` qubits.
fn random_state(rng: &mut StdRng, n: usize) -> StateVector {
    let dim = 1usize << n;
    let mut amps: Vec<qdp_linalg::C64> = (0..dim)
        .map(|_| qdp_linalg::C64::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
        .collect();
    let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
    for a in &mut amps {
        *a *= qdp_linalg::C64::real(1.0 / norm);
    }
    StateVector::from_amplitudes(n, amps)
}

#[test]
fn coalesced_shot_values_are_bit_identical_to_solo_under_the_thread_matrix() {
    let _guard = serialized();
    const N: usize = 6;
    let program = parse_program(SRC).unwrap();
    let params = fixed_params();
    let obs = Observable::pauli_z(2, 0);
    let shots = 64usize;
    let mut rng = StdRng::seed_from_u64(0xC0A1);
    let inputs: Vec<StateVector> = (0..N).map(|_| random_state(&mut rng, 2)).collect();
    let seeds: Vec<u64> = (0..N as u64).map(|i| 0x5EED + 17 * i).collect();

    // Solo baselines: the single-input engine call on each client's own
    // seed (itself pinned thread-count-invariant by PR 3's suites).
    let solo_engine = qdp_ad::GradientEngine::new(&program).unwrap();
    let solo: Vec<f64> = inputs
        .iter()
        .zip(&seeds)
        .map(|(psi, &seed)| solo_engine.value_pure_shots(&params, &obs, psi, shots, seed))
        .collect();

    for &threads in &THREAD_COUNTS {
        qdp_par::set_max_threads(threads);
        let service = Arc::new(GradientService::with_admission(N));
        let handle = service.register(&program).unwrap();
        let workers: Vec<_> = (0..N)
            .map(|i| {
                let service = Arc::clone(&service);
                let handle = handle.clone();
                let params = params.clone();
                let obs = obs.clone();
                let psi = inputs[i].clone();
                let seed = seeds[i];
                std::thread::spawn(move || {
                    service.expectation_shots(&handle, &params, &obs, &psi, shots, seed)
                })
            })
            .collect();
        let results: Vec<f64> = workers.into_iter().map(|w| w.join().unwrap()).collect();
        qdp_par::set_max_threads(0);

        for (i, (got, want)) in results.iter().zip(&solo).enumerate() {
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "threads={threads} client {i}: coalesced {got} vs solo {want}"
            );
        }
        assert_eq!(
            service.sweeps(&handle),
            1,
            "threads={threads}: {N} admitted clients must share one sweep"
        );
        assert_eq!(service.served(&handle), N);
    }
}

#[test]
fn coalesced_shot_gradients_are_bit_identical_to_solo_under_the_thread_matrix() {
    let _guard = serialized();
    const N: usize = 4;
    let program = parse_program(SRC).unwrap();
    let params = fixed_params();
    let obs = Observable::pauli_z(2, 1);
    let shots = 48usize;
    let mut rng = StdRng::seed_from_u64(0xC0A2);
    let inputs: Vec<StateVector> = (0..N).map(|_| random_state(&mut rng, 2)).collect();
    let seeds: Vec<u64> = (0..N as u64).map(|i| 0xFACE + 31 * i).collect();

    let solo_engine = qdp_ad::GradientEngine::new(&program).unwrap();
    let solo: Vec<_> = inputs
        .iter()
        .zip(&seeds)
        .map(|(psi, &seed)| solo_engine.gradient_pure_shots(&params, &obs, psi, shots, seed))
        .collect();

    for &threads in &THREAD_COUNTS {
        qdp_par::set_max_threads(threads);
        let service = Arc::new(GradientService::with_admission(N));
        let handle = service.register(&program).unwrap();
        let workers: Vec<_> = (0..N)
            .map(|i| {
                let service = Arc::clone(&service);
                let handle = handle.clone();
                let params = params.clone();
                let obs = obs.clone();
                let psi = inputs[i].clone();
                let seed = seeds[i];
                std::thread::spawn(move || {
                    service.gradient_shots(&handle, &params, &obs, &psi, shots, seed)
                })
            })
            .collect();
        let results: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();
        qdp_par::set_max_threads(0);

        for (i, (got, want)) in results.iter().zip(&solo).enumerate() {
            for (name, v) in want {
                assert_eq!(
                    got[name].to_bits(),
                    v.to_bits(),
                    "threads={threads} client {i} ∂/∂{name}"
                );
            }
        }
        assert_eq!(service.sweeps(&handle), 1, "threads={threads}");
    }
}

#[test]
fn coalesced_exact_requests_match_batch_of_one_bitwise() {
    let _guard = serialized();
    const N: usize = 5;
    let program = parse_program(SRC).unwrap();
    let params = fixed_params();
    let obs = Observable::pauli_z(2, 0);
    let mut rng = StdRng::seed_from_u64(0xC0A3);
    let inputs: Vec<StateVector> = (0..N).map(|_| random_state(&mut rng, 2)).collect();

    // Solo baseline: a one-row sweep of each input (the batched entry
    // points' per-row outputs are batch-composition invariant).
    let solo_engine = qdp_ad::GradientEngine::new(&program).unwrap();
    let solo_v: Vec<f64> = inputs
        .iter()
        .map(|psi| solo_engine.value_pure_batch(&params, &obs, &BatchedStates::gather(&[psi]))[0])
        .collect();
    let solo_g: Vec<_> = inputs
        .iter()
        .map(|psi| {
            solo_engine
                .gradient_pure_shift_batch(&params, &obs, &BatchedStates::gather(&[psi]))
                .remove(0)
        })
        .collect();

    for &threads in &THREAD_COUNTS {
        qdp_par::set_max_threads(threads);
        let service = Arc::new(GradientService::with_admission(N));
        let handle = service.register(&program).unwrap();

        let values: Vec<f64> = {
            let workers: Vec<_> = (0..N)
                .map(|i| {
                    let service = Arc::clone(&service);
                    let handle = handle.clone();
                    let params = params.clone();
                    let obs = obs.clone();
                    let psi = inputs[i].clone();
                    std::thread::spawn(move || service.expectation(&handle, &params, &obs, &psi))
                })
                .collect();
            workers.into_iter().map(|w| w.join().unwrap()).collect()
        };
        let grads: Vec<_> = {
            let workers: Vec<_> = (0..N)
                .map(|i| {
                    let service = Arc::clone(&service);
                    let handle = handle.clone();
                    let params = params.clone();
                    let obs = obs.clone();
                    let psi = inputs[i].clone();
                    std::thread::spawn(move || {
                        service.gradient_shift(&handle, &params, &obs, &psi)
                    })
                })
                .collect();
            workers.into_iter().map(|w| w.join().unwrap()).collect()
        };
        qdp_par::set_max_threads(0);

        for (i, (got, want)) in values.iter().zip(&solo_v).enumerate() {
            assert_eq!(got.to_bits(), want.to_bits(), "threads={threads} value client {i}");
        }
        for (i, (got, want)) in grads.iter().zip(&solo_g).enumerate() {
            for (name, v) in want {
                assert_eq!(
                    got[name].to_bits(),
                    v.to_bits(),
                    "threads={threads} gradient client {i} ∂/∂{name}"
                );
            }
        }
        assert_eq!(
            service.sweeps(&handle),
            2,
            "threads={threads}: one sweep per request kind"
        );
        assert_eq!(service.served(&handle), 2 * N);
    }
}

#[test]
fn incompatible_requests_split_into_separate_sweeps_with_correct_results() {
    // Two valuations interleaved on one tenant: the head-group drain must
    // serve each valuation from its own sweep, and every client still gets
    // its solo bits.
    let program = parse_program(SRC).unwrap();
    let params_a = fixed_params();
    let params_b = Params::from_pairs([("sa", 1.1), ("sb", 0.4), ("sc", -0.6)]);
    let obs = Observable::pauli_z(2, 0);
    let psi = StateVector::zero_state(2);

    let solo_engine = qdp_ad::GradientEngine::new(&program).unwrap();
    let want_a = solo_engine.value_pure_batch(&params_a, &obs, &BatchedStates::gather(&[&psi]))[0];
    let want_b = solo_engine.value_pure_batch(&params_b, &obs, &BatchedStates::gather(&[&psi]))[0];

    let service = Arc::new(GradientService::with_admission(4));
    let handle = service.register(&program).unwrap();
    let workers: Vec<_> = (0..4)
        .map(|i| {
            let service = Arc::clone(&service);
            let handle = handle.clone();
            let params = if i % 2 == 0 { params_a.clone() } else { params_b.clone() };
            let obs = obs.clone();
            let psi = psi.clone();
            std::thread::spawn(move || service.expectation(&handle, &params, &obs, &psi))
        })
        .collect();
    let results: Vec<f64> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    for (i, got) in results.iter().enumerate() {
        let want = if i % 2 == 0 { want_a } else { want_b };
        assert_eq!(got.to_bits(), want.to_bits(), "client {i}");
    }
    assert_eq!(service.served(&handle), 4);
    // One sweep per valuation group; late arrivals may split a group, so
    // bound rather than pin the count.
    let sweeps = service.sweeps(&handle);
    assert!((2..=4).contains(&sweeps), "got {sweeps} sweeps");
}

#[test]
fn flush_serves_partial_batches_below_the_admission_threshold() {
    let program = parse_program(SRC).unwrap();
    let service = Arc::new(GradientService::with_admission(4));
    let handle = service.register(&program).unwrap();
    let done = Arc::new(AtomicUsize::new(0));

    let workers: Vec<_> = (0..2)
        .map(|_| {
            let service = Arc::clone(&service);
            let handle = handle.clone();
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let v = service.expectation(
                    &handle,
                    &fixed_params(),
                    &Observable::pauli_z(2, 0),
                    &StateVector::zero_state(2),
                );
                done.fetch_add(1, Ordering::SeqCst);
                v
            })
        })
        .collect();
    // Only 2 of 4 admitted requests will ever arrive: keep flushing until
    // both clients are served (flush is sticky only until the queue
    // drains, and a flush before either enqueues serves nobody).
    while done.load(Ordering::SeqCst) < 2 {
        service.flush(&handle);
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let results: Vec<f64> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    assert_eq!(results[0].to_bits(), results[1].to_bits());
    assert_eq!(service.served(&handle), 2);
}

#[test]
fn mixed_tenants_serve_concurrently_without_cross_talk() {
    let service = Arc::new(GradientService::new());
    let p_a = parse_program("q1 *= RX(ma)").unwrap();
    let p_b = parse_program("q1 *= RY(mb); q2 *= RZ(mc)").unwrap();
    let h_a = service.register(&p_a).unwrap();
    let h_b = service.register(&p_b).unwrap();
    assert_eq!(service.tenant_count(), 2);

    let engine_a = service.engine(&h_a);
    let engine_b = service.engine(&h_b);
    let params_a = Params::from_pairs([("ma", 0.8)]);
    let params_b = Params::from_pairs([("mb", -0.2), ("mc", 2.3)]);
    let obs1 = Observable::pauli_z(1, 0);
    let obs2 = Observable::pauli_z(2, 1);
    let psi1 = StateVector::zero_state(1);
    let psi2 = StateVector::zero_state(2);

    let want_a = engine_a.value_pure_batch(&params_a, &obs1, &BatchedStates::gather(&[&psi1]))[0];
    let want_b = engine_b
        .gradient_pure_batch(&params_b, &obs2, &BatchedStates::gather(&[&psi2]))
        .remove(0);

    let workers: Vec<std::thread::JoinHandle<()>> = (0..6)
        .map(|i| {
            let service = Arc::clone(&service);
            let (h_a, h_b) = (h_a.clone(), h_b.clone());
            let (params_a, params_b) = (params_a.clone(), params_b.clone());
            let (obs1, obs2) = (obs1.clone(), obs2.clone());
            let (psi1, psi2) = (psi1.clone(), psi2.clone());
            let want_b = want_b.clone();
            std::thread::spawn(move || {
                if i % 2 == 0 {
                    let v = service.expectation(&h_a, &params_a, &obs1, &psi1);
                    assert_eq!(v.to_bits(), want_a.to_bits(), "tenant A client {i}");
                } else {
                    let g = service.gradient(&h_b, &params_b, &obs2, &psi2);
                    for (name, v) in &want_b {
                        assert_eq!(g[name].to_bits(), v.to_bits(), "tenant B client {i} ∂/∂{name}");
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    assert_eq!(service.served(&h_a), 3);
    assert_eq!(service.served(&h_b), 3);
}
